//! # certus-tpch
//!
//! The TPC-H substrate used by the paper's experiments, rebuilt in Rust:
//!
//! * [`schema`] — the TPC-H schema with primary keys and nullability flags
//!   (primary-key columns are non-nullable; every other column is nullable,
//!   exactly the split Section 3 of the paper uses for null injection).
//! * [`dbgen`] — a deterministic, scaled-down `DBGen`-style generator. The
//!   paper runs on 1–10 GB instances; our engine is in-memory, so a *scale
//!   factor* of `1.0` corresponds to the paper's 1 GB instance divided by
//!   1000 (the same reduction the paper itself applies for its
//!   false-positive experiments with DataFiller).
//! * [`datafiller`] — a simpler schema-driven random filler, standing in for
//!   the DataFiller tool used in Section 4.
//! * [`params`] — random query parameters (`$nation`, `$countries`,
//!   `$supp_key`, `$color`).
//! * [`queries`] — the four test queries Q1–Q4 as relational algebra
//!   expressions, following the SQL given in Section 3.
//! * [`fp_detect`] — the specialised false-positive detectors of Section 4
//!   (Algorithms 1 and 2 plus the simple checks for Q2 and Q3).
//! * [`workload`] — glue to produce incomplete instances at a given null rate.

pub mod datafiller;
pub mod dbgen;
pub mod fp_detect;
pub mod params;
pub mod queries;
pub mod schema;
pub mod text;
pub mod workload;

pub use dbgen::DbGen;
pub use params::QueryParams;
pub use queries::{q1, q2, q3, q4, query_by_number};
pub use schema::tpch_catalog;
pub use workload::Workload;
