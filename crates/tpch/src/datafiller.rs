//! A DataFiller-style random filler.
//!
//! The paper's false-positive experiment (Section 4) uses DataFiller to
//! generate instances "compliant with the TPC-H specification in everything
//! but size, which we scale down by a factor of 10³". This module provides a
//! similar schema-driven filler: uniform random values, foreign keys kept in
//! range, no attempt to follow TPC-H's value distributions.

use crate::dbgen::DbGen;
use certus_data::Database;

/// Configuration for the DataFiller-style generator.
#[derive(Debug, Clone)]
pub struct DataFiller {
    /// Approximate number of `orders` rows (everything else is scaled from
    /// TPC-H's ratios).
    pub orders: u64,
    /// RNG seed.
    pub seed: u64,
}

impl DataFiller {
    /// Create a filler producing roughly `orders` order rows.
    pub fn new(orders: u64, seed: u64) -> Self {
        DataFiller { orders: orders.max(1), seed }
    }

    /// Generate a complete database. Internally this reuses the deterministic
    /// generator at the matching scale factor — the property the experiments
    /// rely on (uniform values over the schema with valid foreign keys) is
    /// the same; only the absolute size differs.
    pub fn generate(&self) -> Database {
        let sf = self.orders as f64 / 1_500_000.0;
        DbGen::new(sf, self.seed).generate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_requested_order_of_magnitude() {
        let db = DataFiller::new(300, 5).generate();
        let orders = db.relation("orders").unwrap().len();
        assert!((250..=350).contains(&orders), "orders = {orders}");
        db.validate().unwrap();
    }

    #[test]
    fn minimum_size_is_one_order() {
        let db = DataFiller::new(0, 5).generate();
        assert!(!db.relation("orders").unwrap().is_empty());
    }
}
