//! A deterministic, scaled-down `DBGen`-style instance generator.
//!
//! TPC-H cardinalities at scale factor `sf`:
//! `supplier = 10 000·sf`, `part = 200 000·sf`, `customer = 150 000·sf`,
//! `orders = 1 500 000·sf`, `lineitem ≈ 4·orders`, `partsupp = 800 000·sf`.
//! The paper's smallest instance is 1 GB (`sf = 1`, ~9·10⁶ tuples); our
//! engine is in-memory and single-node, so the benchmarks use milli-scale
//! factors (0.001–0.02) and, as in the paper, report *relative* measures
//! that do not depend on absolute size.

use crate::text::{NATIONS, ORDER_STATUS, PART_NAME_WORDS, REGIONS};
use certus_data::value::days_from_date;
use certus_data::{Database, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic TPC-H-like data generator.
#[derive(Debug, Clone)]
pub struct DbGen {
    /// Scale factor: 1.0 corresponds to 10 000 suppliers / 1.5 M orders.
    pub scale_factor: f64,
    /// RNG seed for reproducibility.
    pub seed: u64,
}

impl DbGen {
    /// Create a generator.
    pub fn new(scale_factor: f64, seed: u64) -> Self {
        assert!(scale_factor > 0.0, "scale factor must be positive");
        DbGen { scale_factor, seed }
    }

    fn scaled(&self, base: u64) -> u64 {
        ((base as f64 * self.scale_factor).round() as u64).max(1)
    }

    /// Number of rows per table at this scale factor.
    pub fn cardinalities(&self) -> Cardinalities {
        Cardinalities {
            supplier: self.scaled(10_000),
            part: self.scaled(200_000),
            customer: self.scaled(150_000),
            orders: self.scaled(1_500_000),
            partsupp: self.scaled(800_000),
        }
    }

    /// Generate a complete (null-free) database.
    pub fn generate(&self) -> Database {
        let mut db = crate::schema::tpch_catalog();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let card = self.cardinalities();

        // Strings load through the database's interner: the repeated values
        // (region/nation names, order statuses) share one allocation each,
        // and even the unique supplier/customer/part names get pool ids so
        // string columns stay fully interned for the columnar layer.
        // region
        for (i, name) in REGIONS.iter().enumerate() {
            let name = db.intern_str(name);
            db.relation_mut("region")
                .expect("table exists")
                .insert_values(vec![Value::Int(i as i64), name])
                .expect("arity");
        }
        // nation
        for (i, (name, region)) in NATIONS.iter().enumerate() {
            let name = db.intern_str(name);
            db.relation_mut("nation")
                .expect("table exists")
                .insert_values(vec![Value::Int(i as i64), name, Value::Int(*region as i64)])
                .expect("arity");
        }
        // supplier
        for i in 1..=card.supplier {
            let name = db.intern_str(&format!("Supplier#{i:09}"));
            db.relation_mut("supplier")
                .expect("table exists")
                .insert_values(vec![
                    Value::Int(i as i64),
                    name,
                    Value::Int(rng.gen_range(0..25)),
                    Value::Decimal(rng.gen_range(-99_999..999_999)),
                ])
                .expect("arity");
        }
        // customer
        for i in 1..=card.customer {
            let name = db.intern_str(&format!("Customer#{i:09}"));
            db.relation_mut("customer")
                .expect("table exists")
                .insert_values(vec![
                    Value::Int(i as i64),
                    name,
                    Value::Int(rng.gen_range(0..25)),
                    Value::Decimal(rng.gen_range(-99_999..999_999)),
                ])
                .expect("arity");
        }
        // part
        for i in 1..=card.part {
            let name = db.intern_str(&Self::part_name(&mut rng));
            db.relation_mut("part")
                .expect("table exists")
                .insert_values(vec![
                    Value::Int(i as i64),
                    name,
                    Value::Decimal(rng.gen_range(90_000..200_000)),
                ])
                .expect("arity");
        }
        // partsupp: each part is offered by (up to) four distinct suppliers,
        // as in TPC-H. Supplier choices are spread deterministically and
        // deduplicated so the (ps_partkey, ps_suppkey) key holds.
        for partkey in 1..=card.part {
            let mut seen = std::collections::HashSet::new();
            for j in 0..4u64 {
                let suppkey = ((partkey * 7 + j * 13) % card.supplier) + 1;
                if !seen.insert(suppkey) {
                    continue;
                }
                db.relation_mut("partsupp")
                    .expect("table exists")
                    .insert_values(vec![
                        Value::Int(partkey as i64),
                        Value::Int(suppkey as i64),
                        Value::Decimal(rng.gen_range(100..100_000)),
                    ])
                    .expect("arity");
            }
        }
        // orders & lineitem
        let start = days_from_date(1992, 1, 1);
        let end = days_from_date(1998, 8, 2);
        for o in 1..=card.orders {
            let custkey = rng.gen_range(1..=card.customer) as i64;
            let orderdate = rng.gen_range(start..end);
            let status = db.intern_str(ORDER_STATUS[rng.gen_range(0..ORDER_STATUS.len())]);
            db.relation_mut("orders")
                .expect("table exists")
                .insert_values(vec![
                    Value::Int(o as i64),
                    Value::Int(custkey),
                    status,
                    Value::Date(orderdate),
                    Value::Decimal(rng.gen_range(100_000..50_000_000)),
                ])
                .expect("arity");
            let lines = rng.gen_range(1..=7u32);
            for ln in 1..=lines {
                let shipdate = orderdate + rng.gen_range(1..=121);
                let commitdate = orderdate + rng.gen_range(30..=90);
                let receiptdate = shipdate + rng.gen_range(1..=30);
                db.relation_mut("lineitem")
                    .expect("table exists")
                    .insert_values(vec![
                        Value::Int(o as i64),
                        Value::Int(ln as i64),
                        Value::Int(rng.gen_range(1..=card.part) as i64),
                        Value::Int(rng.gen_range(1..=card.supplier) as i64),
                        Value::Int(rng.gen_range(1..=50)),
                        Value::Decimal(rng.gen_range(90_000..10_000_000)),
                        Value::Date(shipdate),
                        Value::Date(commitdate),
                        Value::Date(receiptdate),
                    ])
                    .expect("arity");
            }
        }
        db
    }

    fn part_name(rng: &mut StdRng) -> String {
        let mut words = Vec::with_capacity(5);
        while words.len() < 5 {
            let w = PART_NAME_WORDS[rng.gen_range(0..PART_NAME_WORDS.len())];
            if !words.contains(&w) {
                words.push(w);
            }
        }
        words.join(" ")
    }
}

/// Row counts per table at a given scale factor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cardinalities {
    /// Rows in `supplier`.
    pub supplier: u64,
    /// Rows in `part`.
    pub part: u64,
    /// Rows in `customer`.
    pub customer: u64,
    /// Rows in `orders`.
    pub orders: u64,
    /// Rows in `partsupp`.
    pub partsupp: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cardinalities_scale() {
        let g = DbGen::new(0.001, 1);
        let c = g.cardinalities();
        assert_eq!(c.supplier, 10);
        assert_eq!(c.customer, 150);
        assert_eq!(c.orders, 1500);
        assert_eq!(c.part, 200);
    }

    #[test]
    fn generation_is_deterministic_and_valid() {
        let g = DbGen::new(0.0005, 42);
        let a = g.generate();
        let b = g.generate();
        assert_eq!(a.total_tuples(), b.total_tuples());
        assert!(a.is_complete());
        a.validate().unwrap();
        assert_eq!(a.relation("region").unwrap().len(), 5);
        assert_eq!(a.relation("nation").unwrap().len(), 25);
        // lineitem has between 1x and 7x the orders rows
        let orders = a.relation("orders").unwrap().len();
        let lineitem = a.relation("lineitem").unwrap().len();
        assert!(lineitem >= orders && lineitem <= orders * 7);
    }

    #[test]
    fn foreign_keys_stay_in_range() {
        let g = DbGen::new(0.0005, 7);
        let db = g.generate();
        let nsupp = db.relation("supplier").unwrap().len() as i64;
        for t in db.relation("lineitem").unwrap().iter() {
            let suppkey = t[3].as_i64().unwrap();
            assert!(suppkey >= 1 && suppkey <= nsupp);
        }
        let ncust = db.relation("customer").unwrap().len() as i64;
        for t in db.relation("orders").unwrap().iter() {
            let ck = t[1].as_i64().unwrap();
            assert!(ck >= 1 && ck <= ncust);
        }
    }

    #[test]
    fn repeated_strings_share_one_allocation() {
        let db = DbGen::new(0.0005, 11).generate();
        // Every order-status string is one of three pool entries; two rows
        // with the same status share the same Arc.
        let orders = db.relation("orders").unwrap();
        let mut by_status: std::collections::HashMap<&str, &certus_data::Value> =
            std::collections::HashMap::new();
        for t in orders.iter() {
            let v = &t[2];
            let s = v.as_str().unwrap();
            match by_status.get(s) {
                Some(first) => match (first, v) {
                    (certus_data::Value::Str(a), certus_data::Value::Str(b)) => {
                        assert!(std::sync::Arc::ptr_eq(a, b), "status {s} re-allocated")
                    }
                    _ => unreachable!(),
                },
                None => {
                    by_status.insert(s, v);
                }
            }
        }
        // The pool holds every distinct string of the instance.
        assert!(db.str_pool().lookup("AFRICA").is_some());
        assert!(db.str_pool().len() > 5);
    }

    #[test]
    fn part_names_use_word_pool() {
        let g = DbGen::new(0.0005, 3);
        let db = g.generate();
        for t in db.relation("part").unwrap().iter() {
            let name = t[1].as_str().unwrap();
            assert_eq!(name.split(' ').count(), 5);
            for w in name.split(' ') {
                assert!(PART_NAME_WORDS.contains(&w));
            }
        }
    }

    #[test]
    fn dates_are_ordered_sensibly() {
        let g = DbGen::new(0.0005, 9);
        let db = g.generate();
        for t in db.relation("lineitem").unwrap().iter() {
            let ship = t[6].as_date().unwrap();
            let receipt = t[8].as_date().unwrap();
            assert!(receipt > ship);
        }
    }
}
