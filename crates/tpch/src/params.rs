//! Random query parameters (`$nation`, `$countries`, `$supp_key`, `$color`).

use crate::text::{NATIONS, PART_NAME_WORDS};
use certus_data::Database;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// A concrete instantiation of the parameters of queries Q1–Q4, chosen as in
/// Section 3 of the paper: `$nation` is a random nation name, `$countries` a
/// list of 7 distinct nation keys, `$supp_key` a random supplier key and
/// `$color` a random word from the 92-entry part-name pool.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryParams {
    /// Nation name for Q1 and Q4.
    pub nation: String,
    /// Seven distinct nation keys for Q2.
    pub countries: Vec<i64>,
    /// Supplier key for Q3.
    pub supp_key: i64,
    /// Part-name word for Q4.
    pub color: String,
}

impl QueryParams {
    /// Draw random parameters, using the database only to learn the number of
    /// suppliers (so `$supp_key` is an existing key).
    pub fn random(db: &Database, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let nation = NATIONS[rng.gen_range(0..NATIONS.len())].0.to_string();
        let mut keys: Vec<i64> = (0..NATIONS.len() as i64).collect();
        keys.shuffle(&mut rng);
        let countries = keys.into_iter().take(7).collect();
        let n_supp = db.relation("supplier").map(|r| r.len()).unwrap_or(1).max(1) as i64;
        let supp_key = rng.gen_range(1..=n_supp);
        let color = PART_NAME_WORDS[rng.gen_range(0..PART_NAME_WORDS.len())].to_string();
        QueryParams { nation, countries, supp_key, color }
    }

    /// Fixed parameters used by deterministic unit tests.
    pub fn fixed() -> Self {
        QueryParams {
            nation: "FRANCE".to_string(),
            countries: vec![0, 3, 6, 8, 12, 20, 24],
            supp_key: 1,
            color: "red".to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dbgen::DbGen;

    #[test]
    fn random_params_are_valid_and_deterministic() {
        let db = DbGen::new(0.0005, 1).generate();
        let a = QueryParams::random(&db, 7);
        let b = QueryParams::random(&db, 7);
        assert_eq!(a, b);
        assert_eq!(a.countries.len(), 7);
        let unique: std::collections::HashSet<_> = a.countries.iter().collect();
        assert_eq!(unique.len(), 7);
        assert!(NATIONS.iter().any(|(n, _)| *n == a.nation));
        assert!(PART_NAME_WORDS.contains(&a.color.as_str()));
        let n_supp = db.relation("supplier").unwrap().len() as i64;
        assert!(a.supp_key >= 1 && a.supp_key <= n_supp);
    }

    #[test]
    fn different_seeds_differ() {
        let db = DbGen::new(0.0005, 1).generate();
        let a = QueryParams::random(&db, 1);
        let b = QueryParams::random(&db, 2);
        assert_ne!(a, b);
    }
}
