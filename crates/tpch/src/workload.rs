//! Workload assembly: complete instance generation + null injection + query
//! parameterisation, matching the experimental setup of Sections 3–4 and 7.

use crate::dbgen::DbGen;
use crate::params::QueryParams;
use certus_data::inject::NullInjector;
use certus_data::Database;

/// A reproducible experimental workload: a TPC-H instance at a given scale
/// factor with nulls injected at a given rate.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Scale factor of the generated instance (see [`DbGen`]).
    pub scale_factor: f64,
    /// Null rate in `[0, 1]` (the paper sweeps 0.5%–10%).
    pub null_rate: f64,
    /// Seed controlling both data generation and null injection.
    pub seed: u64,
}

impl Workload {
    /// Create a workload description.
    pub fn new(scale_factor: f64, null_rate: f64, seed: u64) -> Self {
        Workload { scale_factor, null_rate, seed }
    }

    /// Generate the complete (null-free) instance.
    pub fn complete_instance(&self) -> Database {
        DbGen::new(self.scale_factor, self.seed).generate()
    }

    /// Generate the incomplete instance (nulls injected into nullable columns
    /// at the configured rate).
    pub fn incomplete_instance(&self) -> Database {
        let complete = self.complete_instance();
        if self.null_rate == 0.0 {
            return complete;
        }
        NullInjector::new(self.null_rate, self.seed.wrapping_mul(31).wrapping_add(7))
            .inject(&complete)
    }

    /// Draw the `i`-th random parameterisation for this workload.
    pub fn params(&self, db: &Database, i: u64) -> QueryParams {
        QueryParams::random(db, self.seed.wrapping_mul(1000).wrapping_add(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn incomplete_instance_has_roughly_the_requested_null_rate() {
        let w = Workload::new(0.001, 0.05, 3);
        let db = w.incomplete_instance();
        let rate = NullInjector::observed_rate(&db);
        assert!((rate - 0.05).abs() < 0.02, "observed {rate}");
        db.validate().unwrap();
    }

    #[test]
    fn zero_null_rate_yields_complete_instance() {
        let w = Workload::new(0.0005, 0.0, 3);
        assert!(w.incomplete_instance().is_complete());
    }

    #[test]
    fn params_differ_per_index_but_are_reproducible() {
        let w = Workload::new(0.0005, 0.02, 3);
        let db = w.complete_instance();
        let a = w.params(&db, 0);
        let b = w.params(&db, 1);
        let a2 = w.params(&db, 0);
        assert_ne!(a, b);
        assert_eq!(a, a2);
    }
}
