//! The TPC-H schema with primary keys and nullability flags.
//!
//! Only the columns used by the paper's queries (plus a handful kept for
//! realism) are materialised — TPC-H comment/address columns are omitted so
//! that scaled-down instances stay compact. Primary-key columns are declared
//! `NOT NULL`; every other column is *nullable*, which is exactly the split
//! Section 3 of the paper uses when injecting nulls.

use certus_data::{Attribute, Database, Schema, TableDef, ValueType};

fn key(name: &str, ty: ValueType) -> Attribute {
    Attribute::not_null(name, ty)
}

fn col(name: &str, ty: ValueType) -> Attribute {
    Attribute::new(name, ty)
}

/// Build an empty database with all eight TPC-H tables registered.
pub fn tpch_catalog() -> Database {
    let mut db = Database::new();

    db.create_table(
        TableDef::new(
            "region",
            Schema::new(vec![key("r_regionkey", ValueType::Int), col("r_name", ValueType::Str)]),
        )
        .with_key(&["r_regionkey"]),
    )
    .expect("fresh database");

    db.create_table(
        TableDef::new(
            "nation",
            Schema::new(vec![
                key("n_nationkey", ValueType::Int),
                col("n_name", ValueType::Str),
                col("n_regionkey", ValueType::Int),
            ]),
        )
        .with_key(&["n_nationkey"]),
    )
    .expect("fresh database");

    db.create_table(
        TableDef::new(
            "supplier",
            Schema::new(vec![
                key("s_suppkey", ValueType::Int),
                col("s_name", ValueType::Str),
                col("s_nationkey", ValueType::Int),
                col("s_acctbal", ValueType::Decimal),
            ]),
        )
        .with_key(&["s_suppkey"]),
    )
    .expect("fresh database");

    db.create_table(
        TableDef::new(
            "customer",
            Schema::new(vec![
                key("c_custkey", ValueType::Int),
                col("c_name", ValueType::Str),
                col("c_nationkey", ValueType::Int),
                col("c_acctbal", ValueType::Decimal),
            ]),
        )
        .with_key(&["c_custkey"]),
    )
    .expect("fresh database");

    db.create_table(
        TableDef::new(
            "part",
            Schema::new(vec![
                key("p_partkey", ValueType::Int),
                col("p_name", ValueType::Str),
                col("p_retailprice", ValueType::Decimal),
            ]),
        )
        .with_key(&["p_partkey"]),
    )
    .expect("fresh database");

    db.create_table(
        TableDef::new(
            "partsupp",
            Schema::new(vec![
                key("ps_partkey", ValueType::Int),
                key("ps_suppkey", ValueType::Int),
                col("ps_supplycost", ValueType::Decimal),
            ]),
        )
        .with_key(&["ps_partkey", "ps_suppkey"]),
    )
    .expect("fresh database");

    db.create_table(
        TableDef::new(
            "orders",
            Schema::new(vec![
                key("o_orderkey", ValueType::Int),
                col("o_custkey", ValueType::Int),
                col("o_orderstatus", ValueType::Str),
                col("o_orderdate", ValueType::Date),
                col("o_totalprice", ValueType::Decimal),
            ]),
        )
        .with_key(&["o_orderkey"]),
    )
    .expect("fresh database");

    db.create_table(
        TableDef::new(
            "lineitem",
            Schema::new(vec![
                key("l_orderkey", ValueType::Int),
                key("l_linenumber", ValueType::Int),
                col("l_partkey", ValueType::Int),
                col("l_suppkey", ValueType::Int),
                col("l_quantity", ValueType::Int),
                col("l_extendedprice", ValueType::Decimal),
                col("l_shipdate", ValueType::Date),
                col("l_commitdate", ValueType::Date),
                col("l_receiptdate", ValueType::Date),
            ]),
        )
        .with_key(&["l_orderkey", "l_linenumber"]),
    )
    .expect("fresh database");

    db
}

/// Names of the eight TPC-H tables.
pub const TABLE_NAMES: [&str; 8] =
    ["customer", "lineitem", "nation", "orders", "part", "partsupp", "region", "supplier"];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_registers_all_tables() {
        let db = tpch_catalog();
        for t in TABLE_NAMES {
            assert!(db.has_table(t), "missing {t}");
        }
        assert_eq!(db.table_names().len(), 8);
    }

    #[test]
    fn key_columns_are_not_nullable() {
        let db = tpch_catalog();
        for def in db.table_defs() {
            for k in &def.primary_key {
                let pos = def.schema.position_of(k).unwrap();
                assert!(!def.schema.attr(pos).nullable, "{}.{} must be NOT NULL", def.name, k);
            }
        }
    }

    #[test]
    fn fp_relevant_columns_are_nullable() {
        // The false-positive detectors rely on these being nullable.
        let db = tpch_catalog();
        for (table, column) in [
            ("lineitem", "l_suppkey"),
            ("lineitem", "l_partkey"),
            ("lineitem", "l_commitdate"),
            ("lineitem", "l_receiptdate"),
            ("orders", "o_custkey"),
            ("part", "p_name"),
            ("supplier", "s_nationkey"),
        ] {
            let def = db.table_def(table).unwrap();
            let pos = def.schema.position_of(column).unwrap();
            assert!(def.schema.attr(pos).nullable, "{table}.{column} should be nullable");
        }
    }
}
