//! Specialised false-positive detectors (Section 4 of the paper).
//!
//! Computing certain answers exactly is coNP-hard, so the paper detects (a
//! lower bound on) false positives with per-query algorithms: they look for
//! nulls in the comparisons that could falsify an answer tuple. A detector
//! returning `true` means the tuple is *definitely not* a certain answer;
//! returning `false` means "no witness found" (the tuple may or may not be
//! certain) — so the measured false-positive percentages are lower bounds,
//! exactly as in the paper.

use crate::params::QueryParams;
use certus_data::{Database, Tuple, Value};

fn eq_int(v: &Value, x: i64) -> bool {
    v.as_i64() == Some(x)
}

/// Algorithm 1: detect a false positive of Q1. `answer` is a
/// `(s_suppkey, o_orderkey)` tuple.
pub fn detect_q1(db: &Database, answer: &Tuple) -> bool {
    let suppkey = match answer.get(0).as_i64() {
        Some(v) => v,
        None => return false,
    };
    let orderkey = match answer.get(1).as_i64() {
        Some(v) => v,
        None => return false,
    };
    let lineitem = match db.relation("lineitem") {
        Ok(r) => r,
        Err(_) => return false,
    };
    for t in lineitem.iter() {
        if !eq_int(&t[0], orderkey) {
            continue;
        }
        let x = &t[3]; // l_suppkey
        if x.is_const() && eq_int(x, suppkey) {
            continue;
        }
        let d1 = &t[7]; // l_commitdate
        let d2 = &t[8]; // l_receiptdate
        let late = match (d1.as_date(), d2.as_date()) {
            (Some(c), Some(r)) => r > c,
            _ => true, // either date is null ⇒ the supplier may have been late
        };
        if late {
            return true;
        }
    }
    false
}

/// Detector for Q2: if any order has a null `o_custkey`, that order's customer
/// could be anybody, so *every* answer to Q2 is a false positive.
pub fn detect_q2(db: &Database) -> bool {
    db.relation("orders").map(|orders| orders.iter().any(|t| t[1].is_null())).unwrap_or(false)
}

/// Detector for Q3 (order `orderkey` claimed to be supplied entirely by the
/// parameter supplier): a lineitem of that order with unknown supplier could
/// belong to a different supplier.
pub fn detect_q3(db: &Database, answer: &Tuple) -> bool {
    let orderkey = match answer.get(0).as_i64() {
        Some(v) => v,
        None => return false,
    };
    db.relation("lineitem")
        .map(|lineitem| lineitem.iter().any(|t| eq_int(&t[0], orderkey) && t[3].is_null()))
        .unwrap_or(false)
}

/// Algorithm 2: detect a false positive of Q4 (order `orderkey` claimed not to
/// involve any `$color` part from a `$nation` supplier).
pub fn detect_q4(db: &Database, params: &QueryParams, answer: &Tuple) -> bool {
    let orderkey = match answer.get(0).as_i64() {
        Some(v) => v,
        None => return false,
    };
    let (lineitem, part, supplier, nation) = match (
        db.relation("lineitem"),
        db.relation("part"),
        db.relation("supplier"),
        db.relation("nation"),
    ) {
        (Ok(a), Ok(b), Ok(c), Ok(d)) => (a, b, c, d),
        _ => return false,
    };
    for t in lineitem.iter() {
        if !eq_int(&t[0], orderkey) {
            continue;
        }
        let l_partkey = &t[2];
        let l_suppkey = &t[3];
        // P: could this lineitem involve a part of the given colour?
        let mut p_flag = false;
        for p in part.iter() {
            let key_match = l_partkey.is_null() || p[0] == *l_partkey;
            if !key_match {
                continue;
            }
            let name_match = match p[1].as_str() {
                Some(name) => name.contains(&params.color),
                None => p[1].is_null(),
            };
            if p[1].is_null() || name_match {
                p_flag = true;
                break;
            }
        }
        if !p_flag {
            continue;
        }
        // S: could this lineitem involve a supplier from the given nation?
        let mut s_flag = false;
        for s in supplier.iter() {
            let key_match = l_suppkey.is_null() || s[0] == *l_suppkey;
            if !key_match {
                continue;
            }
            let x = &s[2]; // s_nationkey
            if x.is_null() {
                s_flag = true;
                break;
            }
            for n in nation.iter() {
                if n[0] == *x && n[1].as_str() == Some(params.nation.as_str()) {
                    s_flag = true;
                    break;
                }
            }
            if s_flag {
                break;
            }
        }
        if p_flag && s_flag {
            return true;
        }
    }
    false
}

/// Count (a lower bound on) the false positives in `answers` for query number
/// `query` with the given parameters.
pub fn count_false_positives(
    query: usize,
    db: &Database,
    params: &QueryParams,
    answers: &certus_data::Relation,
) -> usize {
    match query {
        1 => answers.iter().filter(|t| detect_q1(db, t)).count(),
        2 if detect_q2(db) => answers.len(),
        3 => answers.iter().filter(|t| detect_q3(db, t)).count(),
        4 => answers.iter().filter(|t| detect_q4(db, params, t)).count(),
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use certus_data::builder::rel;
    use certus_data::null::NullId;
    use certus_data::value::date;

    fn null(i: u64) -> Value {
        Value::Null(NullId(i))
    }

    /// Minimal hand-built instance exercising each detector.
    fn tiny_db() -> Database {
        let mut db = Database::new();
        db.insert_relation(
            "lineitem",
            rel(
                &[
                    "l_orderkey",
                    "l_linenumber",
                    "l_partkey",
                    "l_suppkey",
                    "l_quantity",
                    "l_extendedprice",
                    "l_shipdate",
                    "l_commitdate",
                    "l_receiptdate",
                ],
                vec![
                    // order 1: supplier unknown, late delivery impossible to rule out
                    vec![
                        Value::Int(1),
                        Value::Int(1),
                        Value::Int(5),
                        null(1),
                        Value::Int(1),
                        Value::Decimal(100),
                        date(1995, 1, 10),
                        null(2),
                        date(1995, 1, 20),
                    ],
                    // order 2: all known, on time, supplied by supplier 3
                    vec![
                        Value::Int(2),
                        Value::Int(1),
                        Value::Int(6),
                        Value::Int(3),
                        Value::Int(1),
                        Value::Decimal(100),
                        date(1995, 1, 10),
                        date(1995, 2, 1),
                        date(1995, 1, 20),
                    ],
                ],
            ),
        );
        db.insert_relation(
            "orders",
            rel(
                &["o_orderkey", "o_custkey", "o_orderstatus", "o_orderdate", "o_totalprice"],
                vec![
                    vec![
                        Value::Int(1),
                        Value::Int(10),
                        Value::str("F"),
                        date(1995, 1, 1),
                        Value::Decimal(1),
                    ],
                    vec![
                        Value::Int(2),
                        null(3),
                        Value::str("F"),
                        date(1995, 1, 1),
                        Value::Decimal(1),
                    ],
                ],
            ),
        );
        db.insert_relation(
            "part",
            rel(
                &["p_partkey", "p_name", "p_retailprice"],
                vec![
                    vec![
                        Value::Int(5),
                        Value::str("almond red rose navy misty"),
                        Value::Decimal(1),
                    ],
                    vec![Value::Int(6), null(4), Value::Decimal(1)],
                ],
            ),
        );
        db.insert_relation(
            "supplier",
            rel(
                &["s_suppkey", "s_name", "s_nationkey", "s_acctbal"],
                vec![
                    vec![Value::Int(3), Value::str("Supplier#3"), null(5), Value::Decimal(1)],
                    vec![Value::Int(4), Value::str("Supplier#4"), Value::Int(7), Value::Decimal(1)],
                ],
            ),
        );
        db.insert_relation(
            "nation",
            rel(
                &["n_nationkey", "n_name", "n_regionkey"],
                vec![vec![Value::Int(7), Value::str("FRANCE"), Value::Int(3)]],
            ),
        );
        db
    }

    #[test]
    fn q1_detector_flags_unknown_supplier_or_dates() {
        let db = tiny_db();
        // Answer claims supplier 9 was the *only* late supplier on order 1, but
        // order 1 has a lineitem with unknown supplier and unknown commit date.
        assert!(detect_q1(&db, &Tuple::new(vec![Value::Int(9), Value::Int(1)])));
        // Order 2 is fully known and on time: no witness.
        assert!(!detect_q1(&db, &Tuple::new(vec![Value::Int(3), Value::Int(2)])));
    }

    #[test]
    fn q2_detector_checks_null_custkey() {
        let db = tiny_db();
        assert!(detect_q2(&db));
        let mut clean = Database::new();
        clean.insert_relation(
            "orders",
            rel(&["o_orderkey", "o_custkey"], vec![vec![Value::Int(1), Value::Int(2)]]),
        );
        assert!(!detect_q2(&clean));
    }

    #[test]
    fn q3_detector_checks_null_suppkey_on_the_order() {
        let db = tiny_db();
        assert!(detect_q3(&db, &Tuple::new(vec![Value::Int(1)])));
        assert!(!detect_q3(&db, &Tuple::new(vec![Value::Int(2)])));
    }

    #[test]
    fn q4_detector_follows_algorithm_2() {
        let db = tiny_db();
        let params =
            QueryParams { nation: "FRANCE".into(), color: "red".into(), ..QueryParams::fixed() };
        // Order 1: part 5 matches "red", supplier is unknown ⇒ could be from FRANCE.
        assert!(detect_q4(&db, &params, &Tuple::new(vec![Value::Int(1)])));
        // Order 2: part 6 has a null name (could be red), supplier 3 has unknown
        // nation ⇒ also a potential violation.
        assert!(detect_q4(&db, &params, &Tuple::new(vec![Value::Int(2)])));
        // With a colour that matches nothing and no null part name it would differ;
        // exercise the "no witness" path via a non-existent order.
        assert!(!detect_q4(&db, &params, &Tuple::new(vec![Value::Int(99)])));
    }

    #[test]
    fn count_false_positives_dispatches() {
        let db = tiny_db();
        let params = QueryParams::fixed();
        let answers = rel(&["o_orderkey"], vec![vec![Value::Int(1)], vec![Value::Int(2)]]);
        assert_eq!(count_false_positives(3, &db, &params, &answers), 1);
        assert_eq!(count_false_positives(2, &db, &params, &answers), 2);
        assert_eq!(count_false_positives(9, &db, &params, &answers), 0);
    }
}
