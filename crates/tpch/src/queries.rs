//! The paper's four test queries (Section 3) as relational algebra
//! expressions.
//!
//! The SQL→algebra translation follows the standard scheme the paper uses
//! (Van den Bussche & Vansummeren): `FROM` lists become joins, `EXISTS` /
//! `NOT EXISTS` correlated subqueries become semijoins / anti-joins whose
//! condition is the correlation predicate, and uncorrelated predicates of the
//! subquery are pushed into its operand. The aggregate subquery of Q2 is kept
//! as a black-box scalar operand, exactly as the paper treats it.

use crate::params::QueryParams;
use certus_algebra::builder::{col, eq, eq_const, gt, in_list, like, neq, neq_const};
use certus_algebra::condition::{Condition, Operand};
use certus_algebra::expr::{AggExpr, AggFunc, RaExpr};
use certus_data::compare::CmpOp;
use certus_data::Value;

/// Query Q1 (TPC-H query 21 without aggregation): suppliers from `$nation`
/// who were the only supplier failing the committed delivery date on a
/// finalized multi-supplier order.
pub fn q1(params: &QueryParams) -> RaExpr {
    let base = RaExpr::relation("supplier")
        .join(RaExpr::relation_as("lineitem", "l1"), eq("s_suppkey", "l1.l_suppkey"))
        .join(RaExpr::relation("orders"), eq("o_orderkey", "l1.l_orderkey"))
        .join(RaExpr::relation("nation"), eq("s_nationkey", "n_nationkey"))
        .select(
            eq_const("o_orderstatus", "F")
                .and(gt("l1.l_receiptdate", "l1.l_commitdate"))
                .and(eq_const("n_name", params.nation.as_str())),
        );
    let exists = base.semi_join(
        RaExpr::relation_as("lineitem", "l2"),
        eq("l2.l_orderkey", "l1.l_orderkey").and(neq("l2.l_suppkey", "l1.l_suppkey")),
    );
    let not_exists = exists.anti_join(
        RaExpr::relation_as("lineitem", "l3"),
        eq("l3.l_orderkey", "l1.l_orderkey")
            .and(neq("l3.l_suppkey", "l1.l_suppkey"))
            .and(gt("l3.l_receiptdate", "l3.l_commitdate")),
    );
    not_exists.project(&["s_suppkey", "o_orderkey"])
}

/// Query Q2 (TPC-H query 22 without aggregation): customers from the given
/// countries with an above-average positive account balance and no orders.
pub fn q2(params: &QueryParams) -> RaExpr {
    let countries: Vec<Value> = params.countries.iter().map(|&c| Value::Int(c)).collect();
    let avg_subquery = RaExpr::relation_as("customer", "c2")
        .select(
            Condition::Cmp {
                left: col("c2.c_acctbal"),
                op: CmpOp::Gt,
                right: Operand::Const(Value::Decimal(0)),
            }
            .and(in_list("c2.c_nationkey", countries.clone())),
        )
        .aggregate(&[], vec![AggExpr::new(AggFunc::Avg, "c2.c_acctbal", "avg_bal")]);
    RaExpr::relation("customer")
        .select(in_list("c_nationkey", countries).and(Condition::Cmp {
            left: col("c_acctbal"),
            op: CmpOp::Gt,
            right: Operand::Scalar(Box::new(avg_subquery)),
        }))
        .anti_join(RaExpr::relation("orders"), eq("o_custkey", "c_custkey"))
        .project(&["c_custkey", "c_nationkey"])
}

/// Query Q3 (textbook): orders supplied entirely by supplier `$supp_key`.
pub fn q3(params: &QueryParams) -> RaExpr {
    RaExpr::relation("orders")
        .anti_join(
            RaExpr::relation("lineitem").select(neq_const("l_suppkey", params.supp_key)),
            eq("l_orderkey", "o_orderkey"),
        )
        .project(&["o_orderkey"])
}

/// Query Q4 (textbook): orders not supplied with any part of colour `$color`
/// by any supplier from `$nation`.
pub fn q4(params: &QueryParams) -> RaExpr {
    let pattern = format!("%{}%", params.color);
    let inner = RaExpr::relation("lineitem")
        .join(RaExpr::relation("part"), eq("l_partkey", "p_partkey").and(like("p_name", pattern)))
        .join(RaExpr::relation("supplier"), eq("l_suppkey", "s_suppkey"))
        .join(
            RaExpr::relation("nation"),
            eq("s_nationkey", "n_nationkey").and(eq_const("n_name", params.nation.as_str())),
        );
    RaExpr::relation("orders")
        .anti_join(inner, eq("l_orderkey", "o_orderkey"))
        .project(&["o_orderkey"])
}

/// Look a query up by its number (1–4).
pub fn query_by_number(n: usize, params: &QueryParams) -> Option<RaExpr> {
    match n {
        1 => Some(q1(params)),
        2 => Some(q2(params)),
        3 => Some(q3(params)),
        4 => Some(q4(params)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dbgen::DbGen;
    use certus_algebra::eval::eval;
    use certus_algebra::schema_infer::output_schema;
    use certus_algebra::NullSemantics;
    use certus_core::{translate_plus, ConditionDialect};

    fn db() -> certus_data::Database {
        DbGen::new(0.0004, 11).generate()
    }

    #[test]
    fn all_queries_typecheck_against_the_catalog() {
        let db = db();
        let params = QueryParams::fixed();
        for n in 1..=4 {
            let q = query_by_number(n, &params).unwrap();
            let schema = output_schema(&q, &db).unwrap();
            match n {
                1 => assert_eq!(schema.names(), vec!["s_suppkey", "o_orderkey"]),
                2 => assert_eq!(schema.names(), vec!["c_custkey", "c_nationkey"]),
                _ => assert_eq!(schema.names(), vec!["o_orderkey"]),
            }
        }
        assert!(query_by_number(5, &params).is_none());
    }

    #[test]
    fn queries_evaluate_on_complete_instances() {
        let db = db();
        let params = QueryParams::random(&db, 3);
        for n in 1..=4 {
            let q = query_by_number(n, &params).unwrap();
            let out = eval(&q, &db, NullSemantics::Sql).unwrap();
            // On a complete instance the result is a set of ground tuples.
            assert!(out.iter().all(|t| t.is_ground()), "query {n}");
        }
    }

    #[test]
    fn q3_returns_orders_fully_supplied_by_the_supplier() {
        let db = db();
        let params = QueryParams { supp_key: 1, ..QueryParams::fixed() };
        let out = eval(&q3(&params), &db, NullSemantics::Sql).unwrap();
        // Manual check against the data.
        let lineitem = db.relation("lineitem").unwrap();
        let orders = db.relation("orders").unwrap();
        let expected: Vec<i64> = orders
            .iter()
            .map(|o| o[0].as_i64().unwrap())
            .filter(|&ok| {
                lineitem
                    .iter()
                    .filter(|l| l[0].as_i64().unwrap() == ok)
                    .all(|l| l[3].as_i64().unwrap() == 1)
            })
            .collect();
        assert_eq!(out.len(), expected.len());
    }

    #[test]
    fn queries_translate_and_remain_equivalent_on_complete_data() {
        // On databases without nulls, Q and Q+ produce the same results.
        let db = db();
        let params = QueryParams::random(&db, 5);
        for n in 1..=4 {
            let q = query_by_number(n, &params).unwrap();
            let plus = translate_plus(&q, ConditionDialect::Sql).unwrap();
            let a = eval(&q, &db, NullSemantics::Sql).unwrap().sorted();
            let b = eval(&plus, &db, NullSemantics::Sql).unwrap().sorted();
            assert_eq!(a.tuples(), b.tuples(), "query {n}");
        }
    }
}
