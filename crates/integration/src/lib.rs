//! Placeholder library for the integration-test package. The actual tests
//! live in `/tests` at the repository root and are wired in via `[[test]]`
//! entries in this package's manifest so they can span every workspace crate.
