//! A vendored, dependency-free stand-in for the subset of the `rand` crate
//! API used across the certus workspace.
//!
//! The build environment has no access to crates.io, so this workspace crate
//! shadows `rand` by name and provides deterministic, seedable generators
//! with the same call-site surface: [`rngs::StdRng`], [`SeedableRng`],
//! [`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`] and
//! [`seq::SliceRandom`]. The stream of numbers differs from upstream `rand`
//! (the generator is splitmix64), but every consumer in this workspace only
//! relies on determinism-for-a-seed, not on specific values.

use std::ops::{Range, RangeInclusive};

/// The low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A deterministic splitmix64 generator standing in for `rand`'s
    /// `StdRng`. Not cryptographically secure — used only for reproducible
    /// data generation and sampling in experiments and tests.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // splitmix64 (Steele, Lea, Flood 2014): passes BigCrush on the
            // full 64-bit output and is trivially seedable.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

/// Types that can be sampled uniformly from the generator's raw output
/// (the shim's analogue of sampling from the `Standard` distribution).
pub trait StandardSample: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let x = (rng.next_u64() as u128) % span;
                (self.start as i128 + x as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let x = (rng.next_u64() as u128) % span;
                (start as i128 + x as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

/// The user-facing sampling interface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of type `T` (only the types the workspace needs).
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from a (half-open or inclusive) range.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_one(self)
    }

    /// Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Slice sampling and shuffling, mirroring `rand::seq::SliceRandom`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Shuffle and choose operations on slices.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
        /// A uniformly chosen element, or `None` if the slice is empty.
        fn choose<'a, R: RngCore>(&'a self, rng: &mut R) -> Option<&'a Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<'a, R: RngCore>(&'a self, rng: &mut R) -> Option<&'a T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&x));
            let y = rng.gen_range(1u32..=7);
            assert!((1..=7).contains(&y));
            let z = rng.gen_range(0usize..3);
            assert!(z < 3);
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<i64> = (0..20).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn gen_bool_respects_probability_extremes() {
        let mut rng = StdRng::seed_from_u64(5);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn choose_from_slice() {
        let mut rng = StdRng::seed_from_u64(1);
        let v = [10, 20, 30];
        assert!(v.contains(v.choose(&mut rng).unwrap()));
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
