//! Cooperative cancellation for query execution.
//!
//! A [`CancelToken`] is a cheap, cloneable flag the engine checks at morsel
//! boundaries — between operator nodes and between parallel partitions —
//! never inside a tight row loop. Cancellation is therefore *cooperative*:
//! a running query stops at the next boundary, typically within one
//! morsel's worth of work, without unwinding threads or poisoning shared
//! state.
//!
//! Tokens carry an optional **deadline**: a fixed [`Instant`] past which
//! [`CancelToken::is_cancelled`] reports true without anyone calling
//! [`CancelToken::cancel`]. The server derives one token per request from
//! the request's arrival time and its `deadline_ms` field, so queued time
//! counts against the budget too.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A shared cancellation flag with an optional deadline. Clones observe the
/// same flag; checking costs one relaxed atomic load (plus a clock read
/// when a deadline is set).
#[derive(Clone, Debug)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A token that only cancels when [`CancelToken::cancel`] is called.
    pub fn new() -> CancelToken {
        CancelToken { flag: Arc::new(AtomicBool::new(false)), deadline: None }
    }

    /// A token that additionally reports cancelled once `deadline` passes.
    pub fn with_deadline(deadline: Instant) -> CancelToken {
        CancelToken { flag: Arc::new(AtomicBool::new(false)), deadline: Some(deadline) }
    }

    /// Convenience: a deadline `budget` from now.
    pub fn expiring_in(budget: Duration) -> CancelToken {
        CancelToken::with_deadline(Instant::now() + budget)
    }

    /// Trip the flag; every clone observes it from now on.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether work should stop: explicitly cancelled, or past the deadline.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed) || self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// The deadline, if this token carries one.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }
}

impl Default for CancelToken {
    fn default() -> Self {
        CancelToken::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_tokens_are_live_until_cancelled() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        let clone = t.clone();
        t.cancel();
        assert!(clone.is_cancelled(), "clones share the flag");
    }

    #[test]
    fn deadlines_trip_the_token() {
        let t = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        assert!(t.is_cancelled(), "past deadline is already cancelled");
        let t = CancelToken::with_deadline(Instant::now() + Duration::from_secs(3600));
        assert!(!t.is_cancelled(), "a far deadline leaves the token live");
        t.cancel();
        assert!(t.is_cancelled(), "explicit cancel still wins");
    }
}
