//! Process-wide work-stealing worker pool for certus.
//!
//! The engine's exchanges used to spawn one `std::thread::scope` thread per
//! partition per exchange, throttled by a racy in-flight counter. This crate
//! replaces that with a fixed set of worker threads and a shared
//! work-stealing deque structure:
//!
//! * a global **injector** queue (`Mutex<VecDeque>` + `Condvar`) that any
//!   thread — engine code, tests, a future server — submits tasks to;
//! * one **local deque** per worker; a worker pushes tasks it spawns onto
//!   its own deque and pops them LIFO (cache-warm morsels first), while
//!   other workers steal FIFO from the opposite end.
//!
//! Tasks are grouped into [`Scope`]s so borrowed data works like
//! `std::thread::scope`: [`Pool::scope`] does not return until every task
//! spawned in it has finished. Crucially the waiting thread **helps**: while
//! its scope is unfinished it executes queued tasks itself (its own deque
//! first, then the injector, then steals). Helping makes nested scopes —
//! an exchange inside a union arm inside a concurrent query — deadlock-free
//! on a bounded pool, and lets any number of concurrent queries share one
//! pool without oversubscribing the machine.
//!
//! The pool never executes more than [`Pool::width`] tasks on its own
//! worker threads at once; there is no spawn-per-partition thread churn and
//! no in-flight accounting to race on.
//!
//! [`global`] returns the lazily-created process pool sized from
//! `CERTUS_THREADS` (falling back to the machine's available parallelism).
//! Private pools via [`Pool::new`] are for tests and embedders that want an
//! isolated width.

pub mod cancel;

pub use cancel::CancelToken;

use std::cell::Cell;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::Duration;

use certus_obs::metrics::registry;
use certus_obs::names;
use certus_obs::Counter;

/// A type-erased unit of work. Lifetimes are erased by [`Scope::spawn`];
/// the scope's completion barrier is what makes that sound.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Injector state guarded by the pool's main mutex.
struct Injector {
    queue: VecDeque<Job>,
    shutdown: bool,
}

/// State shared between the pool handle and its worker threads.
struct Shared {
    injector: Mutex<Injector>,
    /// Signalled when work lands in the injector or a local deque, and on
    /// shutdown.
    signal: Condvar,
    /// One deque per worker; owners push/pop the back, thieves pop the front.
    locals: Vec<Mutex<VecDeque<Job>>>,
    /// Identifies this pool in the thread-local worker registration.
    pool_id: usize,
    /// Worker threads currently executing a task (excludes helping callers).
    busy: AtomicUsize,
    /// High-water mark of `busy`; lets tests assert the width bound is real.
    peak_busy: AtomicUsize,
    /// Tasks executed, by workers and helpers alike.
    executed: AtomicU64,
    /// Tasks taken from another worker's deque.
    stolen: AtomicU64,
    /// Tasks executed by non-worker threads waiting in [`Pool::scope`].
    helped: AtomicU64,
}

/// A bounded work-stealing worker pool. See the crate docs for the design.
pub struct Pool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool").field("width", &self.width()).finish_non_exhaustive()
    }
}

thread_local! {
    /// `(pool_id, worker_index)` when the current thread is a pool worker.
    static WORKER: Cell<Option<(usize, usize)>> = const { Cell::new(None) };
}

/// Monotonic pool ids so worker registration never crosses pools.
static POOL_IDS: AtomicUsize = AtomicUsize::new(1);

fn obs_counter(cell: &'static OnceLock<Arc<Counter>>, name: &'static str) -> &'static Counter {
    cell.get_or_init(|| registry().counter(name))
}

impl Pool {
    /// Create a private pool with exactly `width` worker threads.
    ///
    /// Most callers want [`global`]; private pools exist for tests that
    /// need an isolated width and embedders that partition the machine.
    pub fn new(width: usize) -> Self {
        let width = width.max(1);
        let shared = Arc::new(Shared {
            injector: Mutex::new(Injector { queue: VecDeque::new(), shutdown: false }),
            signal: Condvar::new(),
            locals: (0..width).map(|_| Mutex::new(VecDeque::new())).collect(),
            pool_id: POOL_IDS.fetch_add(1, Ordering::Relaxed),
            busy: AtomicUsize::new(0),
            peak_busy: AtomicUsize::new(0),
            executed: AtomicU64::new(0),
            stolen: AtomicU64::new(0),
            helped: AtomicU64::new(0),
        });
        let workers = (0..width)
            .map(|idx| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("certus-exec-{idx}"))
                    .spawn(move || worker_loop(&shared, idx))
                    .expect("spawn certus-exec worker")
            })
            .collect();
        Pool { shared, workers }
    }

    /// Number of worker threads — the hard bound on pool-executed
    /// concurrency.
    pub fn width(&self) -> usize {
        self.shared.locals.len()
    }

    /// High-water mark of worker threads simultaneously executing a task.
    /// Never exceeds [`Pool::width`]; tests assert exactly that.
    pub fn peak_busy_workers(&self) -> usize {
        self.shared.peak_busy.load(Ordering::Relaxed)
    }

    /// Total tasks executed (by workers and helping callers).
    pub fn tasks_executed(&self) -> u64 {
        self.shared.executed.load(Ordering::Relaxed)
    }

    /// Tasks stolen from another worker's deque.
    pub fn tasks_stolen(&self) -> u64 {
        self.shared.stolen.load(Ordering::Relaxed)
    }

    /// Tasks executed by threads helping while they wait in [`Pool::scope`].
    pub fn tasks_helped(&self) -> u64 {
        self.shared.helped.load(Ordering::Relaxed)
    }

    /// Run `f` with a [`Scope`] that can spawn tasks borrowing from the
    /// caller's environment. Returns once `f` and every spawned task have
    /// finished; while waiting, the calling thread executes queued tasks
    /// (its own, other scopes', other queries') instead of blocking idle.
    ///
    /// Panics from `f` or any spawned task are captured and resumed here
    /// after all tasks have drained, mirroring `std::thread::scope`.
    pub fn scope<'env, F, R>(&'env self, f: F) -> R
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        let state = Arc::new(ScopeState {
            pending: AtomicUsize::new(0),
            lock: Mutex::new(()),
            done: Condvar::new(),
            panic: Mutex::new(None),
        });
        let scope = Scope { pool: self, state: &state, scope: PhantomData, env: PhantomData };
        let result = catch_unwind(AssertUnwindSafe(|| f(&scope)));
        // The barrier below is what makes the lifetime erasure in `spawn`
        // sound: no task outlives this call, so borrows of `'env` data are
        // live for as long as any task can run.
        self.help_while_waiting(&state);
        if let Some(payload) = state.panic.lock().unwrap().take() {
            resume_unwind(payload);
        }
        match result {
            Ok(r) => r,
            Err(payload) => resume_unwind(payload),
        }
    }

    /// Push a type-erased job onto this pool's queues: the current worker's
    /// own deque when called from a worker thread, the injector otherwise.
    fn push(&self, job: Job) {
        let me = WORKER.with(|w| w.get());
        if let Some((pool_id, idx)) = me {
            if pool_id == self.shared.pool_id {
                self.shared.locals[idx].lock().unwrap().push_back(job);
                // Wake a sleeper to come steal. A racing sleeper that misses
                // this notification is benign: the owning worker drains its
                // own deque before it ever sleeps.
                self.shared.signal.notify_one();
                return;
            }
        }
        let mut inj = self.shared.injector.lock().unwrap();
        inj.queue.push_back(job);
        drop(inj);
        self.shared.signal.notify_one();
    }

    /// Find a runnable job: own deque (LIFO) when on a worker thread, then
    /// the injector, then steal (FIFO) from the other workers.
    fn find_job(&self) -> Option<Job> {
        let own = match WORKER.with(|w| w.get()) {
            Some((pool_id, idx)) if pool_id == self.shared.pool_id => Some(idx),
            _ => None,
        };
        scan(&self.shared, own)
    }

    /// Execute queued tasks until `state.pending` drops to zero.
    fn help_while_waiting(&self, state: &ScopeState) {
        let on_worker = matches!(
            WORKER.with(|w| w.get()),
            Some((pool_id, _)) if pool_id == self.shared.pool_id
        );
        while state.pending.load(Ordering::Acquire) != 0 {
            if let Some(job) = self.find_job() {
                if !on_worker {
                    self.shared.helped.fetch_add(1, Ordering::Relaxed);
                }
                run_job(&self.shared, job);
                continue;
            }
            let guard = state.lock.lock().unwrap();
            if state.pending.load(Ordering::Acquire) == 0 {
                break;
            }
            // Re-scan the queues periodically: a task of ours may be spawned
            // by a sibling after the scan above came up empty.
            let _ = state.done.wait_timeout(guard, Duration::from_micros(200)).unwrap();
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.shared.injector.lock().unwrap().shutdown = true;
        self.shared.signal.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Completion barrier shared between a [`Scope`] and its spawned jobs.
struct ScopeState {
    pending: AtomicUsize,
    lock: Mutex<()>,
    done: Condvar,
    panic: Mutex<Option<Box<dyn std::any::Any + Send + 'static>>>,
}

/// Spawns tasks tied to one [`Pool::scope`] call; mirrors
/// `std::thread::Scope`.
pub struct Scope<'scope, 'env: 'scope> {
    pool: &'scope Pool,
    state: &'scope Arc<ScopeState>,
    scope: PhantomData<&'scope mut &'scope ()>,
    env: PhantomData<&'env mut &'env ()>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Submit `f` to the pool. It may run on any worker thread or on a
    /// thread helping while it waits; it is guaranteed to have finished by
    /// the time the enclosing [`Pool::scope`] returns.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        self.state.pending.fetch_add(1, Ordering::AcqRel);
        let state = Arc::clone(self.state);
        let job: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            if let Err(payload) = catch_unwind(AssertUnwindSafe(f)) {
                let mut slot = state.panic.lock().unwrap();
                if slot.is_none() {
                    *slot = Some(payload);
                }
            }
            if state.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last task out signals the scope owner. Taking the lock
                // orders this notify after the owner's pending re-check, so
                // the owner cannot sleep through it.
                let _guard = state.lock.lock().unwrap();
                state.done.notify_all();
            }
        });
        // SAFETY: `Pool::scope` blocks until `pending` reaches zero, so the
        // job — and everything it borrows for `'scope`/`'env` — is dropped
        // before those lifetimes end. This is the same erasure
        // `std::thread::scope` performs internally.
        let job: Job =
            unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Job>(job) };
        self.pool.push(job);
    }
}

/// Execute one job, maintaining the executed counters.
fn run_job(shared: &Shared, job: Job) {
    shared.executed.fetch_add(1, Ordering::Relaxed);
    static EXECUTED: OnceLock<Arc<Counter>> = OnceLock::new();
    obs_counter(&EXECUTED, names::EXEC_TASKS_EXECUTED).incr();
    job();
}

/// One scan over the pool's queues: `own` deque back (LIFO), injector
/// front, then every other deque's front (steal, FIFO). Exactly one lock is
/// held at a time — never two deques at once — so scanning workers cannot
/// deadlock against each other.
fn scan(shared: &Shared, own: Option<usize>) -> Option<Job> {
    if let Some(idx) = own {
        let job = shared.locals[idx].lock().unwrap().pop_back();
        if job.is_some() {
            return job;
        }
    }
    let job = shared.injector.lock().unwrap().queue.pop_front();
    if job.is_some() {
        return job;
    }
    for (idx, local) in shared.locals.iter().enumerate() {
        if own == Some(idx) {
            continue;
        }
        let job = local.lock().unwrap().pop_front();
        if job.is_some() {
            shared.stolen.fetch_add(1, Ordering::Relaxed);
            static STEALS: OnceLock<Arc<Counter>> = OnceLock::new();
            obs_counter(&STEALS, names::EXEC_TASKS_STOLEN).incr();
            return job;
        }
    }
    None
}

fn worker_loop(shared: &Shared, idx: usize) {
    WORKER.with(|w| w.set(Some((shared.pool_id, idx))));
    loop {
        if let Some(job) = scan(shared, Some(idx)) {
            let busy = shared.busy.fetch_add(1, Ordering::Relaxed) + 1;
            shared.peak_busy.fetch_max(busy, Ordering::Relaxed);
            run_job(shared, job);
            shared.busy.fetch_sub(1, Ordering::Relaxed);
            continue;
        }
        let mut inj = shared.injector.lock().unwrap();
        // The scan above saw every queue empty; shutdown can only be set
        // under this lock, so checking it here cannot miss a late task.
        if inj.shutdown {
            return;
        }
        if inj.queue.is_empty() {
            inj = shared.signal.wait(inj).unwrap();
        }
        // Wake-ups for local-deque pushes leave the injector empty on
        // purpose: drop the lock and rescan everything, stealing included.
        drop(inj);
    }
}

/// Width for the process-wide pool: `CERTUS_THREADS` when set (and > 0),
/// otherwise the machine's available parallelism.
fn default_width() -> usize {
    std::env::var("CERTUS_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4))
}

/// The process-wide pool every query shares. Created on first use and
/// sized once from `CERTUS_THREADS` / available parallelism; the width is
/// fixed for the life of the process.
pub fn global() -> &'static Pool {
    static GLOBAL: OnceLock<Pool> = OnceLock::new();
    GLOBAL.get_or_init(|| Pool::new(default_width()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn scope_runs_all_tasks_and_borrows_environment() {
        let pool = Pool::new(4);
        let hits = AtomicUsize::new(0);
        pool.scope(|s| {
            for _ in 0..64 {
                s.spawn(|| {
                    hits.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(hits.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn results_can_be_written_into_disjoint_slots() {
        let pool = Pool::new(3);
        let mut slots = [0usize; 17];
        pool.scope(|s| {
            for (i, slot) in slots.iter_mut().enumerate() {
                s.spawn(move || *slot = i * i);
            }
        });
        for (i, slot) in slots.iter().enumerate() {
            assert_eq!(*slot, i * i);
        }
    }

    #[test]
    fn nested_scopes_on_worker_threads_do_not_deadlock() {
        let pool = Pool::new(2);
        let total = AtomicUsize::new(0);
        pool.scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    // A task that itself fans out: exchanges nested under
                    // union arms produce exactly this shape.
                    pool.scope(|inner| {
                        for _ in 0..8 {
                            inner.spawn(|| {
                                total.fetch_add(1, Ordering::Relaxed);
                            });
                        }
                    });
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn concurrent_scopes_share_one_pool() {
        let pool = Pool::new(4);
        let total = AtomicUsize::new(0);
        std::thread::scope(|threads| {
            for _ in 0..6 {
                threads.spawn(|| {
                    pool.scope(|s| {
                        for _ in 0..32 {
                            s.spawn(|| {
                                total.fetch_add(1, Ordering::Relaxed);
                            });
                        }
                    });
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 6 * 32);
        assert!(pool.peak_busy_workers() <= pool.width());
    }

    #[test]
    fn worker_concurrency_is_bounded_by_width() {
        let pool = Pool::new(3);
        pool.scope(|s| {
            for _ in 0..200 {
                s.spawn(|| {
                    std::thread::sleep(Duration::from_micros(50));
                });
            }
        });
        assert!(pool.tasks_executed() >= 200);
        assert!(pool.peak_busy_workers() <= 3);
    }

    #[test]
    fn panics_propagate_after_all_tasks_drain() {
        let pool = Pool::new(2);
        let ran = AtomicUsize::new(0);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                let ran = &ran;
                for i in 0..16 {
                    s.spawn(move || {
                        if i == 5 {
                            panic!("boom");
                        }
                        ran.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }));
        assert!(caught.is_err());
        // Every non-panicking task still ran: the scope drains before
        // resuming the panic, so borrowed data stayed valid throughout.
        assert_eq!(ran.load(Ordering::Relaxed), 15);
    }

    #[test]
    fn global_pool_width_is_positive() {
        assert!(global().width() >= 1);
    }
}
