//! Vectorized (batch-at-a-time) execution primitives.
//!
//! Two hot paths of the compiled runtime move column-wise here instead of
//! row-wise:
//!
//! * **Fused pipelines** ([`filter_gather`]): the engine extracts only the
//!   columns a pipeline's filters read into typed vectors
//!   ([`certus_data::column::Column`]), evaluates every
//!   [`CompiledPredicate`] into a three-valued [`TruthMask`] (Kleene
//!   connectives are word-wise bit operations), intersects the masks into a
//!   selection, and gathers the surviving rows once at the pipeline edge —
//!   no per-row `Vec<Value>` materialisation, no per-row enum dispatch for
//!   type-uniform columns.
//! * **Hash join/semijoin keys** ([`KeySet`]): key columns are extracted
//!   once per side, per-row `u64` hashes are computed column-wise, and the
//!   hash table maps precomputed hashes to row indices
//!   (collisions verified by typed column comparison) — the row path's
//!   per-row `Vec<Value>` key clones disappear entirely.
//!
//! Everything here is semantics-preserving by construction: typed fast
//! paths replicate [`certus_data::compare`] exactly (numeric comparisons go
//! through the same `f64` coercion, floats hash through the same normalised
//! bits, marked-null ids survive in the [`NullMask`]s), and every case the
//! typed paths cannot express verbatim — mixed-variant columns, null
//! constants, `LIKE`/`IN` atoms — falls back to the per-row comparison
//! functions *inside* the mask framework, or (for join keys) to the row
//! path entirely.
//!
//! [`NullMask`]: certus_data::column::NullMask

use crate::compile::{CompiledOperand, CompiledPredicate, Pred, ScalarValues, VecPlan};
use certus_algebra::NullSemantics;
use certus_data::column::{Column, ColumnData, TruthMask};
use certus_data::compare::{naive_cmp, sql_cmp, CmpOp};
use certus_data::intern::{StrId, StrPool};
use certus_data::like::like_match;
use certus_data::truth::Truth;
use certus_data::value::normalized_float_bits;
use certus_data::{Tuple, Value};
use certus_obs::ProfNode;
use std::cmp::Ordering;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

// ---------------------------------------------------------------------------
// Fused pipelines: columnar predicate evaluation over a selection mask
// ---------------------------------------------------------------------------

/// The extracted columns a predicate reads, indexed by position (positions
/// nobody reads stay unextracted).
struct ColumnSet {
    cols: Vec<Option<Column>>,
    len: usize,
}

impl ColumnSet {
    fn extract(rows: &[Tuple], positions: &[usize], pool: &StrPool) -> ColumnSet {
        let width = positions.iter().copied().max().map(|m| m + 1).unwrap_or(0);
        let mut cols = Vec::new();
        cols.resize_with(width, || None);
        for &p in positions {
            if cols[p].is_none() {
                cols[p] = Some(Column::extract(rows, p, pool));
            }
        }
        ColumnSet { cols, len: rows.len() }
    }

    #[inline]
    fn col(&self, pos: usize) -> &Column {
        self.cols[pos].as_ref().expect("predicate column extracted")
    }
}

/// Evaluation context shared by the mask evaluator. `bound` carries one
/// outer (left) row during vectorized nested loops: column references below
/// the bind arity resolve to that row's values (per-batch constants), the
/// rest shift down into the extracted inner columns.
struct Ctx<'a> {
    cols: &'a ColumnSet,
    bound: Option<(&'a Tuple, usize)>,
    scalars: &'a ScalarValues,
    semantics: NullSemantics,
    pool: &'a StrPool,
}

impl<'a> Ctx<'a> {
    fn len(&self) -> usize {
        self.cols.len
    }
}

/// Run a fused pipeline's [`VecPlan`] over a slice of rows: evaluate every
/// filter column-wise, intersect the masks, gather the survivors (projected
/// when the pipeline projects). Output order is input order — identical to
/// the row path.
///
/// `prof` optionally records per-filter survivor counts: the slice maps the
/// i-th vectorized filter to its step index in the profiled pipeline, and
/// after each mask merge the running selection's cardinality is added there
/// — the same "rows surviving filters `0..=k`" the row path counts via
/// short-circuit evaluation.
pub(crate) fn filter_gather(
    rows: &[Tuple],
    plan: &VecPlan,
    scalars: &ScalarValues,
    semantics: NullSemantics,
    pool: &StrPool,
    prof: Option<(&ProfNode, &[usize])>,
) -> Vec<Tuple> {
    if rows.is_empty() {
        // Nothing to filter — and the engine only guarantees scalar
        // subqueries are evaluated when the input is non-empty.
        return Vec::new();
    }
    let cols = ColumnSet::extract(rows, &plan.cols, pool);
    let ctx = Ctx { cols: &cols, bound: None, scalars, semantics, pool };
    let mut sel: Option<TruthMask> = None;
    for (fi, filter) in plan.filters.iter().enumerate() {
        let mask = eval_pred(filter.pred(), &ctx);
        match &mut sel {
            // A row survives the chain iff every filter is True — exactly
            // the Kleene conjunction of the per-filter masks.
            Some(s) => s.and_with(&mask),
            None => sel = Some(mask),
        }
        if let (Some((p, map)), Some(s)) = (prof, sel.as_ref()) {
            if let Some(&step) = map.get(fi) {
                p.add_step_rows(step, s.count_true() as u64);
            }
        }
    }
    let sel = sel.expect("vec plans carry at least one filter");
    let mut out = Vec::with_capacity(sel.count_true());
    sel.for_each_true(|i| {
        out.push(match &plan.gather {
            Some(pos) => rows[i].project(pos),
            None => rows[i].clone(),
        })
    });
    out
}

/// A nested-loop join predicate prepared for vectorized evaluation: the
/// inner columns it reads extracted once, and every *outer-independent*
/// subtree — atoms like the translation's `p_name LIKE …` or `… IS NULL`
/// guards that only look at the inner side — evaluated once into a cached
/// mask. Per outer row, only the outer-dependent atoms are re-evaluated and
/// combined with the cached masks by word-wise Kleene operations. (The row
/// path gets the same effect from short-circuiting; without the hoisting a
/// loop-invariant `LIKE` would run once per *pair*.)
pub(crate) struct BoundPred {
    cols: ColumnSet,
    l_arity: usize,
    node: BoundNode,
}

enum BoundNode {
    /// Outer-independent subtree, evaluated once for the whole loop.
    Cached(TruthMask),
    /// Outer-dependent subtree re-evaluated per outer row (kept maximal:
    /// its invariant *children* are hoisted separately via And/Or/Not).
    Dynamic(Pred),
    And(Box<BoundNode>, Box<BoundNode>),
    Or(Box<BoundNode>, Box<BoundNode>),
    Not(Box<BoundNode>),
}

impl BoundPred {
    /// Prepare `pred` (compiled against the concatenated (left, right)
    /// schema; positions at or above `l_arity` are inner columns) for a
    /// vectorized loop over `r_rows`.
    pub(crate) fn prepare(
        pred: &CompiledPredicate,
        r_rows: &[Tuple],
        l_arity: usize,
        scalars: &ScalarValues,
        semantics: NullSemantics,
        pool: &StrPool,
    ) -> BoundPred {
        let mut refs = Vec::new();
        pred.pred().col_refs(&mut refs);
        let mut inner: Vec<usize> =
            refs.into_iter().filter(|&i| i >= l_arity).map(|i| i - l_arity).collect();
        inner.sort_unstable();
        inner.dedup();
        let cols = ColumnSet::extract(r_rows, &inner, pool);
        // Invariant subtrees never index into the outer row, so an empty
        // tuple stands in while they are pre-evaluated.
        static NO_OUTER: Tuple = Tuple::empty();
        let invariant_ctx =
            Ctx { cols: &cols, bound: Some((&NO_OUTER, l_arity)), scalars, semantics, pool };
        let node = bind(pred.pred(), l_arity, &invariant_ctx);
        BoundPred { cols, l_arity, node }
    }

    /// The truth mask of the predicate over all inner rows, for one outer
    /// row.
    pub(crate) fn eval(
        &self,
        left: &Tuple,
        scalars: &ScalarValues,
        semantics: NullSemantics,
        pool: &StrPool,
    ) -> TruthMask {
        let ctx =
            Ctx { cols: &self.cols, bound: Some((left, self.l_arity)), scalars, semantics, pool };
        eval_node(&self.node, &ctx)
    }
}

/// Whether a predicate subtree reads any outer (below `l_arity`) column.
fn refs_outer(pred: &Pred, l_arity: usize) -> bool {
    let mut refs = Vec::new();
    pred.col_refs(&mut refs);
    refs.into_iter().any(|i| i < l_arity)
}

fn bind(pred: &Pred, l_arity: usize, invariant_ctx: &Ctx<'_>) -> BoundNode {
    if !refs_outer(pred, l_arity) {
        return BoundNode::Cached(eval_pred(pred, invariant_ctx));
    }
    match pred {
        Pred::And(a, b) => BoundNode::And(
            Box::new(bind(a, l_arity, invariant_ctx)),
            Box::new(bind(b, l_arity, invariant_ctx)),
        ),
        Pred::Or(a, b) => BoundNode::Or(
            Box::new(bind(a, l_arity, invariant_ctx)),
            Box::new(bind(b, l_arity, invariant_ctx)),
        ),
        Pred::Not(inner) => BoundNode::Not(Box::new(bind(inner, l_arity, invariant_ctx))),
        other => BoundNode::Dynamic(other.clone()),
    }
}

fn eval_node(node: &BoundNode, ctx: &Ctx<'_>) -> TruthMask {
    match node {
        BoundNode::Cached(mask) => mask.clone(),
        BoundNode::Dynamic(pred) => eval_pred(pred, ctx),
        BoundNode::And(a, b) => {
            let mut m = eval_node(a, ctx);
            m.and_with(&eval_node(b, ctx));
            m
        }
        BoundNode::Or(a, b) => {
            let mut m = eval_node(a, ctx);
            m.or_with(&eval_node(b, ctx));
            m
        }
        BoundNode::Not(inner) => {
            let mut m = eval_node(inner, ctx);
            m.negate();
            m
        }
    }
}

/// An operand resolved for columnar evaluation: a whole column, or one
/// literal value for every row (constants, and scalar subqueries — which are
/// evaluated before the batch loop and behave like constants; a `None`
/// literal is an *empty* scalar subquery, which compares like a null).
enum Ev<'a> {
    Col(&'a Column),
    Lit(Option<&'a Value>),
}

fn operand<'a>(op: &'a CompiledOperand, ctx: &Ctx<'a>) -> Ev<'a> {
    match op {
        CompiledOperand::Col(i) => match ctx.bound {
            Some((left, arity)) if *i < arity => Ev::Lit(Some(&left[*i])),
            Some((_, arity)) => Ev::Col(ctx.cols.col(*i - arity)),
            None => Ev::Col(ctx.cols.col(*i)),
        },
        CompiledOperand::Const(v) => Ev::Lit(Some(v)),
        CompiledOperand::Scalar(i) => Ev::Lit(ctx.scalars.get(*i)),
    }
}

fn eval_pred(pred: &Pred, ctx: &Ctx<'_>) -> TruthMask {
    let len = ctx.len();
    match pred {
        Pred::Const(t) => TruthMask::fill(len, *t),
        Pred::Cmp { left, op, right } => match (operand(left, ctx), operand(right, ctx)) {
            (Ev::Lit(a), Ev::Lit(b)) => TruthMask::fill(len, lit_cmp(a, *op, b, ctx.semantics)),
            (Ev::Col(c), Ev::Lit(Some(v))) => cmp_col_const(c, *op, v, ctx),
            (Ev::Lit(Some(v)), Ev::Col(c)) => cmp_col_const(c, op.flip(), v, ctx),
            // An empty scalar subquery behaves like a NULL operand,
            // regardless of the other side — mirroring the row evaluator.
            (Ev::Col(_), Ev::Lit(None)) | (Ev::Lit(None), Ev::Col(_)) => {
                TruthMask::fill(len, missing_operand(ctx.semantics))
            }
            (Ev::Col(a), Ev::Col(b)) => cmp_col_col(a, *op, b, ctx),
        },
        Pred::IsNull(x) => match operand(x, ctx) {
            Ev::Col(c) => {
                let mut m = TruthMask::falses(len);
                for i in 0..len {
                    if c.is_null(i) {
                        m.set(i, Truth::True);
                    }
                }
                m
            }
            Ev::Lit(v) => {
                TruthMask::fill(len, Truth::from_bool(v.map(Value::is_null).unwrap_or(true)))
            }
        },
        Pred::IsNotNull(x) => match operand(x, ctx) {
            Ev::Col(c) => {
                let mut m = TruthMask::fill(len, Truth::True);
                for i in 0..len {
                    if c.is_null(i) {
                        m.set(i, Truth::False);
                    }
                }
                m
            }
            Ev::Lit(v) => {
                TruthMask::fill(len, Truth::from_bool(v.map(Value::is_const).unwrap_or(false)))
            }
        },
        Pred::Like { expr, pattern, negated } => {
            let mut m = match operand(expr, ctx) {
                Ev::Lit(v) => TruthMask::fill(len, lit_like(v, pattern, ctx.semantics)),
                Ev::Col(c) => like_col(c, pattern, ctx),
            };
            if *negated {
                m.negate();
            }
            m
        }
        Pred::InList { expr, list, negated } => {
            // IN-lists are rare in the hot queries; evaluate per row through
            // the exact row-path logic, inside the mask framework.
            let mut m = match operand(expr, ctx) {
                Ev::Lit(v) => TruthMask::fill(len, lit_inlist(v, list, ctx.semantics)),
                Ev::Col(c) => {
                    let mut m = TruthMask::falses(len);
                    for i in 0..len {
                        let v = c.value_at(i, ctx.pool);
                        m.set(i, lit_inlist(Some(&v), list, ctx.semantics));
                    }
                    m
                }
            };
            if *negated {
                m.negate();
            }
            m
        }
        Pred::And(a, b) => {
            let mut m = eval_pred(a, ctx);
            m.and_with(&eval_pred(b, ctx));
            m
        }
        Pred::Or(a, b) => {
            let mut m = eval_pred(a, ctx);
            m.or_with(&eval_pred(b, ctx));
            m
        }
        Pred::Not(inner) => {
            let mut m = eval_pred(inner, ctx);
            m.negate();
            m
        }
    }
}

/// The truth value of a comparison whose operand is missing (an empty scalar
/// subquery): `Unknown` under SQL semantics, `False` under naive.
fn missing_operand(semantics: NullSemantics) -> Truth {
    match semantics {
        NullSemantics::Sql => Truth::Unknown,
        NullSemantics::Naive => Truth::False,
    }
}

fn lit_cmp(a: Option<&Value>, op: CmpOp, b: Option<&Value>, semantics: NullSemantics) -> Truth {
    match (a, b) {
        (Some(a), Some(b)) => match semantics {
            NullSemantics::Sql => sql_cmp(a, op, b),
            NullSemantics::Naive => Truth::from_bool(naive_cmp(a, op, b)),
        },
        _ => missing_operand(semantics),
    }
}

fn lit_like(v: Option<&Value>, pattern: &str, semantics: NullSemantics) -> Truth {
    match v {
        Some(v) => match semantics {
            NullSemantics::Sql => certus_data::like::sql_like(v, pattern),
            NullSemantics::Naive => Truth::from_bool(certus_data::like::naive_like(v, pattern)),
        },
        None => Truth::Unknown,
    }
}

fn lit_inlist(v: Option<&Value>, list: &[Value], semantics: NullSemantics) -> Truth {
    let base = match v {
        Some(v) => Truth::any(list.iter().map(|item| match semantics {
            NullSemantics::Sql => sql_cmp(v, CmpOp::Eq, item),
            NullSemantics::Naive => Truth::from_bool(naive_cmp(v, CmpOp::Eq, item)),
        })),
        None => Truth::Unknown,
    };
    if semantics == NullSemantics::Naive && base.is_unknown() {
        Truth::False
    } else {
        base
    }
}

/// The truth value a *null* column row contributes to a comparison against a
/// non-null value: `Unknown` under SQL; under naive semantics the operands
/// can never be syntactically equal, so only `<>` holds.
fn null_vs_const(op: CmpOp, semantics: NullSemantics) -> Truth {
    match semantics {
        NullSemantics::Sql => Truth::Unknown,
        NullSemantics::Naive => Truth::from_bool(matches!(op, CmpOp::Neq)),
    }
}

/// The naive truth value of `⊥ᵢ op x` where `same` says whether `x` is the
/// very same null — mirroring `naive_cmp`'s null branch.
fn naive_null_truth(op: CmpOp, same: bool) -> Truth {
    Truth::from_bool(match op {
        CmpOp::Eq | CmpOp::Le | CmpOp::Ge => same,
        CmpOp::Neq => !same,
        CmpOp::Lt | CmpOp::Gt => false,
    })
}

/// Numeric accessor: the `as_f64` view of a typed numeric column, matching
/// `const_ordering`'s cross-type coercion exactly.
fn numeric_accessor(data: &ColumnData) -> Option<Box<dyn Fn(usize) -> f64 + '_>> {
    match data {
        ColumnData::Int(v) => Some(Box::new(move |i| v[i] as f64)),
        ColumnData::Float(v) => Some(Box::new(move |i| v[i])),
        ColumnData::Decimal(v) => Some(Box::new(move |i| v[i] as f64 / 100.0)),
        _ => None,
    }
}

fn is_numeric_const(v: &Value) -> bool {
    matches!(v, Value::Int(_) | Value::Float(_) | Value::Decimal(_))
}

/// Apply `op` to an `Option<Ordering>` the way `const_ordering` consumers
/// do: an incomparable pair (NaN) counts as equal.
#[inline]
fn ord_truth(op: CmpOp, ord: Option<Ordering>) -> Truth {
    Truth::from_bool(op.apply(ord.unwrap_or(Ordering::Equal)))
}

fn cmp_col_const(c: &Column, op: CmpOp, v: &Value, ctx: &Ctx<'_>) -> TruthMask {
    let len = c.len();
    // Null constants (possible in hand-built conditions) have their own
    // semantics per row under naive evaluation — take the generic path.
    if v.is_null() {
        return cmp_generic_const(c, op, v, ctx);
    }
    let null_t = null_vs_const(op, ctx.semantics);
    let mut m = TruthMask::falses(len);
    match (c.data(), v) {
        // Any numeric column vs any numeric constant: the shared f64
        // coercion of `const_ordering`.
        (data, k) if numeric_accessor(data).is_some() && is_numeric_const(k) => {
            let get = numeric_accessor(data).expect("checked");
            let kv = k.as_f64().expect("checked");
            for i in 0..len {
                if c.is_null(i) {
                    m.set(i, null_t);
                } else {
                    m.set(i, ord_truth(op, get(i).partial_cmp(&kv)));
                }
            }
        }
        (ColumnData::Date(xs), Value::Date(d)) => {
            for (i, x) in xs.iter().enumerate() {
                if c.is_null(i) {
                    m.set(i, null_t);
                } else {
                    m.set(i, Truth::from_bool(op.apply(x.cmp(d))));
                }
            }
        }
        (ColumnData::Bool(xs), Value::Bool(b)) => {
            for (i, x) in xs.iter().enumerate() {
                if c.is_null(i) {
                    m.set(i, null_t);
                } else {
                    m.set(i, Truth::from_bool(op.apply(x.cmp(b))));
                }
            }
        }
        (ColumnData::Str(ids), Value::Str(s)) => match op {
            // Equality against interned ids: one pool lookup for the whole
            // column. A constant absent from the pool equals no element.
            CmpOp::Eq | CmpOp::Neq => {
                let want = matches!(op, CmpOp::Eq);
                let cid = ctx.pool.lookup(s);
                for (i, id) in ids.iter().enumerate() {
                    if c.is_null(i) {
                        m.set(i, null_t);
                    } else {
                        let eq = cid == Some(*id);
                        m.set(i, Truth::from_bool(eq == want));
                    }
                }
            }
            // Ordering: resolve each *distinct* id once (interning makes
            // repeated strings one dictionary entry).
            _ => {
                let mut memo: HashMap<StrId, Ordering> = HashMap::new();
                for (i, id) in ids.iter().enumerate() {
                    if c.is_null(i) {
                        m.set(i, null_t);
                    } else {
                        let ord = *memo
                            .entry(*id)
                            .or_insert_with(|| ctx.pool.resolve(*id).as_ref().cmp(s.as_ref()));
                        m.set(i, Truth::from_bool(op.apply(ord)));
                    }
                }
            }
        },
        // Mixed variants or the Values fallback: exact row-path comparison.
        _ => return cmp_generic_const(c, op, v, ctx),
    }
    m
}

fn cmp_generic_const(c: &Column, op: CmpOp, v: &Value, ctx: &Ctx<'_>) -> TruthMask {
    let mut m = TruthMask::falses(c.len());
    for i in 0..c.len() {
        let x = c.value_at(i, ctx.pool);
        m.set(i, lit_cmp(Some(&x), op, Some(v), ctx.semantics));
    }
    m
}

fn cmp_col_col(a: &Column, op: CmpOp, b: &Column, ctx: &Ctx<'_>) -> TruthMask {
    let len = a.len();
    debug_assert_eq!(len, b.len());
    let mut m = TruthMask::falses(len);
    // Per-row null handling shared by the typed loops below.
    let null_truth = |i: usize| -> Truth {
        match ctx.semantics {
            NullSemantics::Sql => Truth::Unknown,
            NullSemantics::Naive => {
                let same =
                    a.is_null(i) && b.is_null(i) && a.nulls().raw_id(i) == b.nulls().raw_id(i);
                naive_null_truth(op, same)
            }
        }
    };
    match (a.data(), b.data()) {
        (da, db) if numeric_accessor(da).is_some() && numeric_accessor(db).is_some() => {
            let (ga, gb) = (numeric_accessor(da).expect("checked"), {
                numeric_accessor(db).expect("checked")
            });
            for i in 0..len {
                if a.is_null(i) || b.is_null(i) {
                    m.set(i, null_truth(i));
                } else {
                    m.set(i, ord_truth(op, ga(i).partial_cmp(&gb(i))));
                }
            }
        }
        (ColumnData::Date(xs), ColumnData::Date(ys)) => {
            for i in 0..len {
                if a.is_null(i) || b.is_null(i) {
                    m.set(i, null_truth(i));
                } else {
                    m.set(i, Truth::from_bool(op.apply(xs[i].cmp(&ys[i]))));
                }
            }
        }
        (ColumnData::Bool(xs), ColumnData::Bool(ys)) => {
            for i in 0..len {
                if a.is_null(i) || b.is_null(i) {
                    m.set(i, null_truth(i));
                } else {
                    m.set(i, Truth::from_bool(op.apply(xs[i].cmp(&ys[i]))));
                }
            }
        }
        (ColumnData::Str(xs), ColumnData::Str(ys)) => match op {
            CmpOp::Eq | CmpOp::Neq => {
                let want = matches!(op, CmpOp::Eq);
                for i in 0..len {
                    if a.is_null(i) || b.is_null(i) {
                        m.set(i, null_truth(i));
                    } else {
                        m.set(i, Truth::from_bool((xs[i] == ys[i]) == want));
                    }
                }
            }
            _ => {
                let mut resolve: HashMap<StrId, std::sync::Arc<str>> = HashMap::new();
                for i in 0..len {
                    if a.is_null(i) || b.is_null(i) {
                        m.set(i, null_truth(i));
                    } else {
                        let sx =
                            resolve.entry(xs[i]).or_insert_with(|| ctx.pool.resolve(xs[i])).clone();
                        let sy = resolve.entry(ys[i]).or_insert_with(|| ctx.pool.resolve(ys[i]));
                        m.set(i, Truth::from_bool(op.apply(sx.as_ref().cmp(sy.as_ref()))));
                    }
                }
            }
        },
        _ => {
            for i in 0..len {
                let x = a.value_at(i, ctx.pool);
                let y = b.value_at(i, ctx.pool);
                m.set(i, lit_cmp(Some(&x), op, Some(&y), ctx.semantics));
            }
        }
    }
    m
}

fn like_col(c: &Column, pattern: &str, ctx: &Ctx<'_>) -> TruthMask {
    let len = c.len();
    let null_t = match ctx.semantics {
        NullSemantics::Sql => Truth::Unknown,
        NullSemantics::Naive => Truth::False,
    };
    let mut m = TruthMask::falses(len);
    match c.data() {
        ColumnData::Str(ids) => {
            // One LIKE match per *distinct* dictionary id.
            let mut memo: HashMap<StrId, bool> = HashMap::new();
            for (i, id) in ids.iter().enumerate() {
                if c.is_null(i) {
                    m.set(i, null_t);
                } else {
                    let hit = *memo
                        .entry(*id)
                        .or_insert_with(|| like_match(&ctx.pool.resolve(*id), pattern));
                    m.set(i, Truth::from_bool(hit));
                }
            }
        }
        _ => {
            for i in 0..len {
                let v = c.value_at(i, ctx.pool);
                m.set(i, lit_like(Some(&v), pattern, ctx.semantics));
            }
        }
    }
    m
}

// ---------------------------------------------------------------------------
// Hash join keys: column-wise hashing + index-based tables
// ---------------------------------------------------------------------------

/// A hasher that passes a pre-computed `u64` through unchanged — the key
/// hashes below are already mixed, re-hashing them through SipHash would be
/// pure overhead.
#[derive(Default)]
pub(crate) struct PassThroughHasher(u64);

impl Hasher for PassThroughHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("key tables only hash u64 keys")
    }

    fn write_u64(&mut self, n: u64) {
        self.0 = n;
    }
}

/// A hash table from precomputed key hashes to build-side row indices.
pub(crate) type KeyTable = HashMap<u64, Vec<u32>, BuildHasherDefault<PassThroughHasher>>;

#[inline]
fn mix(h: u64, x: u64) -> u64 {
    (h ^ x).wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(31)
}

const NULL_TAG: u64 = 0x6e75;

/// The key columns of one join side: per-row hashes computed column-wise,
/// plus a validity flag (a null key component disqualifies a row under SQL
/// semantics; under naive semantics nulls are ordinary key elements hashed
/// by their id).
pub(crate) struct KeySet {
    cols: Vec<Column>,
    /// Mixed hash of the key columns, per row.
    pub(crate) hashes: Vec<u64>,
    /// Whether the row participates in hashing at all.
    pub(crate) valid: Vec<bool>,
}

impl KeySet {
    /// Extract and hash the key columns at `pos`. Returns `None` when any
    /// key column lands in the `Values` fallback (mixed variants or all
    /// null) — representation-specific hashing would be unsound there, so
    /// the caller keeps the row path.
    pub(crate) fn build(
        rows: &[Tuple],
        pos: &[usize],
        allow_nulls: bool,
        pool: &StrPool,
    ) -> Option<KeySet> {
        let cols: Vec<Column> = pos.iter().map(|&p| Column::extract(rows, p, pool)).collect();
        if cols.iter().any(|c| c.data().is_fallback()) {
            return None;
        }
        let n = rows.len();
        let mut hashes = vec![0x517c_c1b7_2722_0a95u64; n];
        let mut valid = vec![true; n];
        for c in &cols {
            match c.data() {
                ColumnData::Int(v) | ColumnData::Decimal(v) => {
                    for i in 0..n {
                        hashes[i] = mix(hashes[i], v[i] as u64);
                    }
                }
                ColumnData::Float(v) => {
                    for i in 0..n {
                        hashes[i] = mix(hashes[i], normalized_float_bits(v[i]));
                    }
                }
                ColumnData::Date(v) => {
                    for i in 0..n {
                        hashes[i] = mix(hashes[i], v[i] as u64);
                    }
                }
                ColumnData::Bool(v) => {
                    for i in 0..n {
                        hashes[i] = mix(hashes[i], v[i] as u64);
                    }
                }
                ColumnData::Str(v) => {
                    for i in 0..n {
                        hashes[i] = mix(hashes[i], v[i] as u64);
                    }
                }
                ColumnData::Values(_) => unreachable!("fallback columns bail above"),
            }
            if c.nulls().any_null() {
                for i in 0..n {
                    if c.is_null(i) {
                        if allow_nulls {
                            // Overwrite the placeholder contribution with the
                            // null id so ⊥ᵢ hashes by identity.
                            hashes[i] = mix(mix(hashes[i], NULL_TAG), c.nulls().raw_id(i));
                        } else {
                            valid[i] = false;
                        }
                    }
                }
            }
        }
        Some(KeySet { cols, hashes, valid })
    }

    /// Number of rows.
    pub(crate) fn len(&self) -> usize {
        self.hashes.len()
    }

    /// Whether the two sides use pairwise identical column representations —
    /// the precondition for cross-side hash/equality comparisons.
    pub(crate) fn compatible(&self, other: &KeySet) -> bool {
        self.cols.len() == other.cols.len()
            && self.cols.iter().zip(&other.cols).all(|(a, b)| a.data().same_repr(b.data()))
    }

    /// Syntactic equality of row `i`'s key and `other`'s row `j` key
    /// (requires [`KeySet::compatible`]). Matches `Value` equality exactly:
    /// typed payloads compare by value (floats through normalised bits,
    /// strings by interned id), nulls by marked id.
    pub(crate) fn keys_eq(&self, i: usize, other: &KeySet, j: usize) -> bool {
        for (ca, cb) in self.cols.iter().zip(&other.cols) {
            let (an, bn) = (ca.is_null(i), cb.is_null(j));
            if an || bn {
                if !(an && bn) || ca.nulls().raw_id(i) != cb.nulls().raw_id(j) {
                    return false;
                }
                continue;
            }
            let eq = match (ca.data(), cb.data()) {
                (ColumnData::Int(x), ColumnData::Int(y))
                | (ColumnData::Decimal(x), ColumnData::Decimal(y)) => x[i] == y[j],
                (ColumnData::Float(x), ColumnData::Float(y)) => {
                    normalized_float_bits(x[i]) == normalized_float_bits(y[j])
                }
                (ColumnData::Date(x), ColumnData::Date(y)) => x[i] == y[j],
                (ColumnData::Bool(x), ColumnData::Bool(y)) => x[i] == y[j],
                (ColumnData::Str(x), ColumnData::Str(y)) => x[i] == y[j],
                _ => unreachable!("compatibility checked before probing"),
            };
            if !eq {
                return false;
            }
        }
        true
    }

    /// Build the hash table over this side's valid rows, pre-sized to the
    /// known row count.
    pub(crate) fn table(&self) -> KeyTable {
        let mut table = KeyTable::with_capacity_and_hasher(self.len(), Default::default());
        for i in 0..self.len() {
            if self.valid[i] {
                table.entry(self.hashes[i]).or_default().push(i as u32);
            }
        }
        table
    }
}
