//! Equi-join key extraction — moved to [`certus_plan::equi`], re-exported
//! here so pre-planner call sites (`certus_engine::equi::split_equi`) keep
//! compiling.

pub use certus_plan::equi::{references_schema, split_equi, EquiSplit};
