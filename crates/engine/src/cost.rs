//! Cardinality and cost estimation (`EXPLAIN`-style).
//!
//! The model is deliberately simple, but it reproduces the phenomenon the
//! paper reports in Section 7: predicates of the form `A = B OR B IS NULL`
//! cannot be used as hash-join keys, so the estimated cost of the affected
//! joins degenerates to nested-loop cost — the "astronomical" plan costs that
//! motivate the OR-splitting rewrite.

use crate::equi::{references_schema, split_equi};
use certus_algebra::condition::Condition;
use certus_algebra::expr::RaExpr;
use certus_algebra::schema_infer::output_schema;
use certus_algebra::Result;
use certus_data::Database;

/// Estimated output rows and cumulative cost (in abstract "row operations").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostEstimate {
    /// Estimated number of output rows.
    pub rows: f64,
    /// Estimated cumulative cost.
    pub cost: f64,
}

/// Estimate the selectivity of a condition (fraction of tuples kept).
pub fn selectivity(condition: &Condition) -> f64 {
    match condition {
        Condition::True => 1.0,
        Condition::False => 0.0,
        Condition::Cmp { op, .. } => match op {
            certus_data::compare::CmpOp::Eq => 0.1,
            certus_data::compare::CmpOp::Neq => 0.9,
            _ => 0.33,
        },
        Condition::IsNull(_) => 0.05,
        Condition::IsNotNull(_) => 0.95,
        Condition::Like { negated, .. } => {
            if *negated {
                0.9
            } else {
                0.1
            }
        }
        Condition::InList { list, negated, .. } => {
            let s = (0.1 * list.len() as f64).min(1.0);
            if *negated {
                1.0 - s
            } else {
                s
            }
        }
        Condition::And(a, b) => selectivity(a) * selectivity(b),
        Condition::Or(a, b) => {
            let (x, y) = (selectivity(a), selectivity(b));
            (x + y - x * y).min(1.0)
        }
        Condition::Not(inner) => 1.0 - selectivity(inner),
    }
}

/// Estimate rows and cost for an expression over the given database.
pub fn estimate(expr: &RaExpr, db: &Database) -> Result<CostEstimate> {
    Ok(match expr {
        RaExpr::Relation { name, .. } => {
            let rows = db.relation(name).map(|r| r.len()).unwrap_or(0) as f64;
            CostEstimate { rows, cost: rows }
        }
        RaExpr::Values { rows, .. } => {
            CostEstimate { rows: rows.len() as f64, cost: rows.len() as f64 }
        }
        RaExpr::Select { input, condition } => {
            let c = estimate(input, db)?;
            CostEstimate { rows: c.rows * selectivity(condition), cost: c.cost + c.rows }
        }
        RaExpr::Project { input, .. } | RaExpr::Rename { input, .. } | RaExpr::Distinct { input } => {
            let c = estimate(input, db)?;
            CostEstimate { rows: c.rows, cost: c.cost + c.rows }
        }
        RaExpr::Product { left, right } => {
            let l = estimate(left, db)?;
            let r = estimate(right, db)?;
            CostEstimate { rows: l.rows * r.rows, cost: l.cost + r.cost + l.rows * r.rows }
        }
        RaExpr::Join { left, right, condition } => {
            let l = estimate(left, db)?;
            let r = estimate(right, db)?;
            let hashable = join_is_hashable(left, right, condition, db);
            let out_rows =
                (l.rows * r.rows * selectivity(condition) / l.rows.max(r.rows).max(1.0)).max(1.0);
            let op_cost = if hashable { l.rows + r.rows } else { l.rows * r.rows };
            CostEstimate { rows: out_rows, cost: l.cost + r.cost + op_cost }
        }
        RaExpr::SemiJoin { left, right, condition } | RaExpr::AntiJoin { left, right, condition } => {
            let l = estimate(left, db)?;
            let r = estimate(right, db)?;
            let left_schema = output_schema(left, db)?;
            let decorrelated = !references_schema(condition, &left_schema);
            let hashable = join_is_hashable(left, right, condition, db);
            let op_cost = if decorrelated {
                r.rows
            } else if hashable {
                l.rows + r.rows
            } else {
                l.rows * r.rows
            };
            CostEstimate { rows: (l.rows * 0.5).max(1.0), cost: l.cost + r.cost + op_cost }
        }
        RaExpr::Union { left, right } | RaExpr::Intersect { left, right } | RaExpr::Difference { left, right } => {
            let l = estimate(left, db)?;
            let r = estimate(right, db)?;
            CostEstimate { rows: l.rows.max(r.rows), cost: l.cost + r.cost + l.rows + r.rows }
        }
        RaExpr::UnifySemiJoin { left, right } | RaExpr::UnifyAntiSemiJoin { left, right } | RaExpr::Division { left, right } => {
            let l = estimate(left, db)?;
            let r = estimate(right, db)?;
            CostEstimate { rows: l.rows, cost: l.cost + r.cost + l.rows * r.rows }
        }
        RaExpr::Aggregate { input, group_by, .. } => {
            let c = estimate(input, db)?;
            let rows = if group_by.is_empty() { 1.0 } else { (c.rows / 10.0).max(1.0) };
            CostEstimate { rows, cost: c.cost + c.rows }
        }
    })
}

fn join_is_hashable(left: &RaExpr, right: &RaExpr, condition: &Condition, db: &Database) -> bool {
    match (output_schema(left, db), output_schema(right, db)) {
        (Ok(l), Ok(r)) => split_equi(condition, &l, &r).has_keys(),
        _ => false,
    }
}

/// Render an `EXPLAIN`-style tree with per-node row and cost estimates.
pub fn explain(expr: &RaExpr, db: &Database) -> Result<String> {
    let mut out = String::new();
    render(expr, db, 0, &mut out)?;
    Ok(out)
}

fn render(expr: &RaExpr, db: &Database, depth: usize, out: &mut String) -> Result<()> {
    let est = estimate(expr, db)?;
    let label = match expr {
        RaExpr::Relation { name, .. } => format!("Scan {name}"),
        RaExpr::Join { condition, .. } => format!("Join [{condition}]"),
        RaExpr::AntiJoin { condition, .. } => format!("AntiJoin [{condition}]"),
        RaExpr::SemiJoin { condition, .. } => format!("SemiJoin [{condition}]"),
        RaExpr::Select { condition, .. } => format!("Select [{condition}]"),
        other => {
            let s = other.to_string();
            s.chars().take(40).collect::<String>()
        }
    };
    out.push_str(&"  ".repeat(depth));
    out.push_str(&format!("{label}  (rows≈{:.0}, cost≈{:.0})\n", est.rows, est.cost));
    for c in expr.children() {
        render(c, db, depth + 1, out)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use certus_algebra::builder::{eq, is_null};
    use certus_data::builder::rel;
    use certus_data::Value;

    fn db() -> Database {
        let mut db = Database::new();
        db.insert_relation(
            "r",
            rel(&["a"], (0..1000).map(|i| vec![Value::Int(i)]).collect()),
        );
        db.insert_relation(
            "s",
            rel(&["b"], (0..1000).map(|i| vec![Value::Int(i)]).collect()),
        );
        db
    }

    #[test]
    fn or_is_null_inflates_join_cost() {
        let db = db();
        let good = RaExpr::relation("r").join(RaExpr::relation("s"), eq("a", "b"));
        let bad = RaExpr::relation("r")
            .join(RaExpr::relation("s"), eq("a", "b").or(is_null("b")));
        let g = estimate(&good, &db).unwrap();
        let b = estimate(&bad, &db).unwrap();
        assert!(
            b.cost > 100.0 * g.cost,
            "nested-loop estimate should dwarf hash estimate: {b:?} vs {g:?}"
        );
    }

    #[test]
    fn decorrelated_antijoin_is_cheap() {
        let db = db();
        let correlated = RaExpr::relation("r").anti_join(RaExpr::relation("s"), eq("a", "b"));
        let decorrelated = RaExpr::relation("r").anti_join(RaExpr::relation("s"), is_null("b"));
        let c = estimate(&correlated, &db).unwrap();
        let d = estimate(&decorrelated, &db).unwrap();
        assert!(d.cost < c.cost);
    }

    #[test]
    fn selectivity_is_within_bounds() {
        let conds = [
            Condition::True,
            Condition::False,
            eq("a", "b"),
            eq("a", "b").or(is_null("b")),
            eq("a", "b").and(is_null("b")),
            eq("a", "b").not(),
        ];
        for c in conds {
            let s = selectivity(&c);
            assert!((0.0..=1.0).contains(&s), "{c} -> {s}");
        }
    }

    #[test]
    fn explain_renders_costs() {
        let db = db();
        let q = RaExpr::relation("r").join(RaExpr::relation("s"), eq("a", "b")).project(&["a"]);
        let text = explain(&q, &db).unwrap();
        assert!(text.contains("Scan r"));
        assert!(text.contains("cost≈"));
        assert_eq!(text.lines().count(), 4);
    }
}
