//! Cost estimation — moved to [`certus_plan::cost`] (where the statistics
//! catalog lives), re-exported here so pre-planner call sites
//! (`certus_engine::cost::explain`, `certus_engine::estimate`) keep
//! compiling.

pub use certus_plan::cost::{
    estimate, estimate_with, explain, selectivity, selectivity_with, CostEstimate,
};
