//! # certus-engine
//!
//! Physical execution for *certus*. The reference evaluator in
//! `certus-algebra` defines the semantics; this crate executes
//! [`certus_plan::PhysicalExpr`] plans produced by the
//! `certus-plan` planner the way a real DBMS would, which is what makes the
//! paper's *price of correctness* experiments meaningful:
//!
//! * plans choose **hash joins** / **hash (anti-)semijoins** with residual
//!   predicates wherever equi-join conjuncts exist;
//! * joins whose conditions hide the equality under a disjunction (the
//!   `A = B OR B IS NULL` conditions produced by the translation) fall back
//!   to **nested loops** — reproducing the "confused optimizer" behaviour of
//!   Section 7 that the OR-splitting rewrite then repairs;
//! * `NOT EXISTS` subqueries that are **uncorrelated** (the decorrelated
//!   null-check that the translation adds to query Q2) are evaluated once and
//!   short-circuit the whole query when they trip;
//! * plans carrying **exchange operators** (inserted by the planners when
//!   configured with a [`Parallelism`]) execute multi-threaded: partitioned
//!   hash build/probe, concurrent union arms and morsel-parallel filters,
//!   governed by [`EngineConfig`] (`CERTUS_THREADS` overrides the default of
//!   the machine's available parallelism);
//! * the cost model and equi-key analysis live in `certus-plan` and are
//!   re-exported here ([`cost`], [`equi`]) for compatibility.
//!
//! The engine is deliberately low-level: it borrows a database and executes
//! one plan. The `certus::Session` facade is the recommended front door — it
//! owns the database, prepares queries once (translation + pass pipeline +
//! physical planning + operator compilation, behind an LRU plan cache), and
//! drives this engine internally. The four `Engine` constructors all funnel
//! into [`Engine::configured`] and remain as thin shims.
//!
//! # Native operator runtime
//!
//! [`Engine::compile`] turns a physical plan into a [`CompiledPlan`]: schema
//! inference runs once per plan, every condition becomes a
//! [`CompiledPredicate`] over positional accessors, join keys and
//! projection/rename/aggregate column lists are resolved to positions, and
//! filter/project/rename/distinct chains fuse into single-pass pipelines.
//! [`Engine::execute_compiled`] then runs the plan with zero name lookups,
//! zero schema inference and zero logical-expression reconstruction per
//! execution — `certus::Session` caches compiled plans inside its
//! `PreparedQuery`, so repeated executions skip compilation too. The
//! pre-compilation delegating path survives as
//! [`Engine::execute_physical_delegating`] (differential oracle + benchmark
//! baseline).
//!
//! # Vectorized execution
//!
//! By default ([`EngineConfig::vectorized`], `CERTUS_VECTOR=0` to disable)
//! the hot paths run batch-at-a-time over `certus_data::column` typed
//! vectors: fused pipelines evaluate their predicates column-wise into
//! three-valued `TruthMask`s and gather survivors once, hash (semi-)join
//! keys hash column-wise into pre-sized index tables, and nested loops
//! evaluate one outer row against all inner rows at once with
//! outer-independent predicate subtrees hoisted into per-join cached masks.
//! The row-at-a-time paths remain both selectable and the automatic
//! fallback when a key column cannot be typed.

pub mod analyze;
pub mod compile;
pub mod engine;
pub(crate) mod vector;

pub use certus_plan::{cost, equi};

pub use analyze::annotate;
pub use certus_obs::{AnalyzedPlan, QueryProfile};
pub use certus_plan::physical::{
    heuristic_plan, heuristic_plan_with, ExplainPlan, JoinAlgo, Parallelism, Partitioning,
    PhysicalExpr, PhysicalPlanner, SemiAlgo,
};
pub use compile::{CompiledPlan, CompiledPredicate, RowView};
pub use cost::{estimate, CostEstimate};
pub use engine::{Engine, EngineConfig};
