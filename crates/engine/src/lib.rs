//! # certus-engine
//!
//! Physical execution for *certus*. The reference evaluator in
//! `certus-algebra` defines the semantics; this crate executes the same
//! [`RaExpr`](certus_algebra::RaExpr) plans the way a real DBMS would, which
//! is what makes the paper's *price of correctness* experiments meaningful:
//!
//! * equi-join conjuncts are detected and executed as **hash joins** /
//!   **hash (anti-)semijoins** with residual predicates;
//! * joins whose conditions hide the equality under a disjunction (the
//!   `A = B OR B IS NULL` conditions produced by the translation) fall back
//!   to **nested loops** — reproducing the "confused optimizer" behaviour of
//!   Section 7 that the OR-splitting rewrite then repairs;
//! * `NOT EXISTS` subqueries that are **uncorrelated** (the decorrelated
//!   null-check that the translation adds to query Q2) are evaluated once and
//!   short-circuit the whole query when they trip;
//! * a simple cardinality/cost model ([`cost`]) exposes `EXPLAIN`-style
//!   estimates, including the inflated estimates caused by `OR … IS NULL`
//!   predicates.

pub mod cost;
pub mod engine;
pub mod equi;

pub use cost::{estimate, CostEstimate};
pub use engine::Engine;
