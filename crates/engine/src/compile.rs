//! One-time compilation of [`PhysicalExpr`] plans into the engine's native
//! operator runtime.
//!
//! The delegating execution path (kept as
//! [`Engine::execute_physical_delegating`](crate::Engine::execute_physical_delegating)
//! for differential testing and benchmarking) re-did three kinds of work on
//! *every* execution of *every* operator: it wrapped materialised children
//! back into logical `Values` expressions, re-inferred operator output
//! schemas, and resolved every column name to a position once per row via
//! `Schema::position_of`. [`CompiledPlan::compile`] does all of that exactly
//! once per plan:
//!
//! * every [`Condition`] becomes a [`CompiledPredicate`] whose operands are
//!   positional accessors — per-row evaluation performs zero name lookups and
//!   zero allocation (join residuals evaluate over the *pair* of input
//!   tuples, so non-matching pairs are never concatenated);
//! * projection, rename, aggregate and join-key column lists are resolved to
//!   positions against the plan's inferred schemas (inferred bottom-up, once);
//! * `Filter`/`Project`/`Rename`/`Distinct` chains are **fused** into a
//!   single step pipeline executed in one pass over the input — a filter
//!   directly above a scan clones only the surviving rows;
//! * uncorrelated scalar subqueries are collected into a per-plan table and
//!   evaluated lazily, at most once per execution, the first time an
//!   operator referencing them processes a non-empty input (they are opaque
//!   to the translations, so the reference evaluator computes them) — a
//!   branch the decorrelated short-circuit skips never evaluates its
//!   subqueries, matching the reference evaluator.
//!
//! A [`CompiledPlan`] owns everything it needs (no borrows of the database),
//! so `certus::Session` caches compiled plans inside `PreparedQuery` — a
//! prepared re-execution performs zero compilation work on top of zero
//! planning work. Compiled plans are only valid for the database state they
//! were compiled against; the session's schema-epoch guard enforces that.

use certus_algebra::condition::{Condition, Operand};
use certus_algebra::expr::{AggFunc, ProjCol, RaExpr};
use certus_algebra::schema_infer::output_schema;
use certus_algebra::{AlgebraError, NullSemantics, Result};
use certus_data::compare::{naive_cmp, sql_cmp, CmpOp};
use certus_data::like::{naive_like, sql_like};
use certus_data::{Attribute, Database, Relation, Schema, Truth, Tuple, Value, ValueType};
use certus_obs::metrics::{registry, Counter};
use certus_obs::names;
use certus_obs::ProfNode;
use certus_plan::physical::{JoinAlgo, Partitioning, PhysicalExpr, SemiAlgo};
use std::sync::{Arc, OnceLock};

/// A row view over one tuple or a (left, right) pair of tuples. Join
/// predicates evaluate over the pair directly, so tuples are concatenated
/// only for pairs that actually join.
#[derive(Clone, Copy)]
pub struct RowView<'a> {
    a: &'a [Value],
    b: &'a [Value],
}

impl<'a> RowView<'a> {
    /// View of a single tuple.
    pub fn one(t: &'a Tuple) -> Self {
        RowView { a: t.values(), b: &[] }
    }

    /// View of the concatenation of two tuples (without concatenating).
    pub fn pair(l: &'a Tuple, r: &'a Tuple) -> Self {
        RowView { a: l.values(), b: r.values() }
    }

    #[inline]
    fn get(&self, i: usize) -> &'a Value {
        if i < self.a.len() {
            &self.a[i]
        } else {
            &self.b[i - self.a.len()]
        }
    }
}

/// The values of a plan's uncorrelated scalar subqueries for one execution,
/// filled lazily: the engine evaluates a subquery the first time an operator
/// that references it is about to process a non-empty input, so a branch the
/// decorrelated short-circuit skips never pays for (or surfaces errors from)
/// its subqueries — matching the reference evaluator's lazy behaviour.
#[derive(Debug, Default)]
pub struct ScalarValues {
    cells: Vec<std::sync::OnceLock<Option<Value>>>,
}

impl ScalarValues {
    /// An empty table with one unset cell per scalar subquery.
    pub(crate) fn new(count: usize) -> Self {
        ScalarValues { cells: (0..count).map(|_| std::sync::OnceLock::new()).collect() }
    }

    /// Whether the subquery at `i` has been evaluated.
    pub(crate) fn is_set(&self, i: usize) -> bool {
        self.cells[i].get().is_some()
    }

    /// Record an evaluated subquery value (first write wins; racing arms of
    /// a parallel union may both evaluate, exactly like the per-worker
    /// evaluator caches of the delegating path).
    pub(crate) fn set(&self, i: usize, value: Option<Value>) {
        let _ = self.cells[i].set(value);
    }

    #[inline]
    pub(crate) fn get(&self, i: usize) -> Option<&Value> {
        self.cells[i].get().expect("scalar subquery ensured before predicate evaluation").as_ref()
    }
}

/// A condition operand with its column reference resolved to a position.
#[derive(Debug, Clone)]
pub(crate) enum CompiledOperand {
    /// Column at a position in the (combined) input row.
    Col(usize),
    /// A constant.
    Const(Value),
    /// Index into the plan's scalar-subquery table.
    Scalar(usize),
}

impl CompiledOperand {
    #[inline]
    pub(crate) fn value<'v>(
        &'v self,
        row: RowView<'v>,
        scalars: &'v ScalarValues,
    ) -> Option<&'v Value> {
        match self {
            CompiledOperand::Col(i) => Some(row.get(*i)),
            CompiledOperand::Const(v) => Some(v),
            CompiledOperand::Scalar(i) => scalars.get(*i),
        }
    }
}

/// A [`Condition`] compiled against a fixed schema: column references are
/// positions, evaluation is infallible and allocation-free.
#[derive(Debug, Clone)]
pub struct CompiledPredicate {
    pred: Pred,
    /// Indices into the plan's scalar-subquery table this predicate reads
    /// (the engine ensures they are evaluated before the per-row loop).
    scalar_refs: Vec<usize>,
}

#[derive(Debug, Clone)]
pub(crate) enum Pred {
    Const(Truth),
    Cmp { left: CompiledOperand, op: CmpOp, right: CompiledOperand },
    IsNull(CompiledOperand),
    IsNotNull(CompiledOperand),
    Like { expr: CompiledOperand, pattern: String, negated: bool },
    InList { expr: CompiledOperand, list: Vec<Value>, negated: bool },
    And(Box<Pred>, Box<Pred>),
    Or(Box<Pred>, Box<Pred>),
    Not(Box<Pred>),
}

impl CompiledPredicate {
    /// Evaluate against a row, mirroring `Evaluator::eval_condition` exactly.
    pub fn eval(
        &self,
        row: RowView<'_>,
        scalars: &ScalarValues,
        semantics: NullSemantics,
    ) -> Truth {
        self.pred.eval(row, scalars, semantics)
    }

    /// The scalar-subquery indices this predicate reads.
    pub(crate) fn scalar_refs(&self) -> &[usize] {
        &self.scalar_refs
    }

    /// The compiled predicate tree (used by the vectorized evaluator).
    pub(crate) fn pred(&self) -> &Pred {
        &self.pred
    }

    /// A copy of the predicate with every column reference `i` replaced by
    /// `map[i]` (used to re-anchor fused-pipeline filters onto the pipeline's
    /// *source* columns, looking through intermediate projections).
    pub(crate) fn remap(&self, map: &[usize]) -> CompiledPredicate {
        CompiledPredicate { pred: self.pred.remap(map), scalar_refs: self.scalar_refs.clone() }
    }
}

impl Pred {
    fn remap(&self, map: &[usize]) -> Pred {
        let op = |o: &CompiledOperand| match o {
            CompiledOperand::Col(i) => CompiledOperand::Col(map[*i]),
            other => other.clone(),
        };
        match self {
            Pred::Const(t) => Pred::Const(*t),
            Pred::Cmp { left, op: cmp, right } => {
                Pred::Cmp { left: op(left), op: *cmp, right: op(right) }
            }
            Pred::IsNull(x) => Pred::IsNull(op(x)),
            Pred::IsNotNull(x) => Pred::IsNotNull(op(x)),
            Pred::Like { expr, pattern, negated } => {
                Pred::Like { expr: op(expr), pattern: pattern.clone(), negated: *negated }
            }
            Pred::InList { expr, list, negated } => {
                Pred::InList { expr: op(expr), list: list.clone(), negated: *negated }
            }
            Pred::And(a, b) => Pred::And(Box::new(a.remap(map)), Box::new(b.remap(map))),
            Pred::Or(a, b) => Pred::Or(Box::new(a.remap(map)), Box::new(b.remap(map))),
            Pred::Not(inner) => Pred::Not(Box::new(inner.remap(map))),
        }
    }

    /// Collect every column position the predicate reads.
    pub(crate) fn col_refs(&self, out: &mut Vec<usize>) {
        let op = |o: &CompiledOperand, out: &mut Vec<usize>| {
            if let CompiledOperand::Col(i) = o {
                out.push(*i);
            }
        };
        match self {
            Pred::Const(_) => {}
            Pred::Cmp { left, right, .. } => {
                op(left, out);
                op(right, out);
            }
            Pred::IsNull(x) | Pred::IsNotNull(x) => op(x, out),
            Pred::Like { expr, .. } | Pred::InList { expr, .. } => op(expr, out),
            Pred::And(a, b) | Pred::Or(a, b) => {
                a.col_refs(out);
                b.col_refs(out);
            }
            Pred::Not(inner) => inner.col_refs(out),
        }
    }

    fn eval(&self, row: RowView<'_>, scalars: &ScalarValues, semantics: NullSemantics) -> Truth {
        match self {
            Pred::Const(t) => *t,
            Pred::Cmp { left, op, right } => {
                match (left.value(row, scalars), right.value(row, scalars)) {
                    (Some(a), Some(b)) => match semantics {
                        NullSemantics::Sql => sql_cmp(a, *op, b),
                        NullSemantics::Naive => Truth::from_bool(naive_cmp(a, *op, b)),
                    },
                    // An empty scalar subquery behaves like a NULL operand.
                    _ => match semantics {
                        NullSemantics::Sql => Truth::Unknown,
                        NullSemantics::Naive => Truth::False,
                    },
                }
            }
            Pred::IsNull(x) => {
                Truth::from_bool(x.value(row, scalars).map(|v| v.is_null()).unwrap_or(true))
            }
            Pred::IsNotNull(x) => {
                Truth::from_bool(x.value(row, scalars).map(|v| v.is_const()).unwrap_or(false))
            }
            Pred::Like { expr, pattern, negated } => {
                let base = match expr.value(row, scalars) {
                    Some(v) => match semantics {
                        NullSemantics::Sql => sql_like(v, pattern),
                        NullSemantics::Naive => Truth::from_bool(naive_like(v, pattern)),
                    },
                    None => Truth::Unknown,
                };
                if *negated {
                    base.negate()
                } else {
                    base
                }
            }
            Pred::InList { expr, list, negated } => {
                let base = match expr.value(row, scalars) {
                    Some(v) => {
                        let hits = list.iter().map(|item| match semantics {
                            NullSemantics::Sql => sql_cmp(v, CmpOp::Eq, item),
                            NullSemantics::Naive => Truth::from_bool(naive_cmp(v, CmpOp::Eq, item)),
                        });
                        Truth::any(hits)
                    }
                    None => Truth::Unknown,
                };
                let base = if semantics == NullSemantics::Naive && base.is_unknown() {
                    Truth::False
                } else {
                    base
                };
                if *negated {
                    base.negate()
                } else {
                    base
                }
            }
            // Kleene connectives are total, so short-circuiting on the
            // absorbing element is result-identical to evaluating both sides.
            Pred::And(a, b) => {
                let l = a.eval(row, scalars, semantics);
                if l.is_false() {
                    Truth::False
                } else {
                    l.and(b.eval(row, scalars, semantics))
                }
            }
            Pred::Or(a, b) => {
                let l = a.eval(row, scalars, semantics);
                if l.is_true() {
                    Truth::True
                } else {
                    l.or(b.eval(row, scalars, semantics))
                }
            }
            Pred::Not(inner) => inner.eval(row, scalars, semantics).negate(),
        }
    }
}

/// A per-row step of a fused operator pipeline.
#[derive(Debug)]
pub(crate) enum Step {
    /// Drop rows whose predicate is not true.
    Filter(CompiledPredicate),
    /// Map the row onto the given positions.
    Project(Vec<usize>),
}

/// The batch-at-a-time form of a fused step chain: every filter re-anchored
/// onto the pipeline's *source* columns (intermediate projections composed
/// away — they only reorder and drop columns), so the engine can evaluate
/// all predicates column-wise over the source rows and gather the survivors
/// once at the pipeline edge.
#[derive(Debug)]
pub(crate) struct VecPlan {
    /// The filter predicates, in pipeline order, over source positions.
    pub(crate) filters: Vec<CompiledPredicate>,
    /// The source columns any filter reads (sorted, deduplicated) — the only
    /// columns worth extracting into typed vectors.
    pub(crate) cols: Vec<usize>,
    /// Output row = source row projected onto these positions (`None` when
    /// the pipeline emits the source row unchanged).
    pub(crate) gather: Option<Vec<usize>>,
}

/// Compute the [`VecPlan`] of a step chain, or `None` when the chain has no
/// filter (a pure projection/dedup chain gains nothing from batching — the
/// row path already moves rows without cloning).
fn vec_plan_of(steps: &[Step], source_arity: usize) -> Option<VecPlan> {
    let mut mapping: Vec<usize> = (0..source_arity).collect();
    let mut filters = Vec::new();
    for step in steps {
        match step {
            Step::Filter(pred) => filters.push(pred.remap(&mapping)),
            Step::Project(pos) => mapping = pos.iter().map(|&p| mapping[p]).collect(),
        }
    }
    if filters.is_empty() {
        return None;
    }
    let mut cols = Vec::new();
    for f in &filters {
        f.pred().col_refs(&mut cols);
    }
    cols.sort_unstable();
    cols.dedup();
    let identity =
        mapping.len() == source_arity && mapping.iter().enumerate().all(|(i, &p)| i == p);
    Some(VecPlan { filters, cols, gather: if identity { None } else { Some(mapping) } })
}

/// A compiled operator tree: schemas inferred, names resolved, conditions
/// compiled — ready for repeated execution with zero per-execution setup.
#[derive(Debug)]
pub(crate) enum CompiledExpr {
    /// Scan of a base relation (schema pre-qualified for aliases).
    Scan { name: String, schema: Arc<Schema> },
    /// A literal relation, materialised at compile time.
    Values { rel: Relation },
    /// A source expression the compiler has no native operator for —
    /// executed through the reference evaluator (planner sources are always
    /// relations or literals, so this is a defensive fallback).
    Opaque { expr: RaExpr, schema: Arc<Schema> },
    /// A fused chain of per-row steps over one source, executed in a single
    /// pass. `partitions > 0` marks a round-robin exchange under the first
    /// filter (morsel-parallel execution); `dedup` marks a projection or
    /// distinct in the chain (set semantics: deduplicate the output).
    /// `vec_plan` is the batch-at-a-time form of the chain (present whenever
    /// the chain filters); the engine picks the vectorized or the row path
    /// per execution, so one compiled plan serves both.
    Fused {
        source: Box<CompiledExpr>,
        steps: Vec<Step>,
        schema: Arc<Schema>,
        dedup: bool,
        partitions: usize,
        vec_plan: Option<VecPlan>,
    },
    /// Hash join: build on the right, probe with the left, residual applied
    /// to the (left, right) pair. `partitions > 0` marks a hash exchange on
    /// the build side.
    HashJoin {
        left: Box<CompiledExpr>,
        right: Box<CompiledExpr>,
        left_keys: Vec<usize>,
        right_keys: Vec<usize>,
        residual: CompiledPredicate,
        schema: Arc<Schema>,
        partitions: usize,
    },
    /// Nested-loop join. `partitions > 0` marks a round-robin exchange on
    /// the outer (left) side.
    NlJoin {
        left: Box<CompiledExpr>,
        right: Box<CompiledExpr>,
        pred: CompiledPredicate,
        schema: Arc<Schema>,
        partitions: usize,
    },
    /// Hash (anti-)semijoin.
    HashSemi {
        left: Box<CompiledExpr>,
        right: Box<CompiledExpr>,
        left_keys: Vec<usize>,
        right_keys: Vec<usize>,
        residual: CompiledPredicate,
        keep_matching: bool,
        partitions: usize,
    },
    /// Nested-loop (anti-)semijoin.
    NlSemi {
        left: Box<CompiledExpr>,
        right: Box<CompiledExpr>,
        pred: CompiledPredicate,
        keep_matching: bool,
        partitions: usize,
    },
    /// Decorrelated (anti-)semijoin: the predicate only reads the right
    /// side; the whole node short-circuits to the left input or to empty.
    DecorrelatedSemi {
        left: Box<CompiledExpr>,
        right: Box<CompiledExpr>,
        pred: CompiledPredicate,
        keep_matching: bool,
        left_schema: Arc<Schema>,
    },
    /// N-ary union (nested unions flattened; exchanges marking arms for
    /// concurrent evaluation are absorbed into `parallel`).
    Union { arms: Vec<CompiledExpr>, schema: Arc<Schema>, parallel: bool },
    /// Set intersection (positional, left schema wins — as the delegating
    /// path's schema alignment did). `partitions > 0` when the plan carried
    /// an exchange: membership tests are hash-partitioned across pool tasks.
    Intersect { left: Box<CompiledExpr>, right: Box<CompiledExpr>, partitions: usize },
    /// Set difference (positional, left schema wins); `partitions` as for
    /// [`CompiledExpr::Intersect`].
    Difference { left: Box<CompiledExpr>, right: Box<CompiledExpr>, partitions: usize },
    /// Unification (anti-)semijoin of Definition 4.
    UnifySemi { left: Box<CompiledExpr>, right: Box<CompiledExpr>, keep_matching: bool },
    /// Relational division with divisor↔dividend column positions resolved.
    Division {
        left: Box<CompiledExpr>,
        right: Box<CompiledExpr>,
        key_positions: Vec<usize>,
        shared_positions: Vec<usize>,
        schema: Arc<Schema>,
    },
    /// Column renaming: a schema swap, no tuple work.
    Rename { input: Box<CompiledExpr>, schema: Arc<Schema> },
    /// Duplicate elimination; `partitions > 0` when the plan carried an
    /// exchange — rows are hash-partitioned and deduplicated per pool task.
    Distinct { input: Box<CompiledExpr>, partitions: usize },
    /// Grouping and aggregation with positions resolved; `partitions > 0`
    /// when the plan carried an exchange — grouping is hash-partitioned on
    /// the group key across pool tasks.
    Aggregate {
        input: Box<CompiledExpr>,
        group_pos: Vec<usize>,
        aggs: Vec<(AggFunc, Option<usize>)>,
        schema: Arc<Schema>,
        partitions: usize,
    },
}

impl CompiledExpr {
    /// The output schema of this operator (computed once, at compile time).
    pub(crate) fn schema(&self) -> &Arc<Schema> {
        match self {
            CompiledExpr::Scan { schema, .. }
            | CompiledExpr::Opaque { schema, .. }
            | CompiledExpr::Fused { schema, .. }
            | CompiledExpr::HashJoin { schema, .. }
            | CompiledExpr::NlJoin { schema, .. }
            | CompiledExpr::Union { schema, .. }
            | CompiledExpr::Division { schema, .. }
            | CompiledExpr::Rename { schema, .. }
            | CompiledExpr::Aggregate { schema, .. } => schema,
            CompiledExpr::Values { rel } => rel.schema(),
            CompiledExpr::DecorrelatedSemi { left_schema, .. } => left_schema,
            CompiledExpr::HashSemi { left, .. }
            | CompiledExpr::NlSemi { left, .. }
            | CompiledExpr::Intersect { left, .. }
            | CompiledExpr::Difference { left, .. }
            | CompiledExpr::UnifySemi { left, .. } => left.schema(),
            CompiledExpr::Distinct { input, .. } => input.schema(),
        }
    }
}

/// A fully compiled physical plan: the operator tree plus the table of
/// uncorrelated scalar subqueries it references. Owns everything — no borrow
/// of the database — so it can be cached across executions.
#[derive(Debug)]
pub struct CompiledPlan {
    pub(crate) root: CompiledExpr,
    pub(crate) scalars: Vec<RaExpr>,
}

impl CompiledPlan {
    /// Compile a physical plan against a database catalog. Schema inference
    /// and every column-name resolution happen here, once; executing the
    /// result performs neither.
    pub fn compile(plan: &PhysicalExpr, db: &Database) -> Result<CompiledPlan> {
        static COMPILES: OnceLock<Arc<Counter>> = OnceLock::new();
        COMPILES.get_or_init(|| registry().counter(names::ENGINE_COMPILES)).incr();
        let mut scalars = Vec::new();
        let root = compile_expr(plan, db, &mut scalars)?;
        Ok(CompiledPlan { root, scalars })
    }

    /// The output schema of the plan.
    pub fn schema(&self) -> &Arc<Schema> {
        self.root.schema()
    }
}

fn compile_expr(
    plan: &PhysicalExpr,
    db: &Database,
    scalars: &mut Vec<RaExpr>,
) -> Result<CompiledExpr> {
    match plan {
        PhysicalExpr::Source(expr) => compile_source(expr, db),
        // An exchange nobody above exploits is the identity.
        PhysicalExpr::Exchange { input, .. } => compile_expr(input, db, scalars),
        PhysicalExpr::Filter { input, condition } => {
            let (inner, partitions) = match input.as_ref() {
                PhysicalExpr::Exchange {
                    input,
                    partitioning: Partitioning::RoundRobin { partitions },
                } => (input.as_ref(), *partitions),
                other => (other, 0),
            };
            let child = compile_expr(inner, db, scalars)?;
            let pred = compile_condition(condition, child.schema(), scalars)?;
            Ok(push_step(child, Step::Filter(pred), None, partitions))
        }
        PhysicalExpr::Project { input, columns } => {
            let child = compile_expr(input, db, scalars)?;
            let (positions, schema) = project_positions(child.schema(), columns)?;
            Ok(push_step(child, Step::Project(positions), Some(schema.shared()), 0))
        }
        PhysicalExpr::Rename { input, columns } => {
            let child = compile_expr(input, db, scalars)?;
            let schema = child.schema().rename(columns).map_err(AlgebraError::Data)?.shared();
            Ok(match child {
                CompiledExpr::Fused { source, steps, dedup, partitions, vec_plan, .. } => {
                    CompiledExpr::Fused { source, steps, schema, dedup, partitions, vec_plan }
                }
                other => CompiledExpr::Rename { input: Box::new(other), schema },
            })
        }
        PhysicalExpr::Distinct { input } => {
            let (inner, partitions) = peel_any_exchange(input);
            let child = compile_expr(inner, db, scalars)?;
            Ok(match child {
                CompiledExpr::Fused {
                    source, steps, schema, partitions: fused, vec_plan, ..
                } => CompiledExpr::Fused {
                    source,
                    steps,
                    schema,
                    dedup: true,
                    partitions: fused.max(partitions),
                    vec_plan,
                },
                other => CompiledExpr::Distinct { input: Box::new(other), partitions },
            })
        }
        PhysicalExpr::Join { left, right, condition, algo } => match algo {
            JoinAlgo::Hash { left_keys, right_keys, residual } => {
                let (build, partitions) = peel_hash_exchange(right);
                let l = compile_expr(left, db, scalars)?;
                let r = compile_expr(build, db, scalars)?;
                let l_pos = resolve_positions(l.schema(), left_keys)?;
                let r_pos = resolve_positions(r.schema(), right_keys)?;
                let schema = l.schema().concat(r.schema()).shared();
                let residual = compile_condition(residual, &schema, scalars)?;
                Ok(CompiledExpr::HashJoin {
                    left: Box::new(l),
                    right: Box::new(r),
                    left_keys: l_pos,
                    right_keys: r_pos,
                    residual,
                    schema,
                    partitions,
                })
            }
            JoinAlgo::NestedLoop => {
                let (outer, partitions) = peel_rr_exchange(left);
                let l = compile_expr(outer, db, scalars)?;
                let r = compile_expr(right, db, scalars)?;
                let schema = l.schema().concat(r.schema()).shared();
                let pred = compile_condition(condition, &schema, scalars)?;
                Ok(CompiledExpr::NlJoin {
                    left: Box::new(l),
                    right: Box::new(r),
                    pred,
                    schema,
                    partitions,
                })
            }
        },
        PhysicalExpr::Semi { left, right, condition, algo, anti, left_schema } => {
            let keep_matching = !*anti;
            match algo {
                SemiAlgo::Decorrelated => {
                    let l = compile_expr(left, db, scalars)?;
                    let r = compile_expr(right, db, scalars)?;
                    let pred = compile_condition(condition, r.schema(), scalars)?;
                    Ok(CompiledExpr::DecorrelatedSemi {
                        left: Box::new(l),
                        right: Box::new(r),
                        pred,
                        keep_matching,
                        left_schema: left_schema.clone().shared(),
                    })
                }
                SemiAlgo::Hash { left_keys, right_keys, residual } => {
                    let (build, partitions) = peel_hash_exchange(right);
                    let l = compile_expr(left, db, scalars)?;
                    let r = compile_expr(build, db, scalars)?;
                    let l_pos = resolve_positions(l.schema(), left_keys)?;
                    let r_pos = resolve_positions(r.schema(), right_keys)?;
                    let combined = l.schema().concat(r.schema()).shared();
                    let residual = compile_condition(residual, &combined, scalars)?;
                    Ok(CompiledExpr::HashSemi {
                        left: Box::new(l),
                        right: Box::new(r),
                        left_keys: l_pos,
                        right_keys: r_pos,
                        residual,
                        keep_matching,
                        partitions,
                    })
                }
                SemiAlgo::NestedLoop => {
                    let (outer, partitions) = peel_rr_exchange(left);
                    let l = compile_expr(outer, db, scalars)?;
                    let r = compile_expr(right, db, scalars)?;
                    let combined = l.schema().concat(r.schema()).shared();
                    let pred = compile_condition(condition, &combined, scalars)?;
                    Ok(CompiledExpr::NlSemi {
                        left: Box::new(l),
                        right: Box::new(r),
                        pred,
                        keep_matching,
                        partitions,
                    })
                }
            }
        }
        PhysicalExpr::Union { .. } => {
            let mut arm_plans = Vec::new();
            let mut parallel = false;
            collect_union_arms(plan, &mut arm_plans, &mut parallel);
            let arms = arm_plans
                .into_iter()
                .map(|a| compile_expr(a, db, scalars))
                .collect::<Result<Vec<_>>>()?;
            let schema = arms
                .first()
                .ok_or_else(|| AlgebraError::Malformed("union with no arms".into()))?
                .schema()
                .clone();
            Ok(CompiledExpr::Union { arms, schema, parallel })
        }
        PhysicalExpr::Intersect { left, right } => {
            let (li, lp) = peel_any_exchange(left);
            let (ri, rp) = peel_any_exchange(right);
            let l = compile_expr(li, db, scalars)?;
            let r = compile_expr(ri, db, scalars)?;
            Ok(CompiledExpr::Intersect {
                left: Box::new(l),
                right: Box::new(r),
                partitions: lp.max(rp),
            })
        }
        PhysicalExpr::Difference { left, right } => {
            let (li, lp) = peel_any_exchange(left);
            let (ri, rp) = peel_any_exchange(right);
            let l = compile_expr(li, db, scalars)?;
            let r = compile_expr(ri, db, scalars)?;
            Ok(CompiledExpr::Difference {
                left: Box::new(l),
                right: Box::new(r),
                partitions: lp.max(rp),
            })
        }
        PhysicalExpr::UnifySemi { left, right, anti } => {
            let l = compile_expr(left, db, scalars)?;
            let r = compile_expr(right, db, scalars)?;
            if l.schema().arity() != r.schema().arity() {
                return Err(AlgebraError::Malformed(format!(
                    "unification semijoin over arities {} and {}",
                    l.schema().arity(),
                    r.schema().arity()
                )));
            }
            Ok(CompiledExpr::UnifySemi {
                left: Box::new(l),
                right: Box::new(r),
                keep_matching: !*anti,
            })
        }
        PhysicalExpr::Division { left, right } => {
            let l = compile_expr(left, db, scalars)?;
            let r = compile_expr(right, db, scalars)?;
            // Map each divisor column to the dividend column with the same
            // base name (as the reference evaluator does).
            let mut shared_positions = Vec::with_capacity(r.schema().arity());
            for attr in r.schema().attrs() {
                let pos = l
                    .schema()
                    .attrs()
                    .iter()
                    .position(|a| a.base_name() == attr.base_name())
                    .ok_or_else(|| {
                        AlgebraError::Malformed(format!(
                            "division: divisor column {} not found in dividend",
                            attr.name
                        ))
                    })?;
                shared_positions.push(pos);
            }
            let key_positions: Vec<usize> =
                (0..l.schema().arity()).filter(|i| !shared_positions.contains(i)).collect();
            let schema = l.schema().project(&key_positions).shared();
            Ok(CompiledExpr::Division {
                left: Box::new(l),
                right: Box::new(r),
                key_positions,
                shared_positions,
                schema,
            })
        }
        PhysicalExpr::Aggregate { input, group_by, aggregates } => {
            let (inner, partitions) = peel_any_exchange(input);
            let child = compile_expr(inner, db, scalars)?;
            let group_pos = resolve_positions(child.schema(), group_by)?;
            let mut aggs = Vec::with_capacity(aggregates.len());
            let mut attrs: Vec<Attribute> =
                group_pos.iter().map(|&p| child.schema().attr(p).clone()).collect();
            for a in aggregates {
                let pos = match &a.column {
                    Some(c) => Some(child.schema().position_of(c).map_err(AlgebraError::Data)?),
                    None if a.func == AggFunc::CountStar => None,
                    None => {
                        return Err(AlgebraError::Malformed(format!(
                            "aggregate {} needs a column",
                            a.func
                        )))
                    }
                };
                let ty = match a.func {
                    AggFunc::CountStar | AggFunc::Count => ValueType::Int,
                    AggFunc::Avg => ValueType::Float,
                    AggFunc::Sum | AggFunc::Min | AggFunc::Max => {
                        pos.map(|p| child.schema().attr(p).ty).unwrap_or(ValueType::Any)
                    }
                };
                attrs.push(Attribute { name: a.alias.clone(), ty, nullable: true });
                aggs.push((a.func, pos));
            }
            Ok(CompiledExpr::Aggregate {
                input: Box::new(child),
                group_pos,
                aggs,
                schema: Schema::new(attrs).shared(),
                partitions,
            })
        }
    }
}

fn compile_source(expr: &RaExpr, db: &Database) -> Result<CompiledExpr> {
    match expr {
        RaExpr::Relation { name, alias } => {
            let base = db.relation(name).map_err(AlgebraError::Data)?;
            let schema = match alias {
                Some(a) => base.schema().qualify(a).shared(),
                None => base.schema().clone(),
            };
            Ok(CompiledExpr::Scan { name: name.clone(), schema })
        }
        RaExpr::Values { schema, rows } => {
            let rel =
                Relation::new(schema.clone().shared(), rows.clone()).map_err(AlgebraError::Data)?;
            Ok(CompiledExpr::Values { rel })
        }
        other => {
            let schema = output_schema(other, db)?.shared();
            Ok(CompiledExpr::Opaque { expr: other.clone(), schema })
        }
    }
}

/// Append a per-row step to a child, fusing into an existing pipeline when
/// possible. `new_schema` replaces the pipeline's output schema (projections);
/// a projection also turns on output deduplication (set semantics).
fn push_step(
    child: CompiledExpr,
    step: Step,
    new_schema: Option<Arc<Schema>>,
    partitions: usize,
) -> CompiledExpr {
    let projecting = matches!(step, Step::Project(_));
    match child {
        CompiledExpr::Fused { source, mut steps, schema, dedup, partitions: existing, .. } => {
            steps.push(step);
            let vec_plan = vec_plan_of(&steps, source.schema().arity());
            CompiledExpr::Fused {
                source,
                steps,
                schema: new_schema.unwrap_or(schema),
                dedup: dedup || projecting,
                partitions: existing.max(partitions),
                vec_plan,
            }
        }
        other => {
            let schema = new_schema.unwrap_or_else(|| other.schema().clone());
            let steps = vec![step];
            let vec_plan = vec_plan_of(&steps, other.schema().arity());
            CompiledExpr::Fused {
                source: Box::new(other),
                steps,
                schema,
                dedup: projecting,
                partitions,
                vec_plan,
            }
        }
    }
}

fn project_positions(input: &Schema, columns: &[ProjCol]) -> Result<(Vec<usize>, Schema)> {
    let mut positions = Vec::with_capacity(columns.len());
    let mut attrs = Vec::with_capacity(columns.len());
    for c in columns {
        let pos = input.position_of(&c.column).map_err(AlgebraError::Data)?;
        let src = input.attr(pos);
        positions.push(pos);
        attrs.push(Attribute {
            name: c.output_name().to_string(),
            ty: src.ty,
            nullable: src.nullable,
        });
    }
    Ok((positions, Schema::new(attrs)))
}

fn resolve_positions(schema: &Schema, names: &[String]) -> Result<Vec<usize>> {
    names.iter().map(|n| schema.position_of(n).map_err(AlgebraError::Data)).collect()
}

fn peel_hash_exchange(plan: &PhysicalExpr) -> (&PhysicalExpr, usize) {
    match plan {
        PhysicalExpr::Exchange { input, partitioning: Partitioning::Hash { partitions, .. } } => {
            (input, *partitions)
        }
        other => (other, 0),
    }
}

fn peel_rr_exchange(plan: &PhysicalExpr) -> (&PhysicalExpr, usize) {
    match plan {
        PhysicalExpr::Exchange { input, partitioning: Partitioning::RoundRobin { partitions } } => {
            (input, *partitions)
        }
        other => (other, 0),
    }
}

/// Peel an exchange of either partitioning kind. Operators that partition
/// by their own runtime row/key hash (distinct, set ops, aggregation) only
/// need the partition count; the plan-side partitioning is advisory.
fn peel_any_exchange(plan: &PhysicalExpr) -> (&PhysicalExpr, usize) {
    match plan {
        PhysicalExpr::Exchange { input, partitioning } => {
            let partitions = match partitioning {
                Partitioning::Hash { partitions, .. } => *partitions,
                Partitioning::RoundRobin { partitions } => *partitions,
            };
            (input, partitions)
        }
        other => (other, 0),
    }
}

/// Collect the leaf arms of a (possibly nested) union, looking through the
/// exchange operators that mark arms for concurrent evaluation.
fn collect_union_arms<'p>(
    plan: &'p PhysicalExpr,
    out: &mut Vec<&'p PhysicalExpr>,
    parallel: &mut bool,
) {
    match plan {
        PhysicalExpr::Union { left, right } => {
            collect_union_arms(left, out, parallel);
            collect_union_arms(right, out, parallel);
        }
        PhysicalExpr::Exchange { input, .. } => {
            *parallel = true;
            collect_union_arms(input, out, parallel);
        }
        other => out.push(other),
    }
}

fn compile_condition(
    condition: &Condition,
    schema: &Schema,
    scalars: &mut Vec<RaExpr>,
) -> Result<CompiledPredicate> {
    let pred = compile_pred(condition, schema, scalars)?;
    let mut scalar_refs = Vec::new();
    collect_scalar_refs(&pred, &mut scalar_refs);
    scalar_refs.sort_unstable();
    scalar_refs.dedup();
    Ok(CompiledPredicate { pred, scalar_refs })
}

fn collect_scalar_refs(pred: &Pred, out: &mut Vec<usize>) {
    let mut operand = |op: &CompiledOperand| {
        if let CompiledOperand::Scalar(i) = op {
            out.push(*i);
        }
    };
    match pred {
        Pred::Const(_) => {}
        Pred::Cmp { left, right, .. } => {
            operand(left);
            operand(right);
        }
        Pred::IsNull(x) | Pred::IsNotNull(x) => operand(x),
        Pred::Like { expr, .. } | Pred::InList { expr, .. } => operand(expr),
        Pred::And(a, b) | Pred::Or(a, b) => {
            collect_scalar_refs(a, out);
            collect_scalar_refs(b, out);
        }
        Pred::Not(inner) => collect_scalar_refs(inner, out),
    }
}

fn compile_pred(condition: &Condition, schema: &Schema, scalars: &mut Vec<RaExpr>) -> Result<Pred> {
    Ok(match condition {
        Condition::True => Pred::Const(Truth::True),
        Condition::False => Pred::Const(Truth::False),
        Condition::Cmp { left, op, right } => Pred::Cmp {
            left: compile_operand(left, schema, scalars)?,
            op: *op,
            right: compile_operand(right, schema, scalars)?,
        },
        Condition::IsNull(x) => Pred::IsNull(compile_operand(x, schema, scalars)?),
        Condition::IsNotNull(x) => Pred::IsNotNull(compile_operand(x, schema, scalars)?),
        Condition::Like { expr, pattern, negated } => Pred::Like {
            expr: compile_operand(expr, schema, scalars)?,
            pattern: pattern.clone(),
            negated: *negated,
        },
        Condition::InList { expr, list, negated } => Pred::InList {
            expr: compile_operand(expr, schema, scalars)?,
            list: list.clone(),
            negated: *negated,
        },
        Condition::And(a, b) => Pred::And(
            Box::new(compile_pred(a, schema, scalars)?),
            Box::new(compile_pred(b, schema, scalars)?),
        ),
        Condition::Or(a, b) => Pred::Or(
            Box::new(compile_pred(a, schema, scalars)?),
            Box::new(compile_pred(b, schema, scalars)?),
        ),
        Condition::Not(inner) => Pred::Not(Box::new(compile_pred(inner, schema, scalars)?)),
    })
}

fn compile_operand(
    operand: &Operand,
    schema: &Schema,
    scalars: &mut Vec<RaExpr>,
) -> Result<CompiledOperand> {
    Ok(match operand {
        Operand::Col(name) => {
            CompiledOperand::Col(schema.position_of(name).map_err(AlgebraError::Data)?)
        }
        Operand::Const(v) => CompiledOperand::Const(v.clone()),
        Operand::Scalar(q) => {
            // Uncorrelated scalar subqueries are deduplicated structurally so
            // each is evaluated at most once per execution.
            let idx = match scalars.iter().position(|s| s == q.as_ref()) {
                Some(i) => i,
                None => {
                    scalars.push((**q).clone());
                    scalars.len() - 1
                }
            };
            CompiledOperand::Scalar(idx)
        }
    })
}

/// Apply a fused step chain to a borrowed row; returns the surviving owned
/// output row, cloning the input only if it survives un-projected.
pub(crate) fn apply_steps_borrowed(
    t: &Tuple,
    steps: &[Step],
    scalars: &ScalarValues,
    semantics: NullSemantics,
) -> Option<Tuple> {
    let mut owned: Option<Tuple> = None;
    for step in steps {
        match step {
            Step::Filter(pred) => {
                let current = owned.as_ref().unwrap_or(t);
                if !pred.eval(RowView::one(current), scalars, semantics).is_true() {
                    return None;
                }
            }
            Step::Project(pos) => {
                let current = owned.as_ref().unwrap_or(t);
                owned = Some(current.project(pos));
            }
        }
    }
    Some(owned.unwrap_or_else(|| t.clone()))
}

/// Apply a fused step chain to an owned row (no clone when it survives).
pub(crate) fn apply_steps_owned(
    t: Tuple,
    steps: &[Step],
    scalars: &ScalarValues,
    semantics: NullSemantics,
) -> Option<Tuple> {
    let mut current = t;
    for step in steps {
        match step {
            Step::Filter(pred) => {
                if !pred.eval(RowView::one(&current), scalars, semantics).is_true() {
                    return None;
                }
            }
            Step::Project(pos) => {
                current = current.project(pos);
            }
        }
    }
    Some(current)
}

/// [`apply_steps_borrowed`] with instrumentation: every filter step a row
/// survives bumps that step's survivor counter in `prof` — yielding, per
/// filter, "rows passing filters `0..=k`", the same quantity the vectorized
/// path reads off its running selection mask.
pub(crate) fn apply_steps_borrowed_counted(
    t: &Tuple,
    steps: &[Step],
    scalars: &ScalarValues,
    semantics: NullSemantics,
    prof: &ProfNode,
) -> Option<Tuple> {
    let mut owned: Option<Tuple> = None;
    for (k, step) in steps.iter().enumerate() {
        match step {
            Step::Filter(pred) => {
                let current = owned.as_ref().unwrap_or(t);
                if !pred.eval(RowView::one(current), scalars, semantics).is_true() {
                    return None;
                }
                prof.add_step_rows(k, 1);
            }
            Step::Project(pos) => {
                let current = owned.as_ref().unwrap_or(t);
                owned = Some(current.project(pos));
            }
        }
    }
    Some(owned.unwrap_or_else(|| t.clone()))
}

/// [`apply_steps_owned`] with the same per-filter survivor counting as
/// [`apply_steps_borrowed_counted`].
pub(crate) fn apply_steps_owned_counted(
    t: Tuple,
    steps: &[Step],
    scalars: &ScalarValues,
    semantics: NullSemantics,
    prof: &ProfNode,
) -> Option<Tuple> {
    let mut current = t;
    for (k, step) in steps.iter().enumerate() {
        match step {
            Step::Filter(pred) => {
                if !pred.eval(RowView::one(&current), scalars, semantics).is_true() {
                    return None;
                }
                prof.add_step_rows(k, 1);
            }
            Step::Project(pos) => {
                current = current.project(pos);
            }
        }
    }
    Some(current)
}
