//! The execution engine.
//!
//! [`Engine::execute_physical`] compiles a [`PhysicalExpr`] produced by the
//! `certus-plan` planner into the native operator runtime
//! ([`CompiledPlan`]) and executes it. Compilation happens **once per
//! plan**: schema inference runs bottom-up over the plan (not once per
//! operator per execution), every condition and column list is resolved to
//! positional accessors, and `Filter`/`Project`/`Rename`/`Distinct` chains
//! are fused into single-pass pipelines. Execution then performs zero
//! column-name resolution, zero schema inference and zero logical-expression
//! reconstruction — per-row work is exactly the comparisons the operator
//! semantics require. Every per-node choice (hash join vs. nested loop vs.
//! decorrelated short-circuit) is read off the plan:
//!
//! * [`JoinAlgo::Hash`] / [`SemiAlgo::Hash`] run as **hash joins** with a
//!   residual predicate; join keys are resolved to positions at compile
//!   time and shared by the serial and partitioned paths;
//! * [`JoinAlgo::NestedLoop`] / [`SemiAlgo::NestedLoop`] compare every pair
//!   (the fate of conditions like `A = B OR B IS NULL` that hide their
//!   equality from the key extractor) — residuals evaluate over the pair of
//!   input tuples, so non-matching pairs are never concatenated;
//! * [`SemiAlgo::Decorrelated`] evaluates the inner side once and
//!   short-circuits the whole branch — for a `NOT EXISTS` that found a
//!   witness the outer side is never touched, which is what makes the
//!   translated query Q⁺2 orders of magnitude faster than Q2, as in the
//!   paper;
//! * set operations, unification semijoins, division, renaming and
//!   aggregation all run natively on owned relations (no schema clones, no
//!   scratch-set tuple clones).
//!
//! The pre-compilation execution path — which delegated most operators back
//! to the reference evaluator by wrapping materialised children in logical
//! `Values` expressions — is kept as
//! [`Engine::execute_physical_delegating`]: it is the differential oracle at
//! the physical level and the baseline of the `experiments pipeline`
//! benchmark.
//!
//! [`Engine::execute`] is the convenience entry point for logical plans: it
//! runs the statistics-free [`heuristic_plan`](certus_plan::physical::heuristic_plan) (the same choices the
//! pre-planner engine hard-coded) and executes the result.
//!
//! # Parallel execution
//!
//! Plans may contain [`PhysicalExpr::Exchange`] operators (inserted by the
//! planners when configured with a [`Parallelism`]); the compiler absorbs
//! them into the owning operator and the engine turns them into tasks
//! submitted to the process-wide work-stealing worker pool
//! ([`certus_exec::Pool`]) — no per-exchange thread spawning:
//!
//! * an exchange with [`Partitioning::Hash`](certus_plan::physical::Partitioning::Hash)
//!   under a hash (semi-)join's build side splits **both** sides by a
//!   deterministic key hash and runs build + probe of every partition on its
//!   own worker;
//! * exchanges under a union mark its branches (the translation's split-union
//!   `Q⁺` arms) for **concurrent evaluation**;
//! * an exchange with [`Partitioning::RoundRobin`](certus_plan::physical::Partitioning::RoundRobin)
//!   under a filter splits the
//!   input into contiguous morsels run through the fused step pipeline in
//!   parallel.
//!
//! With [`EngineConfig::threads`] `== 1` (or on plans without exchanges) the
//! engine takes exactly the serial code paths. All parallel paths are
//! deterministic: partition routing uses a fixed hash and results are
//! concatenated in partition order. [`EngineConfig::threads`] is the
//! *partitioning modulus* (how work is split — part of the deterministic
//! output contract and the plan-cache key); how many OS threads actually
//! run the tasks is the pool's width, fixed process-wide at first use
//! (`CERTUS_THREADS`, falling back to the machine's parallelism). Nested
//! regions and concurrent queries share that one pool, so the machine is
//! never oversubscribed no matter how many exchanges are in flight.

use crate::analyze::skeleton;
use crate::compile::{
    apply_steps_borrowed, apply_steps_borrowed_counted, apply_steps_owned,
    apply_steps_owned_counted, CompiledExpr, CompiledPlan, CompiledPredicate, RowView,
    ScalarValues, Step, VecPlan,
};
use crate::vector::{self, KeySet};
use certus_algebra::condition::Condition;
use certus_algebra::eval::Evaluator;
use certus_algebra::expr::{AggFunc, RaExpr};
use certus_algebra::{AlgebraError, NullSemantics, Result};
use certus_data::{Database, Relation, Schema, Tuple, Value};
use certus_obs::metrics::{registry, Counter};
use certus_obs::names;
use certus_obs::{ProfNode, QueryProfile, Timer};
use certus_plan::physical::{heuristic_plan_with, JoinAlgo, Parallelism, PhysicalExpr, SemiAlgo};
use std::collections::{HashMap, HashSet};
use std::sync::{Arc, OnceLock};

/// Runtime configuration of the engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineConfig {
    /// Number of worker threads exchange operators may fan out to
    /// (1 = serial execution, and the planners insert no exchanges).
    pub threads: usize,
    /// Minimum input work (rows for hash/filter operators, pairs for nested
    /// loops) before a parallel operator actually spawns threads; smaller
    /// inputs run inline so tiny queries never pay the scope overhead. The
    /// heuristic planner has no statistics, so this runtime floor is what
    /// keeps its exchanges harmless on small data.
    pub parallel_floor: usize,
    /// Whether fused pipelines and hash (semi-)join keys execute
    /// batch-at-a-time over typed columns (the default). Off, the engine
    /// takes the row-at-a-time paths of the PR-4 runtime — kept selectable
    /// so the differential tests and benchmarks can pit the two against
    /// each other on identical compiled plans (`CERTUS_VECTOR=0` flips the
    /// environment-driven default).
    pub vectorized: bool,
}

impl EngineConfig {
    /// Default [`EngineConfig::parallel_floor`].
    pub const DEFAULT_PARALLEL_FLOOR: usize = 1024;

    /// Serial execution: one thread, no exchange operators.
    pub fn serial() -> Self {
        EngineConfig::with_threads(1)
    }

    /// A configuration with an explicit thread count (clamped to ≥ 1).
    pub fn with_threads(threads: usize) -> Self {
        EngineConfig {
            threads: threads.max(1),
            parallel_floor: Self::DEFAULT_PARALLEL_FLOOR,
            vectorized: true,
        }
    }

    /// The environment-driven default: the `CERTUS_THREADS` variable when set
    /// to a positive integer, the machine's available parallelism otherwise;
    /// `CERTUS_VECTOR=0` (or `false`/`off`) selects the row-at-a-time paths.
    pub fn from_env() -> Self {
        let threads = std::env::var("CERTUS_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&t| t >= 1)
            .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1));
        let vectorized = Self::parse_vector_flag(std::env::var("CERTUS_VECTOR").ok().as_deref());
        EngineConfig::with_threads(threads).with_vectorized(vectorized)
    }

    /// Interpret a `CERTUS_VECTOR` value: `0`/`false`/`off` select the
    /// row-at-a-time paths, anything else (or unset) keeps the vectorized
    /// default. Public so tests can check the parsing without mutating the
    /// process environment.
    pub fn parse_vector_flag(value: Option<&str>) -> bool {
        !value
            .map(|v| matches!(v.trim().to_ascii_lowercase().as_str(), "0" | "false" | "off"))
            .unwrap_or(false)
    }

    /// Replace the parallel floor (0 forces every exchange to fan out, used
    /// by the differential tests to exercise the parallel paths on small
    /// instances).
    pub fn with_parallel_floor(mut self, rows: usize) -> Self {
        self.parallel_floor = rows;
        self
    }

    /// Select vectorized (`true`, the default) or row-at-a-time execution.
    pub fn with_vectorized(mut self, vectorized: bool) -> Self {
        self.vectorized = vectorized;
        self
    }

    /// The [`Parallelism`] the heuristic planner should plan for.
    pub fn parallelism(&self) -> Parallelism {
        Parallelism::new(self.threads)
    }
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig::from_env()
    }
}

/// The physical query engine. Holds a reference to the database, the null
/// semantics applied to conditions (SQL 3VL by default), and the runtime
/// configuration (thread count).
pub struct Engine<'a> {
    db: &'a Database,
    semantics: NullSemantics,
    config: EngineConfig,
    /// Worker pool parallel regions submit their tasks to. `None` uses the
    /// process-wide [`certus_exec::global`] pool; tests and embedders that
    /// want an isolated width inject a private pool.
    pool: Option<Arc<certus_exec::Pool>>,
    /// Cooperative cancellation, checked at morsel boundaries (operator
    /// entry and parallel partition starts). `None` means uncancellable.
    cancel: Option<certus_exec::CancelToken>,
}

impl<'a> Engine<'a> {
    /// An engine with explicit semantics and configuration — the one real
    /// constructor; everything else defaults into it.
    ///
    /// For new code, prefer the `certus::Session` facade: it owns the
    /// database, prepares (translates + plans + compiles) queries once,
    /// caches the compiled plans, and constructs engines like this one
    /// internally per execution.
    pub fn configured(db: &'a Database, semantics: NullSemantics, config: EngineConfig) -> Self {
        Engine { db, semantics, config, pool: None, cancel: None }
    }

    /// Submit this engine's parallel tasks to `pool` instead of the
    /// process-wide [`certus_exec::global`] pool. The pool only decides
    /// *scheduling*; partition routing (and therefore output order) is a
    /// function of [`EngineConfig::threads`] alone.
    pub fn with_worker_pool(mut self, pool: Arc<certus_exec::Pool>) -> Self {
        self.pool = Some(pool);
        self
    }

    /// Check `token` at morsel boundaries and abandon execution with
    /// [`AlgebraError::Cancelled`] once it trips. Cancellation is
    /// cooperative: a running query stops at the next operator entry or
    /// partition start, so a tripped token bounds wasted work by roughly
    /// one morsel. Tokens carry the server's per-request deadline.
    pub fn with_cancel_token(mut self, token: certus_exec::CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// The morsel-boundary cancellation check.
    #[inline]
    fn check_cancelled(&self) -> Result<()> {
        match &self.cancel {
            Some(token) if token.is_cancelled() => Err(AlgebraError::Cancelled),
            _ => Ok(()),
        }
    }

    /// Periodic cancellation check for long operator loops: every
    /// `MORSEL_ROWS`-th outer row of a quadratic scan. Operator-entry checks
    /// alone are too coarse — one nested-loop node over large inputs can run
    /// for seconds without crossing another entry.
    #[inline]
    fn check_cancelled_every(&self, outer_row: usize) -> Result<()> {
        const MORSEL_ROWS: usize = 256;
        if outer_row.is_multiple_of(MORSEL_ROWS) {
            self.check_cancelled()
        } else {
            Ok(())
        }
    }

    /// The worker pool parallel regions run on.
    fn pool(&self) -> &certus_exec::Pool {
        match &self.pool {
            Some(pool) => pool,
            None => certus_exec::global(),
        }
    }

    /// Shim over [`Engine::configured`]: SQL three-valued semantics and the
    /// environment-driven default configuration ([`EngineConfig::from_env`]).
    /// Superseded by `certus::Session` for new code.
    pub fn new(db: &'a Database) -> Self {
        Engine::configured(db, NullSemantics::Sql, EngineConfig::default())
    }

    /// Shim over [`Engine::configured`]: explicit null semantics (naive
    /// evaluation pairs with translations in the theoretical dialect), the
    /// default configuration. Superseded by `certus::Session` for new code.
    pub fn with_semantics(db: &'a Database, semantics: NullSemantics) -> Self {
        Engine::configured(db, semantics, EngineConfig::default())
    }

    /// Shim over [`Engine::configured`]: explicit configuration, SQL
    /// semantics. Superseded by `certus::Session` for new code.
    pub fn with_config(db: &'a Database, config: EngineConfig) -> Self {
        Engine::configured(db, NullSemantics::Sql, config)
    }

    /// The engine's runtime configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The physical plan [`Engine::execute`] would run: the statistics-free
    /// heuristic plan, with exchange operators iff `threads > 1`.
    pub fn plan(&self, expr: &RaExpr) -> Result<PhysicalExpr> {
        Ok(heuristic_plan_with(expr, self.db, &self.config.parallelism())?)
    }

    /// Execute a logical query: plan it with the statistics-free heuristic
    /// planner (inserting exchanges when this engine is multi-threaded),
    /// then compile and execute the physical plan.
    pub fn execute(&self, expr: &RaExpr) -> Result<Relation> {
        let plan = self.plan(expr)?;
        self.execute_physical(&plan)
    }

    /// Compile a physical plan into the native operator runtime. All schema
    /// inference and column-name resolution happens here; the returned
    /// [`CompiledPlan`] owns everything it needs and can be executed any
    /// number of times (it stays valid as long as the database's schema
    /// epoch does).
    pub fn compile(&self, plan: &PhysicalExpr) -> Result<CompiledPlan> {
        CompiledPlan::compile(plan, self.db)
    }

    /// Compile and execute a physical plan, materialising its result.
    pub fn execute_physical(&self, plan: &PhysicalExpr) -> Result<Relation> {
        let compiled = self.compile(plan)?;
        self.execute_compiled(&compiled)
    }

    /// Execute an already compiled plan. Performs zero compilation work: the
    /// compiled operator tree runs with purely positional per-row work, and
    /// uncorrelated scalar subqueries are evaluated lazily, at most once per
    /// execution.
    pub fn execute_compiled(&self, plan: &CompiledPlan) -> Result<Relation> {
        let scalars =
            ScalarCtx { exprs: &plan.scalars, values: ScalarValues::new(plan.scalars.len()) };
        self.exec(&plan.root, &scalars, None)
    }

    /// Execute an already compiled plan under instrumentation: alongside the
    /// result, return a [`QueryProfile`] mirroring the compiled operator
    /// tree, with per-operator actuals — output rows, wall time, batch and
    /// morsel counts, vectorized-vs-row-fallback decisions, hash build sizes
    /// and probe hit rates, and per-filter survivor counts inside fused
    /// pipelines. The un-instrumented [`Engine::execute_compiled`] path is
    /// untouched: profiling work only happens on this call.
    ///
    /// Wall times are monotonic and inclusive (a node's time contains its
    /// children's; [`QueryProfile::self_wall_ns`] subtracts them), and are
    /// all zero when the `timing` feature of `certus-obs` is disabled.
    pub fn execute_compiled_profiled(
        &self,
        plan: &CompiledPlan,
    ) -> Result<(Relation, QueryProfile)> {
        let prof = skeleton(&plan.root);
        let scalars =
            ScalarCtx { exprs: &plan.scalars, values: ScalarValues::new(plan.scalars.len()) };
        let rel = self.exec(&plan.root, &scalars, Some(&prof))?;
        Ok((rel, prof.finish()))
    }

    /// Execute a physical plan through the **pre-compilation delegating
    /// path**: joins and semijoins run natively (resolving join keys by name
    /// on every execution), while every other operator is delegated to the
    /// reference evaluator by wrapping its materialised children back into
    /// logical `Values` expressions. Serial, deliberately kept as the
    /// differential oracle at the physical level and as the baseline of the
    /// `experiments pipeline` benchmark.
    pub fn execute_physical_delegating(&self, plan: &PhysicalExpr) -> Result<Relation> {
        let ev = Evaluator::new(self.db, self.semantics);
        self.exec_delegating(plan, &ev)
    }

    /// Ensure the scalar subqueries a predicate reads have been evaluated.
    /// Called right before an operator's per-row loop, and only when that
    /// loop will actually run — so a branch the decorrelated short-circuit
    /// skips never evaluates (or surfaces errors from) its subqueries,
    /// matching the reference evaluator's lazy behaviour. The subqueries are
    /// opaque to the planner; the reference evaluator computes them.
    fn ensure_scalars(&self, scalars: &ScalarCtx<'_>, refs: &[usize]) -> Result<()> {
        for &i in refs {
            if scalars.values.is_set(i) {
                continue;
            }
            static SUBQ: OnceLock<Arc<Counter>> = OnceLock::new();
            SUBQ.get_or_init(|| registry().counter(names::ENGINE_SUBQUERY_EVALS)).incr();
            let rel = Evaluator::new(self.db, self.semantics).eval(&scalars.exprs[i])?;
            if rel.arity() != 1 {
                return Err(AlgebraError::ScalarSubquery(format!(
                    "scalar subquery produced {} columns",
                    rel.arity()
                )));
            }
            if rel.len() > 1 {
                return Err(AlgebraError::ScalarSubquery(format!(
                    "scalar subquery produced {} rows",
                    rel.len()
                )));
            }
            scalars.values.set(i, rel.tuples().first().map(|t| t[0].clone()));
        }
        Ok(())
    }

    /// [`Engine::ensure_scalars`] for every filter predicate of a fused step
    /// chain.
    fn ensure_step_scalars(&self, steps: &[Step], scalars: &ScalarCtx<'_>) -> Result<()> {
        for step in steps {
            if let Step::Filter(pred) = step {
                self.ensure_scalars(scalars, pred.scalar_refs())?;
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Native compiled execution
    // ------------------------------------------------------------------

    /// Execute a join-like operator's child, *borrowing* the base relation
    /// when the child is an unaliased scan — the join operators only read
    /// tuples through positions (output schemas are precompiled), so copying
    /// the whole base table per execution would be pure overhead.
    fn exec_rel<'e>(
        &'e self,
        node: &CompiledExpr,
        scalars: &ScalarCtx<'_>,
        prof: Option<&ProfNode>,
    ) -> Result<std::borrow::Cow<'e, Relation>> {
        use std::borrow::Cow;
        if let CompiledExpr::Scan { name, schema } = node {
            let rel = self.db.relation(name).map_err(AlgebraError::Data)?;
            if Arc::ptr_eq(rel.schema(), schema) || rel.schema() == schema {
                if let Some(p) = prof {
                    // Borrowing the base table is free; the scan still counts
                    // as one invocation producing the table's rows.
                    p.stats.record_invocation(rel.len() as u64, 0);
                }
                return Ok(Cow::Borrowed(rel));
            }
        }
        self.exec(node, scalars, prof).map(Cow::Owned)
    }

    /// Execute one node, recording its invocation (output rows + inclusive
    /// wall time) into `prof` when instrumented. All recursion goes through
    /// here, so every profile node gets its actuals exactly once per
    /// execution.
    fn exec(
        &self,
        node: &CompiledExpr,
        scalars: &ScalarCtx<'_>,
        prof: Option<&ProfNode>,
    ) -> Result<Relation> {
        match prof {
            None => self.exec_node(node, scalars, None),
            Some(p) => {
                let timer = Timer::start();
                let rel = self.exec_node(node, scalars, prof)?;
                p.stats.record_invocation(rel.len() as u64, timer.elapsed_ns());
                Ok(rel)
            }
        }
    }

    fn exec_node(
        &self,
        node: &CompiledExpr,
        scalars: &ScalarCtx<'_>,
        prof: Option<&ProfNode>,
    ) -> Result<Relation> {
        // Operator entry is a morsel boundary: a cancelled query stops here
        // instead of descending into more work.
        self.check_cancelled()?;
        // The profile node for the i-th child (indices follow the skeleton:
        // binary operators are [left, right], unions are arms in order).
        let pc = |i: usize| prof.and_then(|p| p.child(i));
        match node {
            CompiledExpr::Scan { name, schema } => {
                let rel = self.db.relation(name).map_err(AlgebraError::Data)?;
                Ok(Relation::from_parts(schema.clone(), rel.tuples().to_vec()))
            }
            CompiledExpr::Values { rel } => Ok(rel.clone()),
            CompiledExpr::Opaque { expr, .. } => Evaluator::new(self.db, self.semantics).eval(expr),
            CompiledExpr::Fused { source, steps, schema, dedup, partitions, vec_plan } => {
                self.exec_fused(source, steps, schema, *dedup, *partitions, vec_plan, scalars, prof)
            }
            CompiledExpr::HashJoin {
                left,
                right,
                left_keys,
                right_keys,
                residual,
                schema,
                partitions,
            } => {
                let l = self.exec_rel(left, scalars, pc(0))?;
                let r = self.exec_rel(right, scalars, pc(1))?;
                self.hash_join(
                    &l,
                    &r,
                    left_keys,
                    right_keys,
                    residual,
                    schema,
                    *partitions,
                    scalars,
                    prof,
                )
            }
            CompiledExpr::NlJoin { left, right, pred, schema, partitions } => {
                let l = self.exec_rel(left, scalars, pc(0))?;
                let r = self.exec_rel(right, scalars, pc(1))?;
                self.nl_join(&l, &r, pred, schema, *partitions, scalars, prof)
            }
            CompiledExpr::HashSemi {
                left,
                right,
                left_keys,
                right_keys,
                residual,
                keep_matching,
                partitions,
            } => {
                let l = self.exec_rel(left, scalars, pc(0))?;
                let r = self.exec_rel(right, scalars, pc(1))?;
                self.hash_semi(
                    l,
                    &r,
                    left_keys,
                    right_keys,
                    residual,
                    *keep_matching,
                    *partitions,
                    scalars,
                    prof,
                )
            }
            CompiledExpr::NlSemi { left, right, pred, keep_matching, partitions } => {
                let l = self.exec_rel(left, scalars, pc(0))?;
                let r = self.exec_rel(right, scalars, pc(1))?;
                self.nl_semi(l, &r, pred, *keep_matching, *partitions, scalars, prof)
            }
            CompiledExpr::DecorrelatedSemi { left, right, pred, keep_matching, left_schema } => {
                // The predicate never looks at the outer side, so the inner
                // side decides the fate of *all* outer tuples at once.
                let r = self.exec(right, scalars, pc(1))?;
                if let Some(p) = prof {
                    p.stats.record_rows_in(r.len() as u64);
                }
                if !r.is_empty() {
                    self.ensure_scalars(scalars, pred.scalar_refs())?;
                }
                let exists = r.iter().any(|rt| {
                    pred.eval(RowView::one(rt), &scalars.values, self.semantics).is_true()
                });
                if exists == *keep_matching {
                    self.exec(left, scalars, pc(0))
                } else {
                    // Short-circuit: for a NOT EXISTS that found a witness
                    // the answer is empty and the outer side never runs.
                    Ok(Relation::empty(left_schema.clone()))
                }
            }
            CompiledExpr::Union { arms, schema, parallel } => {
                self.exec_union(arms, schema, *parallel, scalars, prof)
            }
            CompiledExpr::Intersect { left, right, partitions } => {
                let l = self.exec(left, scalars, pc(0))?;
                let r = self.exec(right, scalars, pc(1))?;
                if let Some(p) = prof {
                    p.stats.record_rows_in((l.len() + r.len()) as u64);
                }
                self.exec_setop(l, &r, true, *partitions, prof)
            }
            CompiledExpr::Difference { left, right, partitions } => {
                let l = self.exec(left, scalars, pc(0))?;
                let r = self.exec(right, scalars, pc(1))?;
                if let Some(p) = prof {
                    p.stats.record_rows_in((l.len() + r.len()) as u64);
                }
                self.exec_setop(l, &r, false, *partitions, prof)
            }
            CompiledExpr::UnifySemi { left, right, keep_matching } => {
                let l = self.exec(left, scalars, pc(0))?;
                let r = self.exec(right, scalars, pc(1))?;
                if let Some(p) = prof {
                    p.stats.record_rows_in((l.len() + r.len()) as u64);
                }
                let keep: Vec<bool> = l
                    .iter()
                    .map(|lt| {
                        r.iter().any(|rt| certus_data::unify::tuples_unify(lt, rt))
                            == *keep_matching
                    })
                    .collect();
                Ok(retain_by_flags(l, keep))
            }
            CompiledExpr::Division { left, right, key_positions, shared_positions, schema } => {
                let l = self.exec(left, scalars, pc(0))?;
                let r = self.exec(right, scalars, pc(1))?;
                if let Some(p) = prof {
                    p.stats.record_rows_in((l.len() + r.len()) as u64);
                }
                let mut all: HashSet<&Tuple> = HashSet::with_capacity(l.len());
                all.extend(l.iter());
                let mut seen_keys = HashSet::with_capacity(l.len());
                let mut tuples = Vec::new();
                for lt in l.iter() {
                    let key = lt.project(key_positions);
                    if !seen_keys.insert(key.clone()) {
                        continue;
                    }
                    let ok = r.iter().all(|rt| {
                        // Reassemble a dividend tuple with this key and the
                        // divisor values.
                        let mut vals: Vec<Value> = lt.values().to_vec();
                        for (ri, &lp) in shared_positions.iter().enumerate() {
                            vals[lp] = rt[ri].clone();
                        }
                        all.contains(&Tuple::new(vals))
                    });
                    if ok {
                        tuples.push(key);
                    }
                }
                Ok(Relation::from_parts(schema.clone(), tuples))
            }
            CompiledExpr::Rename { input, schema } => {
                let rel = self.exec(input, scalars, pc(0))?;
                if let Some(p) = prof {
                    p.stats.record_rows_in(rel.len() as u64);
                }
                Ok(Relation::from_parts(schema.clone(), rel.into_tuples()))
            }
            CompiledExpr::Distinct { input, partitions } => {
                let rel = self.exec(input, scalars, pc(0))?;
                if let Some(p) = prof {
                    p.stats.record_rows_in(rel.len() as u64);
                }
                self.exec_distinct(rel, *partitions, prof)
            }
            CompiledExpr::Aggregate { input, group_pos, aggs, schema, partitions } => {
                let rel = self.exec(input, scalars, pc(0))?;
                if let Some(p) = prof {
                    p.stats.record_rows_in(rel.len() as u64);
                }
                self.exec_aggregate(rel, group_pos, aggs, schema, *partitions, prof)
            }
        }
    }

    /// Execute a standalone distinct. With plan-side partitions and enough
    /// rows, rows are hash-partitioned into selection vectors; each pool
    /// task keeps its partition's first occurrences, and the merged survivor
    /// indices (sorted back to input order) reproduce the serial
    /// first-occurrence-in-input-order result exactly.
    fn exec_distinct(
        &self,
        rel: Relation,
        partitions: usize,
        prof: Option<&ProfNode>,
    ) -> Result<Relation> {
        let n = if partitions > 0 && self.config.threads > 1 {
            self.workers(partitions, rel.len())
        } else {
            1
        };
        if n <= 1 {
            return Ok(rel.into_distinct());
        }
        if let Some(p) = prof {
            p.stats.record_parallel(n as u64, self.pool().width().min(n) as u64);
        }
        let hashes = self.row_hashes(rel.tuples(), None)?;
        let mut parts: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (i, &h) in hashes.iter().enumerate() {
            parts[(h % n as u64) as usize].push(i as u32);
        }
        let mut kept = self.parallel_flat(&parts, |part| {
            let mut buckets: HashMap<u64, Vec<u32>> = HashMap::with_capacity(part.len());
            let mut keep = Vec::new();
            'rows: for &i in part {
                let bucket = buckets.entry(hashes[i as usize]).or_default();
                for &j in bucket.iter() {
                    if rel.tuples()[j as usize] == rel.tuples()[i as usize] {
                        continue 'rows;
                    }
                }
                bucket.push(i);
                keep.push(i);
            }
            Ok(keep)
        })?;
        kept.sort_unstable();
        let mut flags = vec![false; rel.len()];
        for &i in &kept {
            flags[i as usize] = true;
        }
        Ok(retain_by_flags(rel, flags))
    }

    /// Set intersection (`want_member`) or difference. With plan-side
    /// partitions and enough rows, both sides are hash-partitioned by full
    /// row (equal tuples always share a partition) and each pool task
    /// decides membership for its partition's left rows; decisions merge
    /// into per-row keep flags, so output order matches the serial pass.
    fn exec_setop(
        &self,
        l: Relation,
        r: &Relation,
        want_member: bool,
        partitions: usize,
        prof: Option<&ProfNode>,
    ) -> Result<Relation> {
        let n = if partitions > 0 && self.config.threads > 1 {
            self.workers(partitions, l.len() + r.len())
        } else {
            1
        };
        if n <= 1 {
            return Ok(set_filter(l, r, want_member));
        }
        if let Some(p) = prof {
            p.stats.record_parallel(n as u64, self.pool().width().min(n) as u64);
        }
        let (l_hash, r_hash) = self.row_hashes_pair(l.tuples(), r.tuples())?;
        let mut parts: Vec<(Vec<u32>, Vec<u32>)> = vec![Default::default(); n];
        for (i, &h) in l_hash.iter().enumerate() {
            parts[(h % n as u64) as usize].0.push(i as u32);
        }
        for (j, &h) in r_hash.iter().enumerate() {
            parts[(h % n as u64) as usize].1.push(j as u32);
        }
        let members = self.parallel_flat(&parts, |(li, ri)| {
            let mut table: HashMap<u64, Vec<u32>> = HashMap::with_capacity(ri.len());
            for &j in ri {
                table.entry(r_hash[j as usize]).or_default().push(j);
            }
            Ok(li
                .iter()
                .copied()
                .filter(|&i| {
                    table.get(&l_hash[i as usize]).is_some_and(|cands| {
                        cands.iter().any(|&j| r.tuples()[j as usize] == l.tuples()[i as usize])
                    })
                })
                .collect())
        })?;
        let mut keep = vec![!want_member; l.len()];
        for i in members {
            keep[i as usize] = want_member;
        }
        let mut out = retain_by_flags(l, keep);
        out.dedup();
        Ok(out)
    }

    /// Execute grouping + aggregation. With plan-side partitions, a
    /// non-empty group key and enough rows, rows are hash-partitioned on
    /// the group key; each pool task groups its partition (recording every
    /// group's first input index), the groups merge sorted by first
    /// occurrence, and the aggregates are computed in that order — the
    /// exact group order (and fresh-null allocation order) of the serial
    /// pass.
    fn exec_aggregate(
        &self,
        rel: Relation,
        group_pos: &[usize],
        aggs: &[(AggFunc, Option<usize>)],
        schema: &Arc<Schema>,
        partitions: usize,
        prof: Option<&ProfNode>,
    ) -> Result<Relation> {
        let n = if partitions > 0 && !group_pos.is_empty() && self.config.threads > 1 {
            self.workers(partitions, rel.len())
        } else {
            1
        };
        if n > 1 {
            if let Some(p) = prof {
                p.stats.record_parallel(n as u64, self.pool().width().min(n) as u64);
            }
            let hashes = self.row_hashes(rel.tuples(), Some(group_pos))?;
            let mut parts: Vec<Vec<u32>> = vec![Vec::new(); n];
            for (i, &h) in hashes.iter().enumerate() {
                parts[(h % n as u64) as usize].push(i as u32);
            }
            let keys_eq = |a: u32, b: u32| {
                group_pos
                    .iter()
                    .all(|&p| rel.tuples()[a as usize][p] == rel.tuples()[b as usize][p])
            };
            let mut groups: Vec<(u32, Vec<u32>)> = self.parallel_flat(&parts, |part| {
                // Local groups in first-occurrence order; the hash index
                // maps to positions in the local group list.
                let mut index: HashMap<u64, Vec<usize>> = HashMap::with_capacity(part.len());
                let mut local: Vec<(u32, Vec<u32>)> = Vec::new();
                'rows: for &i in part {
                    let slot = index.entry(hashes[i as usize]).or_default();
                    for &g in slot.iter() {
                        if keys_eq(local[g].0, i) {
                            local[g].1.push(i);
                            continue 'rows;
                        }
                    }
                    slot.push(local.len());
                    local.push((i, vec![i]));
                }
                Ok(local)
            })?;
            groups.sort_unstable_by_key(|g| g.0);
            let mut tuples = Vec::with_capacity(groups.len());
            for (first, members) in groups {
                let rows: Vec<&Tuple> =
                    members.iter().map(|&i| &rel.tuples()[i as usize]).collect();
                let mut out: Vec<Value> =
                    rel.tuples()[first as usize].project(group_pos).into_values();
                for (func, pos) in aggs {
                    out.push(certus_algebra::eval::compute_aggregate(*func, *pos, &rows));
                }
                tuples.push(Tuple::new(out));
            }
            return Ok(Relation::from_parts(schema.clone(), tuples));
        }
        let mut groups: HashMap<Tuple, Vec<&Tuple>> = HashMap::with_capacity(rel.len());
        let mut order: Vec<Tuple> = Vec::new();
        for t in rel.iter() {
            let key = t.project(group_pos);
            if !groups.contains_key(&key) {
                order.push(key.clone());
            }
            groups.entry(key).or_default().push(t);
        }
        // A global aggregate over an empty input still yields a row.
        if group_pos.is_empty() && groups.is_empty() {
            let key = Tuple::empty();
            order.push(key.clone());
            groups.insert(key, Vec::new());
        }
        let mut tuples = Vec::with_capacity(order.len());
        for key in order {
            let rows = &groups[&key];
            let mut out: Vec<Value> = key.into_values();
            for (func, pos) in aggs {
                out.push(certus_algebra::eval::compute_aggregate(*func, *pos, rows));
            }
            tuples.push(Tuple::new(out));
        }
        Ok(Relation::from_parts(schema.clone(), tuples))
    }

    /// Deterministic per-row hashes over the given positions (the whole
    /// tuple when `pos` is `None`), used to partition rows for parallel
    /// distinct/set-op/aggregate execution. The only requirement is that
    /// equal projected tuples hash equal *within one call* — the partition
    /// modulus consumes the hashes and collisions always re-compare tuples.
    ///
    /// With vectorized execution on, this reuses the join-side column-wise
    /// hasher ([`KeySet::build`] with nulls hashed by id) instead of running
    /// `DefaultHasher` value-by-value over every row; inputs whose columns
    /// land in the mixed-variant fallback keep the row path, computed
    /// morsel-parallel on the pool for large inputs.
    fn row_hashes(&self, rows: &[Tuple], pos: Option<&[usize]>) -> Result<Vec<u64>> {
        if let Some(hashes) = self.vec_row_hashes(rows, pos) {
            return Ok(hashes);
        }
        self.row_hashes_fallback(rows, pos)
    }

    /// Per-row full-tuple hashes for *both* sides of a set operation. Equal
    /// tuples across the two relations must hash equal, so the vectorized
    /// path is taken only when both sides column-hash successfully **and**
    /// with pairwise identical column representations (a null in an `Int`
    /// column and the same null in a `Str` column mix different placeholder
    /// bits); otherwise both sides take the row path together.
    fn row_hashes_pair(&self, l: &[Tuple], r: &[Tuple]) -> Result<(Vec<u64>, Vec<u64>)> {
        if self.config.vectorized {
            let pool = self.db.str_pool();
            let arity = l.first().or_else(|| r.first()).map_or(0, |t| t.values().len());
            let pos: Vec<usize> = (0..arity).collect();
            if let (Some(lk), Some(rk)) =
                (KeySet::build(l, &pos, true, pool), KeySet::build(r, &pos, true, pool))
            {
                if lk.compatible(&rk) {
                    return Ok((lk.hashes, rk.hashes));
                }
            }
        }
        Ok((self.row_hashes_fallback(l, None)?, self.row_hashes_fallback(r, None)?))
    }

    /// The vectorized arm of [`Engine::row_hashes`]: column-wise hashing via
    /// [`KeySet::build`], with nulls hashed by their id (`allow_nulls`) so
    /// every row stays valid. `None` when vectorized execution is off or a
    /// projected column lands in the `Values` fallback.
    fn vec_row_hashes(&self, rows: &[Tuple], pos: Option<&[usize]>) -> Option<Vec<u64>> {
        if !self.config.vectorized || rows.is_empty() {
            return None;
        }
        let all: Vec<usize>;
        let pos = match pos {
            Some(pos) => pos,
            None => {
                all = (0..rows[0].values().len()).collect();
                &all
            }
        };
        KeySet::build(rows, pos, true, self.db.str_pool()).map(|ks| ks.hashes)
    }

    /// The row-at-a-time arm of [`Engine::row_hashes`]: `DefaultHasher` over
    /// the projected values, morsel-parallel on the pool for large inputs.
    fn row_hashes_fallback(&self, rows: &[Tuple], pos: Option<&[usize]>) -> Result<Vec<u64>> {
        use std::hash::{Hash, Hasher};
        let hash_one = |t: &Tuple| -> u64 {
            let mut h = std::collections::hash_map::DefaultHasher::new();
            match pos {
                Some(pos) => {
                    for &p in pos {
                        t[p].hash(&mut h);
                    }
                }
                None => t.hash(&mut h),
            }
            h.finish()
        };
        let n = self.workers(self.config.threads, rows.len());
        if n <= 1 {
            return Ok(rows.iter().map(hash_one).collect());
        }
        let ranges = index_ranges(rows.len(), n);
        self.parallel_flat(&ranges, |range| Ok(range.clone().map(|i| hash_one(&rows[i])).collect()))
    }

    /// Execute a fused step pipeline. With vectorized execution on (and the
    /// chain carrying a [`VecPlan`]), the filters evaluate column-wise and
    /// the survivors are gathered once at the pipeline edge; otherwise a
    /// scan source streams borrowed base tuples (rows dropped by a filter
    /// are never cloned) and any other source is executed and its tuples
    /// moved through the steps.
    #[allow(clippy::too_many_arguments)]
    fn exec_fused(
        &self,
        source: &CompiledExpr,
        steps: &[Step],
        schema: &Arc<Schema>,
        dedup: bool,
        partitions: usize,
        vec_plan: &Option<VecPlan>,
        scalars: &ScalarCtx<'_>,
        prof: Option<&ProfNode>,
    ) -> Result<Relation> {
        let vec_plan = if self.config.vectorized { vec_plan.as_ref() } else { None };
        // Per-step survivor counts only make sense for filter steps; the
        // vectorized path needs the mapping from its i-th filter (vec plans
        // drop projections) back to the step index.
        let vprof = prof.map(|p| {
            let map: Vec<usize> = steps
                .iter()
                .enumerate()
                .filter(|(_, s)| matches!(s, Step::Filter(_)))
                .map(|(i, _)| i)
                .collect();
            (p, map)
        });
        let vprof = vprof.as_ref().map(|(p, m)| (*p, m.as_slice()));
        let mut out = match source {
            CompiledExpr::Scan { name, .. } => {
                let rel = self.db.relation(name).map_err(AlgebraError::Data)?;
                if let Some(p) = prof {
                    p.stats.record_rows_in(rel.len() as u64);
                    // The pipeline streams the base table without executing
                    // the scan node; credit it its rows anyway.
                    if let Some(c) = p.child(0) {
                        c.stats.record_invocation(rel.len() as u64, 0);
                    }
                }
                if !rel.is_empty() {
                    self.ensure_step_scalars(steps, scalars)?;
                }
                let tuples = match vec_plan {
                    Some(vp) => {
                        self.run_steps_vectorized(rel.tuples(), vp, partitions, scalars, vprof)?
                    }
                    None => {
                        self.run_steps_borrowed(rel.tuples(), steps, partitions, scalars, prof)?
                    }
                };
                Relation::from_parts(schema.clone(), tuples)
            }
            other => {
                let input = self.exec(other, scalars, prof.and_then(|p| p.child(0)))?;
                if let Some(p) = prof {
                    p.stats.record_rows_in(input.len() as u64);
                }
                if !input.is_empty() {
                    self.ensure_step_scalars(steps, scalars)?;
                }
                let tuples = if let Some(vp) = vec_plan {
                    let input_tuples = input.into_tuples();
                    self.run_steps_vectorized(&input_tuples, vp, partitions, scalars, vprof)?
                } else {
                    let n = self.step_workers(partitions, input.len());
                    if n > 1 {
                        let input_tuples = input.into_tuples();
                        self.run_steps_parallel(&input_tuples, steps, n, scalars, prof)?
                    } else {
                        if let Some(p) = prof {
                            p.stats.record_batches(1);
                        }
                        match prof {
                            Some(p) => input
                                .into_tuples()
                                .into_iter()
                                .filter_map(|t| {
                                    apply_steps_owned_counted(
                                        t,
                                        steps,
                                        &scalars.values,
                                        self.semantics,
                                        p,
                                    )
                                })
                                .collect(),
                            None => input
                                .into_tuples()
                                .into_iter()
                                .filter_map(|t| {
                                    apply_steps_owned(t, steps, &scalars.values, self.semantics)
                                })
                                .collect(),
                        }
                    }
                };
                Relation::from_parts(schema.clone(), tuples)
            }
        };
        if dedup {
            out.dedup();
        }
        Ok(out)
    }

    fn run_steps_borrowed(
        &self,
        input: &[Tuple],
        steps: &[Step],
        partitions: usize,
        scalars: &ScalarCtx<'_>,
        prof: Option<&ProfNode>,
    ) -> Result<Vec<Tuple>> {
        let n = self.step_workers(partitions, input.len());
        if n > 1 {
            self.run_steps_parallel(input, steps, n, scalars, prof)
        } else {
            if let Some(p) = prof {
                p.stats.record_batches(1);
            }
            Ok(match prof {
                Some(p) => input
                    .iter()
                    .filter_map(|t| {
                        apply_steps_borrowed_counted(t, steps, &scalars.values, self.semantics, p)
                    })
                    .collect(),
                None => input
                    .iter()
                    .filter_map(|t| apply_steps_borrowed(t, steps, &scalars.values, self.semantics))
                    .collect(),
            })
        }
    }

    /// Batch-at-a-time step pipeline: per morsel, extract the filter
    /// columns, evaluate the predicates into truth masks, gather survivors.
    /// Output order is input order, identical to the serial row pass.
    fn run_steps_vectorized(
        &self,
        input: &[Tuple],
        plan: &VecPlan,
        partitions: usize,
        scalars: &ScalarCtx<'_>,
        prof: Option<(&ProfNode, &[usize])>,
    ) -> Result<Vec<Tuple>> {
        let pool = self.db.str_pool();
        let n = self.step_workers(partitions, input.len());
        if let Some((p, _)) = prof {
            p.stats.record_vec_run();
        }
        if n > 1 {
            let morsels: Vec<&[Tuple]> = chunks_of(input, n);
            if let Some((p, _)) = prof {
                p.stats.record_batches(morsels.len() as u64);
                // Small inputs chunk into fewer morsels than `n`; never
                // report more workers than there are tasks to run.
                let cap = self.pool().width().min(n).min(morsels.len());
                p.stats.record_parallel(morsels.len() as u64, cap as u64);
            }
            self.parallel_tuples(&morsels, |chunk| {
                Ok(vector::filter_gather(chunk, plan, &scalars.values, self.semantics, pool, prof))
            })
        } else {
            if let Some((p, _)) = prof {
                p.stats.record_batches(1);
            }
            Ok(vector::filter_gather(input, plan, &scalars.values, self.semantics, pool, prof))
        }
    }

    /// Morsel-parallel step pipeline: contiguous chunks, outputs concatenated
    /// in order — identical output order to the serial pass.
    fn run_steps_parallel(
        &self,
        input: &[Tuple],
        steps: &[Step],
        workers: usize,
        scalars: &ScalarCtx<'_>,
        prof: Option<&ProfNode>,
    ) -> Result<Vec<Tuple>> {
        let morsels: Vec<&[Tuple]> = chunks_of(input, workers);
        if let Some(p) = prof {
            p.stats.record_batches(morsels.len() as u64);
            // Small inputs chunk into fewer morsels than `workers`; never
            // report more workers than there are tasks to run.
            let cap = self.pool().width().min(workers).min(morsels.len());
            p.stats.record_parallel(morsels.len() as u64, cap as u64);
        }
        self.parallel_tuples(&morsels, |chunk| {
            Ok(match prof {
                Some(p) => chunk
                    .iter()
                    .filter_map(|t| {
                        apply_steps_borrowed_counted(t, steps, &scalars.values, self.semantics, p)
                    })
                    .collect(),
                None => chunk
                    .iter()
                    .filter_map(|t| apply_steps_borrowed(t, steps, &scalars.values, self.semantics))
                    .collect(),
            })
        })
    }

    /// Workers for a fused pipeline: only pipelines whose plan carried a
    /// round-robin exchange may fan out.
    fn step_workers(&self, partitions: usize, rows: usize) -> usize {
        if partitions == 0 || self.config.threads <= 1 {
            1
        } else {
            self.workers(partitions, rows)
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn hash_join(
        &self,
        l: &Relation,
        r: &Relation,
        l_pos: &[usize],
        r_pos: &[usize],
        residual: &CompiledPredicate,
        schema: &Arc<Schema>,
        partitions: usize,
        scalars: &ScalarCtx<'_>,
        prof: Option<&ProfNode>,
    ) -> Result<Relation> {
        let allow_nulls = self.semantics == NullSemantics::Naive;
        if !l.is_empty() && !r.is_empty() {
            self.ensure_scalars(scalars, residual.scalar_refs())?;
        }
        let n = if partitions > 0 && self.config.threads > 1 {
            self.workers(partitions, l.len() + r.len())
        } else {
            1
        };
        if let Some(p) = prof {
            p.stats.record_rows_in((l.len() + r.len()) as u64);
            if n > 1 {
                p.stats.record_parallel(n as u64, self.pool().width().min(n) as u64);
            }
        }
        if self.config.vectorized {
            if let Some(out) =
                self.hash_join_vec(l, r, l_pos, r_pos, residual, schema, n, scalars, prof)?
            {
                return Ok(out);
            }
            if let Some(p) = prof {
                p.stats.record_row_fallback();
            }
        }
        if n > 1 {
            // Partitioned parallel hash join: route both sides' row
            // *indices* by a deterministic key hash — selection vectors
            // travel between workers, never cloned keys — then build + probe
            // every partition on its own pool task; outputs concatenate in
            // partition order.
            let (build, r_hash, _) = route_indices(r, r_pos, allow_nulls, n);
            let (probe, l_hash, _) = route_indices(l, l_pos, allow_nulls, n);
            if let Some(p) = prof {
                p.stats.record_build_rows(build.iter().map(|part| part.len() as u64).sum());
            }
            let parts: Vec<_> = build.into_iter().zip(probe).collect();
            let out = self.parallel_tuples(&parts, |(b, pidx)| {
                let mut table: HashMap<u64, Vec<u32>> = HashMap::with_capacity(b.len());
                for &j in b {
                    table.entry(r_hash[j as usize]).or_default().push(j);
                }
                let mut out = Vec::new();
                for &i in pidx {
                    let lt = &l.tuples()[i as usize];
                    let before = out.len();
                    if let Some(candidates) = table.get(&l_hash[i as usize]) {
                        for &j in candidates {
                            let rt = &r.tuples()[j as usize];
                            if keys_eq_at(lt, l_pos, rt, r_pos)
                                && residual
                                    .eval(RowView::pair(lt, rt), &scalars.values, self.semantics)
                                    .is_true()
                            {
                                out.push(lt.concat(rt));
                            }
                        }
                    }
                    if let Some(pr) = prof {
                        let hit = out.len() > before;
                        pr.stats.record_probes(hit as u64, (!hit) as u64);
                    }
                }
                Ok(out)
            })?;
            return Ok(Relation::from_parts(schema.clone(), out));
        }
        let table = build_hash(r, r_pos, allow_nulls);
        if let Some(p) = prof {
            p.stats.record_build_rows(table.values().map(|v| v.len() as u64).sum());
        }
        let mut out = Vec::new();
        let mut key: Vec<Value> = Vec::with_capacity(l_pos.len());
        for lt in l.iter() {
            let before = out.len();
            if fill_key(lt, l_pos, allow_nulls, &mut key) {
                if let Some(candidates) = table.get(key.as_slice()) {
                    for &rt in candidates {
                        if residual
                            .eval(RowView::pair(lt, rt), &scalars.values, self.semantics)
                            .is_true()
                        {
                            out.push(lt.concat(rt));
                        }
                    }
                }
            }
            if let Some(p) = prof {
                let hit = out.len() > before;
                p.stats.record_probes(hit as u64, (!hit) as u64);
            }
        }
        Ok(Relation::from_parts(schema.clone(), out))
    }

    /// Vectorized hash join: key columns extracted once per side, per-row
    /// hashes computed column-wise, the table keyed on the precomputed
    /// hashes over row *indices* (collisions verified by typed comparison) —
    /// no per-row key clones. Returns `None` when a key column cannot be
    /// typed (mixed variants / all null) — the caller keeps the row path.
    #[allow(clippy::too_many_arguments)]
    fn hash_join_vec(
        &self,
        l: &Relation,
        r: &Relation,
        l_pos: &[usize],
        r_pos: &[usize],
        residual: &CompiledPredicate,
        schema: &Arc<Schema>,
        workers: usize,
        scalars: &ScalarCtx<'_>,
        prof: Option<&ProfNode>,
    ) -> Result<Option<Relation>> {
        let allow_nulls = self.semantics == NullSemantics::Naive;
        let pool = self.db.str_pool();
        let Some(build) = KeySet::build(r.tuples(), r_pos, allow_nulls, pool) else {
            return Ok(None);
        };
        let Some(probe) = KeySet::build(l.tuples(), l_pos, allow_nulls, pool) else {
            return Ok(None);
        };
        if !probe.compatible(&build) {
            // Differently-typed key columns can never be syntactically equal
            // — except through nulls, which only participate under naive
            // semantics (row fallback there).
            return if allow_nulls {
                Ok(None)
            } else {
                if let Some(p) = prof {
                    p.stats.record_vec_run();
                }
                Ok(Some(Relation::from_parts(schema.clone(), Vec::new())))
            };
        }
        if let Some(p) = prof {
            p.stats.record_vec_run();
            p.stats.record_build_rows(build.valid.iter().filter(|v| **v).count() as u64);
        }
        let table = build.table();
        let probe_one = |i: usize, out: &mut Vec<Tuple>| {
            let before = out.len();
            if probe.valid[i] {
                if let Some(candidates) = table.get(&probe.hashes[i]) {
                    let lt = &l.tuples()[i];
                    for &j in candidates {
                        let rt = &r.tuples()[j as usize];
                        if probe.keys_eq(i, &build, j as usize)
                            && residual
                                .eval(RowView::pair(lt, rt), &scalars.values, self.semantics)
                                .is_true()
                        {
                            out.push(lt.concat(rt));
                        }
                    }
                }
            }
            if let Some(p) = prof {
                let hit = out.len() > before;
                p.stats.record_probes(hit as u64, (!hit) as u64);
            }
        };
        let tuples = if workers > 1 {
            // Morsel-parallel probe over a shared table; chunk outputs
            // concatenate in input order, so the result order matches the
            // serial pass exactly.
            let ranges = index_ranges(l.len(), workers);
            self.parallel_flat(&ranges, |range| {
                let mut out = Vec::new();
                for i in range.clone() {
                    probe_one(i, &mut out);
                }
                Ok(out)
            })?
        } else {
            let mut out = Vec::new();
            for i in 0..l.len() {
                probe_one(i, &mut out);
            }
            out
        };
        Ok(Some(Relation::from_parts(schema.clone(), tuples)))
    }

    #[allow(clippy::too_many_arguments)]
    fn hash_semi(
        &self,
        l: std::borrow::Cow<'_, Relation>,
        r: &Relation,
        l_pos: &[usize],
        r_pos: &[usize],
        residual: &CompiledPredicate,
        keep_matching: bool,
        partitions: usize,
        scalars: &ScalarCtx<'_>,
        prof: Option<&ProfNode>,
    ) -> Result<Relation> {
        let allow_nulls = self.semantics == NullSemantics::Naive;
        if !l.is_empty() && !r.is_empty() {
            self.ensure_scalars(scalars, residual.scalar_refs())?;
        }
        let n = if partitions > 0 && self.config.threads > 1 {
            self.workers(partitions, l.len() + r.len())
        } else {
            1
        };
        if let Some(p) = prof {
            p.stats.record_rows_in((l.len() + r.len()) as u64);
            if n > 1 {
                p.stats.record_parallel(n as u64, self.pool().width().min(n) as u64);
            }
        }
        if self.config.vectorized {
            if let Some(keep) =
                self.hash_semi_vec(&l, r, l_pos, r_pos, residual, keep_matching, n, scalars, prof)?
            {
                return Ok(semi_result(l, keep));
            }
            if let Some(p) = prof {
                p.stats.record_row_fallback();
            }
        }
        if n > 1 {
            // Partitioned parallel hash (anti-)semijoin over routed row
            // indices (selection vectors, no key clones). Left tuples with a
            // null key (which can never match under SQL semantics) bypass the
            // partitions and are appended after them, preserving determinism.
            let (build, r_hash, _) = route_indices(r, r_pos, allow_nulls, n);
            let (probe, l_hash, null_keyed) = route_indices(&l, l_pos, allow_nulls, n);
            if let Some(p) = prof {
                p.stats.record_build_rows(build.iter().map(|part| part.len() as u64).sum());
            }
            let parts: Vec<_> = build.into_iter().zip(probe).collect();
            let mut out = self.parallel_tuples(&parts, |(b, pidx)| {
                let mut table: HashMap<u64, Vec<u32>> = HashMap::with_capacity(b.len());
                for &j in b {
                    table.entry(r_hash[j as usize]).or_default().push(j);
                }
                let mut out = Vec::new();
                for &i in pidx {
                    let lt = &l.tuples()[i as usize];
                    let matched = table.get(&l_hash[i as usize]).is_some_and(|candidates| {
                        candidates.iter().any(|&j| {
                            let rt = &r.tuples()[j as usize];
                            keys_eq_at(lt, l_pos, rt, r_pos)
                                && residual
                                    .eval(RowView::pair(lt, rt), &scalars.values, self.semantics)
                                    .is_true()
                        })
                    });
                    if let Some(pr) = prof {
                        pr.stats.record_probes(matched as u64, (!matched) as u64);
                    }
                    if matched == keep_matching {
                        out.push(lt.clone());
                    }
                }
                Ok(out)
            })?;
            if !keep_matching {
                // A null key never matches: those tuples survive an anti-join.
                out.extend(null_keyed.iter().map(|&i| l.tuples()[i as usize].clone()));
            }
            return Ok(Relation::from_parts(l.schema().clone(), out));
        }
        let table = build_hash(r, r_pos, allow_nulls);
        if let Some(p) = prof {
            p.stats.record_build_rows(table.values().map(|v| v.len() as u64).sum());
        }
        let mut key: Vec<Value> = Vec::with_capacity(l_pos.len());
        let keep: Vec<bool> = l
            .iter()
            .map(|lt| {
                let matched = if !fill_key(lt, l_pos, allow_nulls, &mut key) {
                    false // a null key never matches under SQL semantics
                } else {
                    match table.get(key.as_slice()) {
                        None => false,
                        Some(candidates) => candidates.iter().any(|&rt| {
                            residual
                                .eval(RowView::pair(lt, rt), &scalars.values, self.semantics)
                                .is_true()
                        }),
                    }
                };
                if let Some(p) = prof {
                    p.stats.record_probes(matched as u64, (!matched) as u64);
                }
                matched == keep_matching
            })
            .collect();
        Ok(semi_result(l, keep))
    }

    /// Vectorized hash (anti-)semijoin: same key machinery as
    /// [`Engine::hash_join_vec`], producing per-row keep flags (survivors
    /// are then retained by move, in input order — serial and parallel
    /// agree). Returns `None` when the keys cannot be typed.
    #[allow(clippy::too_many_arguments)]
    fn hash_semi_vec(
        &self,
        l: &Relation,
        r: &Relation,
        l_pos: &[usize],
        r_pos: &[usize],
        residual: &CompiledPredicate,
        keep_matching: bool,
        workers: usize,
        scalars: &ScalarCtx<'_>,
        prof: Option<&ProfNode>,
    ) -> Result<Option<Vec<bool>>> {
        let allow_nulls = self.semantics == NullSemantics::Naive;
        let pool = self.db.str_pool();
        let Some(build) = KeySet::build(r.tuples(), r_pos, allow_nulls, pool) else {
            return Ok(None);
        };
        let Some(probe) = KeySet::build(l.tuples(), l_pos, allow_nulls, pool) else {
            return Ok(None);
        };
        if !probe.compatible(&build) {
            return if allow_nulls {
                Ok(None)
            } else {
                // No key can ever match: an antijoin keeps everything, a
                // semijoin nothing.
                if let Some(p) = prof {
                    p.stats.record_vec_run();
                }
                Ok(Some(vec![!keep_matching; l.len()]))
            };
        }
        if let Some(p) = prof {
            p.stats.record_vec_run();
            p.stats.record_build_rows(build.valid.iter().filter(|v| **v).count() as u64);
        }
        let table = build.table();
        let decide = |i: usize| -> bool {
            let matched = probe.valid[i]
                && table.get(&probe.hashes[i]).is_some_and(|candidates| {
                    let lt = &l.tuples()[i];
                    candidates.iter().any(|&j| {
                        probe.keys_eq(i, &build, j as usize)
                            && residual
                                .eval(
                                    RowView::pair(lt, &r.tuples()[j as usize]),
                                    &scalars.values,
                                    self.semantics,
                                )
                                .is_true()
                    })
                });
            if let Some(p) = prof {
                p.stats.record_probes(matched as u64, (!matched) as u64);
            }
            matched == keep_matching
        };
        let keep = if workers > 1 {
            let ranges = index_ranges(l.len(), workers);
            self.parallel_flat(&ranges, |range| Ok(range.clone().map(decide).collect()))?
        } else {
            (0..l.len()).map(decide).collect()
        };
        Ok(Some(keep))
    }

    #[allow(clippy::too_many_arguments)]
    fn nl_join(
        &self,
        l: &Relation,
        r: &Relation,
        pred: &CompiledPredicate,
        schema: &Arc<Schema>,
        partitions: usize,
        scalars: &ScalarCtx<'_>,
        prof: Option<&ProfNode>,
    ) -> Result<Relation> {
        if !l.is_empty() && !r.is_empty() {
            self.ensure_scalars(scalars, pred.scalar_refs())?;
        }
        let n = if partitions > 0 && self.config.threads > 1 {
            self.workers(partitions, l.len().saturating_mul(r.len()))
        } else {
            1
        };
        if let Some(p) = prof {
            p.stats.record_rows_in((l.len() + r.len()) as u64);
            if n > 1 {
                p.stats.record_parallel(n as u64, self.pool().width().min(n) as u64);
            }
        }
        // Both sides must be non-empty: an empty outer side produces no
        // pairs anyway, and `BoundPred::prepare` eagerly evaluates the
        // outer-independent subtrees — whose scalar subqueries are only
        // ensured above when both inputs are non-empty.
        if self.config.vectorized && !l.is_empty() && !r.is_empty() {
            if let Some(p) = prof {
                p.stats.record_vec_run();
            }
            // Vectorized nested loops: extract the inner columns the
            // predicate reads once, hoist its outer-independent subtrees
            // into cached masks, then evaluate the remaining atoms for each
            // outer row against *all* inner rows at once (outer references
            // become per-batch constants) and gather the matching pairs.
            let bound = vector::BoundPred::prepare(
                pred,
                r.tuples(),
                l.schema().arity(),
                &scalars.values,
                self.semantics,
                self.db.str_pool(),
            );
            let pair_row = |i: usize, out: &mut Vec<Tuple>| {
                let lt = &l.tuples()[i];
                let mask = bound.eval(lt, &scalars.values, self.semantics, self.db.str_pool());
                mask.for_each_true(|j| out.push(lt.concat(&r.tuples()[j])));
            };
            let out = if n > 1 {
                let ranges = index_ranges(l.len(), n);
                self.parallel_flat(&ranges, |range| {
                    let mut out = Vec::new();
                    for i in range.clone() {
                        self.check_cancelled_every(i)?;
                        pair_row(i, &mut out);
                    }
                    Ok(out)
                })?
            } else {
                let mut out = Vec::new();
                for i in 0..l.len() {
                    self.check_cancelled_every(i)?;
                    pair_row(i, &mut out);
                }
                out
            };
            return Ok(Relation::from_parts(schema.clone(), out));
        }
        if n > 1 {
            // Morsel-parallel nested loops over the outer side.
            let morsels: Vec<&[Tuple]> = chunks_of(l.tuples(), n);
            let out = self.parallel_tuples(&morsels, |chunk| {
                let mut out = Vec::new();
                for (i, lt) in chunk.iter().enumerate() {
                    self.check_cancelled_every(i)?;
                    for rt in r.iter() {
                        if pred
                            .eval(RowView::pair(lt, rt), &scalars.values, self.semantics)
                            .is_true()
                        {
                            out.push(lt.concat(rt));
                        }
                    }
                }
                Ok(out)
            })?;
            return Ok(Relation::from_parts(schema.clone(), out));
        }
        let mut out = Vec::new();
        for (i, lt) in l.iter().enumerate() {
            self.check_cancelled_every(i)?;
            for rt in r.iter() {
                if pred.eval(RowView::pair(lt, rt), &scalars.values, self.semantics).is_true() {
                    out.push(lt.concat(rt));
                }
            }
        }
        Ok(Relation::from_parts(schema.clone(), out))
    }

    #[allow(clippy::too_many_arguments)]
    fn nl_semi(
        &self,
        l: std::borrow::Cow<'_, Relation>,
        r: &Relation,
        pred: &CompiledPredicate,
        keep_matching: bool,
        partitions: usize,
        scalars: &ScalarCtx<'_>,
        prof: Option<&ProfNode>,
    ) -> Result<Relation> {
        if !l.is_empty() && !r.is_empty() {
            self.ensure_scalars(scalars, pred.scalar_refs())?;
        }
        let n = if partitions > 0 && self.config.threads > 1 {
            self.workers(partitions, l.len().saturating_mul(r.len()))
        } else {
            1
        };
        if let Some(p) = prof {
            p.stats.record_rows_in((l.len() + r.len()) as u64);
            if n > 1 {
                p.stats.record_parallel(n as u64, self.pool().width().min(n) as u64);
            }
        }
        // Non-empty on both sides, as in the nested-loop join above — the
        // prepare step may only read scalar subqueries that were ensured.
        if self.config.vectorized && !l.is_empty() && !r.is_empty() {
            if let Some(p) = prof {
                p.stats.record_vec_run();
            }
            // Vectorized nested-loop (anti-)semijoin: one mask evaluation
            // over the inner columns per outer row; survivors retained by
            // move in input order.
            let bound = vector::BoundPred::prepare(
                pred,
                r.tuples(),
                l.schema().arity(),
                &scalars.values,
                self.semantics,
                self.db.str_pool(),
            );
            let decide = |i: usize| -> bool {
                let mask =
                    bound.eval(&l.tuples()[i], &scalars.values, self.semantics, self.db.str_pool());
                mask.any_true() == keep_matching
            };
            let keep: Vec<bool> = if n > 1 {
                let ranges = index_ranges(l.len(), n);
                self.parallel_flat(&ranges, |range| {
                    let mut keep = Vec::new();
                    for i in range.clone() {
                        self.check_cancelled_every(i)?;
                        keep.push(decide(i));
                    }
                    Ok(keep)
                })?
            } else {
                let mut keep = Vec::with_capacity(l.len());
                for i in 0..l.len() {
                    self.check_cancelled_every(i)?;
                    keep.push(decide(i));
                }
                keep
            };
            return Ok(semi_result(l, keep));
        }
        if n > 1 {
            let morsels: Vec<&[Tuple]> = chunks_of(l.tuples(), n);
            let out = self.parallel_tuples(&morsels, |chunk| {
                let mut out = Vec::new();
                for (i, lt) in chunk.iter().enumerate() {
                    self.check_cancelled_every(i)?;
                    let matched = r.iter().any(|rt| {
                        pred.eval(RowView::pair(lt, rt), &scalars.values, self.semantics).is_true()
                    });
                    if matched == keep_matching {
                        out.push(lt.clone());
                    }
                }
                Ok(out)
            })?;
            return Ok(Relation::from_parts(l.schema().clone(), out));
        }
        let mut keep = Vec::with_capacity(l.len());
        for (i, lt) in l.iter().enumerate() {
            self.check_cancelled_every(i)?;
            keep.push(
                r.iter().any(|rt| {
                    pred.eval(RowView::pair(lt, rt), &scalars.values, self.semantics).is_true()
                }) == keep_matching,
            );
        }
        Ok(semi_result(l, keep))
    }

    /// Execute a union: evaluate the arms (concurrently when the plan marked
    /// them and the thread budget allows it), concatenate in arm order and
    /// deduplicate once.
    fn exec_union(
        &self,
        arms: &[CompiledExpr],
        schema: &Arc<Schema>,
        parallel: bool,
        scalars: &ScalarCtx<'_>,
        prof: Option<&ProfNode>,
    ) -> Result<Relation> {
        // Arm sizes are unknown before execution, so the runtime floor is
        // checked against the base rows actually feeding the arms — not the
        // whole database, which went parallel for tiny operator inputs
        // whenever the database happened to be large.
        let fan_out = parallel
            && self.config.threads > 1
            && arms.len() > 1
            && arms.iter().map(|a| self.input_rows_hint(a)).sum::<usize>()
                >= self.config.parallel_floor;
        let pc = |i: usize| prof.and_then(|p| p.child(i));
        let relations: Vec<Relation> = if fan_out {
            // One pool task per arm; the shared pool decides how many run at
            // once, and this thread helps while it waits. Results land in
            // per-arm slots, so arm order is preserved.
            if let Some(p) = prof {
                p.stats
                    .record_parallel(arms.len() as u64, self.pool().width().min(arms.len()) as u64);
            }
            let mut slots: Vec<Option<Result<Relation>>> = Vec::new();
            slots.resize_with(arms.len(), || None);
            self.pool().scope(|s| {
                for (i, (arm, slot)) in arms.iter().zip(slots.iter_mut()).enumerate() {
                    s.spawn(move || *slot = Some(self.exec(arm, scalars, pc(i))));
                }
            });
            slots
                .into_iter()
                .map(|r| r.expect("pool scope ran every arm"))
                .collect::<Result<_>>()?
        } else {
            arms.iter()
                .enumerate()
                .map(|(i, a)| self.exec(a, scalars, pc(i)))
                .collect::<Result<_>>()?
        };
        if let Some(p) = prof {
            p.stats.record_rows_in(relations.iter().map(|r| r.len() as u64).sum());
            p.stats.record_batches(relations.len() as u64);
        }
        let mut iter = relations.into_iter();
        let first =
            iter.next().ok_or_else(|| AlgebraError::Malformed("union with no arms".into()))?;
        let mut tuples = first.into_tuples();
        for rel in iter {
            tuples.extend(rel.into_tuples());
        }
        let mut out = Relation::from_parts(schema.clone(), tuples);
        out.dedup();
        Ok(out)
    }

    // ------------------------------------------------------------------
    // Delegating (pre-compilation) execution — the differential oracle
    // ------------------------------------------------------------------

    fn exec_delegating(&self, plan: &PhysicalExpr, ev: &Evaluator<'_>) -> Result<Relation> {
        match plan {
            PhysicalExpr::Source(expr) => ev.eval(expr),
            PhysicalExpr::Join { left, right, condition, algo } => {
                self.exec_join_delegating(left, right, condition, algo, ev)
            }
            PhysicalExpr::Semi { left, right, condition, algo, anti, left_schema } => {
                self.exec_semi_delegating(left, right, condition, algo, !*anti, left_schema, ev)
            }
            // Exchanges are the identity on this serial path.
            PhysicalExpr::Exchange { input, .. } => self.exec_delegating(input, ev),
            // Every other operator: execute the children here (so joins below
            // them still run their planned algorithms) and delegate the node
            // itself to the reference evaluator over the materialised inputs.
            PhysicalExpr::Filter { input, condition } => {
                let child = self.exec_delegating(input, ev)?;
                ev.eval(&RaExpr::Select {
                    input: Box::new(values_of(child)),
                    condition: condition.clone(),
                })
            }
            PhysicalExpr::Project { input, columns } => {
                let child = self.exec_delegating(input, ev)?;
                ev.eval(&RaExpr::Project {
                    input: Box::new(values_of(child)),
                    columns: columns.clone(),
                })
            }
            PhysicalExpr::Union { left, right } => {
                let l = self.exec_delegating(left, ev)?;
                let r = self.exec_delegating(right, ev)?;
                ev.eval(&values_of(l).union(values_of(r)))
            }
            PhysicalExpr::Intersect { left, right } => {
                let l = self.exec_delegating(left, ev)?;
                let r = self.exec_delegating(right, ev)?;
                ev.eval(&values_of(l).intersect(values_of(r)))
            }
            PhysicalExpr::Difference { left, right } => {
                let l = self.exec_delegating(left, ev)?;
                let r = self.exec_delegating(right, ev)?;
                ev.eval(&values_of(l).difference(values_of(r)))
            }
            PhysicalExpr::UnifySemi { left, right, anti } => {
                let l = self.exec_delegating(left, ev)?;
                let r = self.exec_delegating(right, ev)?;
                let expr = if *anti {
                    values_of(l).unify_anti_join(values_of(r))
                } else {
                    values_of(l).unify_semi_join(values_of(r))
                };
                ev.eval(&expr)
            }
            PhysicalExpr::Division { left, right } => {
                let l = self.exec_delegating(left, ev)?;
                let r = self.exec_delegating(right, ev)?;
                ev.eval(&values_of(l).divide(values_of(r)))
            }
            PhysicalExpr::Rename { input, columns } => {
                let child = self.exec_delegating(input, ev)?;
                ev.eval(&RaExpr::Rename {
                    input: Box::new(values_of(child)),
                    columns: columns.clone(),
                })
            }
            PhysicalExpr::Distinct { input } => Ok(self.exec_delegating(input, ev)?.distinct()),
            PhysicalExpr::Aggregate { input, group_by, aggregates } => {
                let child = self.exec_delegating(input, ev)?;
                ev.eval(&RaExpr::Aggregate {
                    input: Box::new(values_of(child)),
                    group_by: group_by.clone(),
                    aggregates: aggregates.clone(),
                })
            }
        }
    }

    fn exec_join_delegating(
        &self,
        left: &PhysicalExpr,
        right: &PhysicalExpr,
        condition: &Condition,
        algo: &JoinAlgo,
        ev: &Evaluator<'_>,
    ) -> Result<Relation> {
        let l = self.exec_delegating(left, ev)?;
        let r = self.exec_delegating(right, ev)?;
        let combined: Arc<Schema> = l.schema().concat(r.schema()).shared();
        let mut out = Vec::new();
        match algo {
            JoinAlgo::Hash { left_keys, right_keys, residual } => {
                let l_pos = positions_by_name(l.schema(), left_keys)?;
                let r_pos = positions_by_name(r.schema(), right_keys)?;
                let allow_nulls = self.semantics == NullSemantics::Naive;
                let table = build_hash(&r, &r_pos, allow_nulls);
                for lt in l.iter() {
                    let Some(key) = key_of(lt, &l_pos, allow_nulls) else { continue };
                    if let Some(candidates) = table.get(&key) {
                        for &rt in candidates {
                            let tuple = lt.concat(rt);
                            if ev.eval_condition(residual, &combined, &tuple)?.is_true() {
                                out.push(tuple);
                            }
                        }
                    }
                }
            }
            JoinAlgo::NestedLoop => {
                for lt in l.iter() {
                    for rt in r.iter() {
                        let tuple = lt.concat(rt);
                        if ev.eval_condition(condition, &combined, &tuple)?.is_true() {
                            out.push(tuple);
                        }
                    }
                }
            }
        }
        Ok(Relation::from_parts(combined, out))
    }

    #[allow(clippy::too_many_arguments)]
    fn exec_semi_delegating(
        &self,
        left: &PhysicalExpr,
        right: &PhysicalExpr,
        condition: &Condition,
        algo: &SemiAlgo,
        keep_matching: bool,
        left_schema: &Schema,
        ev: &Evaluator<'_>,
    ) -> Result<Relation> {
        if let SemiAlgo::Decorrelated = algo {
            let r = self.exec_delegating(right, ev)?;
            let r_schema = r.schema().clone();
            let mut exists = false;
            for rt in r.iter() {
                if ev.eval_condition(condition, &r_schema, rt)?.is_true() {
                    exists = true;
                    break;
                }
            }
            return if exists == keep_matching {
                self.exec_delegating(left, ev)
            } else {
                Ok(Relation::empty(left_schema.clone().shared()))
            };
        }
        let l = self.exec_delegating(left, ev)?;
        let r = self.exec_delegating(right, ev)?;
        let combined: Arc<Schema> = l.schema().concat(r.schema()).shared();
        let mut out = Vec::new();
        match algo {
            SemiAlgo::Decorrelated => unreachable!("handled above"),
            SemiAlgo::Hash { left_keys, right_keys, residual } => {
                let l_pos = positions_by_name(l.schema(), left_keys)?;
                let r_pos = positions_by_name(r.schema(), right_keys)?;
                let allow_nulls = self.semantics == NullSemantics::Naive;
                let table = build_hash(&r, &r_pos, allow_nulls);
                for lt in l.iter() {
                    let matched = match key_of(lt, &l_pos, allow_nulls) {
                        None => false, // a null key never matches under SQL semantics
                        Some(key) => match table.get(&key) {
                            None => false,
                            Some(candidates) => {
                                let mut m = false;
                                for &rt in candidates {
                                    let tuple = lt.concat(rt);
                                    if ev.eval_condition(residual, &combined, &tuple)?.is_true() {
                                        m = true;
                                        break;
                                    }
                                }
                                m
                            }
                        },
                    };
                    if matched == keep_matching {
                        out.push(lt.clone());
                    }
                }
            }
            SemiAlgo::NestedLoop => {
                for lt in l.iter() {
                    let mut matched = false;
                    for rt in r.iter() {
                        let tuple = lt.concat(rt);
                        if ev.eval_condition(condition, &combined, &tuple)?.is_true() {
                            matched = true;
                            break;
                        }
                    }
                    if matched == keep_matching {
                        out.push(lt.clone());
                    }
                }
            }
        }
        Ok(Relation::from_parts(l.schema().clone(), out))
    }

    // ------------------------------------------------------------------
    // Parallel plumbing
    // ------------------------------------------------------------------

    /// Upper-bound estimate of the base rows feeding a compiled subtree: the
    /// row counts of its scans and literal relations. Used by runtime
    /// parallelism gates when an operator's true input size is unknown
    /// before execution (union arms).
    fn input_rows_hint(&self, node: &CompiledExpr) -> usize {
        match node {
            CompiledExpr::Scan { name, .. } => self.db.relation(name).map(|r| r.len()).unwrap_or(0),
            CompiledExpr::Values { rel } => rel.len(),
            // Opaque subtrees delegate to the reference evaluator; what they
            // reach is unknown, so keep the whole-database bound for them.
            CompiledExpr::Opaque { .. } => self.db.total_tuples(),
            CompiledExpr::Fused { source, .. } => self.input_rows_hint(source),
            CompiledExpr::HashJoin { left, right, .. }
            | CompiledExpr::NlJoin { left, right, .. }
            | CompiledExpr::HashSemi { left, right, .. }
            | CompiledExpr::NlSemi { left, right, .. }
            | CompiledExpr::DecorrelatedSemi { left, right, .. }
            | CompiledExpr::Intersect { left, right, .. }
            | CompiledExpr::Difference { left, right, .. }
            | CompiledExpr::UnifySemi { left, right, .. }
            | CompiledExpr::Division { left, right, .. } => {
                self.input_rows_hint(left) + self.input_rows_hint(right)
            }
            CompiledExpr::Union { arms, .. } => arms.iter().map(|a| self.input_rows_hint(a)).sum(),
            CompiledExpr::Rename { input, .. }
            | CompiledExpr::Distinct { input, .. }
            | CompiledExpr::Aggregate { input, .. } => self.input_rows_hint(input),
        }
    }

    /// Number of workers an operator with the given plan-side partition
    /// count and input work (rows or pairs touched) actually fans out to:
    /// never more than the engine's configured threads, and 1 (inline, no
    /// thread spawned) below the configured floor — tiny inputs are not
    /// worth a scope.
    fn workers(&self, partitions: usize, work: usize) -> usize {
        if work < self.config.parallel_floor {
            1
        } else {
            // Deliberately a pure function of plan and config: this value is
            // the routing modulus / morsel count, and output order depends
            // on it, so it must be deterministic. How many OS threads run
            // the resulting tasks is the pool's concern — its fixed width
            // bounds oversubscription across nested regions and concurrent
            // queries alike.
            partitions.clamp(1, self.config.threads.max(1))
        }
    }

    /// Run `worker` over every item. A single item (or none) runs inline on
    /// the current thread — single-partition exchanges never pay a task
    /// submission. More items become one pool task each; outputs are
    /// concatenated in item order, so callers are deterministic no matter
    /// which workers ran what.
    fn parallel_tuples<T, W>(&self, items: &[T], worker: W) -> Result<Vec<Tuple>>
    where
        T: Sync,
        W: Fn(&T) -> Result<Vec<Tuple>> + Sync,
    {
        self.parallel_flat(items, worker)
    }

    /// [`Engine::parallel_tuples`], generalised over the output element type
    /// (the vectorized semijoin collects keep *flags*, not tuples).
    ///
    /// One pool task per item: the shared pool bounds how many run at once
    /// (across nested regions and concurrent queries alike), and the
    /// submitting thread helps execute tasks while it waits, so nesting
    /// cannot deadlock and idle time is spent on someone's morsels.
    fn parallel_flat<T, R, W>(&self, items: &[T], worker: W) -> Result<Vec<R>>
    where
        T: Sync,
        R: Send,
        W: Fn(&T) -> Result<Vec<R>> + Sync,
    {
        let mut out = Vec::new();
        if items.len() <= 1 {
            for item in items {
                out.extend(worker(item)?);
            }
            return Ok(out);
        }
        let mut slots: Vec<Option<Result<Vec<R>>>> = Vec::new();
        slots.resize_with(items.len(), || None);
        self.pool().scope(|s| {
            for (item, slot) in items.iter().zip(slots.iter_mut()) {
                let worker = &worker;
                // A partition start is a morsel boundary: once the token
                // trips, remaining partitions fail fast instead of running.
                let cancel = self.cancel.as_ref();
                s.spawn(move || {
                    *slot = Some(match cancel {
                        Some(token) if token.is_cancelled() => Err(AlgebraError::Cancelled),
                        _ => worker(item),
                    });
                });
            }
        });
        for slot in slots {
            out.extend(slot.expect("pool scope ran every task")?);
        }
        Ok(out)
    }
}

/// Per-execution scalar-subquery context: the plan's subquery expressions
/// plus their lazily filled values (see [`ScalarValues`]).
struct ScalarCtx<'p> {
    exprs: &'p [RaExpr],
    values: ScalarValues,
}

/// Keep exactly the flagged tuples of a (anti-)semijoin's preserved side:
/// an owned input retains by move, a borrowed base relation clones only the
/// survivors.
fn semi_result(l: std::borrow::Cow<'_, Relation>, keep: Vec<bool>) -> Relation {
    match l {
        std::borrow::Cow::Owned(rel) => retain_by_flags(rel, keep),
        std::borrow::Cow::Borrowed(rel) => {
            let tuples =
                rel.iter().zip(&keep).filter(|(_, k)| **k).map(|(t, _)| t.clone()).collect();
            Relation::from_parts(rel.schema().clone(), tuples)
        }
    }
}

/// Keep exactly the flagged tuples of an owned relation (moves, no clones).
fn retain_by_flags(rel: Relation, keep: Vec<bool>) -> Relation {
    let schema = rel.schema().clone();
    let mut tuples = rel.into_tuples();
    let mut flags = keep.into_iter();
    tuples.retain(|_| flags.next().expect("one flag per tuple"));
    Relation::from_parts(schema, tuples)
}

/// Intersection (`want_member == true`) or difference (`false`) against the
/// right side, positionally, keeping the left schema — matching the schema
/// alignment the reference evaluator applies to set operations.
fn set_filter(l: Relation, r: &Relation, want_member: bool) -> Relation {
    let mut right: HashSet<&Tuple> = HashSet::with_capacity(r.len());
    right.extend(r.iter());
    let keep: Vec<bool> = l.iter().map(|t| right.contains(t) == want_member).collect();
    drop(right);
    let mut out = retain_by_flags(l, keep);
    out.dedup();
    out
}

/// Split a slice into at most `n` contiguous chunks (fewer when the slice is
/// shorter), preserving order.
fn chunks_of<T>(items: &[T], n: usize) -> Vec<&[T]> {
    let size = items.len().div_ceil(n.max(1)).max(1);
    items.chunks(size).collect()
}

/// Split `0..len` into at most `workers` contiguous index ranges, in order
/// (the morsels of the vectorized probe loops).
fn index_ranges(len: usize, workers: usize) -> Vec<std::ops::Range<usize>> {
    let size = len.div_ceil(workers.max(1)).max(1);
    (0..len).step_by(size).map(|start| start..(start + size).min(len)).collect()
}

/// Deterministic per-row key hash over the given positions: a fixed-seed
/// hash, so plans execute identically run to run and across pool widths.
/// `None` marks a null key (excluded from hashing under SQL semantics).
fn key_hash(tuple: &Tuple, pos: &[usize], allow_nulls: bool) -> Option<u64> {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    for &p in pos {
        let v = &tuple[p];
        if v.is_null() && !allow_nulls {
            return None;
        }
        v.hash(&mut h);
    }
    Some(h.finish())
}

/// Route a relation's row *indices* to partitions by key hash — the
/// selection vectors parallel operators hand to their pool tasks; no key
/// values are cloned. Returns the per-partition index vectors (input
/// order), the per-row key hashes (meaningful only for routed rows), and
/// the indices whose key contained a null.
fn route_indices(
    rel: &Relation,
    pos: &[usize],
    allow_nulls: bool,
    partitions: usize,
) -> (Vec<Vec<u32>>, Vec<u64>, Vec<u32>) {
    let p = partitions.max(1);
    let mut parts: Vec<Vec<u32>> = vec![Vec::new(); p];
    let mut hashes = vec![0u64; rel.len()];
    let mut null_keyed = Vec::new();
    for (i, t) in rel.iter().enumerate() {
        match key_hash(t, pos, allow_nulls) {
            Some(h) => {
                hashes[i] = h;
                parts[(h % p as u64) as usize].push(i as u32);
            }
            None => null_keyed.push(i as u32),
        }
    }
    (parts, hashes, null_keyed)
}

/// Positional key equality across the two sides of a hash (semi-)join —
/// the collision check behind the hash-keyed partition tables.
fn keys_eq_at(lt: &Tuple, l_pos: &[usize], rt: &Tuple, r_pos: &[usize]) -> bool {
    l_pos.iter().zip(r_pos).all(|(&lp, &rp)| lt[lp] == rt[rp])
}

/// Wrap a materialised relation as a literal-relation expression so single
/// operators can be delegated to the reference evaluator (the delegating
/// execution path only — the compiled runtime never does this).
fn values_of(rel: Relation) -> RaExpr {
    certus_data::profile::record_plan_materialization();
    RaExpr::Values { schema: (**rel.schema()).clone(), rows: rel.into_tuples() }
}

/// Resolve join-key names against a schema (delegating path only; the
/// compiled runtime resolves keys once at compile time).
fn positions_by_name(schema: &Schema, names: &[String]) -> Result<Vec<usize>> {
    names.iter().map(|n| schema.position_of(n).map_err(AlgebraError::Data)).collect()
}

/// Hash key of a tuple over the given positions. Under SQL semantics a null
/// key component means the tuple can never satisfy a pure equality, so `None`
/// is returned; under naive semantics nulls are ordinary (syntactically
/// compared) values and participate in the hash.
fn key_of(tuple: &Tuple, pos: &[usize], allow_nulls: bool) -> Option<Vec<Value>> {
    let mut key = Vec::with_capacity(pos.len());
    for &p in pos {
        let v = &tuple[p];
        if v.is_null() && !allow_nulls {
            return None;
        }
        key.push(v.clone());
    }
    Some(key)
}

/// Fill a reusable scratch key; returns false for a null key (under SQL
/// semantics) — the probe loop's allocation-free variant of [`key_of`].
fn fill_key(tuple: &Tuple, pos: &[usize], allow_nulls: bool, key: &mut Vec<Value>) -> bool {
    key.clear();
    for &p in pos {
        let v = &tuple[p];
        if v.is_null() && !allow_nulls {
            return false;
        }
        key.push(v.clone());
    }
    true
}

fn build_hash<'r>(
    rel: &'r Relation,
    pos: &[usize],
    allow_nulls: bool,
) -> HashMap<Vec<Value>, Vec<&'r Tuple>> {
    let mut table: HashMap<Vec<Value>, Vec<&Tuple>> = HashMap::with_capacity(rel.len());
    for t in rel.iter() {
        if let Some(key) = key_of(t, pos, allow_nulls) {
            table.entry(key).or_default().push(t);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use certus_algebra::builder::{eq, eq_const, is_null, neq};
    use certus_algebra::eval::eval;
    use certus_core::{CertainRewriter, ConditionDialect};
    use certus_data::builder::rel;
    use certus_data::null::NullId;
    use certus_plan::{PhysicalPlanner, Planner, StatisticsCatalog};
    use certus_tpch::{q1, q2, q3, q4, DbGen, QueryParams};

    fn null(i: u64) -> Value {
        Value::Null(NullId(i))
    }

    fn assert_same_as_reference(q: &RaExpr, db: &Database) {
        let engine = Engine::new(db).execute(q).unwrap().sorted().distinct();
        let reference = eval(q, db, NullSemantics::Sql).unwrap().sorted().distinct();
        assert_eq!(engine.tuples(), reference.tuples(), "query: {q}");
    }

    #[test]
    fn row_hashes_agree_between_vectorized_and_row_paths_on_equality() {
        // The partitioner only needs "equal tuples hash equal within one
        // call" — but the vectorized and row arms must each deliver it over
        // every value shape, nulls included.
        let rows = rel(
            &["a", "b"],
            vec![
                vec![Value::Int(1), Value::str("x")],
                vec![Value::Int(1), Value::str("x")],
                vec![null(7), Value::str("y")],
                vec![null(7), Value::str("y")],
                vec![null(8), Value::str("y")],
            ],
        );
        let db = Database::new();
        let engine = Engine::configured(&db, NullSemantics::Sql, EngineConfig::with_threads(2));
        let vec_hashes = engine.vec_row_hashes(rows.tuples(), None).expect("uniform columns");
        let row_hashes = engine.row_hashes_fallback(rows.tuples(), None).unwrap();
        for hashes in [&vec_hashes, &row_hashes] {
            assert_eq!(hashes[0], hashes[1], "equal ground tuples");
            assert_eq!(hashes[2], hashes[3], "equal nulls hash by id");
            assert_ne!(hashes[2], hashes[4], "distinct nulls should split");
        }
        // The pair path must never mix arms across set-op sides: either both
        // vectorized (compatible reprs) or both row-at-a-time.
        let other = rel(
            &["a", "b"],
            vec![vec![Value::Int(1), Value::str("x")], vec![null(7), Value::str("y")]],
        );
        let (l, r) = engine.row_hashes_pair(rows.tuples(), other.tuples()).unwrap();
        assert_eq!(l[0], r[0], "equal tuples across sides share a hash");
        assert_eq!(l[2], r[1], "null tuples across sides share a hash");
    }

    #[test]
    fn hash_join_matches_reference() {
        let mut db = Database::new();
        db.insert_relation(
            "r",
            rel(
                &["a", "b"],
                vec![
                    vec![Value::Int(1), Value::Int(10)],
                    vec![Value::Int(2), null(1)],
                    vec![Value::Int(3), Value::Int(30)],
                ],
            ),
        );
        db.insert_relation(
            "s",
            rel(
                &["c", "d"],
                vec![
                    vec![Value::Int(1), Value::Int(100)],
                    vec![Value::Int(1), Value::Int(200)],
                    vec![null(2), Value::Int(300)],
                ],
            ),
        );
        let q = RaExpr::relation("r").join(RaExpr::relation("s"), eq("a", "c"));
        assert_same_as_reference(&q, &db);
        let nl = RaExpr::relation("r").join(RaExpr::relation("s"), eq("a", "c").or(is_null("d")));
        assert_same_as_reference(&nl, &db);
        let with_residual =
            RaExpr::relation("r").join(RaExpr::relation("s"), eq("a", "c").and(neq("b", "d")));
        assert_same_as_reference(&with_residual, &db);
    }

    #[test]
    fn semi_and_anti_join_match_reference() {
        let mut db = Database::new();
        db.insert_relation(
            "r",
            rel(&["a"], vec![vec![Value::Int(1)], vec![Value::Int(2)], vec![null(5)]]),
        );
        db.insert_relation("s", rel(&["b"], vec![vec![Value::Int(2)], vec![null(1)]]));
        for cond in [eq("a", "b"), eq("a", "b").or(is_null("b")), neq("a", "b")] {
            let semi = RaExpr::relation("r").semi_join(RaExpr::relation("s"), cond.clone());
            assert_same_as_reference(&semi, &db);
            let anti = RaExpr::relation("r").anti_join(RaExpr::relation("s"), cond);
            assert_same_as_reference(&anti, &db);
        }
    }

    #[test]
    fn decorrelated_not_exists_short_circuits() {
        let mut db = Database::new();
        db.insert_relation("big", rel(&["x"], (0..100).map(|i| vec![Value::Int(i)]).collect()));
        db.insert_relation("orders", rel(&["o_custkey"], vec![vec![null(1)], vec![Value::Int(1)]]));
        // NOT EXISTS (orders with null custkey) — uncorrelated, witness present.
        let q = RaExpr::relation("big").anti_join(RaExpr::relation("orders"), is_null("o_custkey"));
        let out = Engine::new(&db).execute(&q).unwrap();
        assert!(out.is_empty());
        assert_same_as_reference(&q, &db);
        // Same query but no witness: everything survives.
        let q2 = RaExpr::relation("big")
            .anti_join(RaExpr::relation("orders"), eq_const("o_custkey", 999i64));
        assert_eq!(Engine::new(&db).execute(&q2).unwrap().len(), 100);
        assert_same_as_reference(&q2, &db);
    }

    #[test]
    fn cost_based_physical_plans_execute_identically() {
        let complete = DbGen::new(0.0002, 11).generate();
        let db = certus_data::inject::NullInjector::new(0.05, 3).inject(&complete);
        let params = QueryParams::random(&db, 2);
        let stats = StatisticsCatalog::analyze(&db);
        let planner = PhysicalPlanner::new(&db, &stats);
        let engine = Engine::new(&db);
        for q in [q1(&params), q3(&params), q4(&params)] {
            let plan = planner.plan(&q).unwrap();
            let planned = engine.execute_physical(&plan).unwrap().sorted().distinct();
            let heuristic = engine.execute(&q).unwrap().sorted().distinct();
            assert_eq!(planned.tuples(), heuristic.tuples(), "query: {q}");
        }
    }

    #[test]
    fn full_planner_pipeline_matches_unplanned_execution() {
        let complete = DbGen::new(0.0002, 12).generate();
        let db = certus_data::inject::NullInjector::new(0.05, 7).inject(&complete);
        let params = QueryParams::random(&db, 4);
        let engine = Engine::new(&db);
        let rewriter = CertainRewriter::unoptimized();
        let planner = Planner::new();
        for q in [q3(&params), q4(&params)] {
            let raw = rewriter.rewrite_plus(&q, &db).unwrap();
            let optimized = planner.optimize(&raw, &db).unwrap();
            let a = engine.execute(&raw).unwrap().sorted().distinct();
            let b = engine.execute(&optimized).unwrap().sorted().distinct();
            assert_eq!(a.tuples(), b.tuples(), "Q pipeline changed results");
        }
    }

    #[test]
    fn tpch_queries_match_reference_on_incomplete_data() {
        let complete = DbGen::new(0.0002, 5).generate();
        let db = certus_data::inject::NullInjector::new(0.05, 9).inject(&complete);
        let params = QueryParams::random(&db, 3);
        for q in [q1(&params), q2(&params), q3(&params), q4(&params)] {
            assert_same_as_reference(&q, &db);
        }
    }

    #[test]
    fn translated_queries_match_reference_and_stay_certain() {
        let complete = DbGen::new(0.0002, 6).generate();
        let db = certus_data::inject::NullInjector::new(0.05, 4).inject(&complete);
        let params = QueryParams::random(&db, 1);
        let rewriter = CertainRewriter::new();
        for q in [q3(&params), q2(&params)] {
            let plus = rewriter.rewrite_plus(&q, &db).unwrap();
            assert_same_as_reference(&plus, &db);
            // Q+ answers are a subset of SQL answers for these queries.
            let sql = Engine::new(&db).execute(&q).unwrap();
            let certain = Engine::new(&db).execute(&plus).unwrap();
            for t in certain.iter() {
                assert!(sql.contains(t));
            }
        }
        assert_eq!(rewriter.dialect, ConditionDialect::Sql);
    }

    #[test]
    fn naive_semantics_engine_matches_reference() {
        let mut db = Database::new();
        db.insert_relation("r", rel(&["a"], vec![vec![null(1)], vec![Value::Int(1)]]));
        db.insert_relation("s", rel(&["b"], vec![vec![null(1)]]));
        let q = RaExpr::relation("r").join(RaExpr::relation("s"), eq("a", "b"));
        let engine = Engine::with_semantics(&db, NullSemantics::Naive).execute(&q).unwrap();
        let reference = eval(&q, &db, NullSemantics::Naive).unwrap();
        assert_eq!(engine.sorted().tuples(), reference.sorted().tuples());
        assert_eq!(engine.len(), 1);
    }

    #[test]
    fn compiled_runtime_matches_delegating_path() {
        // The compiled runtime must agree operator-for-operator with the
        // pre-compilation delegating path on the full translated workload.
        let complete = DbGen::new(0.00025, 19).generate();
        let db = certus_data::inject::NullInjector::new(0.05, 23).inject(&complete);
        let params = QueryParams::random(&db, 8);
        let rewriter = CertainRewriter::new();
        for semantics in [NullSemantics::Sql, NullSemantics::Naive] {
            let engine = Engine::configured(&db, semantics, EngineConfig::serial());
            for q in [q1(&params), q2(&params), q3(&params), q4(&params)] {
                let plus = rewriter.rewrite_plus(&q, &db).unwrap();
                for query in [&q, &plus] {
                    let plan = engine.plan(query).unwrap();
                    let compiled = engine.execute_physical(&plan).unwrap().sorted().distinct();
                    let delegating =
                        engine.execute_physical_delegating(&plan).unwrap().sorted().distinct();
                    assert_eq!(
                        compiled.tuples(),
                        delegating.tuples(),
                        "{} semantics, query {query}",
                        semantics.label()
                    );
                }
            }
        }
    }

    #[test]
    fn compiled_plans_re_execute_without_recompilation() {
        let mut db = Database::new();
        db.insert_relation(
            "r",
            rel(&["a", "b"], (0..20).map(|i| vec![Value::Int(i % 5), Value::Int(i)]).collect()),
        );
        db.insert_relation("s", rel(&["c"], (0..10).map(|i| vec![Value::Int(i % 4)]).collect()));
        let q = RaExpr::relation("r")
            .join(RaExpr::relation("s"), eq("a", "c"))
            .select(neq("b", "c"))
            .project(&["b"]);
        let engine = Engine::with_config(&db, EngineConfig::serial());
        let plan = engine.plan(&q).unwrap();
        let compiled = engine.compile(&plan).unwrap();
        let first = engine.execute_compiled(&compiled).unwrap();
        let second = engine.execute_compiled(&compiled).unwrap();
        assert_eq!(first.tuples(), second.tuples());
        assert_eq!(first.sorted().distinct().tuples(), {
            let r = eval(&q, &db, NullSemantics::Sql).unwrap().sorted().distinct();
            r.tuples().to_vec()
        });
        assert_eq!(compiled.schema().names(), vec!["b"]);
    }

    #[test]
    fn fused_scan_filter_project_pipelines_match_reference() {
        let mut db = Database::new();
        db.insert_relation(
            "r",
            rel(
                &["a", "b"],
                (0..30)
                    .map(|i| {
                        let b = if i % 6 == 0 { null(i as u64) } else { Value::Int(i) };
                        vec![Value::Int(i % 7), b]
                    })
                    .collect(),
            ),
        );
        // Filter → Project → Filter → Rename over a scan: one fused pass.
        let q = RaExpr::relation("r")
            .select(eq_const("a", 3i64).or(is_null("b")))
            .project(&["b"])
            .rename(&["x"])
            .select(is_null("x"));
        assert_same_as_reference(&q, &db);
        let distinct = RaExpr::relation("r").project(&["a"]).distinct();
        assert_same_as_reference(&distinct, &db);
    }

    #[test]
    fn partitioned_hash_join_matches_serial_under_both_semantics() {
        let mut db = Database::new();
        db.insert_relation(
            "r",
            rel(
                &["a", "b"],
                (0..60)
                    .map(|i| {
                        let b = if i % 7 == 0 { null(i as u64) } else { Value::Int(i * 2) };
                        vec![Value::Int(i % 13), b]
                    })
                    .collect(),
            ),
        );
        db.insert_relation(
            "s",
            rel(
                &["c", "d"],
                (0..45)
                    .map(|i| {
                        let c = if i % 5 == 0 { null(100 + i as u64) } else { Value::Int(i % 13) };
                        vec![c, Value::Int(i)]
                    })
                    .collect(),
            ),
        );
        let q = RaExpr::relation("r").join(RaExpr::relation("s"), eq("a", "c").and(neq("b", "d")));
        for semantics in [NullSemantics::Sql, NullSemantics::Naive] {
            let serial = Engine::configured(&db, semantics, EngineConfig::serial());
            let parallel = Engine::configured(
                &db,
                semantics,
                EngineConfig::with_threads(4).with_parallel_floor(0),
            );
            assert!(parallel.plan(&q).unwrap().has_exchange());
            assert_eq!(
                parallel.execute(&q).unwrap().sorted().distinct().tuples(),
                serial.execute(&q).unwrap().sorted().distinct().tuples(),
                "{} semantics",
                semantics.label()
            );
        }
    }

    #[test]
    fn partitioned_anti_join_keeps_null_keyed_tuples() {
        let mut db = Database::new();
        db.insert_relation(
            "r",
            rel(&["a"], vec![vec![Value::Int(1)], vec![null(9)], vec![Value::Int(3)]]),
        );
        db.insert_relation("s", rel(&["b"], vec![vec![Value::Int(1)], vec![null(8)]]));
        let q = RaExpr::relation("r").anti_join(RaExpr::relation("s"), eq("a", "b"));
        let parallel =
            Engine::with_config(&db, EngineConfig::with_threads(4).with_parallel_floor(0));
        let out = parallel.execute(&q).unwrap().sorted();
        // 1 matches; 3 and the null-keyed tuple survive (a null key never
        // matches a pure equality under SQL semantics).
        assert_eq!(out.len(), 2);
        assert!(out.contains(&Tuple::new(vec![Value::Int(3)])));
        assert!(out.contains(&Tuple::new(vec![null(9)])));
        assert_same_as_reference(&q, &db);
    }

    #[test]
    fn parallel_union_arms_and_filters_match_reference() {
        let complete = DbGen::new(0.0002, 21).generate();
        let db = certus_data::inject::NullInjector::new(0.05, 13).inject(&complete);
        let params = QueryParams::random(&db, 6);
        let rewriter = CertainRewriter::new();
        let serial = Engine::with_config(&db, EngineConfig::serial());
        let parallel =
            Engine::with_config(&db, EngineConfig::with_threads(3).with_parallel_floor(0));
        // The optimized Q4+ carries split-union arms; Q3+ carries the
        // hash anti-joins. Both must agree with the serial engine.
        for q in [q3(&params), q4(&params)] {
            let plus = rewriter.rewrite_plus(&q, &db).unwrap();
            assert_eq!(
                parallel.execute(&plus).unwrap().sorted().distinct().tuples(),
                serial.execute(&plus).unwrap().sorted().distinct().tuples(),
                "query {q}"
            );
        }
        // A morsel-parallel filter via an explicitly planned exchange.
        let stats = StatisticsCatalog::analyze(&db);
        let mut par = certus_plan::Parallelism::new(3);
        par.row_threshold = 0.0;
        let planner = PhysicalPlanner::with_parallelism(&db, &stats, par);
        let q = RaExpr::relation("lineitem").select(is_null("l_commitdate"));
        let plan = planner.plan(&q).unwrap();
        assert!(plan.has_exchange());
        assert_eq!(
            parallel.execute_physical(&plan).unwrap().sorted().tuples(),
            serial.execute(&q).unwrap().sorted().tuples()
        );
    }

    #[test]
    fn engine_config_thread_counts_are_clamped() {
        assert_eq!(EngineConfig::serial().threads, 1);
        assert_eq!(EngineConfig::with_threads(0).threads, 1);
        assert_eq!(EngineConfig::with_threads(6).threads, 6);
        assert_eq!(EngineConfig::serial().parallel_floor, EngineConfig::DEFAULT_PARALLEL_FLOOR);
        assert_eq!(EngineConfig::with_threads(2).with_parallel_floor(0).parallel_floor, 0);
        assert!(!EngineConfig::serial().parallelism().enabled());
        assert!(EngineConfig::with_threads(2).parallelism().enabled());
    }

    #[test]
    fn aggregates_and_scalar_subqueries_run_through_the_engine() {
        let db = DbGen::new(0.0002, 2).generate();
        let params = QueryParams::random(&db, 2);
        let out = Engine::new(&db).execute(&q2(&params)).unwrap();
        let reference = eval(&q2(&params), &db, NullSemantics::Sql).unwrap();
        assert_eq!(out.sorted().tuples(), reference.sorted().tuples());
    }

    #[test]
    fn scalar_subqueries_evaluate_lazily() {
        use certus_algebra::condition::Operand;
        use certus_data::compare::CmpOp;
        let mut db = Database::new();
        db.insert_relation("empty", rel(&["x"], vec![]));
        db.insert_relation("two", rel(&["y"], vec![vec![Value::Int(1)], vec![Value::Int(2)]]));
        db.insert_relation("witness", rel(&["w"], vec![vec![null(1)]]));
        // `two` has two rows, so using it as a scalar subquery is invalid —
        // but only if the subquery is actually evaluated.
        let invalid_scalar = |col: &str| Condition::Cmp {
            left: Operand::Col(col.into()),
            op: CmpOp::Gt,
            right: Operand::Scalar(Box::new(RaExpr::relation("two"))),
        };
        let engine = Engine::new(&db);
        // A filter over an empty input never evaluates its condition, hence
        // never the subquery — like the reference evaluator's per-row path.
        let q = RaExpr::relation("empty").select(invalid_scalar("x"));
        assert!(engine.execute(&q).unwrap().is_empty());
        // A branch skipped by the decorrelated NOT-EXISTS short-circuit
        // never evaluates its subqueries either — like the delegating path.
        let skipped = RaExpr::relation("empty")
            .select(invalid_scalar("x"))
            .anti_join(RaExpr::relation("witness"), is_null("w"));
        let plan = engine.plan(&skipped).unwrap();
        assert!(engine.execute_physical(&plan).unwrap().is_empty());
        assert!(engine.execute_physical_delegating(&plan).unwrap().is_empty());
        // On a non-empty input the invalid subquery must surface its error.
        let bad = RaExpr::relation("two").select(invalid_scalar("y"));
        assert!(engine.execute(&bad).is_err());
        // A nested-loop join whose *outer* side is empty never evaluates
        // its condition — the vectorized path must not eagerly evaluate the
        // hoisted outer-independent subtree (which reads the unensured
        // scalar) before noticing the loop is empty.
        let empty_outer = RaExpr::relation("empty")
            .join(RaExpr::relation("two"), invalid_scalar("y").or(is_null("x")));
        assert!(engine.execute(&empty_outer).unwrap().is_empty());
        let empty_outer_semi = RaExpr::relation("empty")
            .semi_join(RaExpr::relation("two"), invalid_scalar("y").or(is_null("x")));
        assert!(engine.execute(&empty_outer_semi).unwrap().is_empty());
    }

    #[test]
    fn profiled_execution_matches_and_records_actuals() {
        let complete = DbGen::new(0.0002, 31).generate();
        let db = certus_data::inject::NullInjector::new(0.05, 17).inject(&complete);
        let params = QueryParams::random(&db, 5);
        let plus = CertainRewriter::new().rewrite_plus(&q4(&params), &db).unwrap();
        let stats = StatisticsCatalog::analyze(&db);
        let planner = PhysicalPlanner::new(&db, &stats);
        let engine = Engine::with_config(&db, EngineConfig::serial());
        let (phys, explain) = planner.plan_explained(&plus).unwrap();
        let compiled = engine.compile(&phys).unwrap();
        let plain = engine.execute_compiled(&compiled).unwrap();
        let (out, profile) = engine.execute_compiled_profiled(&compiled).unwrap();
        // Instrumentation must not change results.
        assert_eq!(out.sorted().tuples(), plain.sorted().tuples());
        assert_eq!(profile.rows_out, out.len() as u64);
        // Wall times are inclusive: children sum to at most their parent.
        for node in profile.flatten() {
            let children: u64 = node.children.iter().map(|c| c.wall_ns).sum();
            assert!(node.wall_ns >= children, "non-inclusive wall at {}", node.op);
        }
        // Zipping actuals onto the explain tree covers every estimate node.
        let analyzed = crate::analyze::annotate(&phys, &explain, &profile);
        assert_eq!(analyzed.node_count(), explain.size());
        assert_eq!(analyzed.rows_act, out.len() as u64);
    }

    #[test]
    fn profiles_tag_vectorized_and_row_paths() {
        let mut db = Database::new();
        db.insert_relation(
            "r",
            rel(&["a", "b"], (0..50).map(|i| vec![Value::Int(i % 5), Value::Int(i)]).collect()),
        );
        let q = RaExpr::relation("r").select(eq_const("a", 3i64)).project(&["b"]);
        for vectorized in [true, false] {
            let engine =
                Engine::with_config(&db, EngineConfig::serial().with_vectorized(vectorized));
            let plan = engine.plan(&q).unwrap();
            let compiled = engine.compile(&plan).unwrap();
            let (out, profile) = engine.execute_compiled_profiled(&compiled).unwrap();
            let fused =
                profile.flatten().into_iter().find(|n| n.op == "fused").expect("fused node");
            assert_eq!(fused.vec_runs > 0, vectorized);
            assert_eq!(fused.rows_in, 50);
            // Both paths agree on per-filter survivor counts; the projection
            // here keeps cardinality, so they equal the pipeline's output.
            let filter_rows: Vec<u64> =
                fused.steps.iter().filter(|s| s.op == "filter").map(|s| s.rows_out).collect();
            assert_eq!(filter_rows, vec![out.len() as u64]);
        }
    }

    #[test]
    fn profiled_hash_join_records_build_and_probe_stats() {
        let mut db = Database::new();
        db.insert_relation(
            "r",
            rel(&["a", "b"], (0..20).map(|i| vec![Value::Int(i % 5), Value::Int(i)]).collect()),
        );
        db.insert_relation("s", rel(&["c"], (0..10).map(|i| vec![Value::Int(i % 4)]).collect()));
        let q = RaExpr::relation("r").join(RaExpr::relation("s"), eq("a", "c"));
        let engine = Engine::with_config(&db, EngineConfig::serial());
        let plan = engine.plan(&q).unwrap();
        let compiled = engine.compile(&plan).unwrap();
        let (_, profile) = engine.execute_compiled_profiled(&compiled).unwrap();
        let join =
            profile.flatten().into_iter().find(|n| n.op == "hash_join").expect("hash join node");
        assert_eq!(join.rows_in, 30);
        assert_eq!(join.build_rows, 10);
        // The probe side is the left input: one probe per row, hits for the
        // keys 0..=3 (16 of 20 rows).
        assert_eq!(join.probe_hits + join.probe_misses, 20);
        assert_eq!(join.probe_hits, 16);
        // Both scan children got their actuals.
        assert_eq!(join.children[0].rows_out, 20);
        assert_eq!(join.children[1].rows_out, 10);
    }
}
