//! The execution engine.
//!
//! [`Engine::execute_physical`] evaluates a [`PhysicalExpr`] produced by the
//! `certus-plan` planner bottom-up. The engine no longer derives any
//! strategy itself — every per-node choice (hash join vs. nested loop vs.
//! decorrelated short-circuit) is read off the plan:
//!
//! * [`JoinAlgo::Hash`] / [`SemiAlgo::Hash`] run as **hash joins** with a
//!   residual predicate;
//! * [`JoinAlgo::NestedLoop`] / [`SemiAlgo::NestedLoop`] compare every pair
//!   (the fate of conditions like `A = B OR B IS NULL` that hide their
//!   equality from the key extractor);
//! * [`SemiAlgo::Decorrelated`] evaluates the inner side once and
//!   short-circuits the whole branch — for a `NOT EXISTS` that found a
//!   witness the outer side is never touched, which is what makes the
//!   translated query Q⁺2 orders of magnitude faster than Q2, as in the
//!   paper;
//! * every other operator is delegated to the reference evaluator on already
//!   materialised children, so engine results are by construction consistent
//!   with the semantics defined in `certus-algebra`.
//!
//! [`Engine::execute`] is the convenience entry point for logical plans: it
//! runs the statistics-free [`heuristic_plan`] (the same choices the
//! pre-planner engine hard-coded) and executes the result.

use certus_algebra::condition::Condition;
use certus_algebra::eval::Evaluator;
use certus_algebra::expr::RaExpr;
use certus_algebra::{AlgebraError, NullSemantics, Result};
use certus_data::{Database, Relation, Schema, Tuple, Value};
use certus_plan::physical::{heuristic_plan, JoinAlgo, PhysicalExpr, SemiAlgo};
use std::collections::HashMap;
use std::sync::Arc;

/// The physical query engine. Holds a reference to the database and the null
/// semantics applied to conditions (SQL 3VL by default).
pub struct Engine<'a> {
    db: &'a Database,
    semantics: NullSemantics,
}

impl<'a> Engine<'a> {
    /// An engine over a database using SQL three-valued semantics.
    pub fn new(db: &'a Database) -> Self {
        Engine { db, semantics: NullSemantics::Sql }
    }

    /// An engine using the given null semantics (naive evaluation is used
    /// when executing translations in the theoretical dialect).
    pub fn with_semantics(db: &'a Database, semantics: NullSemantics) -> Self {
        Engine { db, semantics }
    }

    /// Execute a logical query: plan it with the statistics-free heuristic
    /// planner, then execute the physical plan.
    pub fn execute(&self, expr: &RaExpr) -> Result<Relation> {
        let plan = heuristic_plan(expr, self.db)?;
        self.execute_physical(&plan)
    }

    /// Execute a physical plan and materialise its result.
    pub fn execute_physical(&self, plan: &PhysicalExpr) -> Result<Relation> {
        let ev = Evaluator::new(self.db, self.semantics);
        self.exec(plan, &ev)
    }

    fn exec(&self, plan: &PhysicalExpr, ev: &Evaluator<'_>) -> Result<Relation> {
        match plan {
            PhysicalExpr::Source(expr) => ev.eval(expr),
            PhysicalExpr::Join { left, right, condition, algo } => {
                self.exec_join(left, right, condition, algo, ev)
            }
            PhysicalExpr::Semi { left, right, condition, algo, anti, left_schema } => {
                self.exec_semi(left, right, condition, algo, !*anti, left_schema, ev)
            }
            // Every other operator: execute the children here (so joins below
            // them still run their planned algorithms) and delegate the node
            // itself to the reference evaluator over the materialised inputs.
            PhysicalExpr::Filter { input, condition } => {
                let child = self.exec(input, ev)?;
                ev.eval(&RaExpr::Select {
                    input: Box::new(values_of(child)),
                    condition: condition.clone(),
                })
            }
            PhysicalExpr::Project { input, columns } => {
                let child = self.exec(input, ev)?;
                ev.eval(&RaExpr::Project {
                    input: Box::new(values_of(child)),
                    columns: columns.clone(),
                })
            }
            PhysicalExpr::Union { left, right } => {
                let l = self.exec(left, ev)?;
                let r = self.exec(right, ev)?;
                ev.eval(&values_of(l).union(values_of(r)))
            }
            PhysicalExpr::Intersect { left, right } => {
                let l = self.exec(left, ev)?;
                let r = self.exec(right, ev)?;
                ev.eval(&values_of(l).intersect(values_of(r)))
            }
            PhysicalExpr::Difference { left, right } => {
                let l = self.exec(left, ev)?;
                let r = self.exec(right, ev)?;
                ev.eval(&values_of(l).difference(values_of(r)))
            }
            PhysicalExpr::UnifySemi { left, right, anti } => {
                let l = self.exec(left, ev)?;
                let r = self.exec(right, ev)?;
                let expr = if *anti {
                    values_of(l).unify_anti_join(values_of(r))
                } else {
                    values_of(l).unify_semi_join(values_of(r))
                };
                ev.eval(&expr)
            }
            PhysicalExpr::Division { left, right } => {
                let l = self.exec(left, ev)?;
                let r = self.exec(right, ev)?;
                ev.eval(&values_of(l).divide(values_of(r)))
            }
            PhysicalExpr::Rename { input, columns } => {
                let child = self.exec(input, ev)?;
                ev.eval(&RaExpr::Rename {
                    input: Box::new(values_of(child)),
                    columns: columns.clone(),
                })
            }
            PhysicalExpr::Distinct { input } => Ok(self.exec(input, ev)?.distinct()),
            PhysicalExpr::Aggregate { input, group_by, aggregates } => {
                let child = self.exec(input, ev)?;
                ev.eval(&RaExpr::Aggregate {
                    input: Box::new(values_of(child)),
                    group_by: group_by.clone(),
                    aggregates: aggregates.clone(),
                })
            }
        }
    }

    fn exec_join(
        &self,
        left: &PhysicalExpr,
        right: &PhysicalExpr,
        condition: &Condition,
        algo: &JoinAlgo,
        ev: &Evaluator<'_>,
    ) -> Result<Relation> {
        let l = self.exec(left, ev)?;
        let r = self.exec(right, ev)?;
        let combined: Arc<Schema> = l.schema().concat(r.schema()).shared();
        let mut out = Vec::new();
        match algo {
            JoinAlgo::Hash { left_keys, right_keys, residual } => {
                let l_pos = positions(l.schema(), left_keys)?;
                let r_pos = positions(r.schema(), right_keys)?;
                let allow_nulls = self.semantics == NullSemantics::Naive;
                let table = build_hash(&r, &r_pos, allow_nulls);
                for lt in l.iter() {
                    let Some(key) = key_of(lt, &l_pos, allow_nulls) else { continue };
                    if let Some(candidates) = table.get(&key) {
                        for &rt in candidates {
                            let tuple = lt.concat(rt);
                            if ev.eval_condition(residual, &combined, &tuple)?.is_true() {
                                out.push(tuple);
                            }
                        }
                    }
                }
            }
            JoinAlgo::NestedLoop => {
                for lt in l.iter() {
                    for rt in r.iter() {
                        let tuple = lt.concat(rt);
                        if ev.eval_condition(condition, &combined, &tuple)?.is_true() {
                            out.push(tuple);
                        }
                    }
                }
            }
        }
        Ok(Relation::from_parts(combined, out))
    }

    #[allow(clippy::too_many_arguments)]
    fn exec_semi(
        &self,
        left: &PhysicalExpr,
        right: &PhysicalExpr,
        condition: &Condition,
        algo: &SemiAlgo,
        keep_matching: bool,
        left_schema: &Schema,
        ev: &Evaluator<'_>,
    ) -> Result<Relation> {
        // Decorrelated subquery: the condition never looks at the outer side,
        // so the inner side decides the fate of *all* outer tuples at once.
        if let SemiAlgo::Decorrelated = algo {
            let r = self.exec(right, ev)?;
            let r_schema = r.schema().clone();
            let mut exists = false;
            for rt in r.iter() {
                if ev.eval_condition(condition, &r_schema, rt)?.is_true() {
                    exists = true;
                    break;
                }
            }
            return if exists == keep_matching {
                self.exec(left, ev)
            } else {
                // Short-circuit: for a NOT EXISTS that found a witness the
                // answer is empty and the outer side is never evaluated.
                Ok(Relation::empty(left_schema.clone().shared()))
            };
        }

        let l = self.exec(left, ev)?;
        let r = self.exec(right, ev)?;
        let combined: Arc<Schema> = l.schema().concat(r.schema()).shared();
        let mut out = Vec::new();
        match algo {
            SemiAlgo::Decorrelated => unreachable!("handled above"),
            SemiAlgo::Hash { left_keys, right_keys, residual } => {
                let l_pos = positions(l.schema(), left_keys)?;
                let r_pos = positions(r.schema(), right_keys)?;
                let allow_nulls = self.semantics == NullSemantics::Naive;
                let table = build_hash(&r, &r_pos, allow_nulls);
                for lt in l.iter() {
                    let matched = match key_of(lt, &l_pos, allow_nulls) {
                        None => false, // a null key never matches under SQL semantics
                        Some(key) => match table.get(&key) {
                            None => false,
                            Some(candidates) => {
                                let mut m = false;
                                for &rt in candidates {
                                    let tuple = lt.concat(rt);
                                    if ev.eval_condition(residual, &combined, &tuple)?.is_true() {
                                        m = true;
                                        break;
                                    }
                                }
                                m
                            }
                        },
                    };
                    if matched == keep_matching {
                        out.push(lt.clone());
                    }
                }
            }
            SemiAlgo::NestedLoop => {
                for lt in l.iter() {
                    let mut matched = false;
                    for rt in r.iter() {
                        let tuple = lt.concat(rt);
                        if ev.eval_condition(condition, &combined, &tuple)?.is_true() {
                            matched = true;
                            break;
                        }
                    }
                    if matched == keep_matching {
                        out.push(lt.clone());
                    }
                }
            }
        }
        Ok(Relation::from_parts(l.schema().clone(), out))
    }
}

/// Wrap a materialised relation as a literal-relation expression so single
/// operators can be delegated to the reference evaluator.
fn values_of(rel: Relation) -> RaExpr {
    RaExpr::Values { schema: (**rel.schema()).clone(), rows: rel.into_tuples() }
}

fn positions(schema: &Schema, names: &[String]) -> Result<Vec<usize>> {
    names.iter().map(|n| schema.position_of(n).map_err(AlgebraError::Data)).collect()
}

/// Hash key of a tuple over the given positions. Under SQL semantics a null
/// key component means the tuple can never satisfy a pure equality, so `None`
/// is returned; under naive semantics nulls are ordinary (syntactically
/// compared) values and participate in the hash.
fn key_of(tuple: &Tuple, pos: &[usize], allow_nulls: bool) -> Option<Vec<Value>> {
    let mut key = Vec::with_capacity(pos.len());
    for &p in pos {
        let v = &tuple[p];
        if v.is_null() && !allow_nulls {
            return None;
        }
        key.push(v.clone());
    }
    Some(key)
}

fn build_hash<'r>(
    rel: &'r Relation,
    pos: &[usize],
    allow_nulls: bool,
) -> HashMap<Vec<Value>, Vec<&'r Tuple>> {
    let mut table: HashMap<Vec<Value>, Vec<&Tuple>> = HashMap::with_capacity(rel.len());
    for t in rel.iter() {
        if let Some(key) = key_of(t, pos, allow_nulls) {
            table.entry(key).or_default().push(t);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use certus_algebra::builder::{eq, eq_const, is_null, neq};
    use certus_algebra::eval::eval;
    use certus_core::{CertainRewriter, ConditionDialect};
    use certus_data::builder::rel;
    use certus_data::null::NullId;
    use certus_plan::{PhysicalPlanner, Planner, StatisticsCatalog};
    use certus_tpch::{q1, q2, q3, q4, DbGen, QueryParams};

    fn null(i: u64) -> Value {
        Value::Null(NullId(i))
    }

    fn assert_same_as_reference(q: &RaExpr, db: &Database) {
        let engine = Engine::new(db).execute(q).unwrap().sorted().distinct();
        let reference = eval(q, db, NullSemantics::Sql).unwrap().sorted().distinct();
        assert_eq!(engine.tuples(), reference.tuples(), "query: {q}");
    }

    #[test]
    fn hash_join_matches_reference() {
        let mut db = Database::new();
        db.insert_relation(
            "r",
            rel(
                &["a", "b"],
                vec![
                    vec![Value::Int(1), Value::Int(10)],
                    vec![Value::Int(2), null(1)],
                    vec![Value::Int(3), Value::Int(30)],
                ],
            ),
        );
        db.insert_relation(
            "s",
            rel(
                &["c", "d"],
                vec![
                    vec![Value::Int(1), Value::Int(100)],
                    vec![Value::Int(1), Value::Int(200)],
                    vec![null(2), Value::Int(300)],
                ],
            ),
        );
        let q = RaExpr::relation("r").join(RaExpr::relation("s"), eq("a", "c"));
        assert_same_as_reference(&q, &db);
        let nl = RaExpr::relation("r").join(RaExpr::relation("s"), eq("a", "c").or(is_null("d")));
        assert_same_as_reference(&nl, &db);
        let with_residual =
            RaExpr::relation("r").join(RaExpr::relation("s"), eq("a", "c").and(neq("b", "d")));
        assert_same_as_reference(&with_residual, &db);
    }

    #[test]
    fn semi_and_anti_join_match_reference() {
        let mut db = Database::new();
        db.insert_relation(
            "r",
            rel(&["a"], vec![vec![Value::Int(1)], vec![Value::Int(2)], vec![null(5)]]),
        );
        db.insert_relation("s", rel(&["b"], vec![vec![Value::Int(2)], vec![null(1)]]));
        for cond in [eq("a", "b"), eq("a", "b").or(is_null("b")), neq("a", "b")] {
            let semi = RaExpr::relation("r").semi_join(RaExpr::relation("s"), cond.clone());
            assert_same_as_reference(&semi, &db);
            let anti = RaExpr::relation("r").anti_join(RaExpr::relation("s"), cond);
            assert_same_as_reference(&anti, &db);
        }
    }

    #[test]
    fn decorrelated_not_exists_short_circuits() {
        let mut db = Database::new();
        db.insert_relation("big", rel(&["x"], (0..100).map(|i| vec![Value::Int(i)]).collect()));
        db.insert_relation("orders", rel(&["o_custkey"], vec![vec![null(1)], vec![Value::Int(1)]]));
        // NOT EXISTS (orders with null custkey) — uncorrelated, witness present.
        let q = RaExpr::relation("big").anti_join(RaExpr::relation("orders"), is_null("o_custkey"));
        let out = Engine::new(&db).execute(&q).unwrap();
        assert!(out.is_empty());
        assert_same_as_reference(&q, &db);
        // Same query but no witness: everything survives.
        let q2 = RaExpr::relation("big")
            .anti_join(RaExpr::relation("orders"), eq_const("o_custkey", 999i64));
        assert_eq!(Engine::new(&db).execute(&q2).unwrap().len(), 100);
        assert_same_as_reference(&q2, &db);
    }

    #[test]
    fn cost_based_physical_plans_execute_identically() {
        let complete = DbGen::new(0.0002, 11).generate();
        let db = certus_data::inject::NullInjector::new(0.05, 3).inject(&complete);
        let params = QueryParams::random(&db, 2);
        let stats = StatisticsCatalog::analyze(&db);
        let planner = PhysicalPlanner::new(&db, &stats);
        let engine = Engine::new(&db);
        for q in [q1(&params), q3(&params), q4(&params)] {
            let plan = planner.plan(&q).unwrap();
            let planned = engine.execute_physical(&plan).unwrap().sorted().distinct();
            let heuristic = engine.execute(&q).unwrap().sorted().distinct();
            assert_eq!(planned.tuples(), heuristic.tuples(), "query: {q}");
        }
    }

    #[test]
    fn full_planner_pipeline_matches_unplanned_execution() {
        let complete = DbGen::new(0.0002, 12).generate();
        let db = certus_data::inject::NullInjector::new(0.05, 7).inject(&complete);
        let params = QueryParams::random(&db, 4);
        let engine = Engine::new(&db);
        let rewriter = CertainRewriter::unoptimized();
        let planner = Planner::new();
        for q in [q3(&params), q4(&params)] {
            let raw = rewriter.rewrite_plus(&q, &db).unwrap();
            let optimized = planner.optimize(&raw, &db).unwrap();
            let a = engine.execute(&raw).unwrap().sorted().distinct();
            let b = engine.execute(&optimized).unwrap().sorted().distinct();
            assert_eq!(a.tuples(), b.tuples(), "Q pipeline changed results");
        }
    }

    #[test]
    fn tpch_queries_match_reference_on_incomplete_data() {
        let complete = DbGen::new(0.0002, 5).generate();
        let db = certus_data::inject::NullInjector::new(0.05, 9).inject(&complete);
        let params = QueryParams::random(&db, 3);
        for q in [q1(&params), q2(&params), q3(&params), q4(&params)] {
            assert_same_as_reference(&q, &db);
        }
    }

    #[test]
    fn translated_queries_match_reference_and_stay_certain() {
        let complete = DbGen::new(0.0002, 6).generate();
        let db = certus_data::inject::NullInjector::new(0.05, 4).inject(&complete);
        let params = QueryParams::random(&db, 1);
        let rewriter = CertainRewriter::new();
        for q in [q3(&params), q2(&params)] {
            let plus = rewriter.rewrite_plus(&q, &db).unwrap();
            assert_same_as_reference(&plus, &db);
            // Q+ answers are a subset of SQL answers for these queries.
            let sql = Engine::new(&db).execute(&q).unwrap();
            let certain = Engine::new(&db).execute(&plus).unwrap();
            for t in certain.iter() {
                assert!(sql.contains(t));
            }
        }
        assert_eq!(rewriter.dialect, ConditionDialect::Sql);
    }

    #[test]
    fn naive_semantics_engine_matches_reference() {
        let mut db = Database::new();
        db.insert_relation("r", rel(&["a"], vec![vec![null(1)], vec![Value::Int(1)]]));
        db.insert_relation("s", rel(&["b"], vec![vec![null(1)]]));
        let q = RaExpr::relation("r").join(RaExpr::relation("s"), eq("a", "b"));
        let engine = Engine::with_semantics(&db, NullSemantics::Naive).execute(&q).unwrap();
        let reference = eval(&q, &db, NullSemantics::Naive).unwrap();
        assert_eq!(engine.sorted().tuples(), reference.sorted().tuples());
        assert_eq!(engine.len(), 1);
    }

    #[test]
    fn aggregates_and_scalar_subqueries_run_through_the_engine() {
        let db = DbGen::new(0.0002, 2).generate();
        let params = QueryParams::random(&db, 2);
        let out = Engine::new(&db).execute(&q2(&params)).unwrap();
        let reference = eval(&q2(&params), &db, NullSemantics::Sql).unwrap();
        assert_eq!(out.sorted().tuples(), reference.sorted().tuples());
    }
}
