//! The execution engine.
//!
//! [`Engine::execute_physical`] evaluates a [`PhysicalExpr`] produced by the
//! `certus-plan` planner bottom-up. The engine no longer derives any
//! strategy itself — every per-node choice (hash join vs. nested loop vs.
//! decorrelated short-circuit) is read off the plan:
//!
//! * [`JoinAlgo::Hash`] / [`SemiAlgo::Hash`] run as **hash joins** with a
//!   residual predicate;
//! * [`JoinAlgo::NestedLoop`] / [`SemiAlgo::NestedLoop`] compare every pair
//!   (the fate of conditions like `A = B OR B IS NULL` that hide their
//!   equality from the key extractor);
//! * [`SemiAlgo::Decorrelated`] evaluates the inner side once and
//!   short-circuits the whole branch — for a `NOT EXISTS` that found a
//!   witness the outer side is never touched, which is what makes the
//!   translated query Q⁺2 orders of magnitude faster than Q2, as in the
//!   paper;
//! * every other operator is delegated to the reference evaluator on already
//!   materialised children, so engine results are by construction consistent
//!   with the semantics defined in `certus-algebra`.
//!
//! [`Engine::execute`] is the convenience entry point for logical plans: it
//! runs the statistics-free [`heuristic_plan`](certus_plan::physical::heuristic_plan) (the same choices the
//! pre-planner engine hard-coded) and executes the result.
//!
//! # Parallel execution
//!
//! Plans may contain [`PhysicalExpr::Exchange`] operators (inserted by the
//! planners when configured with a [`Parallelism`]); the engine turns them
//! into multi-threaded execution with `std::thread::scope`:
//!
//! * an exchange with [`Partitioning::Hash`] under a hash (semi-)join's build
//!   side splits **both** sides by a deterministic key hash and runs build +
//!   probe of every partition on its own worker;
//! * exchanges under a union mark its branches (the translation's split-union
//!   `Q⁺` arms) for **concurrent evaluation**;
//! * an exchange with [`Partitioning::RoundRobin`] under a filter splits the
//!   input into contiguous morsels filtered in parallel.
//!
//! With [`EngineConfig::threads`] `== 1` (or on plans without exchanges) the
//! engine takes exactly the serial code paths. All parallel paths are
//! deterministic: partition routing uses a fixed hash and results are
//! concatenated in partition order.

use certus_algebra::condition::Condition;
use certus_algebra::eval::Evaluator;
use certus_algebra::expr::RaExpr;
use certus_algebra::{AlgebraError, NullSemantics, Result};
use certus_data::{Database, Relation, Schema, Tuple, Value};
use certus_plan::physical::{
    heuristic_plan_with, JoinAlgo, Parallelism, Partitioning, PhysicalExpr, SemiAlgo,
};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Runtime configuration of the engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineConfig {
    /// Number of worker threads exchange operators may fan out to
    /// (1 = serial execution, and the planners insert no exchanges).
    pub threads: usize,
    /// Minimum input work (rows for hash/filter operators, pairs for nested
    /// loops) before a parallel operator actually spawns threads; smaller
    /// inputs run inline so tiny queries never pay the scope overhead. The
    /// heuristic planner has no statistics, so this runtime floor is what
    /// keeps its exchanges harmless on small data.
    pub parallel_floor: usize,
}

impl EngineConfig {
    /// Default [`EngineConfig::parallel_floor`].
    pub const DEFAULT_PARALLEL_FLOOR: usize = 1024;

    /// Serial execution: one thread, no exchange operators.
    pub fn serial() -> Self {
        EngineConfig::with_threads(1)
    }

    /// A configuration with an explicit thread count (clamped to ≥ 1).
    pub fn with_threads(threads: usize) -> Self {
        EngineConfig { threads: threads.max(1), parallel_floor: Self::DEFAULT_PARALLEL_FLOOR }
    }

    /// The environment-driven default: the `CERTUS_THREADS` variable when set
    /// to a positive integer, the machine's available parallelism otherwise.
    pub fn from_env() -> Self {
        let threads = std::env::var("CERTUS_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&t| t >= 1)
            .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1));
        EngineConfig::with_threads(threads)
    }

    /// Replace the parallel floor (0 forces every exchange to fan out, used
    /// by the differential tests to exercise the parallel paths on small
    /// instances).
    pub fn with_parallel_floor(mut self, rows: usize) -> Self {
        self.parallel_floor = rows;
        self
    }

    /// The [`Parallelism`] the heuristic planner should plan for.
    pub fn parallelism(&self) -> Parallelism {
        Parallelism::new(self.threads)
    }
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig::from_env()
    }
}

/// The physical query engine. Holds a reference to the database, the null
/// semantics applied to conditions (SQL 3VL by default), and the runtime
/// configuration (thread count).
pub struct Engine<'a> {
    db: &'a Database,
    semantics: NullSemantics,
    config: EngineConfig,
    /// Worker threads currently spawned by this engine's parallel regions;
    /// nested operators subtract it from the configured thread budget so the
    /// total fan-out never exceeds `config.threads`.
    in_flight: AtomicUsize,
}

impl<'a> Engine<'a> {
    /// An engine with explicit semantics and configuration — the one real
    /// constructor; everything else defaults into it.
    ///
    /// For new code, prefer the `certus::Session` facade: it owns the
    /// database, prepares (translates + plans) queries once, caches the
    /// plans, and constructs engines like this one internally per execution.
    pub fn configured(db: &'a Database, semantics: NullSemantics, config: EngineConfig) -> Self {
        Engine { db, semantics, config, in_flight: AtomicUsize::new(0) }
    }

    /// Shim over [`Engine::configured`]: SQL three-valued semantics and the
    /// environment-driven default configuration ([`EngineConfig::from_env`]).
    /// Superseded by `certus::Session` for new code.
    pub fn new(db: &'a Database) -> Self {
        Engine::configured(db, NullSemantics::Sql, EngineConfig::default())
    }

    /// Shim over [`Engine::configured`]: explicit null semantics (naive
    /// evaluation pairs with translations in the theoretical dialect), the
    /// default configuration. Superseded by `certus::Session` for new code.
    pub fn with_semantics(db: &'a Database, semantics: NullSemantics) -> Self {
        Engine::configured(db, semantics, EngineConfig::default())
    }

    /// Shim over [`Engine::configured`]: explicit configuration, SQL
    /// semantics. Superseded by `certus::Session` for new code.
    pub fn with_config(db: &'a Database, config: EngineConfig) -> Self {
        Engine::configured(db, NullSemantics::Sql, config)
    }

    /// The engine's runtime configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The physical plan [`Engine::execute`] would run: the statistics-free
    /// heuristic plan, with exchange operators iff `threads > 1`.
    pub fn plan(&self, expr: &RaExpr) -> Result<PhysicalExpr> {
        Ok(heuristic_plan_with(expr, self.db, &self.config.parallelism())?)
    }

    /// Execute a logical query: plan it with the statistics-free heuristic
    /// planner (inserting exchanges when this engine is multi-threaded),
    /// then execute the physical plan.
    pub fn execute(&self, expr: &RaExpr) -> Result<Relation> {
        let plan = self.plan(expr)?;
        self.execute_physical(&plan)
    }

    /// Execute a physical plan and materialise its result.
    pub fn execute_physical(&self, plan: &PhysicalExpr) -> Result<Relation> {
        let ev = Evaluator::new(self.db, self.semantics);
        self.exec(plan, &ev)
    }

    fn exec(&self, plan: &PhysicalExpr, ev: &Evaluator<'_>) -> Result<Relation> {
        match plan {
            PhysicalExpr::Source(expr) => ev.eval(expr),
            PhysicalExpr::Join { left, right, condition, algo } => {
                self.exec_join(left, right, condition, algo, ev)
            }
            PhysicalExpr::Semi { left, right, condition, algo, anti, left_schema } => {
                self.exec_semi(left, right, condition, algo, !*anti, left_schema, ev)
            }
            // An exchange executed in place (serial engine, or a parent that
            // does not exploit it) is the identity: materialise the input.
            PhysicalExpr::Exchange { input, .. } => self.exec(input, ev),
            // Every other operator: execute the children here (so joins below
            // them still run their planned algorithms) and delegate the node
            // itself to the reference evaluator over the materialised inputs.
            PhysicalExpr::Filter { input, condition } => {
                if let PhysicalExpr::Exchange {
                    input: inner,
                    partitioning: Partitioning::RoundRobin { partitions },
                } = input.as_ref()
                {
                    if self.config.threads > 1 {
                        let child = self.exec(inner, ev)?;
                        return self.exec_filter_parallel(child, condition, *partitions);
                    }
                }
                let child = self.exec(input, ev)?;
                ev.eval(&RaExpr::Select {
                    input: Box::new(values_of(child)),
                    condition: condition.clone(),
                })
            }
            PhysicalExpr::Project { input, columns } => {
                let child = self.exec(input, ev)?;
                ev.eval(&RaExpr::Project {
                    input: Box::new(values_of(child)),
                    columns: columns.clone(),
                })
            }
            PhysicalExpr::Union { left, right } => {
                // Arm sizes are unknown before execution, so the runtime
                // floor is checked against the database size: tiny databases
                // can never produce arms worth a thread.
                if self.config.threads > 1
                    && (matches!(**left, PhysicalExpr::Exchange { .. })
                        || matches!(**right, PhysicalExpr::Exchange { .. }))
                    && self.db.total_tuples() >= self.config.parallel_floor
                {
                    return self.exec_union_parallel(plan);
                }
                let l = self.exec(left, ev)?;
                let r = self.exec(right, ev)?;
                ev.eval(&values_of(l).union(values_of(r)))
            }
            PhysicalExpr::Intersect { left, right } => {
                let l = self.exec(left, ev)?;
                let r = self.exec(right, ev)?;
                ev.eval(&values_of(l).intersect(values_of(r)))
            }
            PhysicalExpr::Difference { left, right } => {
                let l = self.exec(left, ev)?;
                let r = self.exec(right, ev)?;
                ev.eval(&values_of(l).difference(values_of(r)))
            }
            PhysicalExpr::UnifySemi { left, right, anti } => {
                let l = self.exec(left, ev)?;
                let r = self.exec(right, ev)?;
                let expr = if *anti {
                    values_of(l).unify_anti_join(values_of(r))
                } else {
                    values_of(l).unify_semi_join(values_of(r))
                };
                ev.eval(&expr)
            }
            PhysicalExpr::Division { left, right } => {
                let l = self.exec(left, ev)?;
                let r = self.exec(right, ev)?;
                ev.eval(&values_of(l).divide(values_of(r)))
            }
            PhysicalExpr::Rename { input, columns } => {
                let child = self.exec(input, ev)?;
                ev.eval(&RaExpr::Rename {
                    input: Box::new(values_of(child)),
                    columns: columns.clone(),
                })
            }
            PhysicalExpr::Distinct { input } => Ok(self.exec(input, ev)?.distinct()),
            PhysicalExpr::Aggregate { input, group_by, aggregates } => {
                let child = self.exec(input, ev)?;
                ev.eval(&RaExpr::Aggregate {
                    input: Box::new(values_of(child)),
                    group_by: group_by.clone(),
                    aggregates: aggregates.clone(),
                })
            }
        }
    }

    fn exec_join(
        &self,
        left: &PhysicalExpr,
        right: &PhysicalExpr,
        condition: &Condition,
        algo: &JoinAlgo,
        ev: &Evaluator<'_>,
    ) -> Result<Relation> {
        // The planner marked the build side for hash partitioning (run build
        // and probe of every partition on its own worker thread) or the
        // outer side of a nested loop for morsel parallelism.
        if self.config.threads > 1 {
            if let (
                JoinAlgo::Hash { left_keys, right_keys, residual },
                PhysicalExpr::Exchange {
                    input,
                    partitioning: Partitioning::Hash { partitions, .. },
                },
            ) = (algo, right)
            {
                let l = self.exec(left, ev)?;
                let r = self.exec(input, ev)?;
                return self.hash_join_partitioned(
                    &l,
                    &r,
                    left_keys,
                    right_keys,
                    residual,
                    *partitions,
                );
            }
            if let (
                JoinAlgo::NestedLoop,
                PhysicalExpr::Exchange {
                    input,
                    partitioning: Partitioning::RoundRobin { partitions },
                },
            ) = (algo, left)
            {
                let l = self.exec(input, ev)?;
                let r = self.exec(right, ev)?;
                return self.nl_join_morsels(&l, &r, condition, *partitions);
            }
        }
        let l = self.exec(left, ev)?;
        let r = self.exec(right, ev)?;
        let combined: Arc<Schema> = l.schema().concat(r.schema()).shared();
        let mut out = Vec::new();
        match algo {
            JoinAlgo::Hash { left_keys, right_keys, residual } => {
                let l_pos = positions(l.schema(), left_keys)?;
                let r_pos = positions(r.schema(), right_keys)?;
                let allow_nulls = self.semantics == NullSemantics::Naive;
                let table = build_hash(&r, &r_pos, allow_nulls);
                for lt in l.iter() {
                    let Some(key) = key_of(lt, &l_pos, allow_nulls) else { continue };
                    if let Some(candidates) = table.get(&key) {
                        for &rt in candidates {
                            let tuple = lt.concat(rt);
                            if ev.eval_condition(residual, &combined, &tuple)?.is_true() {
                                out.push(tuple);
                            }
                        }
                    }
                }
            }
            JoinAlgo::NestedLoop => {
                for lt in l.iter() {
                    for rt in r.iter() {
                        let tuple = lt.concat(rt);
                        if ev.eval_condition(condition, &combined, &tuple)?.is_true() {
                            out.push(tuple);
                        }
                    }
                }
            }
        }
        Ok(Relation::from_parts(combined, out))
    }

    #[allow(clippy::too_many_arguments)]
    fn exec_semi(
        &self,
        left: &PhysicalExpr,
        right: &PhysicalExpr,
        condition: &Condition,
        algo: &SemiAlgo,
        keep_matching: bool,
        left_schema: &Schema,
        ev: &Evaluator<'_>,
    ) -> Result<Relation> {
        // Decorrelated subquery: the condition never looks at the outer side,
        // so the inner side decides the fate of *all* outer tuples at once.
        if let SemiAlgo::Decorrelated = algo {
            let r = self.exec(right, ev)?;
            let r_schema = r.schema().clone();
            let mut exists = false;
            for rt in r.iter() {
                if ev.eval_condition(condition, &r_schema, rt)?.is_true() {
                    exists = true;
                    break;
                }
            }
            return if exists == keep_matching {
                self.exec(left, ev)
            } else {
                // Short-circuit: for a NOT EXISTS that found a witness the
                // answer is empty and the outer side is never evaluated.
                Ok(Relation::empty(left_schema.clone().shared()))
            };
        }

        // Partitioned parallel hash (anti-)semijoin, mirroring the join case.
        if self.config.threads > 1 {
            if let (
                SemiAlgo::Hash { left_keys, right_keys, residual },
                PhysicalExpr::Exchange {
                    input,
                    partitioning: Partitioning::Hash { partitions, .. },
                },
            ) = (algo, right)
            {
                let l = self.exec(left, ev)?;
                let r = self.exec(input, ev)?;
                return self.hash_semi_partitioned(
                    &l,
                    &r,
                    left_keys,
                    right_keys,
                    residual,
                    keep_matching,
                    *partitions,
                );
            }
            if let (
                SemiAlgo::NestedLoop,
                PhysicalExpr::Exchange {
                    input,
                    partitioning: Partitioning::RoundRobin { partitions },
                },
            ) = (algo, left)
            {
                let l = self.exec(input, ev)?;
                let r = self.exec(right, ev)?;
                return self.nl_semi_morsels(&l, &r, condition, keep_matching, *partitions);
            }
        }
        let l = self.exec(left, ev)?;
        let r = self.exec(right, ev)?;
        let combined: Arc<Schema> = l.schema().concat(r.schema()).shared();
        let mut out = Vec::new();
        match algo {
            SemiAlgo::Decorrelated => unreachable!("handled above"),
            SemiAlgo::Hash { left_keys, right_keys, residual } => {
                let l_pos = positions(l.schema(), left_keys)?;
                let r_pos = positions(r.schema(), right_keys)?;
                let allow_nulls = self.semantics == NullSemantics::Naive;
                let table = build_hash(&r, &r_pos, allow_nulls);
                for lt in l.iter() {
                    let matched = match key_of(lt, &l_pos, allow_nulls) {
                        None => false, // a null key never matches under SQL semantics
                        Some(key) => match table.get(&key) {
                            None => false,
                            Some(candidates) => {
                                let mut m = false;
                                for &rt in candidates {
                                    let tuple = lt.concat(rt);
                                    if ev.eval_condition(residual, &combined, &tuple)?.is_true() {
                                        m = true;
                                        break;
                                    }
                                }
                                m
                            }
                        },
                    };
                    if matched == keep_matching {
                        out.push(lt.clone());
                    }
                }
            }
            SemiAlgo::NestedLoop => {
                for lt in l.iter() {
                    let mut matched = false;
                    for rt in r.iter() {
                        let tuple = lt.concat(rt);
                        if ev.eval_condition(condition, &combined, &tuple)?.is_true() {
                            matched = true;
                            break;
                        }
                    }
                    if matched == keep_matching {
                        out.push(lt.clone());
                    }
                }
            }
        }
        Ok(Relation::from_parts(l.schema().clone(), out))
    }

    /// Number of workers an operator with the given plan-side partition
    /// count and input work (rows or pairs touched) actually fans out to:
    /// never more than the engine's configured threads, and 1 (inline, no
    /// thread spawned) below the configured floor — tiny inputs are not
    /// worth a scope.
    fn workers(&self, partitions: usize, work: usize) -> usize {
        if work < self.config.parallel_floor {
            1
        } else {
            // Deliberately *not* a function of the transient in-flight count:
            // this value is the routing modulus / morsel count, and output
            // order depends on it, so it must be deterministic for a fixed
            // plan and config. Oversubscription is bounded separately, by
            // grouping in parallel_tuples.
            partitions.clamp(1, self.config.threads.max(1))
        }
    }

    /// Threads still available to a new parallel region: the configured
    /// count minus workers already spawned by enclosing regions (union arms
    /// containing partitioned joins would otherwise multiply fan-out to
    /// roughly `threads^2`). Only ever used to decide *scheduling* (how many
    /// threads to spawn), never how work is split — the value is racy across
    /// sibling regions.
    fn thread_budget(&self) -> usize {
        self.config.threads.saturating_sub(self.in_flight.load(Ordering::Relaxed)).max(1)
    }

    /// Partitioned parallel hash join: route both sides to partitions by a
    /// deterministic key hash, then build + probe every partition on its own
    /// worker. Output is the concatenation of the partition outputs in
    /// partition order (and probe order within a partition), so results are
    /// deterministic for a fixed plan.
    fn hash_join_partitioned(
        &self,
        l: &Relation,
        r: &Relation,
        left_keys: &[String],
        right_keys: &[String],
        residual: &Condition,
        partitions: usize,
    ) -> Result<Relation> {
        let combined: Arc<Schema> = l.schema().concat(r.schema()).shared();
        let l_pos = positions(l.schema(), left_keys)?;
        let r_pos = positions(r.schema(), right_keys)?;
        let allow_nulls = self.semantics == NullSemantics::Naive;
        let n = self.workers(partitions, l.len() + r.len());
        let build = route(r, &r_pos, allow_nulls, n).0;
        let probe = route(l, &l_pos, allow_nulls, n).0;
        let parts: Vec<_> = build.into_iter().zip(probe).collect();
        let out = self.parallel_tuples(&parts, |(b, p)| {
            let ev = Evaluator::new(self.db, self.semantics);
            let table = table_of(b);
            let mut out = Vec::new();
            for (key, lt) in p {
                if let Some(candidates) = table.get(key.as_slice()) {
                    for &rt in candidates {
                        let tuple = lt.concat(rt);
                        if ev.eval_condition(residual, &combined, &tuple)?.is_true() {
                            out.push(tuple);
                        }
                    }
                }
            }
            Ok(out)
        })?;
        Ok(Relation::from_parts(combined, out))
    }

    /// Partitioned parallel hash (anti-)semijoin. Left tuples whose key
    /// contains a null (which can never match under SQL semantics) bypass the
    /// partitions and are appended after them, preserving determinism.
    #[allow(clippy::too_many_arguments)]
    fn hash_semi_partitioned(
        &self,
        l: &Relation,
        r: &Relation,
        left_keys: &[String],
        right_keys: &[String],
        residual: &Condition,
        keep_matching: bool,
        partitions: usize,
    ) -> Result<Relation> {
        let combined: Arc<Schema> = l.schema().concat(r.schema()).shared();
        let l_pos = positions(l.schema(), left_keys)?;
        let r_pos = positions(r.schema(), right_keys)?;
        let allow_nulls = self.semantics == NullSemantics::Naive;
        let n = self.workers(partitions, l.len() + r.len());
        let build = route(r, &r_pos, allow_nulls, n).0;
        let (probe, null_keyed) = route(l, &l_pos, allow_nulls, n);
        let parts: Vec<_> = build.into_iter().zip(probe).collect();
        let mut out = self.parallel_tuples(&parts, |(b, p)| {
            let ev = Evaluator::new(self.db, self.semantics);
            let table = table_of(b);
            let mut out = Vec::new();
            for (key, lt) in p {
                let mut matched = false;
                if let Some(candidates) = table.get(key.as_slice()) {
                    for &rt in candidates {
                        let tuple = lt.concat(rt);
                        if ev.eval_condition(residual, &combined, &tuple)?.is_true() {
                            matched = true;
                            break;
                        }
                    }
                }
                if matched == keep_matching {
                    out.push((*lt).clone());
                }
            }
            Ok(out)
        })?;
        if !keep_matching {
            // A null key never matches: those tuples survive an anti-join.
            out.extend(null_keyed.into_iter().cloned());
        }
        Ok(Relation::from_parts(l.schema().clone(), out))
    }

    /// Morsel-parallel nested-loop join: the outer side is split into
    /// contiguous morsels, each worker loops its morsel over the full inner
    /// side. Morsel outputs concatenate to exactly the serial output order.
    fn nl_join_morsels(
        &self,
        l: &Relation,
        r: &Relation,
        condition: &Condition,
        partitions: usize,
    ) -> Result<Relation> {
        let combined: Arc<Schema> = l.schema().concat(r.schema()).shared();
        let n = self.workers(partitions, l.len().saturating_mul(r.len()));
        let morsels: Vec<&[Tuple]> = chunks_of(l.tuples(), n);
        let out = self.parallel_tuples(&morsels, |chunk| {
            let ev = Evaluator::new(self.db, self.semantics);
            let mut out = Vec::new();
            for lt in *chunk {
                for rt in r.iter() {
                    let tuple = lt.concat(rt);
                    if ev.eval_condition(condition, &combined, &tuple)?.is_true() {
                        out.push(tuple);
                    }
                }
            }
            Ok(out)
        })?;
        Ok(Relation::from_parts(combined, out))
    }

    /// Morsel-parallel nested-loop (anti-)semijoin over the preserved side.
    fn nl_semi_morsels(
        &self,
        l: &Relation,
        r: &Relation,
        condition: &Condition,
        keep_matching: bool,
        partitions: usize,
    ) -> Result<Relation> {
        let combined: Arc<Schema> = l.schema().concat(r.schema()).shared();
        let n = self.workers(partitions, l.len().saturating_mul(r.len()));
        let morsels: Vec<&[Tuple]> = chunks_of(l.tuples(), n);
        let out = self.parallel_tuples(&morsels, |chunk| {
            let ev = Evaluator::new(self.db, self.semantics);
            let mut out = Vec::new();
            for lt in *chunk {
                let mut matched = false;
                for rt in r.iter() {
                    let tuple = lt.concat(rt);
                    if ev.eval_condition(condition, &combined, &tuple)?.is_true() {
                        matched = true;
                        break;
                    }
                }
                if matched == keep_matching {
                    out.push(lt.clone());
                }
            }
            Ok(out)
        })?;
        Ok(Relation::from_parts(l.schema().clone(), out))
    }

    /// Evaluate the arms of a (possibly nested) union concurrently — at most
    /// `threads` workers, each taking a contiguous group of arms in order —
    /// then fold the results in arm order *through the evaluator*, which
    /// aligns every arm onto the accumulated schema exactly like the serial
    /// union path does.
    fn exec_union_parallel(&self, plan: &PhysicalExpr) -> Result<Relation> {
        let mut arms = Vec::new();
        union_arms(plan, &mut arms);
        let groups: Vec<&[&PhysicalExpr]> = chunks_of(&arms, self.thread_budget());
        let results: Vec<Result<Vec<Relation>>> = if groups.len() <= 1 {
            let ev = Evaluator::new(self.db, self.semantics);
            groups
                .iter()
                .map(|group| group.iter().map(|arm| self.exec(arm, &ev)).collect())
                .collect()
        } else {
            let extra = groups.len() - 1;
            self.in_flight.fetch_add(extra, Ordering::Relaxed);
            let results = std::thread::scope(|s| {
                let handles: Vec<_> = groups
                    .iter()
                    .map(|group| {
                        s.spawn(move || {
                            let ev = Evaluator::new(self.db, self.semantics);
                            group.iter().map(|arm| self.exec(arm, &ev)).collect()
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().expect("union worker panicked")).collect()
            });
            self.in_flight.fetch_sub(extra, Ordering::Relaxed);
            results
        };
        let ev = Evaluator::new(self.db, self.semantics);
        let mut acc: Option<Relation> = None;
        for group in results {
            for rel in group? {
                acc = Some(match acc {
                    None => rel,
                    Some(a) => ev.eval(&values_of(a).union(values_of(rel)))?,
                });
            }
        }
        acc.ok_or_else(|| AlgebraError::Malformed("union with no arms".into()))
    }

    /// Run `worker` over every item. A single item (or none) runs inline on
    /// the current thread; more fan out to one scoped worker thread each,
    /// accounted against the engine's thread budget. Outputs are
    /// concatenated in item order, so callers are deterministic.
    fn parallel_tuples<T, W>(&self, items: &[T], worker: W) -> Result<Vec<Tuple>>
    where
        T: Sync,
        W: Fn(&T) -> Result<Vec<Tuple>> + Sync,
    {
        // Items are grouped contiguously onto at most `thread_budget()`
        // worker threads; each worker processes its group in item order and
        // group outputs concatenate in group order, so the result is the
        // same regardless of how many threads happened to be available.
        let groups: Vec<&[T]> = chunks_of(items, self.thread_budget());
        let mut out = Vec::new();
        if groups.len() <= 1 {
            for item in items {
                out.extend(worker(item)?);
            }
            return Ok(out);
        }
        let extra = groups.len() - 1;
        self.in_flight.fetch_add(extra, Ordering::Relaxed);
        let chunks: Vec<Result<Vec<Tuple>>> = std::thread::scope(|s| {
            let worker = &worker;
            let handles: Vec<_> = groups
                .iter()
                .map(|group| {
                    s.spawn(move || {
                        let mut out = Vec::new();
                        for item in *group {
                            out.extend(worker(item)?);
                        }
                        Ok(out)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("parallel worker panicked")).collect()
        });
        self.in_flight.fetch_sub(extra, Ordering::Relaxed);
        for c in chunks {
            out.extend(c?);
        }
        Ok(out)
    }

    /// Filter a materialised input by splitting it into contiguous morsels,
    /// one per partition, evaluated concurrently. Morsel outputs are
    /// concatenated in order, matching the serial filter's output order.
    fn exec_filter_parallel(
        &self,
        input: Relation,
        condition: &Condition,
        partitions: usize,
    ) -> Result<Relation> {
        let schema = input.schema().clone();
        let tuples = input.into_tuples();
        let n = self.workers(partitions, tuples.len());
        let morsels: Vec<&[Tuple]> = chunks_of(&tuples, n);
        let out = self.parallel_tuples(&morsels, |chunk| {
            let ev = Evaluator::new(self.db, self.semantics);
            let mut out = Vec::new();
            for t in *chunk {
                if ev.eval_condition(condition, &schema, t)?.is_true() {
                    out.push(t.clone());
                }
            }
            Ok(out)
        })?;
        Ok(Relation::from_parts(schema, out))
    }
}

/// Split a slice into at most `n` contiguous chunks (fewer when the slice is
/// shorter), preserving order.
fn chunks_of<T>(items: &[T], n: usize) -> Vec<&[T]> {
    let size = items.len().div_ceil(n.max(1)).max(1);
    items.chunks(size).collect()
}

/// Deterministic partition index of a key: a fixed-seed hash, so plans
/// execute identically run to run and across thread counts.
fn partition_index(key: &[Value], partitions: usize) -> usize {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() % partitions.max(1) as u64) as usize
}

/// Route a relation's tuples to partitions by key hash. Returns the
/// partitions (key + tuple, in input order) and the tuples whose key
/// contained a null (excluded from hashing under SQL semantics).
#[allow(clippy::type_complexity)]
fn route<'r>(
    rel: &'r Relation,
    pos: &[usize],
    allow_nulls: bool,
    partitions: usize,
) -> (Vec<Vec<(Vec<Value>, &'r Tuple)>>, Vec<&'r Tuple>) {
    let p = partitions.max(1);
    let mut parts: Vec<Vec<(Vec<Value>, &Tuple)>> = vec![Vec::new(); p];
    let mut null_keyed = Vec::new();
    for t in rel.iter() {
        match key_of(t, pos, allow_nulls) {
            Some(key) => {
                let i = partition_index(&key, p);
                parts[i].push((key, t));
            }
            None => null_keyed.push(t),
        }
    }
    (parts, null_keyed)
}

/// Build a hash table over one routed partition (keys were computed during
/// routing; the table borrows them).
fn table_of<'p, 'r>(part: &'p [(Vec<Value>, &'r Tuple)]) -> HashMap<&'p [Value], Vec<&'r Tuple>> {
    let mut table: HashMap<&[Value], Vec<&Tuple>> = HashMap::with_capacity(part.len());
    for (key, t) in part {
        table.entry(key.as_slice()).or_default().push(t);
    }
    table
}

/// Collect the leaf arms of a (possibly nested) union, looking through the
/// exchange operators that mark the arms for concurrent evaluation.
fn union_arms<'p>(plan: &'p PhysicalExpr, out: &mut Vec<&'p PhysicalExpr>) {
    match plan {
        PhysicalExpr::Union { left, right } => {
            union_arms(left, out);
            union_arms(right, out);
        }
        PhysicalExpr::Exchange { input, .. } => union_arms(input, out),
        other => out.push(other),
    }
}

/// Wrap a materialised relation as a literal-relation expression so single
/// operators can be delegated to the reference evaluator.
fn values_of(rel: Relation) -> RaExpr {
    RaExpr::Values { schema: (**rel.schema()).clone(), rows: rel.into_tuples() }
}

fn positions(schema: &Schema, names: &[String]) -> Result<Vec<usize>> {
    names.iter().map(|n| schema.position_of(n).map_err(AlgebraError::Data)).collect()
}

/// Hash key of a tuple over the given positions. Under SQL semantics a null
/// key component means the tuple can never satisfy a pure equality, so `None`
/// is returned; under naive semantics nulls are ordinary (syntactically
/// compared) values and participate in the hash.
fn key_of(tuple: &Tuple, pos: &[usize], allow_nulls: bool) -> Option<Vec<Value>> {
    let mut key = Vec::with_capacity(pos.len());
    for &p in pos {
        let v = &tuple[p];
        if v.is_null() && !allow_nulls {
            return None;
        }
        key.push(v.clone());
    }
    Some(key)
}

fn build_hash<'r>(
    rel: &'r Relation,
    pos: &[usize],
    allow_nulls: bool,
) -> HashMap<Vec<Value>, Vec<&'r Tuple>> {
    let mut table: HashMap<Vec<Value>, Vec<&Tuple>> = HashMap::with_capacity(rel.len());
    for t in rel.iter() {
        if let Some(key) = key_of(t, pos, allow_nulls) {
            table.entry(key).or_default().push(t);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use certus_algebra::builder::{eq, eq_const, is_null, neq};
    use certus_algebra::eval::eval;
    use certus_core::{CertainRewriter, ConditionDialect};
    use certus_data::builder::rel;
    use certus_data::null::NullId;
    use certus_plan::{PhysicalPlanner, Planner, StatisticsCatalog};
    use certus_tpch::{q1, q2, q3, q4, DbGen, QueryParams};

    fn null(i: u64) -> Value {
        Value::Null(NullId(i))
    }

    fn assert_same_as_reference(q: &RaExpr, db: &Database) {
        let engine = Engine::new(db).execute(q).unwrap().sorted().distinct();
        let reference = eval(q, db, NullSemantics::Sql).unwrap().sorted().distinct();
        assert_eq!(engine.tuples(), reference.tuples(), "query: {q}");
    }

    #[test]
    fn hash_join_matches_reference() {
        let mut db = Database::new();
        db.insert_relation(
            "r",
            rel(
                &["a", "b"],
                vec![
                    vec![Value::Int(1), Value::Int(10)],
                    vec![Value::Int(2), null(1)],
                    vec![Value::Int(3), Value::Int(30)],
                ],
            ),
        );
        db.insert_relation(
            "s",
            rel(
                &["c", "d"],
                vec![
                    vec![Value::Int(1), Value::Int(100)],
                    vec![Value::Int(1), Value::Int(200)],
                    vec![null(2), Value::Int(300)],
                ],
            ),
        );
        let q = RaExpr::relation("r").join(RaExpr::relation("s"), eq("a", "c"));
        assert_same_as_reference(&q, &db);
        let nl = RaExpr::relation("r").join(RaExpr::relation("s"), eq("a", "c").or(is_null("d")));
        assert_same_as_reference(&nl, &db);
        let with_residual =
            RaExpr::relation("r").join(RaExpr::relation("s"), eq("a", "c").and(neq("b", "d")));
        assert_same_as_reference(&with_residual, &db);
    }

    #[test]
    fn semi_and_anti_join_match_reference() {
        let mut db = Database::new();
        db.insert_relation(
            "r",
            rel(&["a"], vec![vec![Value::Int(1)], vec![Value::Int(2)], vec![null(5)]]),
        );
        db.insert_relation("s", rel(&["b"], vec![vec![Value::Int(2)], vec![null(1)]]));
        for cond in [eq("a", "b"), eq("a", "b").or(is_null("b")), neq("a", "b")] {
            let semi = RaExpr::relation("r").semi_join(RaExpr::relation("s"), cond.clone());
            assert_same_as_reference(&semi, &db);
            let anti = RaExpr::relation("r").anti_join(RaExpr::relation("s"), cond);
            assert_same_as_reference(&anti, &db);
        }
    }

    #[test]
    fn decorrelated_not_exists_short_circuits() {
        let mut db = Database::new();
        db.insert_relation("big", rel(&["x"], (0..100).map(|i| vec![Value::Int(i)]).collect()));
        db.insert_relation("orders", rel(&["o_custkey"], vec![vec![null(1)], vec![Value::Int(1)]]));
        // NOT EXISTS (orders with null custkey) — uncorrelated, witness present.
        let q = RaExpr::relation("big").anti_join(RaExpr::relation("orders"), is_null("o_custkey"));
        let out = Engine::new(&db).execute(&q).unwrap();
        assert!(out.is_empty());
        assert_same_as_reference(&q, &db);
        // Same query but no witness: everything survives.
        let q2 = RaExpr::relation("big")
            .anti_join(RaExpr::relation("orders"), eq_const("o_custkey", 999i64));
        assert_eq!(Engine::new(&db).execute(&q2).unwrap().len(), 100);
        assert_same_as_reference(&q2, &db);
    }

    #[test]
    fn cost_based_physical_plans_execute_identically() {
        let complete = DbGen::new(0.0002, 11).generate();
        let db = certus_data::inject::NullInjector::new(0.05, 3).inject(&complete);
        let params = QueryParams::random(&db, 2);
        let stats = StatisticsCatalog::analyze(&db);
        let planner = PhysicalPlanner::new(&db, &stats);
        let engine = Engine::new(&db);
        for q in [q1(&params), q3(&params), q4(&params)] {
            let plan = planner.plan(&q).unwrap();
            let planned = engine.execute_physical(&plan).unwrap().sorted().distinct();
            let heuristic = engine.execute(&q).unwrap().sorted().distinct();
            assert_eq!(planned.tuples(), heuristic.tuples(), "query: {q}");
        }
    }

    #[test]
    fn full_planner_pipeline_matches_unplanned_execution() {
        let complete = DbGen::new(0.0002, 12).generate();
        let db = certus_data::inject::NullInjector::new(0.05, 7).inject(&complete);
        let params = QueryParams::random(&db, 4);
        let engine = Engine::new(&db);
        let rewriter = CertainRewriter::unoptimized();
        let planner = Planner::new();
        for q in [q3(&params), q4(&params)] {
            let raw = rewriter.rewrite_plus(&q, &db).unwrap();
            let optimized = planner.optimize(&raw, &db).unwrap();
            let a = engine.execute(&raw).unwrap().sorted().distinct();
            let b = engine.execute(&optimized).unwrap().sorted().distinct();
            assert_eq!(a.tuples(), b.tuples(), "Q pipeline changed results");
        }
    }

    #[test]
    fn tpch_queries_match_reference_on_incomplete_data() {
        let complete = DbGen::new(0.0002, 5).generate();
        let db = certus_data::inject::NullInjector::new(0.05, 9).inject(&complete);
        let params = QueryParams::random(&db, 3);
        for q in [q1(&params), q2(&params), q3(&params), q4(&params)] {
            assert_same_as_reference(&q, &db);
        }
    }

    #[test]
    fn translated_queries_match_reference_and_stay_certain() {
        let complete = DbGen::new(0.0002, 6).generate();
        let db = certus_data::inject::NullInjector::new(0.05, 4).inject(&complete);
        let params = QueryParams::random(&db, 1);
        let rewriter = CertainRewriter::new();
        for q in [q3(&params), q2(&params)] {
            let plus = rewriter.rewrite_plus(&q, &db).unwrap();
            assert_same_as_reference(&plus, &db);
            // Q+ answers are a subset of SQL answers for these queries.
            let sql = Engine::new(&db).execute(&q).unwrap();
            let certain = Engine::new(&db).execute(&plus).unwrap();
            for t in certain.iter() {
                assert!(sql.contains(t));
            }
        }
        assert_eq!(rewriter.dialect, ConditionDialect::Sql);
    }

    #[test]
    fn naive_semantics_engine_matches_reference() {
        let mut db = Database::new();
        db.insert_relation("r", rel(&["a"], vec![vec![null(1)], vec![Value::Int(1)]]));
        db.insert_relation("s", rel(&["b"], vec![vec![null(1)]]));
        let q = RaExpr::relation("r").join(RaExpr::relation("s"), eq("a", "b"));
        let engine = Engine::with_semantics(&db, NullSemantics::Naive).execute(&q).unwrap();
        let reference = eval(&q, &db, NullSemantics::Naive).unwrap();
        assert_eq!(engine.sorted().tuples(), reference.sorted().tuples());
        assert_eq!(engine.len(), 1);
    }

    #[test]
    fn partitioned_hash_join_matches_serial_under_both_semantics() {
        let mut db = Database::new();
        db.insert_relation(
            "r",
            rel(
                &["a", "b"],
                (0..60)
                    .map(|i| {
                        let b = if i % 7 == 0 { null(i as u64) } else { Value::Int(i * 2) };
                        vec![Value::Int(i % 13), b]
                    })
                    .collect(),
            ),
        );
        db.insert_relation(
            "s",
            rel(
                &["c", "d"],
                (0..45)
                    .map(|i| {
                        let c = if i % 5 == 0 { null(100 + i as u64) } else { Value::Int(i % 13) };
                        vec![c, Value::Int(i)]
                    })
                    .collect(),
            ),
        );
        let q = RaExpr::relation("r").join(RaExpr::relation("s"), eq("a", "c").and(neq("b", "d")));
        for semantics in [NullSemantics::Sql, NullSemantics::Naive] {
            let serial = Engine::configured(&db, semantics, EngineConfig::serial());
            let parallel = Engine::configured(
                &db,
                semantics,
                EngineConfig::with_threads(4).with_parallel_floor(0),
            );
            assert!(parallel.plan(&q).unwrap().has_exchange());
            assert_eq!(
                parallel.execute(&q).unwrap().sorted().distinct().tuples(),
                serial.execute(&q).unwrap().sorted().distinct().tuples(),
                "{} semantics",
                semantics.label()
            );
        }
    }

    #[test]
    fn partitioned_anti_join_keeps_null_keyed_tuples() {
        let mut db = Database::new();
        db.insert_relation(
            "r",
            rel(&["a"], vec![vec![Value::Int(1)], vec![null(9)], vec![Value::Int(3)]]),
        );
        db.insert_relation("s", rel(&["b"], vec![vec![Value::Int(1)], vec![null(8)]]));
        let q = RaExpr::relation("r").anti_join(RaExpr::relation("s"), eq("a", "b"));
        let parallel =
            Engine::with_config(&db, EngineConfig::with_threads(4).with_parallel_floor(0));
        let out = parallel.execute(&q).unwrap().sorted();
        // 1 matches; 3 and the null-keyed tuple survive (a null key never
        // matches a pure equality under SQL semantics).
        assert_eq!(out.len(), 2);
        assert!(out.contains(&Tuple::new(vec![Value::Int(3)])));
        assert!(out.contains(&Tuple::new(vec![null(9)])));
        assert_same_as_reference(&q, &db);
    }

    #[test]
    fn parallel_union_arms_and_filters_match_reference() {
        let complete = DbGen::new(0.0002, 21).generate();
        let db = certus_data::inject::NullInjector::new(0.05, 13).inject(&complete);
        let params = QueryParams::random(&db, 6);
        let rewriter = CertainRewriter::new();
        let serial = Engine::with_config(&db, EngineConfig::serial());
        let parallel =
            Engine::with_config(&db, EngineConfig::with_threads(3).with_parallel_floor(0));
        // The optimized Q4+ carries split-union arms; Q3+ carries the
        // hash anti-joins. Both must agree with the serial engine.
        for q in [q3(&params), q4(&params)] {
            let plus = rewriter.rewrite_plus(&q, &db).unwrap();
            assert_eq!(
                parallel.execute(&plus).unwrap().sorted().distinct().tuples(),
                serial.execute(&plus).unwrap().sorted().distinct().tuples(),
                "query {q}"
            );
        }
        // A morsel-parallel filter via an explicitly planned exchange.
        let stats = StatisticsCatalog::analyze(&db);
        let mut par = certus_plan::Parallelism::new(3);
        par.row_threshold = 0.0;
        let planner = PhysicalPlanner::with_parallelism(&db, &stats, par);
        let q = RaExpr::relation("lineitem").select(is_null("l_commitdate"));
        let plan = planner.plan(&q).unwrap();
        assert!(plan.has_exchange());
        assert_eq!(
            parallel.execute_physical(&plan).unwrap().sorted().tuples(),
            serial.execute(&q).unwrap().sorted().tuples()
        );
    }

    #[test]
    fn engine_config_thread_counts_are_clamped() {
        assert_eq!(EngineConfig::serial().threads, 1);
        assert_eq!(EngineConfig::with_threads(0).threads, 1);
        assert_eq!(EngineConfig::with_threads(6).threads, 6);
        assert_eq!(EngineConfig::serial().parallel_floor, EngineConfig::DEFAULT_PARALLEL_FLOOR);
        assert_eq!(EngineConfig::with_threads(2).with_parallel_floor(0).parallel_floor, 0);
        assert!(!EngineConfig::serial().parallelism().enabled());
        assert!(EngineConfig::with_threads(2).parallelism().enabled());
    }

    #[test]
    fn aggregates_and_scalar_subqueries_run_through_the_engine() {
        let db = DbGen::new(0.0002, 2).generate();
        let params = QueryParams::random(&db, 2);
        let out = Engine::new(&db).execute(&q2(&params)).unwrap();
        let reference = eval(&q2(&params), &db, NullSemantics::Sql).unwrap();
        assert_eq!(out.sorted().tuples(), reference.sorted().tuples());
    }
}
