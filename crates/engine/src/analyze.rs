//! EXPLAIN ANALYZE support: build the [`ProfNode`] tree an instrumented
//! execution records into, and zip a finished [`QueryProfile`] back onto the
//! planner's (physical plan, [`ExplainPlan`]) pair to produce an
//! [`AnalyzedPlan`] — estimates and actuals side by side for every node.
//!
//! The two halves mirror the compiler's structural transformations in
//! opposite directions. `skeleton` follows the compiled plan: one profile
//! node per compiled operator, with fused `Filter`/`Project` chains as step
//! labels on a single node. [`annotate`] walks the *physical* plan (which
//! still has explicit `Exchange` operators, binary unions and un-fused
//! chains) in lockstep with the explain tree, replaying the compiler's
//! rules — exchanges are pass-throughs, chain nodes consume fused steps
//! top-down, union trees consume flattened arms left to right — so every
//! explain node gets its actuals even though the executed tree is shaped
//! differently. The walk is defensive: a structural mismatch yields zeroed
//! actuals on the affected subtree, never a panic.

use crate::compile::{CompiledExpr, Step};
use certus_obs::{AnalyzedPlan, ProfNode, QueryProfile};
use certus_plan::physical::{ExplainPlan, PhysicalExpr};

/// Build the profile tree for a compiled plan: same shape, kind-labelled
/// operators, fused chains as per-step labels.
pub(crate) fn skeleton(node: &CompiledExpr) -> ProfNode {
    let binary = |op: &str, l: &CompiledExpr, r: &CompiledExpr| {
        ProfNode::with(op, Vec::new(), vec![skeleton(l), skeleton(r)])
    };
    match node {
        CompiledExpr::Scan { name, .. } => ProfNode::new(format!("scan({name})")),
        CompiledExpr::Values { .. } => ProfNode::new("values"),
        CompiledExpr::Opaque { .. } => ProfNode::new("opaque"),
        CompiledExpr::Fused { source, steps, .. } => {
            let step_ops = steps
                .iter()
                .map(|s| match s {
                    Step::Filter(_) => "filter".to_string(),
                    Step::Project(_) => "project".to_string(),
                })
                .collect();
            ProfNode::with("fused", step_ops, vec![skeleton(source)])
        }
        CompiledExpr::HashJoin { left, right, .. } => binary("hash_join", left, right),
        CompiledExpr::NlJoin { left, right, .. } => binary("nl_join", left, right),
        CompiledExpr::HashSemi { left, right, .. } => binary("hash_semi", left, right),
        CompiledExpr::NlSemi { left, right, .. } => binary("nl_semi", left, right),
        CompiledExpr::DecorrelatedSemi { left, right, .. } => {
            binary("decorrelated_semi", left, right)
        }
        CompiledExpr::Union { arms, .. } => {
            ProfNode::with("union", Vec::new(), arms.iter().map(skeleton).collect())
        }
        CompiledExpr::Intersect { left, right, .. } => binary("intersect", left, right),
        CompiledExpr::Difference { left, right, .. } => binary("difference", left, right),
        CompiledExpr::UnifySemi { left, right, .. } => binary("unify_semi", left, right),
        CompiledExpr::Division { left, right, .. } => binary("division", left, right),
        CompiledExpr::Rename { input, .. } => {
            ProfNode::with("rename", Vec::new(), vec![skeleton(input)])
        }
        CompiledExpr::Distinct { input, .. } => {
            ProfNode::with("distinct", Vec::new(), vec![skeleton(input)])
        }
        CompiledExpr::Aggregate { input, .. } => {
            ProfNode::with("aggregate", Vec::new(), vec![skeleton(input)])
        }
    }
}

/// Zip a finished profile onto the physical plan and its explain tree:
/// every explain node annotated with measured actuals. `phys` and `explain`
/// must be the pair returned by the planner's `plan_explained`, and
/// `profile` the result of executing that plan's compilation under
/// instrumentation.
pub fn annotate(
    phys: &PhysicalExpr,
    explain: &ExplainPlan,
    profile: &QueryProfile,
) -> AnalyzedPlan {
    zip(phys, Some(explain), Some(profile))
}

fn tags_of(p: &QueryProfile) -> Vec<String> {
    let mut tags = Vec::new();
    if p.vec_runs > 0 {
        tags.push("vec".to_string());
    }
    if p.row_fallbacks > 0 {
        tags.push("row-fallback".to_string());
    }
    tags
}

fn ex_parts(phys: &PhysicalExpr, ex: Option<&ExplainPlan>) -> (String, f64, f64) {
    match ex {
        Some(e) => (e.op.clone(), e.rows, e.cost),
        None => (phys.label(), 0.0, 0.0),
    }
}

fn ex_child(ex: Option<&ExplainPlan>, i: usize) -> Option<&ExplainPlan> {
    ex.and_then(|e| e.children.get(i))
}

fn node(
    parts: (String, f64, f64),
    rows_act: u64,
    wall_ns: u64,
    tags: Vec<String>,
    children: Vec<AnalyzedPlan>,
) -> AnalyzedPlan {
    AnalyzedPlan {
        op: parts.0,
        rows_est: parts.1,
        cost_est: parts.2,
        rows_act,
        wall_ns,
        tags,
        children,
    }
}

fn is_chain_head(phys: &PhysicalExpr) -> bool {
    matches!(
        phys,
        PhysicalExpr::Filter { .. }
            | PhysicalExpr::Project { .. }
            | PhysicalExpr::Rename { .. }
            | PhysicalExpr::Distinct { .. }
    )
}

fn zip(phys: &PhysicalExpr, ex: Option<&ExplainPlan>, prof: Option<&QueryProfile>) -> AnalyzedPlan {
    let parts = ex_parts(phys, ex);
    // An exchange was absorbed by the operator around it at compile time: it
    // is a pass-through here, reporting its input's cardinality.
    if let PhysicalExpr::Exchange { input, .. } = phys {
        let child = zip(input, ex_child(ex, 0), prof);
        let rows_act = child.rows_act;
        return node(parts, rows_act, 0, Vec::new(), vec![child]);
    }
    match prof {
        Some(p) if p.op == "fused" && is_chain_head(phys) => {
            zip_chain(phys, ex, p, p.steps.len(), true)
        }
        Some(p) if p.op == "union" && matches!(phys, PhysicalExpr::Union { .. }) => {
            let mut cursor = 0;
            zip_union(phys, ex, p, &mut cursor, true)
        }
        _ => {
            let children: Vec<AnalyzedPlan> = phys
                .children()
                .into_iter()
                .enumerate()
                .map(|(i, c)| zip(c, ex_child(ex, i), prof.and_then(|p| p.children.get(i))))
                .collect();
            node(
                parts,
                prof.map_or(0, |p| p.rows_out),
                prof.map_or(0, |p| p.wall_ns),
                prof.map_or_else(Vec::new, tags_of),
                children,
            )
        }
    }
}

/// Rows surviving fused steps `0..=k` (`k == -1` means the pipeline input):
/// filter steps record survivor counts; projection steps pass the count of
/// the nearest filter below them through unchanged.
fn rows_after_step(fused: &QueryProfile, k: isize) -> u64 {
    let mut i = k;
    while i >= 0 {
        let s = &fused.steps[i as usize];
        if s.op == "filter" {
            return s.rows_out;
        }
        i -= 1;
    }
    fused.rows_in
}

/// Walk a physical `Filter`/`Project`/`Rename`/`Distinct` chain that
/// compiled into one fused pipeline, consuming the pipeline's recorded steps
/// top-down. The chain's top node carries the pipeline's inclusive wall time
/// and path tags; inner nodes report per-step survivor counts with no time
/// of their own (they never execute standalone).
fn zip_chain(
    phys: &PhysicalExpr,
    ex: Option<&ExplainPlan>,
    fused: &QueryProfile,
    steps_remaining: usize,
    top: bool,
) -> AnalyzedPlan {
    let parts = ex_parts(phys, ex);
    let own = |remaining_after: usize| {
        if top {
            (fused.rows_out, fused.wall_ns, tags_of(fused))
        } else {
            (rows_after_step(fused, remaining_after as isize - 1), 0, Vec::new())
        }
    };
    match phys {
        PhysicalExpr::Filter { input, .. } | PhysicalExpr::Project { input, .. }
            if steps_remaining > 0 =>
        {
            let idx = steps_remaining - 1;
            let (rows_act, wall, tags) = own(steps_remaining);
            let child = zip_chain(input, ex_child(ex, 0), fused, idx, false);
            node(parts, rows_act, wall, tags, vec![child])
        }
        // Renames and distincts were absorbed into the pipeline without a
        // step of their own (a rename is a schema swap; the dedup runs once
        // at the pipeline edge).
        PhysicalExpr::Rename { input, .. } | PhysicalExpr::Distinct { input }
            if steps_remaining > 0 =>
        {
            let (rows_act, wall, tags) = own(steps_remaining);
            let child = zip_chain(input, ex_child(ex, 0), fused, steps_remaining, false);
            node(parts, rows_act, wall, tags, vec![child])
        }
        PhysicalExpr::Exchange { input, .. } => {
            let child = zip_chain(input, ex_child(ex, 0), fused, steps_remaining, false);
            let rows_act = child.rows_act;
            node(parts, rows_act, 0, Vec::new(), vec![child])
        }
        // Every step is consumed: this node is the pipeline's source.
        _ => zip(phys, ex, fused.children.first()),
    }
}

/// Walk a physical union tree that compiled into one flattened n-ary union,
/// consuming the profile's arms left to right. Inner union nodes report the
/// concatenation of their arms (deduplication happens once, at the top).
fn zip_union(
    phys: &PhysicalExpr,
    ex: Option<&ExplainPlan>,
    u: &QueryProfile,
    cursor: &mut usize,
    top: bool,
) -> AnalyzedPlan {
    let parts = ex_parts(phys, ex);
    match phys {
        PhysicalExpr::Union { left, right } => {
            let l = zip_union(left, ex_child(ex, 0), u, cursor, false);
            let r = zip_union(right, ex_child(ex, 1), u, cursor, false);
            let (rows_act, wall) =
                if top { (u.rows_out, u.wall_ns) } else { (l.rows_act + r.rows_act, 0) };
            node(parts, rows_act, wall, Vec::new(), vec![l, r])
        }
        PhysicalExpr::Exchange { input, .. } => {
            let child = zip_union(input, ex_child(ex, 0), u, cursor, false);
            let rows_act = child.rows_act;
            node(parts, rows_act, 0, Vec::new(), vec![child])
        }
        _ => {
            let arm = u.children.get(*cursor);
            *cursor += 1;
            zip(phys, ex, arm)
        }
    }
}
