//! The pass manager: an ordered, re-runnable pipeline of logical rewrite
//! passes over [`RaExpr`].
//!
//! Every pass must be *semantics-preserving in the strong sense*: it may only
//! produce an expression that evaluates to the same relation on **every**
//! database (under both SQL and naive null semantics), so that translated
//! queries keep their certain-answer guarantee no matter what context the
//! rewritten subtree ends up in. The equivalence test suite at the repository
//! root checks exactly this on randomized databases with nulls.
//!
//! The manager runs its passes in order and repeats the whole round until a
//! fixpoint is reached (no pass changed the expression) or `max_rounds` is
//! exhausted — re-running matters because e.g. predicate pushdown exposes new
//! constant-folding opportunities, exactly as in the incresql/readyset
//! pipelines this design follows.

use crate::error::PlanError;
use crate::Result;
use certus_algebra::expr::RaExpr;
use certus_algebra::schema_infer::Catalog;

/// Options controlling which passes run and how aggressively.
#[derive(Debug, Clone, Copy)]
pub struct PlanOptions {
    /// Constant / condition folding.
    pub fold: bool,
    /// Predicate pushdown (selections move towards the scans and merge into
    /// join conditions).
    pub pushdown: bool,
    /// Projection / distinct collapsing.
    pub collapse: bool,
    /// Nullability-aware pruning of `IS [NOT] NULL` checks (paper, Cor. 1).
    pub prune_nonnullable: bool,
    /// OR-splitting of anti-join conditions (paper, Section 7).
    pub split_or: bool,
    /// OR-splitting of theta-join conditions into unions (the paper's
    /// "view" form used for Q⁺4).
    pub split_or_joins: bool,
    /// Key-based simplification `R ⋉̸⇑ S → R − S` (paper, Section 7).
    pub key_simplify: bool,
    /// Maximum number of disjuncts OR-splitting may expand (prevents
    /// exponential blow-up).
    pub max_split: usize,
    /// Maximum number of full pipeline rounds before giving up on a fixpoint.
    pub max_rounds: usize,
}

impl Default for PlanOptions {
    fn default() -> Self {
        PlanOptions {
            fold: true,
            pushdown: true,
            collapse: true,
            prune_nonnullable: true,
            split_or: true,
            split_or_joins: true,
            key_simplify: true,
            max_split: 16,
            max_rounds: 4,
        }
    }
}

/// Everything a pass may consult while rewriting: the schema/key catalog and
/// the pipeline options.
pub struct PassContext<'a> {
    /// Table schemas and declared keys.
    pub catalog: &'a dyn Catalog,
    /// Pipeline options (passes read e.g. `max_split`).
    pub options: &'a PlanOptions,
}

/// A single logical rewrite pass.
pub trait Pass {
    /// Stable, human-readable pass name (shown in traces).
    fn name(&self) -> &'static str;

    /// Whether the pass is enabled under the given options.
    fn enabled(&self, _options: &PlanOptions) -> bool {
        true
    }

    /// Rewrite an expression. Must be semantics-preserving on every database
    /// and must return a structurally identical expression when it has
    /// nothing to do (the manager detects fixpoints by equality).
    fn run(&self, expr: &RaExpr, ctx: &PassContext<'_>) -> Result<RaExpr>;
}

/// One trace record per executed pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PassTrace {
    /// Pass name.
    pub pass: &'static str,
    /// 1-based round in which the pass ran.
    pub round: usize,
    /// Whether the pass changed the expression.
    pub changed: bool,
    /// Operator-node count before the pass.
    pub nodes_before: usize,
    /// Operator-node count after the pass.
    pub nodes_after: usize,
}

/// An ordered, re-runnable pipeline of rewrite passes.
pub struct PassManager {
    passes: Vec<Box<dyn Pass>>,
    /// Options consulted by the manager and handed to every pass.
    pub options: PlanOptions,
}

impl PassManager {
    /// A manager with no passes (the identity pipeline).
    pub fn empty() -> Self {
        PassManager { passes: Vec::new(), options: PlanOptions::default() }
    }

    /// The standard pipeline in its canonical order: folding, predicate
    /// pushdown, projection collapsing, then the paper's Section 7 rewrites
    /// (nullability pruning, key-based anti-join simplification,
    /// OR-splitting of anti-joins and of joins).
    pub fn standard() -> Self {
        Self::with_options(PlanOptions::default())
    }

    /// The standard pipeline under explicit options.
    pub fn with_options(options: PlanOptions) -> Self {
        use crate::passes::*;
        let mut m = PassManager { passes: Vec::new(), options };
        m.push(fold::FoldPass);
        m.push(pushdown::PushdownPass);
        m.push(collapse::CollapsePass);
        m.push(null_prune::NullPrunePass);
        m.push(key_antijoin::KeyAntiJoinPass);
        m.push(or_split::SplitOrAntiJoinPass);
        m.push(or_split::SplitOrJoinPass);
        m
    }

    /// Append a pass to the pipeline.
    pub fn push(&mut self, pass: impl Pass + 'static) -> &mut Self {
        self.passes.push(Box::new(pass));
        self
    }

    /// The names of the registered passes, in pipeline order.
    pub fn pass_names(&self) -> Vec<&'static str> {
        self.passes.iter().map(|p| p.name()).collect()
    }

    /// Run the pipeline to a fixpoint (or `max_rounds`) and return the
    /// rewritten expression.
    pub fn run(&self, expr: &RaExpr, catalog: &dyn Catalog) -> Result<RaExpr> {
        self.run_traced(expr, catalog).map(|(e, _)| e)
    }

    /// Run the pipeline, also returning one [`PassTrace`] per executed pass.
    pub fn run_traced(
        &self,
        expr: &RaExpr,
        catalog: &dyn Catalog,
    ) -> Result<(RaExpr, Vec<PassTrace>)> {
        let ctx = PassContext { catalog, options: &self.options };
        let mut current = expr.clone();
        let mut traces = Vec::new();
        for round in 1..=self.options.max_rounds.max(1) {
            let mut round_changed = false;
            for pass in &self.passes {
                if !pass.enabled(&self.options) {
                    continue;
                }
                let nodes_before = current.size();
                let next = pass.run(&current, &ctx)?;
                let changed = next != current;
                traces.push(PassTrace {
                    pass: pass.name(),
                    round,
                    changed,
                    nodes_before,
                    nodes_after: next.size(),
                });
                round_changed |= changed;
                current = next;
            }
            if !round_changed {
                break;
            }
        }
        Ok((current, traces))
    }
}

impl std::fmt::Debug for PassManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PassManager")
            .field("passes", &self.pass_names())
            .field("options", &self.options)
            .finish()
    }
}

/// A pass defined by a plain function (convenient in tests).
pub struct FnPass<F> {
    name: &'static str,
    f: F,
}

impl<F> FnPass<F>
where
    F: Fn(&RaExpr, &PassContext<'_>) -> Result<RaExpr>,
{
    /// Wrap a function as a pass.
    pub fn new(name: &'static str, f: F) -> Self {
        FnPass { name, f }
    }
}

impl<F> Pass for FnPass<F>
where
    F: Fn(&RaExpr, &PassContext<'_>) -> Result<RaExpr>,
{
    fn name(&self) -> &'static str {
        self.name
    }

    fn run(&self, expr: &RaExpr, ctx: &PassContext<'_>) -> Result<RaExpr> {
        (self.f)(expr, ctx)
    }
}

/// Guard helper: a manager-level invariant check that a rewrite did not
/// change the expression's output schema (used in debug assertions and
/// tests).
pub fn schemas_agree(a: &RaExpr, b: &RaExpr, catalog: &dyn Catalog) -> Result<bool> {
    let sa = certus_algebra::schema_infer::output_schema(a, catalog).map_err(PlanError::Algebra)?;
    let sb = certus_algebra::schema_infer::output_schema(b, catalog).map_err(PlanError::Algebra)?;
    Ok(sa.arity() == sb.arity())
}

#[cfg(test)]
mod tests {
    use super::*;
    use certus_algebra::builder::eq;
    use certus_data::builder::rel;
    use certus_data::{Database, Value};

    fn db() -> Database {
        let mut db = Database::new();
        db.insert_relation("r", rel(&["a", "b"], vec![vec![Value::Int(1), Value::Int(2)]]));
        db.insert_relation("s", rel(&["c", "d"], vec![vec![Value::Int(1), Value::Int(2)]]));
        db
    }

    #[test]
    fn empty_manager_is_identity() {
        let db = db();
        let q = RaExpr::relation("r").join(RaExpr::relation("s"), eq("a", "c"));
        let out = PassManager::empty().run(&q, &db).unwrap();
        assert_eq!(out, q);
    }

    #[test]
    fn standard_manager_registers_all_seven_passes() {
        let m = PassManager::standard();
        assert_eq!(
            m.pass_names(),
            vec![
                "fold",
                "predicate-pushdown",
                "collapse-projections",
                "prune-null-checks",
                "key-antijoin",
                "split-or-antijoin",
                "split-or-join",
            ]
        );
    }

    #[test]
    fn pipeline_reaches_a_fixpoint_and_stops_early() {
        let db = db();
        let q =
            RaExpr::relation("r").join(RaExpr::relation("s"), eq("a", "c")).select(eq("b", "d"));
        let m = PassManager::standard();
        let (out, traces) = m.run_traced(&q, &db).unwrap();
        // Re-running the pipeline on its own output is a no-op.
        let (again, traces2) = m.run_traced(&out, &db).unwrap();
        assert_eq!(out, again);
        assert!(traces2.iter().all(|t| !t.changed));
        // The first run stopped before max_rounds * passes entries.
        let max = m.options.max_rounds * m.pass_names().len();
        assert!(traces.len() < max, "expected early fixpoint, got {} traces", traces.len());
    }

    #[test]
    fn fn_pass_and_custom_pipelines() {
        let db = db();
        // A toy pass that wraps the root in Distinct once.
        let m = {
            let mut m = PassManager::empty();
            m.push(FnPass::new("distinct-root", |e: &RaExpr, _ctx: &PassContext<'_>| {
                Ok(match e {
                    RaExpr::Distinct { .. } => e.clone(),
                    other => other.clone().distinct(),
                })
            }));
            m
        };
        let q = RaExpr::relation("r");
        let out = m.run(&q, &db).unwrap();
        assert!(matches!(out, RaExpr::Distinct { .. }));
        assert_eq!(m.pass_names(), vec!["distinct-root"]);
    }

    #[test]
    fn traces_record_node_counts() {
        let db = db();
        let q = RaExpr::relation("r").select(certus_algebra::Condition::True);
        let (out, traces) = PassManager::standard().run_traced(&q, &db).unwrap();
        assert_eq!(out, RaExpr::relation("r"));
        let fold = traces.iter().find(|t| t.pass == "fold").unwrap();
        assert!(fold.changed);
        assert_eq!(fold.nodes_before, 2);
        assert_eq!(fold.nodes_after, 1);
    }

    #[test]
    fn schemas_agree_helper() {
        let db = db();
        let q = RaExpr::relation("r");
        let p = RaExpr::relation("r").distinct();
        assert!(schemas_agree(&q, &p, &db).unwrap());
    }
}
