//! Cardinality and cost estimation (`EXPLAIN`-style).
//!
//! Two estimation regimes share one implementation:
//!
//! * **statistics-free** ([`estimate`]): base cardinalities come from the
//!   database, predicate selectivities from fixed magic numbers. This is the
//!   seed behaviour and deliberately reproduces the phenomenon the paper
//!   reports in Section 7: predicates of the form `A = B OR B IS NULL` cannot
//!   be used as hash-join keys, so the estimated cost of the affected joins
//!   degenerates to nested-loop cost — the "astronomical" plan costs that
//!   motivate the OR-splitting rewrite.
//! * **statistics-backed** ([`estimate_with`]): base cardinalities, equality
//!   selectivities (`1 / distinct`) and null-check selectivities (the
//!   measured null fraction) come from a [`StatisticsCatalog`], which is what
//!   the physical planner uses.
//!
//! Costs are *per-row operation counts*, independent of how the engine
//! executes a plan. In particular the engine's compiled runtime fuses
//! `Filter`/`Project`/`Rename`/`Distinct` chains into a single pass, so the
//! per-operator charges of such a chain over-count the constant factor but
//! preserve the ordering between plans — which is all the planner compares.

use crate::equi::{references_schema, split_equi};
use crate::stats::StatisticsCatalog;
use certus_algebra::condition::{Condition, Operand};
use certus_algebra::expr::RaExpr;
use certus_algebra::schema_infer::output_schema;
use certus_algebra::Result;
use certus_data::Database;

/// Estimated output rows and cumulative cost (in abstract "row operations").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostEstimate {
    /// Estimated number of output rows.
    pub rows: f64,
    /// Estimated cumulative cost.
    pub cost: f64,
}

/// Estimate the selectivity of a condition (fraction of tuples kept) without
/// statistics, from fixed per-predicate magic numbers.
pub fn selectivity(condition: &Condition) -> f64 {
    selectivity_with(condition, &StatisticsCatalog::empty())
}

/// Estimate the selectivity of a condition, consulting column statistics
/// where available and falling back to the fixed magic numbers otherwise.
pub fn selectivity_with(condition: &Condition, stats: &StatisticsCatalog) -> f64 {
    match condition {
        Condition::True => 1.0,
        Condition::False => 0.0,
        Condition::Cmp { left, op, right } => match op {
            certus_data::compare::CmpOp::Eq => eq_selectivity(left, right, stats),
            certus_data::compare::CmpOp::Neq => 1.0 - eq_selectivity(left, right, stats),
            _ => 0.33,
        },
        Condition::IsNull(x) => {
            column_stat(x, stats).map(|c| c.null_fraction).unwrap_or(0.05).clamp(0.0, 1.0)
        }
        Condition::IsNotNull(x) => {
            1.0 - column_stat(x, stats).map(|c| c.null_fraction).unwrap_or(0.05).clamp(0.0, 1.0)
        }
        Condition::Like { negated, .. } => {
            if *negated {
                0.9
            } else {
                0.1
            }
        }
        Condition::InList { expr, list, negated, .. } => {
            let per_value =
                column_stat(expr, stats).map(|c| 1.0 / c.distinct.max(1) as f64).unwrap_or(0.1);
            let s = (per_value * list.len() as f64).min(1.0);
            if *negated {
                1.0 - s
            } else {
                s
            }
        }
        Condition::And(a, b) => selectivity_with(a, stats) * selectivity_with(b, stats),
        Condition::Or(a, b) => {
            let (x, y) = (selectivity_with(a, stats), selectivity_with(b, stats));
            (x + y - x * y).min(1.0)
        }
        Condition::Not(inner) => 1.0 - selectivity_with(inner, stats),
    }
}

fn column_stat<'a>(
    op: &Operand,
    stats: &'a StatisticsCatalog,
) -> Option<&'a crate::stats::ColumnStats> {
    op.as_col().and_then(|c| stats.column(c))
}

/// Selectivity of `left = right`: `1 / distinct` when statistics know one of
/// the sides, the seed's fixed `0.1` otherwise.
fn eq_selectivity(left: &Operand, right: &Operand, stats: &StatisticsCatalog) -> f64 {
    let distinct = column_stat(left, stats)
        .into_iter()
        .chain(column_stat(right, stats))
        .map(|c| c.distinct)
        .max();
    match distinct {
        Some(d) if d > 0 => 1.0 / d as f64,
        _ => 0.1,
    }
}

/// Estimate rows and cost for an expression over the given database, without
/// column statistics (base cardinalities only).
pub fn estimate(expr: &RaExpr, db: &Database) -> Result<CostEstimate> {
    estimate_with(expr, db, &StatisticsCatalog::empty())
}

// Per-operator row-count formulas, shared between the logical estimator
// below and the physical planner's per-node annotations so the two can
// never drift apart.

/// Output rows of a theta-join (a product is a join with condition `TRUE`,
/// which keeps the full cross-product cardinality).
pub(crate) fn join_rows(lr: f64, rr: f64, condition: &Condition, stats: &StatisticsCatalog) -> f64 {
    if matches!(condition, Condition::True) {
        lr * rr
    } else {
        (lr * rr * selectivity_with(condition, stats) / lr.max(rr).max(1.0)).max(1.0)
    }
}

/// Output rows of a (anti-)semijoin.
pub(crate) fn semi_rows(lr: f64) -> f64 {
    (lr * 0.5).max(1.0)
}

/// Output rows of a set operation.
pub(crate) fn setop_rows(lr: f64, rr: f64) -> f64 {
    lr.max(rr)
}

/// Output rows of an aggregation.
pub(crate) fn aggregate_rows(input_rows: f64, grouped: bool) -> f64 {
    if grouped {
        (input_rows / 10.0).max(1.0)
    } else {
        1.0
    }
}

/// Per-row CPU discount of a batch-eligible filter (the engine evaluates it
/// column-wise over typed vectors instead of dispatching per row). The
/// constant is a calibration of the observed fused-pipeline speedup, not a
/// law; what matters to the planner is that vectorizable filters charge
/// less than row-at-a-time ones.
const VECTORIZED_FILTER_FACTOR: f64 = 0.25;

/// Whether the engine's vectorized pipelines evaluate this condition with
/// typed column loops throughout. `LIKE` and `IN`-list atoms and
/// scalar-subquery operands run row-at-a-time *inside* the batch (still
/// correct, but not discounted); everything else — comparisons, null
/// checks, the Kleene connectives — is mask arithmetic.
pub fn batch_eligible(condition: &Condition) -> bool {
    let operand_ok = |o: &Operand| !matches!(o, Operand::Scalar(_));
    match condition {
        Condition::True | Condition::False => true,
        Condition::Cmp { left, right, .. } => operand_ok(left) && operand_ok(right),
        Condition::IsNull(x) | Condition::IsNotNull(x) => operand_ok(x),
        Condition::Like { .. } | Condition::InList { .. } => false,
        Condition::And(a, b) | Condition::Or(a, b) => batch_eligible(a) && batch_eligible(b),
        Condition::Not(inner) => batch_eligible(inner),
    }
}

/// The per-row CPU factor of a filter over this condition: discounted when
/// the condition is batch-eligible, full price otherwise. Shared by the
/// logical estimator and the physical planner's per-node annotations.
pub fn filter_cpu_factor(condition: &Condition) -> f64 {
    if batch_eligible(condition) {
        VECTORIZED_FILTER_FACTOR
    } else {
        1.0
    }
}

/// Fixed per-partition setup charge of an exchange operator (allocating the
/// partition buffers and handing work to a thread).
const EXCHANGE_PARTITION_SETUP: f64 = 8.0;

/// Cost of an exchange (repartition) operator over `rows` input rows split
/// into `partitions` partitions: one routing pass over the input plus the
/// per-partition setup. Rows pass through unchanged. Shared with the
/// physical planner's per-node annotations, like the row formulas above.
pub fn exchange_cost(rows: f64, partitions: usize) -> f64 {
    rows + EXCHANGE_PARTITION_SETUP * partitions.max(1) as f64
}

/// Estimate rows and cost for an expression, with base cardinalities taken
/// from the statistics catalog when analyzed (falling back to the catalog's
/// live row counts) and selectivities from column statistics.
pub fn estimate_with(
    expr: &RaExpr,
    db: &Database,
    stats: &StatisticsCatalog,
) -> Result<CostEstimate> {
    Ok(match expr {
        RaExpr::Relation { name, .. } => {
            let rows = stats
                .row_count(name)
                .unwrap_or_else(|| db.relation(name).map(|r| r.len()).unwrap_or(0))
                as f64;
            CostEstimate { rows, cost: rows }
        }
        RaExpr::Values { rows, .. } => {
            CostEstimate { rows: rows.len() as f64, cost: rows.len() as f64 }
        }
        RaExpr::Select { input, condition } => {
            let c = estimate_with(input, db, stats)?;
            CostEstimate {
                rows: c.rows * selectivity_with(condition, stats),
                cost: c.cost + c.rows * filter_cpu_factor(condition),
            }
        }
        RaExpr::Project { input, .. }
        | RaExpr::Rename { input, .. }
        | RaExpr::Distinct { input } => {
            let c = estimate_with(input, db, stats)?;
            CostEstimate { rows: c.rows, cost: c.cost + c.rows }
        }
        RaExpr::Product { left, right } => {
            let l = estimate_with(left, db, stats)?;
            let r = estimate_with(right, db, stats)?;
            CostEstimate { rows: l.rows * r.rows, cost: l.cost + r.cost + l.rows * r.rows }
        }
        RaExpr::Join { left, right, condition } => {
            let l = estimate_with(left, db, stats)?;
            let r = estimate_with(right, db, stats)?;
            let hashable = join_is_hashable(left, right, condition, db);
            let out_rows = join_rows(l.rows, r.rows, condition, stats);
            let op_cost = if hashable { l.rows + r.rows } else { l.rows * r.rows };
            CostEstimate { rows: out_rows, cost: l.cost + r.cost + op_cost }
        }
        RaExpr::SemiJoin { left, right, condition }
        | RaExpr::AntiJoin { left, right, condition } => {
            let l = estimate_with(left, db, stats)?;
            let r = estimate_with(right, db, stats)?;
            let left_schema = output_schema(left, db)?;
            let decorrelated = !references_schema(condition, &left_schema);
            let hashable = join_is_hashable(left, right, condition, db);
            let op_cost = if decorrelated {
                r.rows
            } else if hashable {
                l.rows + r.rows
            } else {
                l.rows * r.rows
            };
            CostEstimate { rows: semi_rows(l.rows), cost: l.cost + r.cost + op_cost }
        }
        RaExpr::Union { left, right }
        | RaExpr::Intersect { left, right }
        | RaExpr::Difference { left, right } => {
            let l = estimate_with(left, db, stats)?;
            let r = estimate_with(right, db, stats)?;
            CostEstimate {
                rows: setop_rows(l.rows, r.rows),
                cost: l.cost + r.cost + l.rows + r.rows,
            }
        }
        RaExpr::UnifySemiJoin { left, right }
        | RaExpr::UnifyAntiSemiJoin { left, right }
        | RaExpr::Division { left, right } => {
            let l = estimate_with(left, db, stats)?;
            let r = estimate_with(right, db, stats)?;
            CostEstimate { rows: l.rows, cost: l.cost + r.cost + l.rows * r.rows }
        }
        RaExpr::Aggregate { input, group_by, .. } => {
            let c = estimate_with(input, db, stats)?;
            let rows = aggregate_rows(c.rows, !group_by.is_empty());
            CostEstimate { rows, cost: c.cost + c.rows }
        }
    })
}

fn join_is_hashable(left: &RaExpr, right: &RaExpr, condition: &Condition, db: &Database) -> bool {
    match (output_schema(left, db), output_schema(right, db)) {
        (Ok(l), Ok(r)) => split_equi(condition, &l, &r).has_keys(),
        _ => false,
    }
}

/// Render an `EXPLAIN`-style tree with per-node row and cost estimates.
pub fn explain(expr: &RaExpr, db: &Database) -> Result<String> {
    let mut out = String::new();
    render(expr, db, 0, &mut out)?;
    Ok(out)
}

fn render(expr: &RaExpr, db: &Database, depth: usize, out: &mut String) -> Result<()> {
    let est = estimate(expr, db)?;
    let label = match expr {
        RaExpr::Relation { name, .. } => format!("Scan {name}"),
        RaExpr::Join { condition, .. } => format!("Join [{condition}]"),
        RaExpr::AntiJoin { condition, .. } => format!("AntiJoin [{condition}]"),
        RaExpr::SemiJoin { condition, .. } => format!("SemiJoin [{condition}]"),
        RaExpr::Select { condition, .. } => format!("Select [{condition}]"),
        other => {
            let s = other.to_string();
            s.chars().take(40).collect::<String>()
        }
    };
    out.push_str(&"  ".repeat(depth));
    out.push_str(&format!("{label}  (rows≈{:.0}, cost≈{:.0})\n", est.rows, est.cost));
    for c in expr.children() {
        render(c, db, depth + 1, out)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use certus_algebra::builder::{eq, is_null};
    use certus_data::builder::rel;
    use certus_data::null::NullId;
    use certus_data::Value;

    fn db() -> Database {
        let mut db = Database::new();
        db.insert_relation("r", rel(&["a"], (0..1000).map(|i| vec![Value::Int(i)]).collect()));
        db.insert_relation("s", rel(&["b"], (0..1000).map(|i| vec![Value::Int(i)]).collect()));
        db
    }

    #[test]
    fn or_is_null_inflates_join_cost() {
        let db = db();
        let good = RaExpr::relation("r").join(RaExpr::relation("s"), eq("a", "b"));
        let bad = RaExpr::relation("r").join(RaExpr::relation("s"), eq("a", "b").or(is_null("b")));
        let g = estimate(&good, &db).unwrap();
        let b = estimate(&bad, &db).unwrap();
        assert!(
            b.cost > 100.0 * g.cost,
            "nested-loop estimate should dwarf hash estimate: {b:?} vs {g:?}"
        );
    }

    #[test]
    fn decorrelated_antijoin_is_cheap() {
        let db = db();
        let correlated = RaExpr::relation("r").anti_join(RaExpr::relation("s"), eq("a", "b"));
        let decorrelated = RaExpr::relation("r").anti_join(RaExpr::relation("s"), is_null("b"));
        let c = estimate(&correlated, &db).unwrap();
        let d = estimate(&decorrelated, &db).unwrap();
        assert!(d.cost < c.cost);
    }

    #[test]
    fn selectivity_is_within_bounds() {
        let conds = [
            Condition::True,
            Condition::False,
            eq("a", "b"),
            eq("a", "b").or(is_null("b")),
            eq("a", "b").and(is_null("b")),
            eq("a", "b").not(),
        ];
        for c in conds {
            let s = selectivity(&c);
            assert!((0.0..=1.0).contains(&s), "{c} -> {s}");
        }
    }

    #[test]
    fn explain_renders_costs() {
        let db = db();
        let q = RaExpr::relation("r").join(RaExpr::relation("s"), eq("a", "b")).project(&["a"]);
        let text = explain(&q, &db).unwrap();
        assert!(text.contains("Scan r"));
        assert!(text.contains("cost≈"));
        assert_eq!(text.lines().count(), 4);
    }

    #[test]
    fn stats_sharpen_equality_selectivity() {
        let mut db = Database::new();
        // 100 rows, only 2 distinct values of a, half the b column null.
        let rows: Vec<Vec<Value>> = (0..100)
            .map(|i| {
                let b = if i % 2 == 0 { Value::Null(NullId(i as u64 + 1)) } else { Value::Int(7) };
                vec![Value::Int(i % 2), b]
            })
            .collect();
        db.insert_relation("r", rel(&["a", "b"], rows));
        let stats = StatisticsCatalog::analyze(&db);
        // Equality on a low-cardinality column keeps 1/2 of the rows.
        assert!((selectivity_with(&eq("a", "a"), &stats) - 0.5).abs() < 1e-12);
        // IS NULL selectivity equals the measured null fraction.
        assert!((selectivity_with(&is_null("b"), &stats) - 0.5).abs() < 1e-12);
        // The statistics-free estimate keeps the old magic numbers.
        assert!((selectivity(&eq("a", "a")) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn join_row_formula_keeps_products_and_scales_equi_joins() {
        let stats = StatisticsCatalog::empty();
        // Products (condition TRUE) keep the full cross-product cardinality.
        assert_eq!(join_rows(10.0, 20.0, &Condition::True, &stats), 200.0);
        // Statistics-free equi-join: l*r*0.1 / max(l, r) = min-side * 0.1.
        assert!((join_rows(100.0, 50.0, &eq("a", "b"), &stats) - 5.0).abs() < 1e-9);
        // Never below one row.
        assert!(join_rows(0.0, 0.0, &eq("a", "b"), &stats) >= 1.0);
    }

    #[test]
    fn join_row_formula_uses_distinct_counts_when_analyzed() {
        let db = db();
        let stats = StatisticsCatalog::analyze(&db);
        // r.a has 1000 distinct values: selectivity 1/1000, so
        // 1000*1000*(1/1000)/1000 = 1 row.
        assert!((join_rows(1000.0, 1000.0, &eq("a", "b"), &stats) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn semi_setop_and_aggregate_row_formulas() {
        assert_eq!(semi_rows(10.0), 5.0);
        assert_eq!(semi_rows(0.0), 1.0);
        assert_eq!(setop_rows(3.0, 9.0), 9.0);
        assert_eq!(setop_rows(9.0, 3.0), 9.0);
        assert_eq!(aggregate_rows(100.0, true), 10.0);
        assert_eq!(aggregate_rows(100.0, false), 1.0);
        assert_eq!(aggregate_rows(0.0, true), 1.0);
    }

    #[test]
    fn batch_eligibility_and_filter_discount() {
        use certus_algebra::condition::Operand;
        // Comparisons, null checks and their connectives are batch-eligible…
        assert!(batch_eligible(&eq("a", "b").and(is_null("b")).not()));
        assert!(batch_eligible(&Condition::True));
        // …LIKE/IN atoms and scalar-subquery operands are not (they run
        // row-at-a-time inside the batch).
        let like = Condition::Like {
            expr: Operand::Col("a".into()),
            pattern: "%x%".into(),
            negated: false,
        };
        assert!(!batch_eligible(&like));
        assert!(!batch_eligible(&eq("a", "b").and(like.clone())));
        let inlist = Condition::InList {
            expr: Operand::Col("a".into()),
            list: vec![certus_data::Value::Int(1)],
            negated: false,
        };
        assert!(!batch_eligible(&inlist));
        // The discount follows eligibility and feeds the Select estimate.
        assert!(filter_cpu_factor(&eq("a", "b")) < filter_cpu_factor(&like));
        let db = db();
        let cheap = estimate(&RaExpr::relation("r").select(eq("a", "a")), &db).unwrap();
        let dear = estimate(&RaExpr::relation("r").select(like), &db).unwrap();
        assert!(cheap.cost < dear.cost);
    }

    #[test]
    fn exchange_cost_is_one_routing_pass_plus_partition_setup() {
        // Linear in rows…
        assert!((exchange_cost(1000.0, 2) - exchange_cost(0.0, 2) - 1000.0).abs() < 1e-9);
        // …monotone in partitions…
        assert!(exchange_cost(1000.0, 8) > exchange_cost(1000.0, 2));
        // …and degenerate partition counts are clamped to one.
        assert_eq!(exchange_cost(10.0, 0), exchange_cost(10.0, 1));
    }

    #[test]
    fn per_operator_estimates_follow_the_row_formulas() {
        let db = db();
        let stats = StatisticsCatalog::analyze(&db);
        let r = RaExpr::relation("r");
        let s = RaExpr::relation("s");
        // Selection: input rows times measured selectivity (1/distinct).
        let sel = estimate_with(&r.clone().select(eq("a", "a")), &db, &stats).unwrap();
        assert!((sel.rows - 1.0).abs() < 1e-9);
        // Semijoin halves the outer side.
        let semi =
            estimate_with(&r.clone().semi_join(s.clone(), eq("a", "b")), &db, &stats).unwrap();
        assert_eq!(semi.rows, 500.0);
        // Union keeps the larger side.
        let uni = estimate_with(&r.clone().union(s.clone()), &db, &stats).unwrap();
        assert_eq!(uni.rows, 1000.0);
        // Ungrouped aggregation collapses to one row; grouped keeps 1/10th.
        let agg = estimate_with(&r.clone().aggregate(&[], vec![]), &db, &stats).unwrap();
        assert_eq!(agg.rows, 1.0);
        let grouped = estimate_with(&r.aggregate(&["a"], vec![]), &db, &stats).unwrap();
        assert_eq!(grouped.rows, 100.0);
    }

    #[test]
    fn estimate_with_uses_catalog_row_counts() {
        let db = db();
        let stats = StatisticsCatalog::analyze(&db);
        let q = RaExpr::relation("r");
        let with = estimate_with(&q, &db, &stats).unwrap();
        let without = estimate(&q, &db).unwrap();
        assert_eq!(with.rows, without.rows);
        assert_eq!(with.rows, 1000.0);
    }
}
