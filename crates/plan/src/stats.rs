//! The statistics catalog: per-relation cardinalities and per-column null
//! fractions / distinct-count estimates, computed from materialised
//! `certus-data` relations.
//!
//! The cost model ([`crate::cost`]) and the physical planner
//! ([`crate::physical::PhysicalPlanner`]) consult these statistics instead of
//! the fixed magic selectivities a statistics-free estimate falls back to.
//! Everything is exact (one full scan per table at [`StatisticsCatalog::analyze`]
//! time) — sampling and sketches are future work, the instances the paper's
//! experiments use are milli-scale.

use certus_data::{Database, Relation, Value};
use std::collections::{BTreeMap, HashSet};

/// Statistics for a single column.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// Column name as declared in the table schema.
    pub name: String,
    /// Fraction of rows in which the column is null (marked or Codd).
    pub null_fraction: f64,
    /// Number of distinct non-null values.
    pub distinct: usize,
}

/// Statistics for a single table.
#[derive(Debug, Clone, PartialEq)]
pub struct TableStats {
    /// Number of rows.
    pub rows: usize,
    /// Per-column statistics, in schema order.
    pub columns: Vec<ColumnStats>,
}

impl TableStats {
    /// Compute exact statistics for one relation.
    pub fn analyze(rel: &Relation) -> TableStats {
        let arity = rel.arity();
        let rows = rel.len();
        let mut nulls = vec![0usize; arity];
        let mut distinct: Vec<HashSet<&Value>> = vec![HashSet::new(); arity];
        for t in rel.iter() {
            for (i, v) in t.values().iter().enumerate() {
                if v.is_null() {
                    nulls[i] += 1;
                } else {
                    distinct[i].insert(v);
                }
            }
        }
        let columns = rel
            .schema()
            .attrs()
            .iter()
            .enumerate()
            .map(|(i, a)| ColumnStats {
                name: a.name.clone(),
                null_fraction: if rows == 0 { 0.0 } else { nulls[i] as f64 / rows as f64 },
                distinct: distinct[i].len(),
            })
            .collect();
        TableStats { rows, columns }
    }

    /// Look up a column by (base) name.
    pub fn column(&self, name: &str) -> Option<&ColumnStats> {
        let base = name.rsplit('.').next().unwrap_or(name);
        self.columns
            .iter()
            .find(|c| c.name == name || c.name.rsplit('.').next().unwrap_or(&c.name) == base)
    }
}

/// Statistics for every table of a database.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StatisticsCatalog {
    tables: BTreeMap<String, TableStats>,
}

impl StatisticsCatalog {
    /// An empty catalog (all lookups miss; estimates fall back to defaults).
    pub fn empty() -> Self {
        StatisticsCatalog::default()
    }

    /// Analyze every table of a database.
    pub fn analyze(db: &Database) -> Self {
        let mut tables = BTreeMap::new();
        for name in db.table_names() {
            let rel = db.relation(name).expect("listed table exists");
            tables.insert(name.to_string(), TableStats::analyze(rel));
        }
        StatisticsCatalog { tables }
    }

    /// Statistics for a table, if analyzed.
    pub fn table(&self, name: &str) -> Option<&TableStats> {
        self.tables.get(name)
    }

    /// Row count for a table, if analyzed.
    pub fn row_count(&self, name: &str) -> Option<usize> {
        self.tables.get(name).map(|t| t.rows)
    }

    /// Resolve a column reference (possibly qualified, e.g. `"l1.l_suppkey"`)
    /// to its statistics. TPC-H style schemas prefix columns per table, so a
    /// base-name scan across tables is unambiguous in practice; the first
    /// match wins otherwise.
    pub fn column(&self, name: &str) -> Option<&ColumnStats> {
        self.tables.values().find_map(|t| t.column(name))
    }

    /// Number of analyzed tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// Whether the catalog holds no statistics.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use certus_data::builder::rel;
    use certus_data::null::NullId;

    fn db() -> Database {
        let mut db = Database::new();
        db.insert_relation(
            "r",
            rel(
                &["a", "b"],
                vec![
                    vec![Value::Int(1), Value::Int(10)],
                    vec![Value::Int(1), Value::Null(NullId(1))],
                    vec![Value::Int(2), Value::Null(NullId(2))],
                    vec![Value::Int(3), Value::Int(10)],
                ],
            ),
        );
        db.insert_relation("empty", rel(&["x"], vec![]));
        db
    }

    #[test]
    fn analyze_counts_rows_nulls_and_distincts() {
        let stats = StatisticsCatalog::analyze(&db());
        let r = stats.table("r").unwrap();
        assert_eq!(r.rows, 4);
        assert_eq!(r.column("a").unwrap().distinct, 3);
        assert_eq!(r.column("a").unwrap().null_fraction, 0.0);
        assert_eq!(r.column("b").unwrap().distinct, 1);
        assert!((r.column("b").unwrap().null_fraction - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_table_has_zero_fractions() {
        let stats = StatisticsCatalog::analyze(&db());
        let e = stats.table("empty").unwrap();
        assert_eq!(e.rows, 0);
        assert_eq!(e.column("x").unwrap().null_fraction, 0.0);
        assert_eq!(e.column("x").unwrap().distinct, 0);
    }

    #[test]
    fn qualified_column_lookup_matches_base_name() {
        let stats = StatisticsCatalog::analyze(&db());
        assert!(stats.column("q.b").is_some());
        assert_eq!(stats.column("q.b").unwrap().distinct, 1);
        assert!(stats.column("nope").is_none());
        assert_eq!(stats.row_count("r"), Some(4));
        assert_eq!(stats.row_count("missing"), None);
    }

    #[test]
    fn distinct_counts_are_value_based_and_ignore_nulls() {
        let mut db = Database::new();
        // Three rows share the value 7, one is a string, two are marked
        // nulls with distinct ids: distinct = {7, "x"}, null fraction = 2/6.
        db.insert_relation(
            "t",
            rel(
                &["v"],
                vec![
                    vec![Value::Int(7)],
                    vec![Value::Int(7)],
                    vec![Value::Int(7)],
                    vec![Value::str("x")],
                    vec![Value::Null(NullId(1))],
                    vec![Value::Null(NullId(2))],
                ],
            ),
        );
        let stats = StatisticsCatalog::analyze(&db);
        let c = stats.table("t").unwrap().column("v").unwrap();
        assert_eq!(c.distinct, 2);
        assert!((c.null_fraction - 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn table_cardinalities_cover_every_analyzed_relation() {
        let stats = StatisticsCatalog::analyze(&db());
        assert_eq!(stats.len(), 2);
        assert!(!stats.is_empty());
        assert_eq!(stats.row_count("r"), Some(4));
        assert_eq!(stats.row_count("empty"), Some(0));
        // TableStats::analyze agrees with the catalog route.
        let direct = TableStats::analyze(db().relation("r").unwrap());
        assert_eq!(Some(&direct), stats.table("r"));
    }

    #[test]
    fn empty_catalog_misses_everything() {
        let stats = StatisticsCatalog::empty();
        assert!(stats.is_empty());
        assert_eq!(stats.len(), 0);
        assert!(stats.column("a").is_none());
    }
}
