//! # certus-plan
//!
//! The query-planning subsystem of *certus*: everything between the logical
//! [`RaExpr`] a translation produces and the physical
//! plan the engine executes.
//!
//! * [`pass`] — a [`PassManager`] running an ordered, re-runnable pipeline of
//!   logical rewrite passes to a fixpoint. Every pass is strongly
//!   semantics-preserving (same result on every database, under both SQL and
//!   naive null semantics), so translated queries keep their certain-answer
//!   guarantee.
//! * [`passes`] — the individual passes: constant/condition folding,
//!   predicate pushdown, projection collapsing, plus the paper's Section 7
//!   rewrites (nullability-aware `IS NULL` pruning, OR-splitting of
//!   `NOT EXISTS` and join conditions, the key-based simplification
//!   `R ⋉̸⇑ S → R − S`), migrated here out of `certus-core::optimize`.
//! * [`stats`] — a [`StatisticsCatalog`] of per-relation cardinalities and
//!   per-column null fractions / distinct counts computed from
//!   `certus-data` relations.
//! * [`cost`] — the cost model, in a statistics-free flavour (the seed's
//!   magic numbers) and a statistics-backed one.
//! * [`equi`] — extraction of hashable equi-join keys from conditions.
//! * [`physical`] — the [`PhysicalExpr`] plan representation, the
//!   statistics-free [`heuristic_plan`] and the cost-based
//!   [`PhysicalPlanner`] emitting [`ExplainPlan`] trees.
//! * [`cache`] — hashable plan keys ([`PlanKey`]) and the LRU [`PlanCache`]
//!   (hit/miss counters, schema-epoch invalidation) behind
//!   `certus::Session`'s prepared queries.
//!
//! [`Planner`] ties the two halves together: logical pipeline, then physical
//! planning.

pub mod cache;
pub mod cost;
pub mod equi;
pub mod error;
pub mod pass;
pub mod passes;
pub mod physical;
pub mod stats;

pub use cache::{expr_fingerprint, CacheStats, PlanCache, PlanKey};
pub use cost::{
    estimate, estimate_with, exchange_cost, selectivity, selectivity_with, CostEstimate,
};
pub use equi::{references_schema, split_equi, EquiSplit};
pub use error::PlanError;
pub use pass::{FnPass, Pass, PassContext, PassManager, PassTrace, PlanOptions};
pub use physical::{
    heuristic_plan, heuristic_plan_with, ExplainPlan, JoinAlgo, Parallelism, Partitioning,
    PhysicalExpr, PhysicalPlanner, SemiAlgo,
};
pub use stats::{ColumnStats, StatisticsCatalog, TableStats};

use certus_algebra::expr::RaExpr;
use certus_algebra::schema_infer::Catalog;
use certus_data::Database;

/// Result alias for the planning crate.
pub type Result<T> = std::result::Result<T, PlanError>;

/// The front door: run the logical pass pipeline, then (optionally) produce
/// a cost-based physical plan.
pub struct Planner {
    /// The logical rewrite pipeline.
    pub passes: PassManager,
}

impl Default for Planner {
    fn default() -> Self {
        Planner::new()
    }
}

impl Planner {
    /// A planner with the standard pass pipeline.
    pub fn new() -> Self {
        Planner { passes: PassManager::standard() }
    }

    /// A planner with explicit options.
    pub fn with_options(options: PlanOptions) -> Self {
        Planner { passes: PassManager::with_options(options) }
    }

    /// A planner whose logical pipeline is disabled (identity rewriting) —
    /// the "planner off" arm of ablation experiments.
    pub fn disabled() -> Self {
        Planner { passes: PassManager::empty() }
    }

    /// Run the logical rewrite pipeline.
    pub fn optimize(&self, expr: &RaExpr, catalog: &dyn Catalog) -> Result<RaExpr> {
        self.passes.run(expr, catalog)
    }

    /// Run the pipeline, then produce a cost-based physical plan over fresh
    /// statistics for the database. Convenience wrapper: analyzing statistics
    /// scans every table, so callers planning several queries against the
    /// same database should [`StatisticsCatalog::analyze`] once and use
    /// [`Planner::plan_with`].
    pub fn plan(&self, expr: &RaExpr, db: &Database) -> Result<PhysicalExpr> {
        self.plan_with(expr, db, &StatisticsCatalog::analyze(db))
    }

    /// Run the pipeline, then produce a cost-based physical plan over
    /// pre-computed statistics.
    pub fn plan_with(
        &self,
        expr: &RaExpr,
        db: &Database,
        stats: &StatisticsCatalog,
    ) -> Result<PhysicalExpr> {
        let optimized = self.optimize(expr, db)?;
        PhysicalPlanner::new(db, stats).plan(&optimized)
    }

    /// Run the pipeline, then produce the explain tree of the physical plan
    /// (convenience wrapper — see [`Planner::plan`] about statistics cost).
    pub fn explain(&self, expr: &RaExpr, db: &Database) -> Result<ExplainPlan> {
        self.explain_with(expr, db, &StatisticsCatalog::analyze(db))
    }

    /// Run the pipeline, then produce the explain tree over pre-computed
    /// statistics.
    pub fn explain_with(
        &self,
        expr: &RaExpr,
        db: &Database,
        stats: &StatisticsCatalog,
    ) -> Result<ExplainPlan> {
        let optimized = self.optimize(expr, db)?;
        PhysicalPlanner::new(db, stats).explain(&optimized)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use certus_algebra::builder::{eq, is_null};
    use certus_data::builder::rel;
    use certus_data::Value;

    fn db() -> Database {
        let mut db = Database::new();
        db.insert_relation(
            "r",
            rel(&["a", "b"], (0..30).map(|i| vec![Value::Int(i), Value::Int(i)]).collect()),
        );
        db.insert_relation(
            "s",
            rel(&["c", "d"], (0..30).map(|i| vec![Value::Int(i), Value::Int(i)]).collect()),
        );
        db
    }

    #[test]
    fn planner_splits_or_antijoins_end_to_end() {
        let db = db();
        let q =
            RaExpr::relation("r").anti_join(RaExpr::relation("s"), eq("a", "c").or(is_null("c")));
        let optimized = Planner::new().optimize(&q, &db).unwrap();
        // The OR split into a chain of two anti-joins…
        let mut chain = 0;
        let mut cur = &optimized;
        while let RaExpr::AntiJoin { left, .. } = cur {
            chain += 1;
            cur = left;
        }
        assert_eq!(chain, 2);
        // …and the disabled planner is the identity.
        assert_eq!(Planner::disabled().optimize(&q, &db).unwrap(), q);
    }

    #[test]
    fn planner_produces_executable_physical_plans() {
        let db = db();
        let q = RaExpr::relation("r")
            .join(RaExpr::relation("s"), eq("a", "c"))
            .select(eq("b", "d"))
            .project(&["a"]);
        let plan = Planner::new().plan(&q, &db).unwrap();
        assert!(plan.size() >= 3);
        let explain = Planner::new().explain(&q, &db).unwrap();
        assert!(explain.to_string().contains("HashJoin"), "{explain}");
    }
}
