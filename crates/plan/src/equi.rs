//! Extraction of equi-join keys from join conditions.
//!
//! A conjunct `x = y` where `x` resolves in the left schema and `y` in the
//! right schema (or vice versa) is usable as a hash-join key. Everything else
//! — including equalities hidden under a disjunction such as
//! `x = y OR y IS NULL` — stays in the *residual* condition. That asymmetry
//! is precisely what makes the unoptimized translated queries slow and the
//! OR-split ones fast (paper, Section 7).

use certus_algebra::condition::{Condition, Operand};
use certus_data::compare::CmpOp;
use certus_data::Schema;

/// The result of splitting a join condition.
#[derive(Debug, Clone)]
pub struct EquiSplit {
    /// Column names on the left side, positionally paired with `right_keys`.
    pub left_keys: Vec<String>,
    /// Column names on the right side.
    pub right_keys: Vec<String>,
    /// Conjuncts that could not be turned into hash keys.
    pub residual: Condition,
}

impl EquiSplit {
    /// Whether any hash keys were found.
    pub fn has_keys(&self) -> bool {
        !self.left_keys.is_empty()
    }
}

/// Split a condition into hashable equi-pairs and a residual, relative to the
/// given left/right schemas.
pub fn split_equi(condition: &Condition, left: &Schema, right: &Schema) -> EquiSplit {
    let mut left_keys = Vec::new();
    let mut right_keys = Vec::new();
    let mut residual = Condition::True;
    for conjunct in condition.conjuncts() {
        match &conjunct {
            Condition::Cmp { left: a, op: CmpOp::Eq, right: b } => match (a, b) {
                (Operand::Col(x), Operand::Col(y)) => {
                    let (xl, xr) = (left.contains(x), right.contains(x));
                    let (yl, yr) = (left.contains(y), right.contains(y));
                    if xl && !xr && yr && !yl {
                        left_keys.push(x.clone());
                        right_keys.push(y.clone());
                        continue;
                    }
                    if yl && !yr && xr && !xl {
                        left_keys.push(y.clone());
                        right_keys.push(x.clone());
                        continue;
                    }
                    residual = residual.and(conjunct.clone());
                }
                _ => residual = residual.and(conjunct.clone()),
            },
            _ => residual = residual.and(conjunct.clone()),
        }
    }
    EquiSplit { left_keys, right_keys, residual }
}

/// Whether a condition references any column of the given schema (used to
/// detect *uncorrelated* `EXISTS` / `NOT EXISTS` subqueries).
pub fn references_schema(condition: &Condition, schema: &Schema) -> bool {
    condition.columns().iter().any(|c| schema.contains(c))
}

#[cfg(test)]
mod tests {
    use super::*;
    use certus_algebra::builder::{eq, is_null, neq};

    fn schemas() -> (Schema, Schema) {
        (
            Schema::of_names(&["o_orderkey", "o_custkey"]),
            Schema::of_names(&["l_orderkey", "l_suppkey"]),
        )
    }

    #[test]
    fn plain_equality_becomes_a_key() {
        let (l, r) = schemas();
        let split = split_equi(&eq("l_orderkey", "o_orderkey"), &l, &r);
        assert_eq!(split.left_keys, vec!["o_orderkey"]);
        assert_eq!(split.right_keys, vec!["l_orderkey"]);
        assert_eq!(split.residual, Condition::True);
    }

    #[test]
    fn or_disjunction_blocks_hashing() {
        let (l, r) = schemas();
        let cond = eq("l_orderkey", "o_orderkey").or(is_null("l_suppkey"));
        let split = split_equi(&cond, &l, &r);
        assert!(!split.has_keys());
        assert_eq!(split.residual, cond);
    }

    #[test]
    fn mixed_condition_splits_cleanly() {
        let (l, r) = schemas();
        let cond = eq("l_orderkey", "o_orderkey")
            .and(neq("l_suppkey", "o_custkey").or(is_null("l_suppkey")));
        let split = split_equi(&cond, &l, &r);
        assert!(split.has_keys());
        assert!(split.residual.to_string().contains("IS NULL"));
    }

    #[test]
    fn same_side_equality_stays_residual() {
        let (l, r) = schemas();
        let split = split_equi(&eq("o_orderkey", "o_custkey"), &l, &r);
        assert!(!split.has_keys());
        let split2 = split_equi(&eq("l_orderkey", "l_suppkey"), &l, &r);
        assert!(!split2.has_keys());
    }

    #[test]
    fn correlation_detection() {
        let (l, r) = schemas();
        assert!(references_schema(&eq("l_orderkey", "o_orderkey"), &l));
        assert!(!references_schema(&is_null("l_suppkey"), &l));
        assert!(references_schema(&is_null("l_suppkey"), &r));
    }
}
