//! Predicate pushdown.
//!
//! Selections migrate towards the scans: through projections (rewriting the
//! condition's columns via the projection's alias map), through set
//! operations, into the preserved side of (anti-)semijoins, and into join
//! conditions — where they may expose new equi-join keys for the physical
//! planner to hash on. A selection over a cartesian product whose condition
//! relates both sides turns the product into a theta-join.
//!
//! Every rule is a strong equivalence under both SQL 3VL and naive
//! evaluation: Kleene conjunction is associative/commutative and selections
//! commute with the tuple-preserving operators used here.

use crate::pass::{Pass, PassContext, PlanOptions};
use crate::{PlanError, Result};
use certus_algebra::condition::Condition;
use certus_algebra::expr::RaExpr;
use certus_algebra::schema_infer::{output_schema, Catalog};
use certus_data::Schema;

/// The predicate-pushdown pass.
pub struct PushdownPass;

impl Pass for PushdownPass {
    fn name(&self) -> &'static str {
        "predicate-pushdown"
    }

    fn enabled(&self, options: &PlanOptions) -> bool {
        options.pushdown
    }

    fn run(&self, expr: &RaExpr, ctx: &PassContext<'_>) -> Result<RaExpr> {
        pushdown(expr, ctx.catalog)
    }
}

/// Push every selection in the expression as far down as it can go.
pub fn pushdown(expr: &RaExpr, catalog: &dyn Catalog) -> Result<RaExpr> {
    match expr {
        RaExpr::Select { input, condition } => {
            let input = pushdown(input, catalog)?;
            push_select(input, condition.clone(), catalog)
        }
        other => other.map_children(&mut |c| pushdown(c, catalog)),
    }
}

/// Push one selection into an (already pushed-down) input expression.
fn push_select(input: RaExpr, condition: Condition, catalog: &dyn Catalog) -> Result<RaExpr> {
    match input {
        // σ_θ(σ_φ(e)) = σ_{φ∧θ}(e): merge and retry on the inner input.
        RaExpr::Select { input: inner, condition: inner_cond } => {
            push_select(*inner, inner_cond.and(condition), catalog)
        }
        // σ_θ(π(e)) = π(σ_{θ'}(e)) with θ' renamed through the alias map.
        RaExpr::Project { input: inner, columns } => {
            let all_mappable =
                condition.columns().iter().all(|c| columns.iter().any(|pc| pc.output_name() == c));
            if all_mappable {
                let renamed = condition.map_columns(&mut |c| {
                    columns
                        .iter()
                        .find(|pc| pc.output_name() == c)
                        .map(|pc| pc.column.clone())
                        .unwrap_or_else(|| c.to_string())
                });
                Ok(push_select(*inner, renamed, catalog)?.project_cols(columns))
            } else {
                Ok(RaExpr::Project { input: inner, columns }.select(condition))
            }
        }
        // σ_θ(ρ(e)) = ρ(σ_{θ'}(e)) with θ' renamed back positionally.
        RaExpr::Rename { input: inner, columns } => {
            let inner_schema = output_schema(&inner, catalog).map_err(PlanError::Algebra)?;
            let all_exact = condition.columns().iter().all(|c| columns.contains(c));
            if all_exact && columns.len() == inner_schema.arity() {
                let renamed = condition.map_columns(&mut |c| {
                    columns
                        .iter()
                        .position(|n| n == c)
                        .map(|i| inner_schema.attr(i).name.clone())
                        .unwrap_or_else(|| c.to_string())
                });
                Ok(RaExpr::Rename {
                    input: Box::new(push_select(*inner, renamed, catalog)?),
                    columns,
                })
            } else {
                Ok(RaExpr::Rename { input: inner, columns }.select(condition))
            }
        }
        // σ_θ(l ⋈_φ r): distribute single-side conjuncts, fold the rest into
        // the join condition.
        RaExpr::Join { left, right, condition: join_cond } => {
            let (l, r, merged) = distribute(*left, *right, join_cond.and(condition), catalog)?;
            Ok(l.join(r, merged))
        }
        // σ_θ(l × r): like a join with condition TRUE; if mixed conjuncts
        // remain the product becomes a theta-join.
        RaExpr::Product { left, right } => {
            let (l, r, merged) = distribute(*left, *right, condition, catalog)?;
            Ok(match merged {
                Condition::True => l.product(r),
                mixed => l.join(r, mixed),
            })
        }
        // The output schema of an (anti-)semijoin is the left schema, so the
        // whole selection moves onto the preserved side.
        RaExpr::SemiJoin { left, right, condition: jc } => {
            Ok(push_select(*left, condition, catalog)?.semi_join(*right, jc))
        }
        RaExpr::AntiJoin { left, right, condition: jc } => {
            Ok(push_select(*left, condition, catalog)?.anti_join(*right, jc))
        }
        RaExpr::UnifySemiJoin { left, right } => {
            Ok(push_select(*left, condition, catalog)?.unify_semi_join(*right))
        }
        RaExpr::UnifyAntiSemiJoin { left, right } => {
            Ok(push_select(*left, condition, catalog)?.unify_anti_join(*right))
        }
        // σ(l ∪ r) = σ(l) ∪ σ(r). Union semantics are positional and the
        // union's output schema is the *left* one, so pushing into the right
        // branch is only sound when every condition column resolves to the
        // same position in both branch schemas (set operands need only be
        // union-compatible, not name-identical — a same-named column at a
        // different position would silently change results).
        RaExpr::Union { left, right } => {
            let l_schema = output_schema(&left, catalog).map_err(PlanError::Algebra)?;
            let r_schema = output_schema(&right, catalog).map_err(PlanError::Algebra)?;
            if resolves_positionally(&condition, &l_schema, &r_schema) {
                Ok(push_select(*left, condition.clone(), catalog)?
                    .union(push_select(*right, condition, catalog)?))
            } else {
                Ok(RaExpr::Union { left, right }.select(condition))
            }
        }
        // σ(l ∩ r) = σ(l) ∩ r and σ(l − r) = σ(l) − r.
        RaExpr::Intersect { left, right } => {
            Ok(push_select(*left, condition, catalog)?.intersect(*right))
        }
        RaExpr::Difference { left, right } => {
            Ok(push_select(*left, condition, catalog)?.difference(*right))
        }
        // σ(δ(e)) = δ(σ(e)).
        RaExpr::Distinct { input: inner } => {
            Ok(push_select(*inner, condition, catalog)?.distinct())
        }
        // Leaves and aggregates: the selection stays where it is.
        other => Ok(other.select(condition)),
    }
}

/// Distribute the conjuncts of a join condition: conjuncts that resolve only
/// on one side become selections on that side, the rest stays in the join.
fn distribute(
    left: RaExpr,
    right: RaExpr,
    condition: Condition,
    catalog: &dyn Catalog,
) -> Result<(RaExpr, RaExpr, Condition)> {
    let l_schema = output_schema(&left, catalog).map_err(PlanError::Algebra)?;
    let r_schema = output_schema(&right, catalog).map_err(PlanError::Algebra)?;
    let mut left_only = Condition::True;
    let mut right_only = Condition::True;
    let mut keep = Condition::True;
    for conjunct in condition.conjuncts() {
        let cols = conjunct.columns();
        let on_left = cols.iter().all(|c| l_schema.contains(c));
        let on_right = cols.iter().all(|c| r_schema.contains(c));
        // A column-free conjunct (constants, scalar subqueries) is kept in
        // the join: it is cheap anyway, and moving it would not help.
        if cols.is_empty() {
            keep = keep.and(conjunct);
        } else if on_left && !on_right {
            left_only = left_only.and(conjunct);
        } else if on_right && !on_left {
            right_only = right_only.and(conjunct);
        } else {
            keep = keep.and(conjunct);
        }
    }
    let l = match left_only {
        Condition::True => left,
        c => push_select(left, c, catalog)?,
    };
    let r = match right_only {
        Condition::True => right,
        c => push_select(right, c, catalog)?,
    };
    Ok((l, r, keep))
}

/// Whether every column of the condition resolves in both schemas *at the
/// same position* (required for pushing through positional set operations).
fn resolves_positionally(condition: &Condition, left: &Schema, right: &Schema) -> bool {
    condition.columns().iter().all(|c| match (left.position_of(c), right.position_of(c)) {
        (Ok(l), Ok(r)) => l == r,
        _ => false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use certus_algebra::builder::{eq, eq_const, is_null, neq};
    use certus_algebra::eval::eval;
    use certus_algebra::NullSemantics;
    use certus_data::builder::rel;
    use certus_data::null::NullId;
    use certus_data::{Database, Value};

    fn db() -> Database {
        let mut db = Database::new();
        db.insert_relation(
            "r",
            rel(
                &["a", "b"],
                vec![
                    vec![Value::Int(1), Value::Int(10)],
                    vec![Value::Int(2), Value::Null(NullId(1))],
                    vec![Value::Int(3), Value::Int(30)],
                ],
            ),
        );
        db.insert_relation(
            "s",
            rel(
                &["c", "d"],
                vec![
                    vec![Value::Int(1), Value::Int(10)],
                    vec![Value::Null(NullId(2)), Value::Int(30)],
                ],
            ),
        );
        db
    }

    fn assert_equivalent(before: &RaExpr, after: &RaExpr, db: &Database) {
        for semantics in [NullSemantics::Sql, NullSemantics::Naive] {
            let a = eval(before, db, semantics).unwrap().sorted();
            let b = eval(after, db, semantics).unwrap().sorted();
            assert_eq!(a.tuples(), b.tuples(), "{before} vs {after}");
        }
    }

    #[test]
    fn select_over_product_becomes_a_join_with_side_filters() {
        let db = db();
        let q = RaExpr::relation("r")
            .product(RaExpr::relation("s"))
            .select(eq("a", "c").and(eq_const("b", 10i64)).and(neq("d", "d")));
        let out = pushdown(&q, &db).unwrap();
        // The mixed conjunct a = c lands in a Join node; b = 10 moved left,
        // d <> d moved right.
        match &out {
            RaExpr::Join { left, right, condition } => {
                assert_eq!(condition, &eq("a", "c"));
                assert!(matches!(**left, RaExpr::Select { .. }));
                assert!(matches!(**right, RaExpr::Select { .. }));
            }
            other => panic!("expected Join, got {other}"),
        }
        assert_equivalent(&q, &out, &db);
    }

    #[test]
    fn select_merges_into_join_condition() {
        let db = db();
        let q = RaExpr::relation("r")
            .join(RaExpr::relation("s"), eq("a", "c"))
            .select(is_null("d").or(eq("b", "d")));
        let out = pushdown(&q, &db).unwrap();
        match &out {
            RaExpr::Join { condition, .. } => {
                assert_eq!(*condition, eq("a", "c").and(is_null("d").or(eq("b", "d"))));
            }
            other => panic!("expected Join, got {other}"),
        }
        assert_equivalent(&q, &out, &db);
    }

    #[test]
    fn select_pushes_through_projection_aliases() {
        let db = db();
        use certus_algebra::expr::ProjCol;
        let q = RaExpr::relation("r")
            .project_cols(vec![ProjCol::aliased("a", "x"), ProjCol::named("b")])
            .select(eq_const("x", 2i64));
        let out = pushdown(&q, &db).unwrap();
        match &out {
            RaExpr::Project { input, .. } => {
                assert!(matches!(**input, RaExpr::Select { .. }), "selection moved below: {out}");
            }
            other => panic!("expected Project on top, got {other}"),
        }
        assert_equivalent(&q, &out, &db);
    }

    #[test]
    fn select_pushes_into_set_operations_and_semijoins() {
        let db = db();
        let union = RaExpr::relation("r")
            .project(&["a"])
            .union(RaExpr::relation("s").project(&["c"]).rename(&["a"]))
            .select(eq_const("a", 1i64));
        let out = pushdown(&union, &db).unwrap();
        assert!(matches!(out, RaExpr::Union { .. }), "selection distributed: {out}");
        assert_equivalent(&union, &out, &db);

        let diff = RaExpr::relation("r")
            .difference(RaExpr::relation("s").rename(&["a", "b"]))
            .select(eq_const("a", 1i64));
        let out = pushdown(&diff, &db).unwrap();
        assert!(matches!(out, RaExpr::Difference { .. }));
        assert_equivalent(&diff, &out, &db);

        let semi = RaExpr::relation("r")
            .semi_join(RaExpr::relation("s"), eq("a", "c"))
            .select(eq_const("b", 10i64));
        let out = pushdown(&semi, &db).unwrap();
        match &out {
            RaExpr::SemiJoin { left, .. } => assert!(matches!(**left, RaExpr::Select { .. })),
            other => panic!("expected SemiJoin, got {other}"),
        }
        assert_equivalent(&semi, &out, &db);
    }

    #[test]
    fn union_with_unresolvable_right_side_is_left_alone() {
        let db = db();
        // Right branch's schema has columns c/d — "a" does not resolve.
        let q = RaExpr::relation("r")
            .project(&["a"])
            .union(RaExpr::relation("s").project(&["c"]))
            .select(eq_const("a", 1i64));
        let out = pushdown(&q, &db).unwrap();
        assert!(matches!(out, RaExpr::Select { .. }), "must not push: {out}");
        assert_equivalent(&q, &out, &db);
    }

    #[test]
    fn union_with_positionally_misaligned_names_is_left_alone() {
        // Regression: union alignment is positional, so a right branch whose
        // same-named column sits at a *different* position must not receive
        // the selection. Here rename(s, ["b", "a"]) puts "a" at position 1,
        // while the union's output schema (r's) has it at position 0: tuple
        // (9, 1) has a = 9 through the union but a = 1 inside the branch.
        let mut db = Database::new();
        db.insert_relation("r", rel(&["a", "b"], vec![vec![Value::Int(1), Value::Int(2)]]));
        db.insert_relation("s", rel(&["c", "d"], vec![vec![Value::Int(9), Value::Int(1)]]));
        let q = RaExpr::relation("r")
            .union(RaExpr::relation("s").rename(&["b", "a"]))
            .select(eq_const("a", 1i64));
        let out = pushdown(&q, &db).unwrap();
        assert!(matches!(out, RaExpr::Select { .. }), "must not push: {out}");
        assert_equivalent(&q, &out, &db);
        // Aligned names at matching positions still push.
        let aligned = RaExpr::relation("r")
            .union(RaExpr::relation("s").rename(&["a", "b"]))
            .select(eq_const("a", 1i64));
        let out = pushdown(&aligned, &db).unwrap();
        assert!(matches!(out, RaExpr::Union { .. }), "should push: {out}");
        assert_equivalent(&aligned, &out, &db);
    }

    #[test]
    fn pushdown_is_idempotent() {
        let db = db();
        let q = RaExpr::relation("r")
            .product(RaExpr::relation("s"))
            .select(eq("a", "c").and(eq_const("b", 10i64)));
        let once = pushdown(&q, &db).unwrap();
        let twice = pushdown(&once, &db).unwrap();
        assert_eq!(once, twice);
    }

    #[test]
    fn no_op_on_queries_without_selections() {
        let db = db();
        let q = RaExpr::relation("r").join(RaExpr::relation("s"), eq("a", "c")).project(&["a"]);
        assert_eq!(pushdown(&q, &db).unwrap(), q);
    }
}
