//! OR-splitting (paper, Section 7) — cost-guarded.
//!
//! After the certain-answer translation, join conditions inside `NOT EXISTS`
//! subqueries look like `(A = B OR A IS NULL) ∧ …` — the disjunction hides
//! the equality from the hash-join key extractor and the physical plan
//! degenerates to nested loops. Splitting on the disjuncts restores plain
//! equalities per branch:
//!
//! * anti-joins: `l ▷_{φ1 ∨ … ∨ φk} r → ((l ▷_{φ1} r) ▷_{φ2} r) … ▷_{φk} r`
//!   (a tuple survives iff it has no match under any disjunct);
//! * theta-joins: `l ⋈_{φ1 ∨ … ∨ φk} r → (l ⋈_{φ1} r) ∪ … ∪ (l ⋈_{φk} r)`
//!   (equivalent under set semantics — the union/"view" form the paper uses
//!   for Q⁺4).
//!
//! Splitting unconditionally can *pessimize*: a DNF disjunct with no
//! extractable equality still runs as a nested loop, so a union/chain with
//! several keyless branches multiplies the quadratic work the rewrite was
//! supposed to remove. The pipeline passes therefore split only when the
//! unsplit condition is unhashable and the split branches actually hash —
//! every branch for a join (each union branch rescans both inputs), all but
//! at most one for an anti-join chain (hashable branches run first and
//! shrink the left side before the lone nested-loop step). The raw,
//! unguarded rewrites remain available as [`split_or_antijoin`] /
//! [`split_or_join`].

use crate::equi::split_equi;
use crate::pass::{Pass, PassContext, PlanOptions};
use crate::{PlanError, Result};
use certus_algebra::condition::Condition;
use certus_algebra::expr::RaExpr;
use certus_algebra::schema_infer::{output_schema, Catalog};
use std::convert::Infallible;

/// OR-splitting of anti-join conditions (guarded by hashability).
pub struct SplitOrAntiJoinPass;

impl Pass for SplitOrAntiJoinPass {
    fn name(&self) -> &'static str {
        "split-or-antijoin"
    }

    fn enabled(&self, options: &PlanOptions) -> bool {
        options.split_or
    }

    fn run(&self, expr: &RaExpr, ctx: &PassContext<'_>) -> Result<RaExpr> {
        split_or_antijoin_guarded(expr, ctx.catalog, ctx.options.max_split)
    }
}

/// OR-splitting of theta-join conditions into unions (guarded by
/// hashability).
pub struct SplitOrJoinPass;

impl Pass for SplitOrJoinPass {
    fn name(&self) -> &'static str {
        "split-or-join"
    }

    fn enabled(&self, options: &PlanOptions) -> bool {
        options.split_or_joins
    }

    fn run(&self, expr: &RaExpr, ctx: &PassContext<'_>) -> Result<RaExpr> {
        split_or_join_guarded(expr, ctx.catalog, ctx.options.max_split)
    }
}

/// The disjuncts of a condition, when splitting stands a chance of paying
/// off: the unsplit condition extracts no hash keys, the disjunct count is
/// within bounds, and at least one disjunct does extract keys. Returns the
/// disjuncts reordered hashable-first, plus the number of keyless ones.
fn splittable_disjuncts(
    condition: &Condition,
    left: &RaExpr,
    right: &RaExpr,
    catalog: &dyn Catalog,
    max_split: usize,
) -> Result<Option<(Vec<Condition>, usize)>> {
    let disjuncts = condition.to_dnf();
    if disjuncts.len() < 2 || disjuncts.len() > max_split {
        return Ok(None);
    }
    let l_schema = output_schema(left, catalog).map_err(PlanError::Algebra)?;
    let r_schema = output_schema(right, catalog).map_err(PlanError::Algebra)?;
    if split_equi(condition, &l_schema, &r_schema).has_keys() {
        // Already hash-joinable with a residual: splitting only adds passes.
        return Ok(None);
    }
    let (keyed, keyless): (Vec<Condition>, Vec<Condition>) =
        disjuncts.into_iter().partition(|d| split_equi(d, &l_schema, &r_schema).has_keys());
    if keyed.is_empty() {
        return Ok(None);
    }
    let keyless_count = keyless.len();
    let mut ordered = keyed;
    ordered.extend(keyless);
    Ok(Some((ordered, keyless_count)))
}

/// Guarded OR-splitting of anti-joins: split into a chain only when the
/// unsplit condition is unhashable and at most one branch stays keyless
/// (hashable branches run first, shrinking the left side).
pub fn split_or_antijoin_guarded(
    expr: &RaExpr,
    catalog: &dyn Catalog,
    max_split: usize,
) -> Result<RaExpr> {
    match expr {
        RaExpr::AntiJoin { left, right, condition } => {
            let left = split_or_antijoin_guarded(left, catalog, max_split)?;
            let right = split_or_antijoin_guarded(right, catalog, max_split)?;
            match splittable_disjuncts(condition, &left, &right, catalog, max_split)? {
                Some((disjuncts, keyless)) if keyless <= 1 => {
                    let mut out = left;
                    for d in disjuncts {
                        out = out.anti_join(right.clone(), d);
                    }
                    Ok(out)
                }
                _ => Ok(left.anti_join(right, condition.clone())),
            }
        }
        other => other.map_children(&mut |c| split_or_antijoin_guarded(c, catalog, max_split)),
    }
}

/// Guarded OR-splitting of joins into unions: split only when the unsplit
/// condition is unhashable and **every** branch hashes (each union branch
/// rescans both inputs, so a single keyless branch already costs as much as
/// not splitting at all).
pub fn split_or_join_guarded(
    expr: &RaExpr,
    catalog: &dyn Catalog,
    max_split: usize,
) -> Result<RaExpr> {
    match expr {
        RaExpr::Join { left, right, condition } => {
            let left = split_or_join_guarded(left, catalog, max_split)?;
            let right = split_or_join_guarded(right, catalog, max_split)?;
            match splittable_disjuncts(condition, &left, &right, catalog, max_split)? {
                Some((disjuncts, 0)) => {
                    let mut iter = disjuncts.into_iter();
                    let first = left.clone().join(right.clone(), iter.next().expect("non-empty"));
                    Ok(iter.fold(first, |acc, d| acc.union(left.clone().join(right.clone(), d))))
                }
                _ => Ok(left.join(right, condition.clone())),
            }
        }
        other => other.map_children(&mut |c| split_or_join_guarded(c, catalog, max_split)),
    }
}

/// OR-splitting of anti-joins: `l ▷_{φ1 ∨ … ∨ φk} r` is rewritten into
/// `(((l ▷_{φ1} r) ▷_{φ2} r) … ) ▷_{φk} r`, which is equivalent (a tuple
/// survives iff it has no match under any disjunct) and lets the physical
/// planner use a hash anti-join for every disjunct that is a conjunction of
/// equalities plus residual predicates.
pub fn split_or_antijoin(expr: &RaExpr, max_split: usize) -> RaExpr {
    match expr {
        RaExpr::AntiJoin { left, right, condition } => {
            let left = split_or_antijoin(left, max_split);
            let right = split_or_antijoin(right, max_split);
            let disjuncts = condition.to_dnf();
            if disjuncts.len() > 1 && disjuncts.len() <= max_split {
                let mut out = left;
                for d in disjuncts {
                    out = out.anti_join(right.clone(), d);
                }
                out
            } else {
                left.anti_join(right, condition.clone())
            }
        }
        other => other
            .map_children(&mut |c| Ok::<RaExpr, Infallible>(split_or_antijoin(c, max_split)))
            .expect("infallible"),
    }
}

/// OR-splitting for theta-joins: `l ⋈_{φ1 ∨ … ∨ φk} r` is rewritten into the
/// union `(l ⋈_{φ1} r) ∪ … ∪ (l ⋈_{φk} r)`, which is equivalent under set
/// semantics. This is the union/view form the paper uses for Q⁺4 (its
/// `part_view` / `supp_view` are exactly such unions).
pub fn split_or_join(expr: &RaExpr, max_split: usize) -> RaExpr {
    match expr {
        RaExpr::Join { left, right, condition } => {
            let left = split_or_join(left, max_split);
            let right = split_or_join(right, max_split);
            let disjuncts = condition.to_dnf();
            if disjuncts.len() > 1 && disjuncts.len() <= max_split {
                let mut iter = disjuncts.into_iter();
                let first = left.clone().join(right.clone(), iter.next().expect("non-empty"));
                iter.fold(first, |acc, d| acc.union(left.clone().join(right.clone(), d)))
            } else {
                left.join(right, condition.clone())
            }
        }
        other => other
            .map_children(&mut |c| Ok::<RaExpr, Infallible>(split_or_join(c, max_split)))
            .expect("infallible"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use certus_algebra::builder::{eq, is_null, neq};
    use certus_algebra::eval::eval;
    use certus_algebra::NullSemantics;
    use certus_data::builder::rel;
    use certus_data::null::NullId;
    use certus_data::{Database, Value};

    fn db() -> Database {
        let mut db = Database::new();
        db.insert_relation(
            "r",
            rel(
                &["a", "b"],
                vec![
                    vec![Value::Int(1), Value::Int(10)],
                    vec![Value::Int(2), Value::Null(NullId(1))],
                ],
            ),
        );
        db.insert_relation(
            "s",
            rel(
                &["c", "d"],
                vec![
                    vec![Value::Int(1), Value::Null(NullId(2))],
                    vec![Value::Int(3), Value::Int(30)],
                ],
            ),
        );
        db
    }

    #[test]
    fn antijoin_or_splits_into_a_chain() {
        let db = db();
        let cond = eq("a", "c").or(is_null("c"));
        let q = RaExpr::relation("r").anti_join(RaExpr::relation("s"), cond);
        let split = split_or_antijoin(&q, 16);
        let mut count = 0;
        let mut cur = &split;
        while let RaExpr::AntiJoin { left, .. } = cur {
            count += 1;
            cur = left;
        }
        assert_eq!(count, 2);
        let a = eval(&q, &db, NullSemantics::Sql).unwrap().sorted();
        let b = eval(&split, &db, NullSemantics::Sql).unwrap().sorted();
        assert_eq!(a.tuples(), b.tuples());
    }

    #[test]
    fn join_or_splits_into_a_union() {
        let db = db();
        let cond = eq("a", "c").or(is_null("d").and(neq("b", "d")));
        let q = RaExpr::relation("r").join(RaExpr::relation("s"), cond);
        let split = split_or_join(&q, 16);
        assert!(matches!(split, RaExpr::Union { .. }), "{split}");
        let a = eval(&q, &db, NullSemantics::Sql).unwrap().sorted().distinct();
        let b = eval(&split, &db, NullSemantics::Sql).unwrap().sorted().distinct();
        assert_eq!(a.tuples(), b.tuples());
    }

    #[test]
    fn max_split_bounds_the_expansion() {
        let cond = is_null("c").or(is_null("d")).or(neq("a", "c"));
        let q = RaExpr::relation("r").anti_join(RaExpr::relation("s"), cond.clone());
        let kept = split_or_antijoin(&q, 2);
        assert!(matches!(kept, RaExpr::AntiJoin { ref condition, .. } if *condition == cond));
        let j = RaExpr::relation("r").join(RaExpr::relation("s"), cond.clone());
        let kept = split_or_join(&j, 2);
        assert!(matches!(kept, RaExpr::Join { ref condition, .. } if *condition == cond));
    }

    #[test]
    fn guarded_antijoin_split_requires_hashable_branches() {
        let db = db();
        // eq ∨ isnull: unsplit keyless, one keyless branch → split, hashable
        // branch first.
        let q =
            RaExpr::relation("r").anti_join(RaExpr::relation("s"), is_null("c").or(eq("a", "c")));
        let split = split_or_antijoin_guarded(&q, &db, 16).unwrap();
        match &split {
            RaExpr::AntiJoin { left, condition, .. } => {
                // Outermost step is the keyless isnull branch; the hashable
                // eq branch ran first (inner).
                assert_eq!(condition, &is_null("c"));
                assert!(
                    matches!(**left, RaExpr::AntiJoin { ref condition, .. } if *condition == eq("a", "c"))
                );
            }
            other => panic!("expected chain, got {other}"),
        }
        let a = eval(&q, &db, NullSemantics::Sql).unwrap().sorted();
        let b = eval(&split, &db, NullSemantics::Sql).unwrap().sorted();
        assert_eq!(a.tuples(), b.tuples());

        // Two keyless branches: splitting would multiply nested-loop work.
        let q = RaExpr::relation("r")
            .anti_join(RaExpr::relation("s"), is_null("c").or(is_null("d")).or(eq("a", "c")));
        assert_eq!(split_or_antijoin_guarded(&q, &db, 16).unwrap(), q);

        // Already hashable with residual: no split either.
        let q = RaExpr::relation("r")
            .anti_join(RaExpr::relation("s"), eq("a", "c").and(neq("b", "d").or(is_null("d"))));
        assert_eq!(split_or_antijoin_guarded(&q, &db, 16).unwrap(), q);
    }

    #[test]
    fn guarded_join_split_requires_all_branches_hashable() {
        let db = db();
        // Both branches hash → union split.
        let all_hash =
            RaExpr::relation("r").join(RaExpr::relation("s"), eq("a", "c").or(eq("b", "d")));
        let split = split_or_join_guarded(&all_hash, &db, 16).unwrap();
        assert!(matches!(split, RaExpr::Union { .. }), "{split}");
        let a = eval(&all_hash, &db, NullSemantics::Sql).unwrap().sorted().distinct();
        let b = eval(&split, &db, NullSemantics::Sql).unwrap().sorted().distinct();
        assert_eq!(a.tuples(), b.tuples());

        // A keyless branch would rescan both inputs as a nested loop: keep.
        let mixed =
            RaExpr::relation("r").join(RaExpr::relation("s"), eq("a", "c").or(is_null("d")));
        assert_eq!(split_or_join_guarded(&mixed, &db, 16).unwrap(), mixed);
    }

    #[test]
    fn splitting_is_idempotent() {
        let q =
            RaExpr::relation("r").anti_join(RaExpr::relation("s"), eq("a", "c").or(is_null("c")));
        let once = split_or_antijoin(&q, 16);
        assert_eq!(split_or_antijoin(&once, 16), once);
        let j = RaExpr::relation("r").join(RaExpr::relation("s"), eq("a", "c").or(is_null("c")));
        let once = split_or_join(&j, 16);
        assert_eq!(split_or_join(&once, 16), once);
    }
}
