//! Nullability-aware pruning of `IS [NOT] NULL` checks (paper, Corollary 1).
//!
//! The certain-answer translations guard every equality with `… OR A IS
//! NULL` disjuncts and `A IS NOT NULL` conjuncts. On columns the schema
//! declares non-nullable those checks are constants: `col IS NULL → FALSE`,
//! `col IS NOT NULL → TRUE`, after which the Boolean connectives
//! re-simplify. This is sanctioned by Corollary 1 (it strengthens `θ*` and
//! weakens nothing in `θ**` that could ever be true).

use crate::pass::{Pass, PassContext, PlanOptions};
use crate::{PlanError, Result};
use certus_algebra::condition::Condition;
use certus_algebra::expr::RaExpr;
use certus_algebra::schema_infer::{output_schema, Catalog};
use certus_data::Schema;

/// The nullability-pruning pass.
pub struct NullPrunePass;

impl Pass for NullPrunePass {
    fn name(&self) -> &'static str {
        "prune-null-checks"
    }

    fn enabled(&self, options: &PlanOptions) -> bool {
        options.prune_nonnullable
    }

    fn run(&self, expr: &RaExpr, ctx: &PassContext<'_>) -> Result<RaExpr> {
        prune_null_checks(expr, ctx.catalog)
    }
}

/// Simplify `IS NULL` / `IS NOT NULL` atoms over columns that can never be
/// null according to the schema: `col IS NULL → FALSE`, `col IS NOT NULL →
/// TRUE`, followed by Boolean simplification.
pub fn prune_null_checks(expr: &RaExpr, catalog: &dyn Catalog) -> Result<RaExpr> {
    Ok(match expr {
        RaExpr::Select { input, condition } => {
            let new_input = prune_null_checks(input, catalog)?;
            let schema = output_schema(&new_input, catalog).map_err(PlanError::Algebra)?;
            let condition = simplify_nullability(condition, &schema);
            new_input.select(condition)
        }
        RaExpr::Join { left, right, condition } => {
            let l = prune_null_checks(left, catalog)?;
            let r = prune_null_checks(right, catalog)?;
            let schema = output_schema(&l, catalog)
                .map_err(PlanError::Algebra)?
                .concat(&output_schema(&r, catalog).map_err(PlanError::Algebra)?);
            let condition = simplify_nullability(condition, &schema);
            l.join(r, condition)
        }
        RaExpr::SemiJoin { left, right, condition } => {
            let l = prune_null_checks(left, catalog)?;
            let r = prune_null_checks(right, catalog)?;
            let schema = output_schema(&l, catalog)
                .map_err(PlanError::Algebra)?
                .concat(&output_schema(&r, catalog).map_err(PlanError::Algebra)?);
            let condition = simplify_nullability(condition, &schema);
            l.semi_join(r, condition)
        }
        RaExpr::AntiJoin { left, right, condition } => {
            let l = prune_null_checks(left, catalog)?;
            let r = prune_null_checks(right, catalog)?;
            let schema = output_schema(&l, catalog)
                .map_err(PlanError::Algebra)?
                .concat(&output_schema(&r, catalog).map_err(PlanError::Algebra)?);
            let condition = simplify_nullability(condition, &schema);
            l.anti_join(r, condition)
        }
        other => other.map_children(&mut |c| prune_null_checks(c, catalog))?,
    })
}

/// Rebuild a condition replacing null-checks on non-nullable columns with
/// Boolean constants and re-simplifying connectives.
pub fn simplify_nullability(condition: &Condition, schema: &Schema) -> Condition {
    match condition {
        Condition::IsNull(op) => {
            if let Some(col) = op.as_col() {
                if let Ok(pos) = schema.position_of(col) {
                    if !schema.attr(pos).nullable {
                        return Condition::False;
                    }
                }
            }
            condition.clone()
        }
        Condition::IsNotNull(op) => {
            if let Some(col) = op.as_col() {
                if let Ok(pos) = schema.position_of(col) {
                    if !schema.attr(pos).nullable {
                        return Condition::True;
                    }
                }
            }
            condition.clone()
        }
        Condition::And(a, b) => {
            simplify_nullability(a, schema).and(simplify_nullability(b, schema))
        }
        Condition::Or(a, b) => simplify_nullability(a, schema).or(simplify_nullability(b, schema)),
        Condition::Not(inner) => simplify_nullability(inner, schema).not(),
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use certus_algebra::builder::{eq, is_null};
    use certus_data::{Attribute, Database, Schema, TableDef, ValueType};

    fn keyed_db() -> Database {
        let mut db = Database::new();
        let schema = Schema::new(vec![
            Attribute::not_null("k", ValueType::Int),
            Attribute::new("v", ValueType::Int),
        ]);
        db.create_table(TableDef::new("t", schema).with_key(&["k"])).unwrap();
        db
    }

    #[test]
    fn null_checks_on_nonnullable_columns_fold() {
        let db = keyed_db();
        let q = RaExpr::relation("t").select(is_null("k").or(eq("k", "v")));
        let out = prune_null_checks(&q, &db).unwrap();
        match out {
            RaExpr::Select { condition, .. } => assert_eq!(condition, eq("k", "v")),
            other => panic!("expected Select, got {other}"),
        }
        // Nullable columns are untouched.
        let q = RaExpr::relation("t").select(is_null("v"));
        let out = prune_null_checks(&q, &db).unwrap();
        assert!(matches!(out, RaExpr::Select { ref condition, .. } if *condition == is_null("v")));
    }

    #[test]
    fn pruning_is_idempotent() {
        let db = keyed_db();
        let q = RaExpr::relation("t")
            .anti_join(RaExpr::relation("t").rename(&["k2", "v2"]), eq("k", "k2").or(is_null("k")));
        let once = prune_null_checks(&q, &db).unwrap();
        let twice = prune_null_checks(&once, &db).unwrap();
        assert_eq!(once, twice);
    }
}
