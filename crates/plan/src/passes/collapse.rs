//! Projection and distinct collapsing.
//!
//! * `π_c2(π_c1(e)) → π_{c2∘c1}(e)` — adjacent projections compose (both
//!   deduplicate under set semantics, so the composition is exact);
//! * an identity projection (all columns, original names, original order)
//!   becomes a plain [`RaExpr::Distinct`] — it only deduplicates;
//! * `δ(δ(e)) → δ(e)`, `δ(π(e)) → π(e)` and `π(δ(e)) → π(e)` — projections
//!   and set operations already deduplicate;
//! * `δ(e) → e` when `e` is itself duplicate-free by construction (set
//!   operations, projections, distinct).

use crate::pass::{Pass, PassContext, PlanOptions};
use crate::{PlanError, Result};
use certus_algebra::expr::{ProjCol, RaExpr};
use certus_algebra::schema_infer::{output_schema, Catalog};

/// The collapsing pass.
pub struct CollapsePass;

impl Pass for CollapsePass {
    fn name(&self) -> &'static str {
        "collapse-projections"
    }

    fn enabled(&self, options: &PlanOptions) -> bool {
        options.collapse
    }

    fn run(&self, expr: &RaExpr, ctx: &PassContext<'_>) -> Result<RaExpr> {
        collapse(expr, ctx.catalog)
    }
}

/// Whether an operator's output is duplicate-free by construction.
fn dedups(expr: &RaExpr) -> bool {
    matches!(
        expr,
        RaExpr::Project { .. }
            | RaExpr::Distinct { .. }
            | RaExpr::Union { .. }
            | RaExpr::Intersect { .. }
            | RaExpr::Difference { .. }
            | RaExpr::Division { .. }
            | RaExpr::Aggregate { .. }
    )
}

/// Collapse redundant projections and distincts everywhere.
pub fn collapse(expr: &RaExpr, catalog: &dyn Catalog) -> Result<RaExpr> {
    expr.transform_up(&mut |node| {
        Ok(match node {
            RaExpr::Distinct { input } => {
                if dedups(&input) {
                    *input
                } else {
                    input.distinct()
                }
            }
            RaExpr::Project { input, columns } => match *input {
                // Compose adjacent projections.
                RaExpr::Project { input: inner, columns: inner_cols } => {
                    match compose(&columns, &inner_cols) {
                        Some(composed) => inner.project_cols(composed),
                        None => inner.project_cols(inner_cols).project_cols(columns),
                    }
                }
                // A projection over a distinct dedups on its own.
                RaExpr::Distinct { input: inner } => inner.project_cols(columns),
                inner => {
                    // Identity projection → Distinct (it only deduplicates).
                    let schema = output_schema(&inner, catalog).map_err(PlanError::Algebra)?;
                    let identity = columns.len() == schema.arity()
                        && columns
                            .iter()
                            .enumerate()
                            .all(|(i, pc)| pc.alias.is_none() && pc.column == schema.attr(i).name);
                    if identity {
                        if dedups(&inner) {
                            inner
                        } else {
                            inner.distinct()
                        }
                    } else {
                        inner.project_cols(columns)
                    }
                }
            },
            other => other,
        })
    })
}

/// Compose `outer ∘ inner`: each outer column must name an output column of
/// the inner projection. Returns `None` when a reference does not resolve
/// (malformed input — left untouched for the validator to report).
fn compose(outer: &[ProjCol], inner: &[ProjCol]) -> Option<Vec<ProjCol>> {
    outer
        .iter()
        .map(|o| {
            inner.iter().find(|i| i.output_name() == o.column).map(|i| ProjCol {
                column: i.column.clone(),
                alias: Some(o.output_name().to_string()),
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use certus_algebra::builder::eq;
    use certus_algebra::eval::eval;
    use certus_algebra::NullSemantics;
    use certus_data::builder::rel;
    use certus_data::{Database, Value};

    fn db() -> Database {
        let mut db = Database::new();
        db.insert_relation(
            "r",
            rel(
                &["a", "b"],
                vec![
                    vec![Value::Int(1), Value::Int(10)],
                    vec![Value::Int(1), Value::Int(10)],
                    vec![Value::Int(2), Value::Int(20)],
                ],
            ),
        );
        db
    }

    fn assert_equivalent(before: &RaExpr, after: &RaExpr, db: &Database) {
        let a = eval(before, db, NullSemantics::Sql).unwrap().sorted();
        let b = eval(after, db, NullSemantics::Sql).unwrap().sorted();
        assert_eq!(a.tuples(), b.tuples(), "{before} vs {after}");
    }

    #[test]
    fn adjacent_projections_compose() {
        let db = db();
        let q = RaExpr::relation("r")
            .project_cols(vec![ProjCol::aliased("a", "x"), ProjCol::named("b")])
            .project_cols(vec![ProjCol::aliased("x", "y")]);
        let out = collapse(&q, &db).unwrap();
        match &out {
            RaExpr::Project { input, columns } => {
                assert!(matches!(**input, RaExpr::Relation { .. }));
                assert_eq!(columns.len(), 1);
                assert_eq!(columns[0].column, "a");
                assert_eq!(columns[0].output_name(), "y");
            }
            other => panic!("expected one Project, got {other}"),
        }
        assert_equivalent(&q, &out, &db);
    }

    #[test]
    fn identity_projection_becomes_distinct() {
        let db = db();
        let q = RaExpr::relation("r").project(&["a", "b"]);
        let out = collapse(&q, &db).unwrap();
        assert!(matches!(out, RaExpr::Distinct { .. }), "{out}");
        assert_equivalent(&q, &out, &db);
        // Non-identity projections are kept.
        let keep = RaExpr::relation("r").project(&["b", "a"]);
        assert_eq!(collapse(&keep, &db).unwrap(), keep);
    }

    #[test]
    fn distinct_chains_collapse() {
        let db = db();
        let q = RaExpr::relation("r").distinct().distinct();
        let out = collapse(&q, &db).unwrap();
        assert_eq!(out, RaExpr::relation("r").distinct());
        assert_equivalent(&q, &out, &db);

        let q = RaExpr::relation("r").project(&["a"]).distinct();
        let out = collapse(&q, &db).unwrap();
        assert_eq!(out, RaExpr::relation("r").project(&["a"]));
        assert_equivalent(&q, &out, &db);

        let q = RaExpr::relation("r").distinct().project(&["a"]);
        let out = collapse(&q, &db).unwrap();
        assert_eq!(out, RaExpr::relation("r").project(&["a"]));
        assert_equivalent(&q, &out, &db);
    }

    #[test]
    fn distinct_over_set_operations_collapses() {
        let db = db();
        let q = RaExpr::relation("r").union(RaExpr::relation("r")).distinct();
        let out = collapse(&q, &db).unwrap();
        assert!(matches!(out, RaExpr::Union { .. }));
        assert_equivalent(&q, &out, &db);
    }

    #[test]
    fn collapse_is_idempotent_and_preserves_plain_queries() {
        let db = db();
        let plain = RaExpr::relation("r").select(eq("a", "b"));
        assert_eq!(collapse(&plain, &db).unwrap(), plain);
        let q = RaExpr::relation("r").project(&["a", "b"]).project(&["a"]).distinct();
        let once = collapse(&q, &db).unwrap();
        let twice = collapse(&once, &db).unwrap();
        assert_eq!(once, twice);
        assert_equivalent(&q, &once, &db);
    }
}
