//! The key-based simplification of Section 7: `R ⋉̸⇑ S → R − S` whenever `R`
//! is a base relation with a declared primary key and `S` is (structurally
//! guaranteed to be) a subset of `R`. With a key, two distinct tuples of `R`
//! can never unify, so "unifies with no tuple of S ⊆ R" collapses to plain
//! set difference — which the engine evaluates with a hash table.

use crate::pass::{Pass, PassContext, PlanOptions};
use crate::Result;
use certus_algebra::expr::RaExpr;
use certus_algebra::schema_infer::Catalog;
use std::convert::Infallible;

/// The key-based anti-join simplification pass.
pub struct KeyAntiJoinPass;

impl Pass for KeyAntiJoinPass {
    fn name(&self) -> &'static str {
        "key-antijoin"
    }

    fn enabled(&self, options: &PlanOptions) -> bool {
        options.key_simplify
    }

    fn run(&self, expr: &RaExpr, ctx: &PassContext<'_>) -> Result<RaExpr> {
        Ok(simplify_key_antijoin(expr, ctx.catalog))
    }
}

/// Replace `R ⋉̸⇑ S` by `R − S` when `R` is a keyed base relation and `S` is
/// structurally contained in `R`.
pub fn simplify_key_antijoin(expr: &RaExpr, catalog: &dyn Catalog) -> RaExpr {
    match expr {
        RaExpr::UnifyAntiSemiJoin { left, right } => {
            let left = simplify_key_antijoin(left, catalog);
            let right = simplify_key_antijoin(right, catalog);
            let has_key = match &left {
                RaExpr::Relation { name, .. } => !catalog.table_key(name).is_empty(),
                _ => false,
            };
            if has_key && contained_in(&right, &left) {
                left.difference(right)
            } else {
                left.unify_anti_join(right)
            }
        }
        other => other
            .map_children(&mut |c| Ok::<RaExpr, Infallible>(simplify_key_antijoin(c, catalog)))
            .expect("infallible"),
    }
}

/// Conservative structural containment check: `sub ⊆ sup` holds when `sub` is
/// built from `sup` by operations that only remove tuples (selections,
/// semijoins, anti-joins, intersections, differences, distinct).
pub fn contained_in(sub: &RaExpr, sup: &RaExpr) -> bool {
    if sub == sup {
        return true;
    }
    match sub {
        RaExpr::Select { input, .. } | RaExpr::Distinct { input } => contained_in(input, sup),
        RaExpr::SemiJoin { left, .. }
        | RaExpr::AntiJoin { left, .. }
        | RaExpr::UnifySemiJoin { left, .. }
        | RaExpr::UnifyAntiSemiJoin { left, .. }
        | RaExpr::Difference { left, .. } => contained_in(left, sup),
        RaExpr::Intersect { left, right } => contained_in(left, sup) || contained_in(right, sup),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use certus_algebra::builder::eq;
    use certus_data::{Attribute, Database, Schema, TableDef, ValueType};

    fn keyed_db() -> Database {
        let mut db = Database::new();
        let keyed = Schema::new(vec![
            Attribute::not_null("k", ValueType::Int),
            Attribute::new("v", ValueType::Int),
        ]);
        db.create_table(TableDef::new("keyed", keyed).with_key(&["k"])).unwrap();
        let plain = Schema::new(vec![
            Attribute::new("x", ValueType::Int),
            Attribute::new("y", ValueType::Int),
        ]);
        db.create_table(TableDef::new("plain", plain)).unwrap();
        db
    }

    #[test]
    fn keyed_contained_antijoin_becomes_difference() {
        let db = keyed_db();
        let sub = RaExpr::relation("keyed").select(eq("k", "v"));
        let q = RaExpr::relation("keyed").unify_anti_join(sub);
        assert!(matches!(simplify_key_antijoin(&q, &db), RaExpr::Difference { .. }));
    }

    #[test]
    fn no_key_or_no_containment_is_a_no_op() {
        let db = keyed_db();
        let no_key = RaExpr::relation("plain")
            .unify_anti_join(RaExpr::relation("plain").select(eq("x", "y")));
        assert_eq!(simplify_key_antijoin(&no_key, &db), no_key);
        let unrelated = RaExpr::relation("keyed").unify_anti_join(RaExpr::relation("plain"));
        assert_eq!(simplify_key_antijoin(&unrelated, &db), unrelated);
    }

    #[test]
    fn containment_check_covers_tuple_removing_operators() {
        let keyed = RaExpr::relation("keyed");
        let filtered = keyed.clone().select(eq("k", "v")).distinct();
        assert!(contained_in(&filtered, &keyed));
        let semi = keyed.clone().semi_join(RaExpr::relation("plain"), eq("k", "x"));
        assert!(contained_in(&semi, &keyed));
        let inter = RaExpr::relation("plain").intersect(keyed.clone());
        assert!(contained_in(&inter, &keyed));
        assert!(!contained_in(&RaExpr::relation("plain"), &keyed));
    }

    #[test]
    fn simplification_is_idempotent() {
        let db = keyed_db();
        let q = RaExpr::relation("keyed")
            .unify_anti_join(RaExpr::relation("keyed").select(eq("k", "v")));
        let once = simplify_key_antijoin(&q, &db);
        assert_eq!(simplify_key_antijoin(&once, &db), once);
    }
}
