//! Constant and condition folding.
//!
//! * Comparisons between two non-null constants are evaluated at plan time
//!   (their truth value is the same under SQL 3VL and naive semantics, so
//!   folding is strongly semantics-preserving).
//! * `IS [NOT] NULL` over a constant operand folds to a Boolean constant.
//! * Boolean connectives re-simplify (`TRUE AND c → c`, `FALSE OR c → c`, …)
//!   via the Kleene-safe [`Condition::and`] / [`Condition::or`] / `not`.
//! * `σ_TRUE(e) → e` and `σ_FALSE(e) →` an empty literal relation with the
//!   input's schema; a join whose folded condition is `FALSE` likewise
//!   becomes an empty literal relation.

use crate::pass::{Pass, PassContext, PlanOptions};
use crate::{PlanError, Result};
use certus_algebra::condition::{Condition, Operand};
use certus_algebra::expr::RaExpr;
use certus_algebra::schema_infer::{output_schema, Catalog};
use certus_data::compare::sql_cmp;
use certus_data::Truth;

/// The folding pass.
pub struct FoldPass;

impl Pass for FoldPass {
    fn name(&self) -> &'static str {
        "fold"
    }

    fn enabled(&self, options: &PlanOptions) -> bool {
        options.fold
    }

    fn run(&self, expr: &RaExpr, ctx: &PassContext<'_>) -> Result<RaExpr> {
        fold(expr, ctx.catalog)
    }
}

/// Fold constants and trivial conditions everywhere in the expression.
pub fn fold(expr: &RaExpr, catalog: &dyn Catalog) -> Result<RaExpr> {
    expr.transform_up(&mut |node| {
        Ok(match node {
            RaExpr::Select { input, condition } => match fold_condition(&condition) {
                Condition::True => *input,
                Condition::False => empty_like(&input, catalog)?,
                folded => input.select(folded),
            },
            RaExpr::Join { left, right, condition } => match fold_condition(&condition) {
                Condition::False => {
                    let schema = output_schema(&left, catalog)
                        .map_err(PlanError::Algebra)?
                        .concat(&output_schema(&right, catalog).map_err(PlanError::Algebra)?);
                    RaExpr::Values { schema, rows: Vec::new() }
                }
                folded => left.join(*right, folded),
            },
            RaExpr::SemiJoin { left, right, condition } => {
                match fold_condition(&condition) {
                    // No tuple can ever match: the semijoin is empty.
                    Condition::False => empty_like(&left, catalog)?,
                    folded => left.semi_join(*right, folded),
                }
            }
            RaExpr::AntiJoin { left, right, condition } => {
                match fold_condition(&condition) {
                    // No tuple can ever match: every left tuple survives.
                    Condition::False => *left,
                    folded => left.anti_join(*right, folded),
                }
            }
            other => other,
        })
    })
}

fn empty_like(input: &RaExpr, catalog: &dyn Catalog) -> Result<RaExpr> {
    let schema = output_schema(input, catalog).map_err(PlanError::Algebra)?;
    Ok(RaExpr::Values { schema, rows: Vec::new() })
}

/// Fold a condition bottom-up. Only rewrites whose truth value is identical
/// under SQL and naive semantics are applied; in particular, comparisons are
/// folded only when **both** operands are non-null constants.
pub fn fold_condition(condition: &Condition) -> Condition {
    match condition {
        Condition::Cmp { left, op, right } => {
            if let (Operand::Const(a), Operand::Const(b)) = (left, right) {
                if a.is_const() && b.is_const() {
                    // Non-null constants: 3VL and naive evaluation agree.
                    return match sql_cmp(a, *op, b) {
                        Truth::True => Condition::True,
                        Truth::False => Condition::False,
                        Truth::Unknown => condition.clone(),
                    };
                }
            }
            condition.clone()
        }
        Condition::IsNull(Operand::Const(v)) => {
            if v.is_null() {
                Condition::True
            } else {
                Condition::False
            }
        }
        Condition::IsNotNull(Operand::Const(v)) => {
            if v.is_null() {
                Condition::False
            } else {
                Condition::True
            }
        }
        Condition::And(a, b) => fold_condition(a).and(fold_condition(b)),
        Condition::Or(a, b) => fold_condition(a).or(fold_condition(b)),
        Condition::Not(inner) => fold_condition(inner).not(),
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use certus_algebra::builder::{eq, eq_const};
    use certus_data::builder::rel;
    use certus_data::{Database, Value};

    fn db() -> Database {
        let mut db = Database::new();
        db.insert_relation("r", rel(&["a", "b"], vec![vec![Value::Int(1), Value::Int(2)]]));
        db.insert_relation("s", rel(&["c", "d"], vec![vec![Value::Int(1), Value::Int(2)]]));
        db
    }

    fn lit(v: i64) -> Operand {
        Operand::Const(Value::Int(v))
    }

    #[test]
    fn const_comparisons_fold_to_booleans() {
        let t = Condition::Cmp { left: lit(1), op: certus_data::compare::CmpOp::Lt, right: lit(2) };
        assert_eq!(fold_condition(&t), Condition::True);
        let f = Condition::Cmp { left: lit(3), op: certus_data::compare::CmpOp::Eq, right: lit(2) };
        assert_eq!(fold_condition(&f), Condition::False);
        // Column comparisons are untouched.
        assert_eq!(fold_condition(&eq("a", "b")), eq("a", "b"));
    }

    #[test]
    fn null_checks_on_constants_fold() {
        assert_eq!(fold_condition(&Condition::IsNull(lit(1))), Condition::False);
        assert_eq!(fold_condition(&Condition::IsNotNull(lit(1))), Condition::True);
        let null_op = Operand::Const(Value::fresh_null());
        assert_eq!(fold_condition(&Condition::IsNull(null_op)), Condition::True);
    }

    #[test]
    fn connectives_resimplify_after_folding() {
        let c = Condition::Cmp { left: lit(1), op: certus_data::compare::CmpOp::Eq, right: lit(1) }
            .and(eq("a", "b"));
        assert_eq!(fold_condition(&c), eq("a", "b"));
        let c = Condition::Cmp { left: lit(1), op: certus_data::compare::CmpOp::Eq, right: lit(2) }
            .or(eq("a", "b"));
        assert_eq!(fold_condition(&c), eq("a", "b"));
        let c = Condition::Not(Box::new(Condition::Cmp {
            left: lit(1),
            op: certus_data::compare::CmpOp::Eq,
            right: lit(1),
        }));
        assert_eq!(fold_condition(&c), Condition::False);
    }

    #[test]
    fn true_selection_is_dropped_and_false_selection_empties() {
        let db = db();
        let q = RaExpr::relation("r").select(Condition::True);
        assert_eq!(fold(&q, &db).unwrap(), RaExpr::relation("r"));

        let q = RaExpr::relation("r").select(Condition::False);
        match fold(&q, &db).unwrap() {
            RaExpr::Values { schema, rows } => {
                assert_eq!(schema.names(), vec!["a", "b"]);
                assert!(rows.is_empty());
            }
            other => panic!("expected empty Values, got {other}"),
        }
    }

    #[test]
    fn false_join_and_semijoins_simplify() {
        let db = db();
        let f = Condition::Cmp { left: lit(1), op: certus_data::compare::CmpOp::Eq, right: lit(2) };
        let join = RaExpr::relation("r").join(RaExpr::relation("s"), f.clone());
        assert!(
            matches!(fold(&join, &db).unwrap(), RaExpr::Values { ref rows, .. } if rows.is_empty())
        );
        let semi = RaExpr::relation("r").semi_join(RaExpr::relation("s"), f.clone());
        assert!(
            matches!(fold(&semi, &db).unwrap(), RaExpr::Values { ref rows, .. } if rows.is_empty())
        );
        // An anti-join against an impossible condition keeps all left tuples.
        let anti = RaExpr::relation("r").anti_join(RaExpr::relation("s"), f);
        assert_eq!(fold(&anti, &db).unwrap(), RaExpr::relation("r"));
    }

    #[test]
    fn fold_is_a_fixpoint_on_clean_queries() {
        let db = db();
        let q = RaExpr::relation("r")
            .join(RaExpr::relation("s"), eq("a", "c"))
            .select(eq_const("b", 2i64));
        let once = fold(&q, &db).unwrap();
        assert_eq!(once, q, "nothing to fold");
        assert_eq!(fold(&once, &db).unwrap(), once);
    }
}
