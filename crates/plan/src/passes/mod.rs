//! The individual rewrite passes.
//!
//! Each module exposes a [`crate::pass::Pass`] implementation plus the
//! underlying free function, so callers can run a rewrite outside the
//! pipeline (as `certus-core`'s compatibility layer does):
//!
//! * [`fold`] — constant / condition folding and trivial-selection removal;
//! * [`pushdown`] — predicate pushdown towards the scans;
//! * [`collapse`] — projection / distinct collapsing;
//! * [`null_prune`] — nullability-aware `IS [NOT] NULL` pruning (paper,
//!   Corollary 1);
//! * [`key_antijoin`] — the key-based simplification `R ⋉̸⇑ S → R − S`
//!   (paper, Section 7);
//! * [`or_split`] — OR-splitting of anti-join and join conditions (paper,
//!   Section 7).

pub mod collapse;
pub mod fold;
pub mod key_antijoin;
pub mod null_prune;
pub mod or_split;
pub mod pushdown;
