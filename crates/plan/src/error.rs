//! Error type for the planning crate.

use certus_algebra::AlgebraError;
use certus_data::DataError;
use std::fmt;

/// Errors produced while rewriting or planning queries.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanError {
    /// An error from the algebra layer (schema inference, validation).
    Algebra(AlgebraError),
    /// An error from the data layer.
    Data(DataError),
    /// A pass produced or received an expression it cannot handle.
    Invalid(String),
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::Algebra(e) => write!(f, "{e}"),
            PlanError::Data(e) => write!(f, "{e}"),
            PlanError::Invalid(m) => write!(f, "invalid plan: {m}"),
        }
    }
}

impl std::error::Error for PlanError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PlanError::Algebra(e) => Some(e),
            PlanError::Data(e) => Some(e),
            PlanError::Invalid(_) => None,
        }
    }
}

impl From<AlgebraError> for PlanError {
    fn from(e: AlgebraError) -> Self {
        PlanError::Algebra(e)
    }
}

impl From<DataError> for PlanError {
    fn from(e: DataError) -> Self {
        PlanError::Data(e)
    }
}

/// Planning errors lower into algebra errors so the engine (whose public
/// `Result` predates the planner) can propagate them with `?`.
impl From<PlanError> for AlgebraError {
    fn from(e: PlanError) -> Self {
        match e {
            PlanError::Algebra(inner) => inner,
            PlanError::Data(inner) => AlgebraError::Data(inner),
            PlanError::Invalid(m) => AlgebraError::Malformed(m),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_and_displays_sources() {
        let e: PlanError = DataError::UnknownTable("t".into()).into();
        assert!(e.to_string().contains("unknown table"));
        assert!(std::error::Error::source(&e).is_some());
        let e: PlanError = AlgebraError::Malformed("x".into()).into();
        assert!(e.to_string().contains("malformed"));
        assert!(PlanError::Invalid("p".into()).to_string().contains("invalid plan"));
    }
}
