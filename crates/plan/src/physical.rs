//! Physical planning: turning a logical [`RaExpr`] into a [`PhysicalExpr`]
//! tree with an explicit algorithm choice per join-like node.
//!
//! Two planners are provided:
//!
//! * [`heuristic_plan`] — the statistics-free rules the engine always
//!   applied inline before this subsystem existed (hash join whenever an
//!   equi-key can be extracted, decorrelated short-circuit whenever a
//!   semijoin condition ignores the outer side, nested loops otherwise).
//!   `Engine::execute` uses it so plain execution needs no statistics.
//! * [`PhysicalPlanner`] — cost-based: consults a [`StatisticsCatalog`] and
//!   the cost model to choose hash join vs. nested loop vs. decorrelated
//!   short-circuit per node, and emits an [`ExplainPlan`] tree with per-node
//!   row/cost estimates (rendered by `examples/explain_plans.rs`).

use crate::equi::{references_schema, split_equi};
use crate::stats::StatisticsCatalog;
use crate::{PlanError, Result};
use certus_algebra::condition::Condition;
use certus_algebra::expr::{AggExpr, ProjCol, RaExpr};
use certus_algebra::schema_infer::{output_schema, Catalog};
use certus_data::Schema;
use std::fmt;

/// How an [`PhysicalExpr::Exchange`] operator redistributes its input
/// across workers.
#[derive(Debug, Clone, PartialEq)]
pub enum Partitioning {
    /// Partition by a deterministic hash of the given key columns: every
    /// tuple with the same key lands in the same partition, so a hash join
    /// can build and probe each partition independently.
    Hash {
        /// Key columns (resolved in the input schema).
        keys: Vec<String>,
        /// Number of partitions.
        partitions: usize,
    },
    /// Split the input into contiguous morsels, one per worker — used for
    /// data-parallel scans/filters and to mark union branches that may be
    /// evaluated concurrently.
    RoundRobin {
        /// Number of partitions.
        partitions: usize,
    },
}

impl Partitioning {
    /// Number of partitions this exchange produces.
    pub fn partitions(&self) -> usize {
        match self {
            Partitioning::Hash { partitions, .. } | Partitioning::RoundRobin { partitions } => {
                *partitions
            }
        }
    }
}

/// Parallelism configuration for the planners: how many worker threads the
/// executing engine has, and how many estimated rows an input must clear
/// before an exchange is worth its repartitioning cost.
///
/// With `threads == 1` (the [`Parallelism::serial`] default) the planners
/// insert no exchange operators at all, so plans — and therefore the engine's
/// execution path — degenerate to the serial ones.
#[derive(Debug, Clone, PartialEq)]
pub struct Parallelism {
    /// Worker threads available to the executor (1 = serial).
    pub threads: usize,
    /// Minimum estimated input rows before an exchange is inserted. Only
    /// consulted when statistics are available; the statistics-free heuristic
    /// planner has no row estimates and gates on `threads` alone.
    pub row_threshold: f64,
}

impl Parallelism {
    /// Default row threshold: repartitioning costs one pass over the input,
    /// so tiny inputs are not worth exchanging.
    pub const DEFAULT_ROW_THRESHOLD: f64 = 1024.0;

    /// Parallelism over the given number of worker threads.
    pub fn new(threads: usize) -> Self {
        Parallelism { threads: threads.max(1), row_threshold: Self::DEFAULT_ROW_THRESHOLD }
    }

    /// Serial planning: no exchange operators.
    pub fn serial() -> Self {
        Parallelism::new(1)
    }

    /// Whether exchanges may be inserted at all.
    pub fn enabled(&self) -> bool {
        self.threads > 1
    }

    /// Whether an input with the given estimated rows should be exchanged.
    /// `estimated` is `None` when planning without statistics.
    fn worthwhile(&self, estimated: Option<f64>) -> bool {
        self.enabled() && estimated.map(|r| r >= self.row_threshold).unwrap_or(true)
    }
}

impl Default for Parallelism {
    fn default() -> Self {
        Parallelism::serial()
    }
}

/// Algorithm choice for a theta-join (or cartesian product).
#[derive(Debug, Clone, PartialEq)]
pub enum JoinAlgo {
    /// Build a hash table on the right side over `right_keys`, probe with
    /// `left_keys`, apply `residual` to surviving pairs.
    Hash {
        /// Probe-side key columns (resolved in the left schema).
        left_keys: Vec<String>,
        /// Build-side key columns (resolved in the right schema).
        right_keys: Vec<String>,
        /// Condition part not covered by the keys.
        residual: Condition,
    },
    /// Compare every pair of tuples.
    NestedLoop,
}

/// Algorithm choice for a (anti-)semijoin.
#[derive(Debug, Clone, PartialEq)]
pub enum SemiAlgo {
    /// The condition never references the outer side: evaluate the inner
    /// side once; the whole node short-circuits to either the left input or
    /// the empty relation (the `NOT EXISTS` rescue of query Q2).
    Decorrelated,
    /// Hash (anti-)semijoin with residual predicate.
    Hash {
        /// Probe-side key columns (resolved in the left schema).
        left_keys: Vec<String>,
        /// Build-side key columns (resolved in the right schema).
        right_keys: Vec<String>,
        /// Condition part not covered by the keys.
        residual: Condition,
    },
    /// Compare every pair of tuples.
    NestedLoop,
}

/// A physical plan: the logical tree annotated with per-node algorithm
/// choices. The engine executes this without re-deriving any strategy.
///
/// Per-node schemas are not stored here: the engine's one-time compiler
/// (`certus-engine`'s `CompiledPlan`) derives every node's output schema
/// bottom-up when it resolves conditions and column lists to positions, so
/// schema inference runs once per plan rather than once per operator per
/// execution.
#[derive(Debug, Clone, PartialEq)]
pub enum PhysicalExpr {
    /// A scan of a base relation or literal relation (kept as the logical
    /// node — the reference evaluator materialises it).
    Source(RaExpr),
    /// Selection over a materialised input.
    Filter {
        /// Input plan.
        input: Box<PhysicalExpr>,
        /// Selection condition.
        condition: Condition,
    },
    /// Projection (deduplicating, set semantics).
    Project {
        /// Input plan.
        input: Box<PhysicalExpr>,
        /// Output columns.
        columns: Vec<ProjCol>,
    },
    /// Theta-join (products are joins with condition `TRUE`).
    Join {
        /// Left input.
        left: Box<PhysicalExpr>,
        /// Right input.
        right: Box<PhysicalExpr>,
        /// Full join condition (used verbatim by nested loops).
        condition: Condition,
        /// Chosen algorithm.
        algo: JoinAlgo,
    },
    /// Semijoin (`anti == false`) or anti-semijoin (`anti == true`).
    Semi {
        /// Left (preserved) input.
        left: Box<PhysicalExpr>,
        /// Right (probe) input.
        right: Box<PhysicalExpr>,
        /// Full matching condition.
        condition: Condition,
        /// Chosen algorithm.
        algo: SemiAlgo,
        /// Whether this is an anti-semijoin.
        anti: bool,
        /// Schema of the left input (needed to emit an empty result without
        /// executing the left side when a decorrelated check short-circuits).
        left_schema: Schema,
    },
    /// Set union.
    Union {
        /// Left input.
        left: Box<PhysicalExpr>,
        /// Right input.
        right: Box<PhysicalExpr>,
    },
    /// Set intersection.
    Intersect {
        /// Left input.
        left: Box<PhysicalExpr>,
        /// Right input.
        right: Box<PhysicalExpr>,
    },
    /// Set difference.
    Difference {
        /// Left input.
        left: Box<PhysicalExpr>,
        /// Right input.
        right: Box<PhysicalExpr>,
    },
    /// Unification (anti-)semijoin of Definition 4.
    UnifySemi {
        /// Left (preserved) input.
        left: Box<PhysicalExpr>,
        /// Right input.
        right: Box<PhysicalExpr>,
        /// Whether this is the anti variant.
        anti: bool,
    },
    /// Relational division.
    Division {
        /// Dividend.
        left: Box<PhysicalExpr>,
        /// Divisor.
        right: Box<PhysicalExpr>,
    },
    /// Column renaming.
    Rename {
        /// Input plan.
        input: Box<PhysicalExpr>,
        /// New column names.
        columns: Vec<String>,
    },
    /// Duplicate elimination.
    Distinct {
        /// Input plan.
        input: Box<PhysicalExpr>,
    },
    /// Grouping and aggregation.
    Aggregate {
        /// Input plan.
        input: Box<PhysicalExpr>,
        /// Grouping columns.
        group_by: Vec<String>,
        /// Aggregates to compute.
        aggregates: Vec<AggExpr>,
    },
    /// Exchange (repartition) operator: marks where the executor may split
    /// its input across worker threads. Semantically the identity — a serial
    /// executor (or one with a single thread) just passes the input through.
    Exchange {
        /// Input plan.
        input: Box<PhysicalExpr>,
        /// How the input is redistributed.
        partitioning: Partitioning,
    },
}

impl PhysicalExpr {
    /// Number of nodes in the physical plan.
    pub fn size(&self) -> usize {
        1 + self.children().iter().map(|c| c.size()).sum::<usize>()
    }

    /// Immediate children.
    pub fn children(&self) -> Vec<&PhysicalExpr> {
        match self {
            PhysicalExpr::Source(_) => vec![],
            PhysicalExpr::Filter { input, .. }
            | PhysicalExpr::Project { input, .. }
            | PhysicalExpr::Rename { input, .. }
            | PhysicalExpr::Distinct { input }
            | PhysicalExpr::Aggregate { input, .. }
            | PhysicalExpr::Exchange { input, .. } => vec![input],
            PhysicalExpr::Join { left, right, .. }
            | PhysicalExpr::Semi { left, right, .. }
            | PhysicalExpr::Union { left, right }
            | PhysicalExpr::Intersect { left, right }
            | PhysicalExpr::Difference { left, right }
            | PhysicalExpr::UnifySemi { left, right, .. }
            | PhysicalExpr::Division { left, right } => vec![left, right],
        }
    }

    /// Short operator label for explain output.
    pub fn label(&self) -> String {
        match self {
            PhysicalExpr::Source(RaExpr::Relation { name, .. }) => format!("Scan {name}"),
            PhysicalExpr::Source(_) => "Values".to_string(),
            PhysicalExpr::Filter { condition, .. } => format!("Filter [{condition}]"),
            PhysicalExpr::Project { .. } => "Project".to_string(),
            PhysicalExpr::Join { condition, algo, .. } => match algo {
                JoinAlgo::Hash { left_keys, right_keys, .. } => {
                    format!("HashJoin [{}]", key_pairs(left_keys, right_keys))
                }
                JoinAlgo::NestedLoop => format!("NestedLoopJoin [{condition}]"),
            },
            PhysicalExpr::Semi { condition, algo, anti, .. } => {
                let kind = if *anti { "Anti" } else { "Semi" };
                match algo {
                    SemiAlgo::Decorrelated => format!("Decorrelated{kind}Join [{condition}]"),
                    SemiAlgo::Hash { left_keys, right_keys, .. } => {
                        format!("Hash{kind}Join [{}]", key_pairs(left_keys, right_keys))
                    }
                    SemiAlgo::NestedLoop => format!("NestedLoop{kind}Join [{condition}]"),
                }
            }
            PhysicalExpr::Union { .. } => "Union".to_string(),
            PhysicalExpr::Intersect { .. } => "Intersect".to_string(),
            PhysicalExpr::Difference { .. } => "Difference".to_string(),
            PhysicalExpr::UnifySemi { anti, .. } => {
                if *anti {
                    "UnifyAntiSemiJoin".to_string()
                } else {
                    "UnifySemiJoin".to_string()
                }
            }
            PhysicalExpr::Division { .. } => "Division".to_string(),
            PhysicalExpr::Rename { .. } => "Rename".to_string(),
            PhysicalExpr::Distinct { .. } => "Distinct".to_string(),
            PhysicalExpr::Aggregate { .. } => "Aggregate".to_string(),
            PhysicalExpr::Exchange { partitioning, .. } => match partitioning {
                Partitioning::Hash { keys, partitions } => {
                    format!("Exchange hash({}) x{partitions}", keys.join(", "))
                }
                Partitioning::RoundRobin { partitions } => {
                    format!("Exchange round-robin x{partitions}")
                }
            },
        }
    }

    /// Whether the plan contains any exchange operator (i.e. whether the
    /// executor is allowed to parallelise anything).
    pub fn has_exchange(&self) -> bool {
        matches!(self, PhysicalExpr::Exchange { .. })
            || self.children().iter().any(|c| c.has_exchange())
    }
}

fn key_pairs(left: &[String], right: &[String]) -> String {
    left.iter().zip(right).map(|(l, r)| format!("{l} = {r}")).collect::<Vec<_>>().join(" AND ")
}

/// An `EXPLAIN`-style tree: one node per physical operator with row and cost
/// estimates.
#[derive(Debug, Clone, PartialEq)]
pub struct ExplainPlan {
    /// Operator label (includes the chosen algorithm).
    pub op: String,
    /// Estimated output rows.
    pub rows: f64,
    /// Estimated cumulative cost (abstract row operations).
    pub cost: f64,
    /// Child nodes.
    pub children: Vec<ExplainPlan>,
}

impl ExplainPlan {
    fn render(&self, depth: usize, out: &mut String) {
        out.push_str(&"  ".repeat(depth));
        out.push_str(&format!("{}  (rows≈{:.0}, cost≈{:.0})\n", self.op, self.rows, self.cost));
        for c in &self.children {
            c.render(depth + 1, out);
        }
    }

    /// Total number of nodes.
    pub fn size(&self) -> usize {
        1 + self.children.iter().map(ExplainPlan::size).sum::<usize>()
    }

    /// Render the estimate tree as JSON (the static half of what
    /// `Session::explain_analyze` produces; the session zips in actuals).
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"op\": \"{}\", \"rows_est\": {}, \"cost_est\": {}",
            certus_obs::json::escape(&self.op),
            certus_obs::json::number(self.rows),
            certus_obs::json::number(self.cost)
        );
        if !self.children.is_empty() {
            out.push_str(", \"children\": [");
            for (i, c) in self.children.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&c.to_json());
            }
            out.push(']');
        }
        out.push('}');
        out
    }
}

impl fmt::Display for ExplainPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.render(0, &mut out);
        f.write_str(&out)
    }
}

/// The statistics-free planner: hash wherever an equi-key exists,
/// decorrelated short-circuit wherever a semijoin ignores its outer side,
/// nested loops otherwise. These are exactly the choices the engine used to
/// re-derive inline on every execution.
pub fn heuristic_plan(expr: &RaExpr, catalog: &dyn Catalog) -> Result<PhysicalExpr> {
    heuristic_plan_with(expr, catalog, &Parallelism::serial())
}

/// The heuristic planner with a parallelism configuration: same algorithm
/// choices as [`heuristic_plan`], plus exchange operators above hash-join
/// builds and union branches when more than one worker thread is available.
/// (There are no statistics here, so the row threshold cannot be consulted —
/// every eligible site is exchanged.)
pub fn heuristic_plan_with(
    expr: &RaExpr,
    catalog: &dyn Catalog,
    parallelism: &Parallelism,
) -> Result<PhysicalExpr> {
    plan_rec(expr, catalog, None, parallelism).map(|p| p.phys)
}

/// A cost-based physical planner over a statistics catalog.
pub struct PhysicalPlanner<'a> {
    catalog: &'a dyn Catalog,
    stats: &'a StatisticsCatalog,
    parallelism: Parallelism,
}

impl<'a> PhysicalPlanner<'a> {
    /// A serial planner over the given catalog and statistics.
    pub fn new(catalog: &'a dyn Catalog, stats: &'a StatisticsCatalog) -> Self {
        PhysicalPlanner::with_parallelism(catalog, stats, Parallelism::serial())
    }

    /// A planner that inserts exchange operators wherever the estimated rows
    /// clear the parallelism configuration's threshold.
    pub fn with_parallelism(
        catalog: &'a dyn Catalog,
        stats: &'a StatisticsCatalog,
        parallelism: Parallelism,
    ) -> Self {
        PhysicalPlanner { catalog, stats, parallelism }
    }

    /// Produce the physical plan for an expression.
    pub fn plan(&self, expr: &RaExpr) -> Result<PhysicalExpr> {
        plan_rec(expr, self.catalog, Some(self.stats), &self.parallelism).map(|p| p.phys)
    }

    /// Produce the physical plan together with its explain tree.
    pub fn plan_explained(&self, expr: &RaExpr) -> Result<(PhysicalExpr, ExplainPlan)> {
        plan_rec(expr, self.catalog, Some(self.stats), &self.parallelism)
            .map(|p| (p.phys, p.explain))
    }

    /// Produce only the explain tree.
    pub fn explain(&self, expr: &RaExpr) -> Result<ExplainPlan> {
        plan_rec(expr, self.catalog, Some(self.stats), &self.parallelism).map(|p| p.explain)
    }
}

struct Planned {
    phys: PhysicalExpr,
    explain: ExplainPlan,
}

fn explained(phys: PhysicalExpr, rows: f64, cost: f64, children: Vec<ExplainPlan>) -> Planned {
    let explain = ExplainPlan { op: phys.label(), rows, cost, children };
    Planned { phys, explain }
}

/// Wrap a planned subtree in an exchange operator. Rows pass through
/// unchanged; the repartitioning cost comes from the shared cost model.
fn exchange(child: Planned, partitioning: Partitioning) -> Planned {
    let rows = child.explain.rows;
    let cost = child.explain.cost + crate::cost::exchange_cost(rows, partitioning.partitions());
    explained(
        PhysicalExpr::Exchange { input: Box::new(child.phys), partitioning },
        rows,
        cost,
        vec![child.explain],
    )
}

fn plan_rec(
    expr: &RaExpr,
    catalog: &dyn Catalog,
    stats: Option<&StatisticsCatalog>,
    par: &Parallelism,
) -> Result<Planned> {
    let empty_stats = StatisticsCatalog::empty();
    let st = stats.unwrap_or(&empty_stats);
    Ok(match expr {
        RaExpr::Relation { name, .. } => {
            let rows = st.row_count(name).unwrap_or(0) as f64;
            explained(PhysicalExpr::Source(expr.clone()), rows, rows, vec![])
        }
        RaExpr::Values { rows, .. } => {
            let n = rows.len() as f64;
            explained(PhysicalExpr::Source(expr.clone()), n, n, vec![])
        }
        RaExpr::Select { input, condition } => {
            let mut c = plan_rec(input, catalog, stats, par)?;
            let rows = c.explain.rows * crate::cost::selectivity_with(condition, st);
            // Batch-eligible filters run column-wise in the engine's
            // vectorized pipelines and charge a discounted per-row factor.
            let cpu = crate::cost::filter_cpu_factor(condition);
            let mut cost = c.explain.cost + c.explain.rows * cpu;
            // A filter over a large input is data-parallel: split it into
            // contiguous morsels, one per worker. Only worthwhile when
            // statistics prove the input large — the heuristic planner
            // (stats-free) never knows, so it never exchanges filters.
            if stats.is_some() && par.worthwhile(Some(c.explain.rows)) {
                c = exchange(c, Partitioning::RoundRobin { partitions: par.threads });
                cost = c.explain.cost + c.explain.rows * cpu;
            }
            let mut planned = explained(
                PhysicalExpr::Filter { input: Box::new(c.phys), condition: condition.clone() },
                rows,
                cost,
                vec![c.explain],
            );
            if crate::cost::batch_eligible(condition) {
                planned.explain.op.push_str(" [vec]");
            }
            planned
        }
        RaExpr::Project { input, columns } => {
            let c = plan_rec(input, catalog, stats, par)?;
            let (rows, cost) = (c.explain.rows, c.explain.cost + c.explain.rows);
            explained(
                PhysicalExpr::Project { input: Box::new(c.phys), columns: columns.clone() },
                rows,
                cost,
                vec![c.explain],
            )
        }
        RaExpr::Product { left, right } => {
            plan_join(left, right, &Condition::True, catalog, stats, par)?
        }
        RaExpr::Join { left, right, condition } => {
            plan_join(left, right, condition, catalog, stats, par)?
        }
        RaExpr::SemiJoin { left, right, condition } => {
            plan_semi(left, right, condition, false, catalog, stats, par)?
        }
        RaExpr::AntiJoin { left, right, condition } => {
            plan_semi(left, right, condition, true, catalog, stats, par)?
        }
        RaExpr::Union { left, right } => plan_setop(expr, left, right, catalog, stats, par)?,
        RaExpr::Intersect { left, right } => plan_setop(expr, left, right, catalog, stats, par)?,
        RaExpr::Difference { left, right } => plan_setop(expr, left, right, catalog, stats, par)?,
        RaExpr::UnifySemiJoin { left, right } => {
            let l = plan_rec(left, catalog, stats, par)?;
            let r = plan_rec(right, catalog, stats, par)?;
            let rows = l.explain.rows;
            let cost = l.explain.cost + r.explain.cost + l.explain.rows * r.explain.rows;
            explained(
                PhysicalExpr::UnifySemi {
                    left: Box::new(l.phys),
                    right: Box::new(r.phys),
                    anti: false,
                },
                rows,
                cost,
                vec![l.explain, r.explain],
            )
        }
        RaExpr::UnifyAntiSemiJoin { left, right } => {
            let l = plan_rec(left, catalog, stats, par)?;
            let r = plan_rec(right, catalog, stats, par)?;
            let rows = l.explain.rows;
            let cost = l.explain.cost + r.explain.cost + l.explain.rows * r.explain.rows;
            explained(
                PhysicalExpr::UnifySemi {
                    left: Box::new(l.phys),
                    right: Box::new(r.phys),
                    anti: true,
                },
                rows,
                cost,
                vec![l.explain, r.explain],
            )
        }
        RaExpr::Division { left, right } => {
            let l = plan_rec(left, catalog, stats, par)?;
            let r = plan_rec(right, catalog, stats, par)?;
            let rows = l.explain.rows;
            let cost = l.explain.cost + r.explain.cost + l.explain.rows * r.explain.rows;
            explained(
                PhysicalExpr::Division { left: Box::new(l.phys), right: Box::new(r.phys) },
                rows,
                cost,
                vec![l.explain, r.explain],
            )
        }
        RaExpr::Rename { input, columns } => {
            let c = plan_rec(input, catalog, stats, par)?;
            let (rows, cost) = (c.explain.rows, c.explain.cost + c.explain.rows);
            explained(
                PhysicalExpr::Rename { input: Box::new(c.phys), columns: columns.clone() },
                rows,
                cost,
                vec![c.explain],
            )
        }
        RaExpr::Distinct { input } => {
            let mut c = plan_rec(input, catalog, stats, par)?;
            // Duplicate elimination partitions by full-row hash in the
            // engine, so any repartitioning marker works; round-robin keeps
            // the exchange cost model identical to the filter case.
            if par.worthwhile(stats.map(|_| c.explain.rows)) {
                c = exchange(c, Partitioning::RoundRobin { partitions: par.threads });
            }
            let (rows, cost) = (c.explain.rows, c.explain.cost + c.explain.rows);
            explained(
                PhysicalExpr::Distinct { input: Box::new(c.phys) },
                rows,
                cost,
                vec![c.explain],
            )
        }
        RaExpr::Aggregate { input, group_by, aggregates } => {
            let mut c = plan_rec(input, catalog, stats, par)?;
            // Grouped aggregation hash-partitions on the group key: every
            // row of a group lands in the same partition, so partitions
            // aggregate independently. A global aggregate (no key) has a
            // single group and stays serial.
            if !group_by.is_empty() && par.worthwhile(stats.map(|_| c.explain.rows)) {
                let p = Partitioning::Hash { keys: group_by.clone(), partitions: par.threads };
                c = exchange(c, p);
            }
            let rows = crate::cost::aggregate_rows(c.explain.rows, !group_by.is_empty());
            let cost = c.explain.cost + c.explain.rows;
            explained(
                PhysicalExpr::Aggregate {
                    input: Box::new(c.phys),
                    group_by: group_by.clone(),
                    aggregates: aggregates.clone(),
                },
                rows,
                cost,
                vec![c.explain],
            )
        }
    })
}

fn plan_setop(
    expr: &RaExpr,
    left: &RaExpr,
    right: &RaExpr,
    catalog: &dyn Catalog,
    stats: Option<&StatisticsCatalog>,
    par: &Parallelism,
) -> Result<Planned> {
    let mut l = plan_rec(left, catalog, stats, par)?;
    let mut r = plan_rec(right, catalog, stats, par)?;
    let rows = crate::cost::setop_rows(l.explain.rows, r.explain.rows);
    let mut cost = l.explain.cost + r.explain.cost + l.explain.rows + r.explain.rows;
    // Mark both sides for parallel evaluation when the combined input clears
    // the threshold. Union branches are independent and run concurrently
    // (the translation's split unions — the Q⁺ arms — are the target);
    // intersect and difference hash-partition by full row in the engine, so
    // the exchange is the same pass-through repartitioning marker.
    if par.worthwhile(stats.map(|_| l.explain.rows + r.explain.rows)) {
        let p = Partitioning::RoundRobin { partitions: par.threads };
        l = exchange(l, p.clone());
        r = exchange(r, p);
        // Same merge charge as the serial branch (exchanges pass rows
        // through), so serial and parallel plans stay cost-comparable.
        cost = l.explain.cost + r.explain.cost + l.explain.rows + r.explain.rows;
    }
    let phys = match expr {
        RaExpr::Union { .. } => {
            PhysicalExpr::Union { left: Box::new(l.phys), right: Box::new(r.phys) }
        }
        RaExpr::Intersect { .. } => {
            PhysicalExpr::Intersect { left: Box::new(l.phys), right: Box::new(r.phys) }
        }
        RaExpr::Difference { .. } => {
            PhysicalExpr::Difference { left: Box::new(l.phys), right: Box::new(r.phys) }
        }
        other => {
            return Err(PlanError::Invalid(format!("plan_setop over non-set operator {other}")))
        }
    };
    explained_ok(phys, rows, cost, vec![l.explain, r.explain])
}

fn explained_ok(
    phys: PhysicalExpr,
    rows: f64,
    cost: f64,
    children: Vec<ExplainPlan>,
) -> Result<Planned> {
    Ok(explained(phys, rows, cost, children))
}

fn plan_join(
    left: &RaExpr,
    right: &RaExpr,
    condition: &Condition,
    catalog: &dyn Catalog,
    stats: Option<&StatisticsCatalog>,
    par: &Parallelism,
) -> Result<Planned> {
    let l = plan_rec(left, catalog, stats, par)?;
    let mut r = plan_rec(right, catalog, stats, par)?;
    let l_schema = output_schema(left, catalog).map_err(PlanError::Algebra)?;
    let r_schema = output_schema(right, catalog).map_err(PlanError::Algebra)?;
    let split = split_equi(condition, &l_schema, &r_schema);
    let (lr, rr) = (l.explain.rows, r.explain.rows);
    // Hash beats nested loops unless an input is so tiny that building the
    // table costs more than probing everything. The cost comparison only
    // applies when statistics are available; the heuristic planner always
    // hashes when it can, exactly like the pre-planner engine.
    let algo = if split.has_keys() && (stats.is_none() || lr + rr <= lr * rr.max(1.0) + 1.0) {
        JoinAlgo::Hash {
            left_keys: split.left_keys,
            right_keys: split.right_keys,
            residual: split.residual,
        }
    } else {
        JoinAlgo::NestedLoop
    };
    let empty_stats = StatisticsCatalog::empty();
    let st = stats.unwrap_or(&empty_stats);
    // Shared with the logical estimator (products — condition TRUE — keep
    // the full cross-product cardinality).
    let out_rows = crate::cost::join_rows(lr, rr, condition, st);
    let op_cost = match &algo {
        JoinAlgo::Hash { .. } => lr + rr,
        JoinAlgo::NestedLoop => lr * rr,
    };
    // Partition the build side by key hash so the executor can build and
    // probe each partition on its own worker. The executor splits *both*
    // sides, so the threshold is on the total work, not the build alone.
    // Nested loops (the fate of the translation's OR'd conditions when the
    // OR-split declines) are morsel-parallel instead: the outer side is
    // split round-robin and every worker loops over the full inner side.
    let mut l = l;
    match &algo {
        JoinAlgo::Hash { right_keys, .. } => {
            if par.worthwhile(stats.map(|_| lr + rr)) {
                r = exchange(
                    r,
                    Partitioning::Hash { keys: right_keys.clone(), partitions: par.threads },
                );
            }
        }
        JoinAlgo::NestedLoop => {
            if par.worthwhile(stats.map(|_| lr * rr)) {
                l = exchange(l, Partitioning::RoundRobin { partitions: par.threads });
            }
        }
    }
    let cost = l.explain.cost + r.explain.cost + op_cost;
    explained_ok(
        PhysicalExpr::Join {
            left: Box::new(l.phys),
            right: Box::new(r.phys),
            condition: condition.clone(),
            algo,
        },
        out_rows,
        cost,
        vec![l.explain, r.explain],
    )
}

fn plan_semi(
    left: &RaExpr,
    right: &RaExpr,
    condition: &Condition,
    anti: bool,
    catalog: &dyn Catalog,
    stats: Option<&StatisticsCatalog>,
    par: &Parallelism,
) -> Result<Planned> {
    let l = plan_rec(left, catalog, stats, par)?;
    let mut r = plan_rec(right, catalog, stats, par)?;
    let left_schema = output_schema(left, catalog).map_err(PlanError::Algebra)?;
    let r_schema = output_schema(right, catalog).map_err(PlanError::Algebra)?;
    let (lr, rr) = (l.explain.rows, r.explain.rows);
    let algo = if !references_schema(condition, &left_schema) {
        SemiAlgo::Decorrelated
    } else {
        let split = split_equi(condition, &left_schema, &r_schema);
        if split.has_keys() && (stats.is_none() || lr + rr <= lr * rr.max(1.0) + 1.0) {
            SemiAlgo::Hash {
                left_keys: split.left_keys,
                right_keys: split.right_keys,
                residual: split.residual,
            }
        } else {
            SemiAlgo::NestedLoop
        }
    };
    let op_cost = match &algo {
        SemiAlgo::Decorrelated => rr,
        SemiAlgo::Hash { .. } => lr + rr,
        SemiAlgo::NestedLoop => lr * rr,
    };
    // Same build-side partitioning as hash joins: the (anti-)semijoin of
    // each partition only needs that partition's build table. Nested-loop
    // (anti-)semijoins go morsel-parallel over the preserved side.
    let mut l = l;
    match &algo {
        SemiAlgo::Hash { right_keys, .. } => {
            if par.worthwhile(stats.map(|_| lr + rr)) {
                r = exchange(
                    r,
                    Partitioning::Hash { keys: right_keys.clone(), partitions: par.threads },
                );
            }
        }
        SemiAlgo::NestedLoop => {
            if par.worthwhile(stats.map(|_| lr * rr)) {
                l = exchange(l, Partitioning::RoundRobin { partitions: par.threads });
            }
        }
        SemiAlgo::Decorrelated => {}
    }
    let rows = crate::cost::semi_rows(lr);
    let cost = l.explain.cost + r.explain.cost + op_cost;
    explained_ok(
        PhysicalExpr::Semi {
            left: Box::new(l.phys),
            right: Box::new(r.phys),
            condition: condition.clone(),
            algo,
            anti,
            left_schema,
        },
        rows,
        cost,
        vec![l.explain, r.explain],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use certus_algebra::builder::{eq, is_null};
    use certus_data::builder::rel;
    use certus_data::{Database, Value};

    fn db() -> Database {
        let mut db = Database::new();
        db.insert_relation(
            "r",
            rel(&["a", "b"], (0..50).map(|i| vec![Value::Int(i), Value::Int(i * 2)]).collect()),
        );
        db.insert_relation(
            "s",
            rel(&["c", "d"], (0..40).map(|i| vec![Value::Int(i), Value::Int(i * 3)]).collect()),
        );
        db
    }

    #[test]
    fn heuristic_plan_picks_hash_for_equi_joins() {
        let db = db();
        let q = RaExpr::relation("r").join(RaExpr::relation("s"), eq("a", "c"));
        match heuristic_plan(&q, &db).unwrap() {
            PhysicalExpr::Join {
                algo: JoinAlgo::Hash { left_keys, right_keys, residual }, ..
            } => {
                assert_eq!(left_keys, vec!["a"]);
                assert_eq!(right_keys, vec!["c"]);
                assert_eq!(residual, Condition::True);
            }
            other => panic!("expected hash join, got {other:?}"),
        }
    }

    #[test]
    fn or_condition_forces_nested_loops() {
        let db = db();
        let q = RaExpr::relation("r").join(RaExpr::relation("s"), eq("a", "c").or(is_null("d")));
        assert!(matches!(
            heuristic_plan(&q, &db).unwrap(),
            PhysicalExpr::Join { algo: JoinAlgo::NestedLoop, .. }
        ));
    }

    #[test]
    fn uncorrelated_antijoin_is_decorrelated() {
        let db = db();
        let q = RaExpr::relation("r").anti_join(RaExpr::relation("s"), is_null("d"));
        match heuristic_plan(&q, &db).unwrap() {
            PhysicalExpr::Semi { algo, anti, left_schema, .. } => {
                assert_eq!(algo, SemiAlgo::Decorrelated);
                assert!(anti);
                assert_eq!(left_schema.names(), vec!["a", "b"]);
            }
            other => panic!("expected semi node, got {other:?}"),
        }
    }

    #[test]
    fn products_become_nested_loop_joins_with_true_condition() {
        let db = db();
        let q = RaExpr::relation("r").product(RaExpr::relation("s"));
        assert!(matches!(
            heuristic_plan(&q, &db).unwrap(),
            PhysicalExpr::Join { algo: JoinAlgo::NestedLoop, condition: Condition::True, .. }
        ));
    }

    #[test]
    fn cost_based_planner_annotates_rows_and_costs() {
        let db = db();
        let stats = StatisticsCatalog::analyze(&db);
        let planner = PhysicalPlanner::new(&db, &stats);
        let q = RaExpr::relation("r").join(RaExpr::relation("s"), eq("a", "c")).project(&["a"]);
        let (phys, explain) = planner.plan_explained(&q).unwrap();
        assert_eq!(phys.size(), 4);
        assert_eq!(explain.size(), 4);
        assert_eq!(explain.children[0].children[0].rows, 50.0);
        let text = explain.to_string();
        assert!(text.contains("HashJoin [a = c]"), "{text}");
        assert!(text.contains("Scan r"), "{text}");
        assert!(text.contains("cost≈"), "{text}");
    }

    #[test]
    fn product_explain_keeps_cross_product_cardinality() {
        // Regression: products are planned as TRUE-condition joins; the row
        // estimate must stay l*r (matching cost::estimate_with's Product
        // arm), not the equi-join formula's ~min(l, r).
        let db = db();
        let stats = StatisticsCatalog::analyze(&db);
        let planner = PhysicalPlanner::new(&db, &stats);
        let q = RaExpr::relation("r").product(RaExpr::relation("s"));
        let explain = planner.explain(&q).unwrap();
        assert_eq!(explain.rows, 2000.0, "{explain}");
        let logical = crate::cost::estimate_with(&q, &db, &stats).unwrap();
        assert_eq!(explain.rows, logical.rows);
    }

    #[test]
    fn heuristic_parallel_plan_partitions_hash_builds() {
        let db = db();
        let q = RaExpr::relation("r").join(RaExpr::relation("s"), eq("a", "c"));
        // Serial: no exchange. Parallel: the build side is hash-partitioned.
        assert!(!heuristic_plan(&q, &db).unwrap().has_exchange());
        let plan = heuristic_plan_with(&q, &db, &Parallelism::new(4)).unwrap();
        match plan {
            PhysicalExpr::Join { right, algo: JoinAlgo::Hash { .. }, .. } => match *right {
                PhysicalExpr::Exchange {
                    partitioning: Partitioning::Hash { keys, partitions },
                    ..
                } => {
                    assert_eq!(keys, vec!["c"]);
                    assert_eq!(partitions, 4);
                }
                other => panic!("expected exchange on build side, got {other:?}"),
            },
            other => panic!("expected hash join, got {other:?}"),
        }
        // Nested-loop joins have no keys to partition on: the outer side is
        // split into round-robin morsels instead.
        let nl = RaExpr::relation("r").join(RaExpr::relation("s"), eq("a", "c").or(is_null("d")));
        match heuristic_plan_with(&nl, &db, &Parallelism::new(4)).unwrap() {
            PhysicalExpr::Join { left, algo: JoinAlgo::NestedLoop, .. } => {
                assert!(matches!(
                    *left,
                    PhysicalExpr::Exchange {
                        partitioning: Partitioning::RoundRobin { partitions: 4 },
                        ..
                    }
                ));
            }
            other => panic!("expected nested-loop join, got {other:?}"),
        }
    }

    #[test]
    fn heuristic_parallel_plan_marks_union_arms() {
        let db = db();
        let q = RaExpr::relation("r").union(RaExpr::relation("r").select(is_null("b")));
        let plan = heuristic_plan_with(&q, &db, &Parallelism::new(2)).unwrap();
        match plan {
            PhysicalExpr::Union { left, right } => {
                assert!(matches!(
                    *left,
                    PhysicalExpr::Exchange {
                        partitioning: Partitioning::RoundRobin { partitions: 2 },
                        ..
                    }
                ));
                assert!(matches!(*right, PhysicalExpr::Exchange { .. }));
            }
            other => panic!("expected union, got {other:?}"),
        }
    }

    #[test]
    fn cost_based_planner_gates_exchanges_on_the_row_threshold() {
        let db = db();
        let stats = StatisticsCatalog::analyze(&db);
        let q = RaExpr::relation("r").join(RaExpr::relation("s"), eq("a", "c"));
        // 40 build rows < the default 1024-row threshold: not worth it.
        let thresholded = PhysicalPlanner::with_parallelism(&db, &stats, Parallelism::new(4));
        assert!(!thresholded.plan(&q).unwrap().has_exchange());
        // Zero threshold: the exchange appears, and the explain renders it
        // with pass-through rows and a repartition cost.
        let mut par = Parallelism::new(4);
        par.row_threshold = 0.0;
        let eager = PhysicalPlanner::with_parallelism(&db, &stats, par);
        let (plan, explain) = eager.plan_explained(&q).unwrap();
        assert!(plan.has_exchange());
        let text = explain.to_string();
        assert!(text.contains("Exchange hash(c) x4"), "{text}");
        let exchange = &explain.children[1];
        assert_eq!(exchange.rows, 40.0);
        assert_eq!(
            exchange.cost,
            exchange.children[0].cost + crate::cost::exchange_cost(40.0, 4),
            "{text}"
        );
    }

    #[test]
    fn explain_annotates_batch_eligible_filters() {
        let db = db();
        let stats = StatisticsCatalog::analyze(&db);
        let planner = PhysicalPlanner::new(&db, &stats);
        let vec_q = RaExpr::relation("r").select(eq("a", "a"));
        let text = planner.explain(&vec_q).unwrap().to_string();
        assert!(text.contains("[vec]"), "{text}");
        // A LIKE filter evaluates row-at-a-time inside the batch: no tag.
        let like = certus_algebra::condition::Condition::Like {
            expr: certus_algebra::condition::Operand::Col("a".into()),
            pattern: "%x%".into(),
            negated: false,
        };
        let row_q = RaExpr::relation("r").select(like);
        let text = planner.explain(&row_q).unwrap().to_string();
        assert!(!text.contains("[vec]"), "{text}");
    }

    #[test]
    fn exchange_labels_and_partition_counts() {
        let hash = Partitioning::Hash { keys: vec!["a".into(), "b".into()], partitions: 8 };
        let rr = Partitioning::RoundRobin { partitions: 2 };
        assert_eq!(hash.partitions(), 8);
        assert_eq!(rr.partitions(), 2);
        let node = PhysicalExpr::Exchange {
            input: Box::new(PhysicalExpr::Source(RaExpr::relation("r"))),
            partitioning: hash,
        };
        assert_eq!(node.label(), "Exchange hash(a, b) x8");
        assert!(node.has_exchange());
        assert_eq!(node.size(), 2);
    }

    #[test]
    fn parallelism_defaults_are_serial() {
        assert_eq!(Parallelism::default(), Parallelism::serial());
        assert!(!Parallelism::serial().enabled());
        assert!(Parallelism::new(2).enabled());
        // Degenerate thread counts clamp to one.
        assert_eq!(Parallelism::new(0).threads, 1);
    }

    #[test]
    fn explain_shows_nested_loop_cost_blowup() {
        let db = db();
        let stats = StatisticsCatalog::analyze(&db);
        let planner = PhysicalPlanner::new(&db, &stats);
        let good = RaExpr::relation("r").join(RaExpr::relation("s"), eq("a", "c"));
        let bad = RaExpr::relation("r").join(RaExpr::relation("s"), eq("a", "c").or(is_null("d")));
        let g = planner.explain(&good).unwrap();
        let b = planner.explain(&bad).unwrap();
        assert!(b.cost > 10.0 * g.cost, "NL {b:?} should dwarf hash {g:?}");
    }
}
