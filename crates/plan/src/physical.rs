//! Physical planning: turning a logical [`RaExpr`] into a [`PhysicalExpr`]
//! tree with an explicit algorithm choice per join-like node.
//!
//! Two planners are provided:
//!
//! * [`heuristic_plan`] — the statistics-free rules the engine always
//!   applied inline before this subsystem existed (hash join whenever an
//!   equi-key can be extracted, decorrelated short-circuit whenever a
//!   semijoin condition ignores the outer side, nested loops otherwise).
//!   `Engine::execute` uses it so plain execution needs no statistics.
//! * [`PhysicalPlanner`] — cost-based: consults a [`StatisticsCatalog`] and
//!   the cost model to choose hash join vs. nested loop vs. decorrelated
//!   short-circuit per node, and emits an [`ExplainPlan`] tree with per-node
//!   row/cost estimates (rendered by `examples/explain_plans.rs`).

use crate::equi::{references_schema, split_equi};
use crate::stats::StatisticsCatalog;
use crate::{PlanError, Result};
use certus_algebra::condition::Condition;
use certus_algebra::expr::{AggExpr, ProjCol, RaExpr};
use certus_algebra::schema_infer::{output_schema, Catalog};
use certus_data::Schema;
use std::fmt;

/// Algorithm choice for a theta-join (or cartesian product).
#[derive(Debug, Clone, PartialEq)]
pub enum JoinAlgo {
    /// Build a hash table on the right side over `right_keys`, probe with
    /// `left_keys`, apply `residual` to surviving pairs.
    Hash {
        /// Probe-side key columns (resolved in the left schema).
        left_keys: Vec<String>,
        /// Build-side key columns (resolved in the right schema).
        right_keys: Vec<String>,
        /// Condition part not covered by the keys.
        residual: Condition,
    },
    /// Compare every pair of tuples.
    NestedLoop,
}

/// Algorithm choice for a (anti-)semijoin.
#[derive(Debug, Clone, PartialEq)]
pub enum SemiAlgo {
    /// The condition never references the outer side: evaluate the inner
    /// side once; the whole node short-circuits to either the left input or
    /// the empty relation (the `NOT EXISTS` rescue of query Q2).
    Decorrelated,
    /// Hash (anti-)semijoin with residual predicate.
    Hash {
        /// Probe-side key columns (resolved in the left schema).
        left_keys: Vec<String>,
        /// Build-side key columns (resolved in the right schema).
        right_keys: Vec<String>,
        /// Condition part not covered by the keys.
        residual: Condition,
    },
    /// Compare every pair of tuples.
    NestedLoop,
}

/// A physical plan: the logical tree annotated with per-node algorithm
/// choices. The engine executes this without re-deriving any strategy.
#[derive(Debug, Clone, PartialEq)]
pub enum PhysicalExpr {
    /// A scan of a base relation or literal relation (kept as the logical
    /// node — the reference evaluator materialises it).
    Source(RaExpr),
    /// Selection over a materialised input.
    Filter {
        /// Input plan.
        input: Box<PhysicalExpr>,
        /// Selection condition.
        condition: Condition,
    },
    /// Projection (deduplicating, set semantics).
    Project {
        /// Input plan.
        input: Box<PhysicalExpr>,
        /// Output columns.
        columns: Vec<ProjCol>,
    },
    /// Theta-join (products are joins with condition `TRUE`).
    Join {
        /// Left input.
        left: Box<PhysicalExpr>,
        /// Right input.
        right: Box<PhysicalExpr>,
        /// Full join condition (used verbatim by nested loops).
        condition: Condition,
        /// Chosen algorithm.
        algo: JoinAlgo,
    },
    /// Semijoin (`anti == false`) or anti-semijoin (`anti == true`).
    Semi {
        /// Left (preserved) input.
        left: Box<PhysicalExpr>,
        /// Right (probe) input.
        right: Box<PhysicalExpr>,
        /// Full matching condition.
        condition: Condition,
        /// Chosen algorithm.
        algo: SemiAlgo,
        /// Whether this is an anti-semijoin.
        anti: bool,
        /// Schema of the left input (needed to emit an empty result without
        /// executing the left side when a decorrelated check short-circuits).
        left_schema: Schema,
    },
    /// Set union.
    Union {
        /// Left input.
        left: Box<PhysicalExpr>,
        /// Right input.
        right: Box<PhysicalExpr>,
    },
    /// Set intersection.
    Intersect {
        /// Left input.
        left: Box<PhysicalExpr>,
        /// Right input.
        right: Box<PhysicalExpr>,
    },
    /// Set difference.
    Difference {
        /// Left input.
        left: Box<PhysicalExpr>,
        /// Right input.
        right: Box<PhysicalExpr>,
    },
    /// Unification (anti-)semijoin of Definition 4.
    UnifySemi {
        /// Left (preserved) input.
        left: Box<PhysicalExpr>,
        /// Right input.
        right: Box<PhysicalExpr>,
        /// Whether this is the anti variant.
        anti: bool,
    },
    /// Relational division.
    Division {
        /// Dividend.
        left: Box<PhysicalExpr>,
        /// Divisor.
        right: Box<PhysicalExpr>,
    },
    /// Column renaming.
    Rename {
        /// Input plan.
        input: Box<PhysicalExpr>,
        /// New column names.
        columns: Vec<String>,
    },
    /// Duplicate elimination.
    Distinct {
        /// Input plan.
        input: Box<PhysicalExpr>,
    },
    /// Grouping and aggregation.
    Aggregate {
        /// Input plan.
        input: Box<PhysicalExpr>,
        /// Grouping columns.
        group_by: Vec<String>,
        /// Aggregates to compute.
        aggregates: Vec<AggExpr>,
    },
}

impl PhysicalExpr {
    /// Number of nodes in the physical plan.
    pub fn size(&self) -> usize {
        1 + self.children().iter().map(|c| c.size()).sum::<usize>()
    }

    /// Immediate children.
    pub fn children(&self) -> Vec<&PhysicalExpr> {
        match self {
            PhysicalExpr::Source(_) => vec![],
            PhysicalExpr::Filter { input, .. }
            | PhysicalExpr::Project { input, .. }
            | PhysicalExpr::Rename { input, .. }
            | PhysicalExpr::Distinct { input }
            | PhysicalExpr::Aggregate { input, .. } => vec![input],
            PhysicalExpr::Join { left, right, .. }
            | PhysicalExpr::Semi { left, right, .. }
            | PhysicalExpr::Union { left, right }
            | PhysicalExpr::Intersect { left, right }
            | PhysicalExpr::Difference { left, right }
            | PhysicalExpr::UnifySemi { left, right, .. }
            | PhysicalExpr::Division { left, right } => vec![left, right],
        }
    }

    /// Short operator label for explain output.
    pub fn label(&self) -> String {
        match self {
            PhysicalExpr::Source(RaExpr::Relation { name, .. }) => format!("Scan {name}"),
            PhysicalExpr::Source(_) => "Values".to_string(),
            PhysicalExpr::Filter { condition, .. } => format!("Filter [{condition}]"),
            PhysicalExpr::Project { .. } => "Project".to_string(),
            PhysicalExpr::Join { condition, algo, .. } => match algo {
                JoinAlgo::Hash { left_keys, right_keys, .. } => {
                    format!("HashJoin [{}]", key_pairs(left_keys, right_keys))
                }
                JoinAlgo::NestedLoop => format!("NestedLoopJoin [{condition}]"),
            },
            PhysicalExpr::Semi { condition, algo, anti, .. } => {
                let kind = if *anti { "Anti" } else { "Semi" };
                match algo {
                    SemiAlgo::Decorrelated => format!("Decorrelated{kind}Join [{condition}]"),
                    SemiAlgo::Hash { left_keys, right_keys, .. } => {
                        format!("Hash{kind}Join [{}]", key_pairs(left_keys, right_keys))
                    }
                    SemiAlgo::NestedLoop => format!("NestedLoop{kind}Join [{condition}]"),
                }
            }
            PhysicalExpr::Union { .. } => "Union".to_string(),
            PhysicalExpr::Intersect { .. } => "Intersect".to_string(),
            PhysicalExpr::Difference { .. } => "Difference".to_string(),
            PhysicalExpr::UnifySemi { anti, .. } => {
                if *anti {
                    "UnifyAntiSemiJoin".to_string()
                } else {
                    "UnifySemiJoin".to_string()
                }
            }
            PhysicalExpr::Division { .. } => "Division".to_string(),
            PhysicalExpr::Rename { .. } => "Rename".to_string(),
            PhysicalExpr::Distinct { .. } => "Distinct".to_string(),
            PhysicalExpr::Aggregate { .. } => "Aggregate".to_string(),
        }
    }
}

fn key_pairs(left: &[String], right: &[String]) -> String {
    left.iter().zip(right).map(|(l, r)| format!("{l} = {r}")).collect::<Vec<_>>().join(" AND ")
}

/// An `EXPLAIN`-style tree: one node per physical operator with row and cost
/// estimates.
#[derive(Debug, Clone, PartialEq)]
pub struct ExplainPlan {
    /// Operator label (includes the chosen algorithm).
    pub op: String,
    /// Estimated output rows.
    pub rows: f64,
    /// Estimated cumulative cost (abstract row operations).
    pub cost: f64,
    /// Child nodes.
    pub children: Vec<ExplainPlan>,
}

impl ExplainPlan {
    fn render(&self, depth: usize, out: &mut String) {
        out.push_str(&"  ".repeat(depth));
        out.push_str(&format!("{}  (rows≈{:.0}, cost≈{:.0})\n", self.op, self.rows, self.cost));
        for c in &self.children {
            c.render(depth + 1, out);
        }
    }

    /// Total number of nodes.
    pub fn size(&self) -> usize {
        1 + self.children.iter().map(ExplainPlan::size).sum::<usize>()
    }
}

impl fmt::Display for ExplainPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.render(0, &mut out);
        f.write_str(&out)
    }
}

/// The statistics-free planner: hash wherever an equi-key exists,
/// decorrelated short-circuit wherever a semijoin ignores its outer side,
/// nested loops otherwise. These are exactly the choices the engine used to
/// re-derive inline on every execution.
pub fn heuristic_plan(expr: &RaExpr, catalog: &dyn Catalog) -> Result<PhysicalExpr> {
    plan_rec(expr, catalog, None).map(|p| p.phys)
}

/// A cost-based physical planner over a statistics catalog.
pub struct PhysicalPlanner<'a> {
    catalog: &'a dyn Catalog,
    stats: &'a StatisticsCatalog,
}

impl<'a> PhysicalPlanner<'a> {
    /// A planner over the given catalog and statistics.
    pub fn new(catalog: &'a dyn Catalog, stats: &'a StatisticsCatalog) -> Self {
        PhysicalPlanner { catalog, stats }
    }

    /// Produce the physical plan for an expression.
    pub fn plan(&self, expr: &RaExpr) -> Result<PhysicalExpr> {
        plan_rec(expr, self.catalog, Some(self.stats)).map(|p| p.phys)
    }

    /// Produce the physical plan together with its explain tree.
    pub fn plan_explained(&self, expr: &RaExpr) -> Result<(PhysicalExpr, ExplainPlan)> {
        plan_rec(expr, self.catalog, Some(self.stats)).map(|p| (p.phys, p.explain))
    }

    /// Produce only the explain tree.
    pub fn explain(&self, expr: &RaExpr) -> Result<ExplainPlan> {
        plan_rec(expr, self.catalog, Some(self.stats)).map(|p| p.explain)
    }
}

struct Planned {
    phys: PhysicalExpr,
    explain: ExplainPlan,
}

fn explained(phys: PhysicalExpr, rows: f64, cost: f64, children: Vec<ExplainPlan>) -> Planned {
    let explain = ExplainPlan { op: phys.label(), rows, cost, children };
    Planned { phys, explain }
}

fn plan_rec(
    expr: &RaExpr,
    catalog: &dyn Catalog,
    stats: Option<&StatisticsCatalog>,
) -> Result<Planned> {
    let empty_stats = StatisticsCatalog::empty();
    let st = stats.unwrap_or(&empty_stats);
    Ok(match expr {
        RaExpr::Relation { name, .. } => {
            let rows = st.row_count(name).unwrap_or(0) as f64;
            explained(PhysicalExpr::Source(expr.clone()), rows, rows, vec![])
        }
        RaExpr::Values { rows, .. } => {
            let n = rows.len() as f64;
            explained(PhysicalExpr::Source(expr.clone()), n, n, vec![])
        }
        RaExpr::Select { input, condition } => {
            let c = plan_rec(input, catalog, stats)?;
            let rows = c.explain.rows * crate::cost::selectivity_with(condition, st);
            let cost = c.explain.cost + c.explain.rows;
            explained(
                PhysicalExpr::Filter { input: Box::new(c.phys), condition: condition.clone() },
                rows,
                cost,
                vec![c.explain],
            )
        }
        RaExpr::Project { input, columns } => {
            let c = plan_rec(input, catalog, stats)?;
            let (rows, cost) = (c.explain.rows, c.explain.cost + c.explain.rows);
            explained(
                PhysicalExpr::Project { input: Box::new(c.phys), columns: columns.clone() },
                rows,
                cost,
                vec![c.explain],
            )
        }
        RaExpr::Product { left, right } => {
            plan_join(left, right, &Condition::True, catalog, stats)?
        }
        RaExpr::Join { left, right, condition } => {
            plan_join(left, right, condition, catalog, stats)?
        }
        RaExpr::SemiJoin { left, right, condition } => {
            plan_semi(left, right, condition, false, catalog, stats)?
        }
        RaExpr::AntiJoin { left, right, condition } => {
            plan_semi(left, right, condition, true, catalog, stats)?
        }
        RaExpr::Union { left, right } => plan_setop(expr, left, right, catalog, stats)?,
        RaExpr::Intersect { left, right } => plan_setop(expr, left, right, catalog, stats)?,
        RaExpr::Difference { left, right } => plan_setop(expr, left, right, catalog, stats)?,
        RaExpr::UnifySemiJoin { left, right } => {
            let l = plan_rec(left, catalog, stats)?;
            let r = plan_rec(right, catalog, stats)?;
            let rows = l.explain.rows;
            let cost = l.explain.cost + r.explain.cost + l.explain.rows * r.explain.rows;
            explained(
                PhysicalExpr::UnifySemi {
                    left: Box::new(l.phys),
                    right: Box::new(r.phys),
                    anti: false,
                },
                rows,
                cost,
                vec![l.explain, r.explain],
            )
        }
        RaExpr::UnifyAntiSemiJoin { left, right } => {
            let l = plan_rec(left, catalog, stats)?;
            let r = plan_rec(right, catalog, stats)?;
            let rows = l.explain.rows;
            let cost = l.explain.cost + r.explain.cost + l.explain.rows * r.explain.rows;
            explained(
                PhysicalExpr::UnifySemi {
                    left: Box::new(l.phys),
                    right: Box::new(r.phys),
                    anti: true,
                },
                rows,
                cost,
                vec![l.explain, r.explain],
            )
        }
        RaExpr::Division { left, right } => {
            let l = plan_rec(left, catalog, stats)?;
            let r = plan_rec(right, catalog, stats)?;
            let rows = l.explain.rows;
            let cost = l.explain.cost + r.explain.cost + l.explain.rows * r.explain.rows;
            explained(
                PhysicalExpr::Division { left: Box::new(l.phys), right: Box::new(r.phys) },
                rows,
                cost,
                vec![l.explain, r.explain],
            )
        }
        RaExpr::Rename { input, columns } => {
            let c = plan_rec(input, catalog, stats)?;
            let (rows, cost) = (c.explain.rows, c.explain.cost + c.explain.rows);
            explained(
                PhysicalExpr::Rename { input: Box::new(c.phys), columns: columns.clone() },
                rows,
                cost,
                vec![c.explain],
            )
        }
        RaExpr::Distinct { input } => {
            let c = plan_rec(input, catalog, stats)?;
            let (rows, cost) = (c.explain.rows, c.explain.cost + c.explain.rows);
            explained(
                PhysicalExpr::Distinct { input: Box::new(c.phys) },
                rows,
                cost,
                vec![c.explain],
            )
        }
        RaExpr::Aggregate { input, group_by, aggregates } => {
            let c = plan_rec(input, catalog, stats)?;
            let rows = crate::cost::aggregate_rows(c.explain.rows, !group_by.is_empty());
            let cost = c.explain.cost + c.explain.rows;
            explained(
                PhysicalExpr::Aggregate {
                    input: Box::new(c.phys),
                    group_by: group_by.clone(),
                    aggregates: aggregates.clone(),
                },
                rows,
                cost,
                vec![c.explain],
            )
        }
    })
}

fn plan_setop(
    expr: &RaExpr,
    left: &RaExpr,
    right: &RaExpr,
    catalog: &dyn Catalog,
    stats: Option<&StatisticsCatalog>,
) -> Result<Planned> {
    let l = plan_rec(left, catalog, stats)?;
    let r = plan_rec(right, catalog, stats)?;
    let rows = crate::cost::setop_rows(l.explain.rows, r.explain.rows);
    let cost = l.explain.cost + r.explain.cost + l.explain.rows + r.explain.rows;
    let phys = match expr {
        RaExpr::Union { .. } => {
            PhysicalExpr::Union { left: Box::new(l.phys), right: Box::new(r.phys) }
        }
        RaExpr::Intersect { .. } => {
            PhysicalExpr::Intersect { left: Box::new(l.phys), right: Box::new(r.phys) }
        }
        RaExpr::Difference { .. } => {
            PhysicalExpr::Difference { left: Box::new(l.phys), right: Box::new(r.phys) }
        }
        other => {
            return Err(PlanError::Invalid(format!("plan_setop over non-set operator {other}")))
        }
    };
    explained_ok(phys, rows, cost, vec![l.explain, r.explain])
}

fn explained_ok(
    phys: PhysicalExpr,
    rows: f64,
    cost: f64,
    children: Vec<ExplainPlan>,
) -> Result<Planned> {
    Ok(explained(phys, rows, cost, children))
}

fn plan_join(
    left: &RaExpr,
    right: &RaExpr,
    condition: &Condition,
    catalog: &dyn Catalog,
    stats: Option<&StatisticsCatalog>,
) -> Result<Planned> {
    let l = plan_rec(left, catalog, stats)?;
    let r = plan_rec(right, catalog, stats)?;
    let l_schema = output_schema(left, catalog).map_err(PlanError::Algebra)?;
    let r_schema = output_schema(right, catalog).map_err(PlanError::Algebra)?;
    let split = split_equi(condition, &l_schema, &r_schema);
    let (lr, rr) = (l.explain.rows, r.explain.rows);
    // Hash beats nested loops unless an input is so tiny that building the
    // table costs more than probing everything. The cost comparison only
    // applies when statistics are available; the heuristic planner always
    // hashes when it can, exactly like the pre-planner engine.
    let algo = if split.has_keys() && (stats.is_none() || lr + rr <= lr * rr.max(1.0) + 1.0) {
        JoinAlgo::Hash {
            left_keys: split.left_keys,
            right_keys: split.right_keys,
            residual: split.residual,
        }
    } else {
        JoinAlgo::NestedLoop
    };
    let empty_stats = StatisticsCatalog::empty();
    let st = stats.unwrap_or(&empty_stats);
    // Shared with the logical estimator (products — condition TRUE — keep
    // the full cross-product cardinality).
    let out_rows = crate::cost::join_rows(lr, rr, condition, st);
    let op_cost = match &algo {
        JoinAlgo::Hash { .. } => lr + rr,
        JoinAlgo::NestedLoop => lr * rr,
    };
    let cost = l.explain.cost + r.explain.cost + op_cost;
    explained_ok(
        PhysicalExpr::Join {
            left: Box::new(l.phys),
            right: Box::new(r.phys),
            condition: condition.clone(),
            algo,
        },
        out_rows,
        cost,
        vec![l.explain, r.explain],
    )
}

fn plan_semi(
    left: &RaExpr,
    right: &RaExpr,
    condition: &Condition,
    anti: bool,
    catalog: &dyn Catalog,
    stats: Option<&StatisticsCatalog>,
) -> Result<Planned> {
    let l = plan_rec(left, catalog, stats)?;
    let r = plan_rec(right, catalog, stats)?;
    let left_schema = output_schema(left, catalog).map_err(PlanError::Algebra)?;
    let r_schema = output_schema(right, catalog).map_err(PlanError::Algebra)?;
    let (lr, rr) = (l.explain.rows, r.explain.rows);
    let algo = if !references_schema(condition, &left_schema) {
        SemiAlgo::Decorrelated
    } else {
        let split = split_equi(condition, &left_schema, &r_schema);
        if split.has_keys() && (stats.is_none() || lr + rr <= lr * rr.max(1.0) + 1.0) {
            SemiAlgo::Hash {
                left_keys: split.left_keys,
                right_keys: split.right_keys,
                residual: split.residual,
            }
        } else {
            SemiAlgo::NestedLoop
        }
    };
    let op_cost = match &algo {
        SemiAlgo::Decorrelated => rr,
        SemiAlgo::Hash { .. } => lr + rr,
        SemiAlgo::NestedLoop => lr * rr,
    };
    let rows = crate::cost::semi_rows(lr);
    let cost = l.explain.cost + r.explain.cost + op_cost;
    explained_ok(
        PhysicalExpr::Semi {
            left: Box::new(l.phys),
            right: Box::new(r.phys),
            condition: condition.clone(),
            algo,
            anti,
            left_schema,
        },
        rows,
        cost,
        vec![l.explain, r.explain],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use certus_algebra::builder::{eq, is_null};
    use certus_data::builder::rel;
    use certus_data::{Database, Value};

    fn db() -> Database {
        let mut db = Database::new();
        db.insert_relation(
            "r",
            rel(&["a", "b"], (0..50).map(|i| vec![Value::Int(i), Value::Int(i * 2)]).collect()),
        );
        db.insert_relation(
            "s",
            rel(&["c", "d"], (0..40).map(|i| vec![Value::Int(i), Value::Int(i * 3)]).collect()),
        );
        db
    }

    #[test]
    fn heuristic_plan_picks_hash_for_equi_joins() {
        let db = db();
        let q = RaExpr::relation("r").join(RaExpr::relation("s"), eq("a", "c"));
        match heuristic_plan(&q, &db).unwrap() {
            PhysicalExpr::Join {
                algo: JoinAlgo::Hash { left_keys, right_keys, residual }, ..
            } => {
                assert_eq!(left_keys, vec!["a"]);
                assert_eq!(right_keys, vec!["c"]);
                assert_eq!(residual, Condition::True);
            }
            other => panic!("expected hash join, got {other:?}"),
        }
    }

    #[test]
    fn or_condition_forces_nested_loops() {
        let db = db();
        let q = RaExpr::relation("r").join(RaExpr::relation("s"), eq("a", "c").or(is_null("d")));
        assert!(matches!(
            heuristic_plan(&q, &db).unwrap(),
            PhysicalExpr::Join { algo: JoinAlgo::NestedLoop, .. }
        ));
    }

    #[test]
    fn uncorrelated_antijoin_is_decorrelated() {
        let db = db();
        let q = RaExpr::relation("r").anti_join(RaExpr::relation("s"), is_null("d"));
        match heuristic_plan(&q, &db).unwrap() {
            PhysicalExpr::Semi { algo, anti, left_schema, .. } => {
                assert_eq!(algo, SemiAlgo::Decorrelated);
                assert!(anti);
                assert_eq!(left_schema.names(), vec!["a", "b"]);
            }
            other => panic!("expected semi node, got {other:?}"),
        }
    }

    #[test]
    fn products_become_nested_loop_joins_with_true_condition() {
        let db = db();
        let q = RaExpr::relation("r").product(RaExpr::relation("s"));
        assert!(matches!(
            heuristic_plan(&q, &db).unwrap(),
            PhysicalExpr::Join { algo: JoinAlgo::NestedLoop, condition: Condition::True, .. }
        ));
    }

    #[test]
    fn cost_based_planner_annotates_rows_and_costs() {
        let db = db();
        let stats = StatisticsCatalog::analyze(&db);
        let planner = PhysicalPlanner::new(&db, &stats);
        let q = RaExpr::relation("r").join(RaExpr::relation("s"), eq("a", "c")).project(&["a"]);
        let (phys, explain) = planner.plan_explained(&q).unwrap();
        assert_eq!(phys.size(), 4);
        assert_eq!(explain.size(), 4);
        assert_eq!(explain.children[0].children[0].rows, 50.0);
        let text = explain.to_string();
        assert!(text.contains("HashJoin [a = c]"), "{text}");
        assert!(text.contains("Scan r"), "{text}");
        assert!(text.contains("cost≈"), "{text}");
    }

    #[test]
    fn product_explain_keeps_cross_product_cardinality() {
        // Regression: products are planned as TRUE-condition joins; the row
        // estimate must stay l*r (matching cost::estimate_with's Product
        // arm), not the equi-join formula's ~min(l, r).
        let db = db();
        let stats = StatisticsCatalog::analyze(&db);
        let planner = PhysicalPlanner::new(&db, &stats);
        let q = RaExpr::relation("r").product(RaExpr::relation("s"));
        let explain = planner.explain(&q).unwrap();
        assert_eq!(explain.rows, 2000.0, "{explain}");
        let logical = crate::cost::estimate_with(&q, &db, &stats).unwrap();
        assert_eq!(explain.rows, logical.rows);
    }

    #[test]
    fn explain_shows_nested_loop_cost_blowup() {
        let db = db();
        let stats = StatisticsCatalog::analyze(&db);
        let planner = PhysicalPlanner::new(&db, &stats);
        let good = RaExpr::relation("r").join(RaExpr::relation("s"), eq("a", "c"));
        let bad = RaExpr::relation("r").join(RaExpr::relation("s"), eq("a", "c").or(is_null("d")));
        let g = planner.explain(&good).unwrap();
        let b = planner.explain(&bad).unwrap();
        assert!(b.cost > 10.0 * g.cost, "NL {b:?} should dwarf hash {g:?}");
    }
}
