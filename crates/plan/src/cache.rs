//! Plan caching: hashable keys over logical expressions and a small LRU
//! cache with hit/miss accounting.
//!
//! Planning a translated query is not free — the rewrite-pass pipeline runs
//! to a fixpoint and the cost-based planner consults statistics per node — so
//! repeated workload queries should plan **once**. [`PlanKey`] makes a
//! logical [`RaExpr`] usable as a hash-map key (the expression tree carries
//! no `Hash` impl of its own; the key hashes a structural fingerprint and
//! falls back to full equality on collisions), qualified by everything else
//! the resulting plan depends on: which translation variant was planned, the
//! database's schema epoch, and the parallelism configuration. [`PlanCache`]
//! is the LRU map over such keys used by the `certus::Session` facade.

use certus_algebra::expr::RaExpr;
use certus_obs::metrics::{registry, Counter};
use certus_obs::names;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, OnceLock};

/// Process-wide `plan_cache.*` counter handles, fetched once. Every
/// [`PlanCache`] instance mirrors its per-instance counters into these so
/// registry snapshots see cache behaviour without a handle to the session.
struct GlobalCounters {
    hits: Arc<Counter>,
    misses: Arc<Counter>,
    insertions: Arc<Counter>,
    evictions: Arc<Counter>,
    invalidations: Arc<Counter>,
}

fn global_counters() -> &'static GlobalCounters {
    static H: OnceLock<GlobalCounters> = OnceLock::new();
    H.get_or_init(|| GlobalCounters {
        hits: registry().counter(names::PLAN_CACHE_HITS),
        misses: registry().counter(names::PLAN_CACHE_MISSES),
        insertions: registry().counter(names::PLAN_CACHE_INSERTIONS),
        evictions: registry().counter(names::PLAN_CACHE_EVICTIONS),
        invalidations: registry().counter(names::PLAN_CACHE_INVALIDATIONS),
    })
}

/// A structural fingerprint of a logical expression: the hash of its
/// deterministic textual rendering. Two equal expressions always fingerprint
/// identically; distinct expressions may collide (the rendering elides
/// literal-relation contents), which is why [`PlanKey`] keeps the expression
/// itself for the equality check.
pub fn expr_fingerprint(expr: &RaExpr) -> u64 {
    let mut h = DefaultHasher::new();
    expr.to_string().hash(&mut h);
    h.finish()
}

/// Everything a cached physical plan depends on: the logical expression, the
/// translation variant that was planned (an opaque tag chosen by the caller),
/// the database's schema epoch at planning time, and the worker-thread count
/// the plan's exchange operators were sized for.
///
/// `Hash` uses the expression's [`expr_fingerprint`]; equality compares the
/// full expression, so fingerprint collisions cost a probe, never a wrong
/// plan.
#[derive(Debug, Clone)]
pub struct PlanKey {
    expr: RaExpr,
    fingerprint: u64,
    variant: u8,
    epoch: u64,
    threads: usize,
}

impl PlanKey {
    /// Build a key for an expression planned as the given variant, at the
    /// given schema epoch, for the given worker-thread count.
    pub fn new(expr: RaExpr, variant: u8, epoch: u64, threads: usize) -> Self {
        let fingerprint = expr_fingerprint(&expr);
        PlanKey { expr, fingerprint, variant, epoch, threads }
    }

    /// The expression's fingerprint.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The schema epoch the plan was built against.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }
}

impl PartialEq for PlanKey {
    fn eq(&self, other: &Self) -> bool {
        self.fingerprint == other.fingerprint
            && self.variant == other.variant
            && self.epoch == other.epoch
            && self.threads == other.threads
            && self.expr == other.expr
    }
}

// `RaExpr` equality is reflexive (floats inside `Value` compare by
// normalised bit pattern), so the `Eq` marker is sound.
impl Eq for PlanKey {}

impl Hash for PlanKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.fingerprint.hash(state);
        self.variant.hash(state);
        self.epoch.hash(state);
        self.threads.hash(state);
    }
}

/// A snapshot of a [`PlanCache`]'s counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups that found a cached plan.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Plans inserted.
    pub insertions: u64,
    /// Entries dropped to make room (least recently used first).
    pub evictions: u64,
    /// Entries dropped because their schema epoch went stale.
    pub invalidations: u64,
    /// Entries currently cached.
    pub entries: usize,
    /// Maximum number of entries.
    pub capacity: usize,
}

impl CacheStats {
    /// Fraction of lookups served from the cache (0 when nothing was looked
    /// up yet).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug)]
struct Slot<V> {
    value: V,
    last_used: u64,
}

/// A least-recently-used cache from [`PlanKey`]s to prepared plans, with
/// hit/miss/eviction/invalidation counters. Eviction scans for the oldest
/// slot, which is linear in the entry count — fine at plan-cache capacities
/// (tens of entries), where the scan is dwarfed by a single planning run.
#[derive(Debug)]
pub struct PlanCache<V> {
    capacity: usize,
    map: HashMap<PlanKey, Slot<V>>,
    tick: u64,
    hits: u64,
    misses: u64,
    insertions: u64,
    evictions: u64,
    invalidations: u64,
}

impl<V: Clone> PlanCache<V> {
    /// Default capacity used by the session facade.
    pub const DEFAULT_CAPACITY: usize = 64;

    /// A cache holding at most `capacity` plans (clamped to ≥ 1).
    pub fn new(capacity: usize) -> Self {
        PlanCache {
            capacity: capacity.max(1),
            map: HashMap::new(),
            tick: 0,
            hits: 0,
            misses: 0,
            insertions: 0,
            evictions: 0,
            invalidations: 0,
        }
    }

    /// Look up a plan, counting a hit or a miss and refreshing the entry's
    /// recency on a hit.
    pub fn get(&mut self, key: &PlanKey) -> Option<V> {
        self.tick += 1;
        match self.map.get_mut(key) {
            Some(slot) => {
                slot.last_used = self.tick;
                self.hits += 1;
                global_counters().hits.incr();
                Some(slot.value.clone())
            }
            None => {
                self.misses += 1;
                global_counters().misses.incr();
                None
            }
        }
    }

    /// Insert a plan, evicting the least recently used entry when full.
    pub fn insert(&mut self, key: PlanKey, value: V) {
        self.tick += 1;
        if self.map.len() >= self.capacity && !self.map.contains_key(&key) {
            if let Some(oldest) =
                self.map.iter().min_by_key(|(_, s)| s.last_used).map(|(k, _)| k.clone())
            {
                self.map.remove(&oldest);
                self.evictions += 1;
                global_counters().evictions.incr();
            }
        }
        self.insertions += 1;
        global_counters().insertions.incr();
        self.map.insert(key, Slot { value, last_used: self.tick });
    }

    /// Drop every entry planned at a schema epoch other than `epoch` —
    /// called by the session whenever it observes the database's current
    /// epoch, so a schema change frees the stale plans immediately instead
    /// of waiting for LRU pressure. (Stale entries could never *hit* anyway:
    /// the epoch is part of the key.)
    pub fn retain_epoch(&mut self, epoch: u64) {
        let before = self.map.len();
        self.map.retain(|k, _| k.epoch == epoch);
        let dropped = (before - self.map.len()) as u64;
        self.invalidations += dropped;
        global_counters().invalidations.add(dropped);
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Drop every entry (counters are kept).
    pub fn clear(&mut self) {
        self.map.clear();
    }

    /// Snapshot the counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            insertions: self.insertions,
            evictions: self.evictions,
            invalidations: self.invalidations,
            entries: self.map.len(),
            capacity: self.capacity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use certus_algebra::builder::eq;

    fn q(rel: &str) -> RaExpr {
        RaExpr::relation(rel).join(RaExpr::relation("s"), eq("a", "b"))
    }

    #[test]
    fn fingerprint_is_stable_and_discriminating() {
        assert_eq!(expr_fingerprint(&q("r")), expr_fingerprint(&q("r")));
        assert_ne!(expr_fingerprint(&q("r")), expr_fingerprint(&q("t")));
    }

    #[test]
    fn keys_distinguish_variant_epoch_and_threads() {
        let base = PlanKey::new(q("r"), 0, 0, 1);
        assert_eq!(base, PlanKey::new(q("r"), 0, 0, 1));
        assert_ne!(base, PlanKey::new(q("r"), 1, 0, 1));
        assert_ne!(base, PlanKey::new(q("r"), 0, 1, 1));
        assert_ne!(base, PlanKey::new(q("r"), 0, 0, 4));
        assert_ne!(base, PlanKey::new(q("t"), 0, 0, 1));
    }

    #[test]
    fn cache_mirrors_counters_into_the_registry() {
        let before = certus_obs::MetricsSnapshot::now();
        let mut cache: PlanCache<u32> = PlanCache::new(2);
        let key = PlanKey::new(q("m"), 0, 0, 1);
        assert_eq!(cache.get(&key), None);
        cache.insert(key.clone(), 1);
        assert_eq!(cache.get(&key), Some(1));
        let delta = certus_obs::MetricsSnapshot::now().delta_since(&before);
        // Other cache tests run concurrently in this process, so only lower
        // bounds are stable.
        assert!(delta.counter(names::PLAN_CACHE_HITS) >= 1);
        assert!(delta.counter(names::PLAN_CACHE_MISSES) >= 1);
        assert!(delta.counter(names::PLAN_CACHE_INSERTIONS) >= 1);
    }

    #[test]
    fn cache_counts_hits_and_misses() {
        let mut cache: PlanCache<u32> = PlanCache::new(4);
        let key = PlanKey::new(q("r"), 0, 0, 1);
        assert_eq!(cache.get(&key), None);
        cache.insert(key.clone(), 7);
        assert_eq!(cache.get(&key), Some(7));
        assert_eq!(cache.get(&key), Some(7));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.insertions), (2, 1, 1));
        assert_eq!(stats.entries, 1);
        assert!((stats.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn cache_evicts_least_recently_used() {
        let mut cache: PlanCache<u32> = PlanCache::new(2);
        let (a, b, c) = (
            PlanKey::new(q("a"), 0, 0, 1),
            PlanKey::new(q("b"), 0, 0, 1),
            PlanKey::new(q("c"), 0, 0, 1),
        );
        cache.insert(a.clone(), 1);
        cache.insert(b.clone(), 2);
        assert_eq!(cache.get(&a), Some(1)); // refresh a: b is now the LRU
        cache.insert(c.clone(), 3);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get(&a), Some(1));
        assert_eq!(cache.get(&b), None);
        assert_eq!(cache.get(&c), Some(3));
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn retain_epoch_invalidates_stale_plans() {
        let mut cache: PlanCache<u32> = PlanCache::new(4);
        cache.insert(PlanKey::new(q("a"), 0, 0, 1), 1);
        cache.insert(PlanKey::new(q("b"), 0, 0, 1), 2);
        cache.insert(PlanKey::new(q("a"), 0, 1, 1), 3);
        cache.retain_epoch(1);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats().invalidations, 2);
        assert_eq!(cache.get(&PlanKey::new(q("a"), 0, 1, 1)), Some(3));
    }

    #[test]
    fn capacity_is_clamped_and_clear_keeps_counters() {
        let mut cache: PlanCache<u32> = PlanCache::new(0);
        assert_eq!(cache.stats().capacity, 1);
        let key = PlanKey::new(q("a"), 0, 0, 1);
        cache.insert(key.clone(), 1);
        assert_eq!(cache.get(&key), Some(1));
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(key.epoch(), 0);
        assert_eq!(key.fingerprint(), expr_fingerprint(&q("a")));
    }
}
