//! The `Session` / `PreparedQuery` facade: one object that owns the
//! database and the whole pipeline.
//!
//! The paper's pipeline — translate `Q ↦ (Q⁺, Q★)`, run the Section 7
//! rewrite passes, plan, execute — used to be four disconnected entry points
//! (`CertainRewriter`, `PassManager`, `PhysicalPlanner`, `Engine`), each
//! re-wired by every caller and re-run on every execution. A [`Session`]
//! wires them once:
//!
//! * [`Session::prepare`] runs rewrite → pass pipeline → physical planning
//!   **once** and returns a [`PreparedQuery`] that can be executed many
//!   times; prepared plans live in an LRU [plan cache](certus_plan::cache)
//!   keyed on `(expression fingerprint, certainty, schema epoch, thread
//!   count)` with hit/miss counters ([`Session::cache_stats`]);
//! * [`Certainty`] selects which translation(s) run: the plain SQL query,
//!   the certain-answer rewriting `Q⁺`, the possible-answer rewriting `Q★`,
//!   or all of them ([`Certainty::Both`]), in which case the [`AnswerSet`]
//!   carries the certain/possible breakdown of the SQL answer;
//! * mutating the database (via [`Session::database_mut`]) bumps its schema
//!   epoch, which invalidates cached plans and the session's lazily computed
//!   [`StatisticsCatalog`]; executing a stale [`PreparedQuery`] fails with
//!   [`CertusError::StalePlan`] instead of returning answers from a plan
//!   built for a different database;
//! * every method returns [`certus::Result`](crate::Result), so callers
//!   handle one error type for all five layers.

use crate::error::{CertusError, Result};
use certus_algebra::{NullSemantics, RaExpr};
use certus_core::metrics::AnswerBreakdown;
use certus_core::{CertainRewriter, ConditionDialect};
use certus_data::{Database, Relation};
use certus_engine::{AnalyzedPlan, CompiledPlan, Engine, EngineConfig, QueryProfile};
use certus_obs::metrics::{registry, Counter, Histogram};
use certus_obs::{names, Timer};
use certus_plan::cache::{CacheStats, PlanCache, PlanKey};
use certus_plan::physical::{heuristic_plan_with, ExplainPlan, PhysicalExpr, PhysicalPlanner};
use certus_plan::StatisticsCatalog;
use std::sync::{Arc, Mutex, OnceLock};

/// Which answers a query should be prepared to produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Certainty {
    /// Evaluate the query as written, with plain SQL semantics — may return
    /// false positives on incomplete databases.
    Plain,
    /// Evaluate the certain-answer rewriting `Q⁺` (Theorem 1: every returned
    /// tuple is a certain answer).
    CertainPlus,
    /// Evaluate the possible-answer rewriting `Q★` (every tuple that could
    /// be an answer under some interpretation of the nulls).
    PossibleStar,
    /// Evaluate all three and break the SQL answer down into certain answers
    /// and mere possibilities ([`AnswerSet::breakdown`]).
    Both,
}

impl Certainty {
    /// Stable tag used in plan-cache keys.
    fn variant(self) -> u8 {
        match self {
            Certainty::Plain => 0,
            Certainty::CertainPlus => 1,
            Certainty::PossibleStar => 2,
            Certainty::Both => 3,
        }
    }

    fn wants_plain(self) -> bool {
        matches!(self, Certainty::Plain | Certainty::Both)
    }

    fn wants_certain(self) -> bool {
        matches!(self, Certainty::CertainPlus | Certainty::Both)
    }

    fn wants_possible(self) -> bool {
        matches!(self, Certainty::PossibleStar | Certainty::Both)
    }
}

/// Which physical planner a session uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlannerKind {
    /// The statistics-free heuristic planner — the same choices
    /// `Engine::execute` makes, no statistics scan needed. The default.
    #[default]
    Heuristic,
    /// The cost-based [`PhysicalPlanner`] over the session's lazily computed
    /// (and epoch-invalidated) [`StatisticsCatalog`].
    CostBased,
}

/// Builder for a [`Session`]; obtained from [`Session::builder`] (owned
/// database) or [`Session::builder_over`] (shared snapshot).
#[derive(Debug)]
pub struct SessionBuilder {
    db: Arc<Database>,
    semantics: NullSemantics,
    config: EngineConfig,
    planner: PlannerKind,
    cache_capacity: usize,
    cache: Option<SharedPlanCache>,
    pool: Option<Arc<certus_exec::Pool>>,
    cancel: Option<certus_exec::CancelToken>,
}

impl SessionBuilder {
    /// The null semantics conditions are evaluated under. This also selects
    /// the matching condition-translation dialect: SQL three-valued
    /// semantics pair with the SQL-adjusted dialect (the paper's Section 7
    /// pairing), naive semantics with the theoretical dialect.
    pub fn semantics(mut self, semantics: NullSemantics) -> Self {
        self.semantics = semantics;
        self
    }

    /// Worker threads the engine may fan out to (1 = serial; plans carry no
    /// exchange operators). Leaves the rest of the engine configuration
    /// untouched.
    pub fn threads(mut self, threads: usize) -> Self {
        self.config.threads = threads.max(1);
        self
    }

    /// Replace the whole engine configuration (thread count and parallel
    /// floor).
    pub fn config(mut self, config: EngineConfig) -> Self {
        self.config = config;
        self
    }

    /// Which physical planner prepared queries go through.
    pub fn planner(mut self, planner: PlannerKind) -> Self {
        self.planner = planner;
        self
    }

    /// Capacity of the LRU plan cache (clamped to ≥ 1). Ignored when a
    /// shared cache is injected via [`SessionBuilder::plan_cache`].
    pub fn cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Share a plan cache with other sessions instead of using a private
    /// one. All sharers hit the same LRU, so N sessions preparing the same
    /// query compile it once. Cache keys carry the expression fingerprint,
    /// certainty, semantics, planner kind, schema epoch and thread count, so
    /// sessions with different configurations can safely share one cache —
    /// as long as they run over the same database *lineage* (epochs of
    /// unrelated databases are not comparable).
    pub fn plan_cache(mut self, cache: SharedPlanCache) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Worker pool executions schedule their parallel tasks on. Sessions
    /// share the process-wide [`certus::exec::global`](certus_exec::global)
    /// pool by default — set this only to isolate a session onto a private
    /// pool (e.g. to cap its CPU share, or in tests that assert pool
    /// behavior). The pool's width bounds *scheduling*, not plan shapes;
    /// [`SessionBuilder::threads`] remains the planning-side fan-out.
    pub fn worker_pool(mut self, pool: Arc<certus_exec::Pool>) -> Self {
        self.pool = Some(pool);
        self
    }

    /// Cooperative cancellation for every execution this session runs. The
    /// engine checks the token at morsel boundaries (operator entries and
    /// parallel partition starts) and surfaces
    /// [`CertusError`] wrapping
    /// `AlgebraError::Cancelled` once it trips. The server builds one
    /// session per request and derives the token from the request's
    /// deadline; embedders can share a token across sessions to cancel a
    /// whole batch.
    pub fn cancel_token(mut self, token: certus_exec::CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Build the session.
    pub fn build(self) -> Session {
        let dialect = match self.semantics {
            NullSemantics::Sql => ConditionDialect::Sql,
            NullSemantics::Naive => ConditionDialect::Theoretical,
        };
        Session {
            db: self.db,
            semantics: self.semantics,
            config: self.config,
            planner: self.planner,
            rewriter: CertainRewriter { dialect, ..CertainRewriter::default() },
            cache: self.cache.unwrap_or_else(|| SharedPlanCache::new(self.cache_capacity)),
            stats: Mutex::new(None),
            pool: self.pool,
            cancel: self.cancel,
        }
    }
}

/// A plan + compiled-plan cache shareable across sessions (and threads).
///
/// Cloning is cheap and every clone refers to the same LRU. Inject into
/// sessions with [`SessionBuilder::plan_cache`]; a session built without one
/// gets a private instance, so single-session behavior is unchanged. Keys
/// include the certainty, null semantics, planner kind, schema epoch and
/// thread count next to the expression fingerprint, so differently
/// configured sessions never collide — share one cache only across sessions
/// over the same database lineage, where schema epochs are comparable.
#[derive(Debug, Clone)]
pub struct SharedPlanCache {
    inner: Arc<Mutex<PlanCache<Arc<PreparedPlans>>>>,
}

impl SharedPlanCache {
    /// A shared cache holding up to `capacity` prepared plans (clamped ≥ 1).
    pub fn new(capacity: usize) -> Self {
        SharedPlanCache { inner: Arc::new(Mutex::new(PlanCache::new(capacity))) }
    }

    /// A shared cache with the default capacity.
    pub fn with_default_capacity() -> Self {
        SharedPlanCache::new(PlanCache::<()>::DEFAULT_CAPACITY)
    }

    /// Snapshot of the cache's counters (hits, misses, evictions, epoch
    /// invalidations, current entries) across *all* sharing sessions.
    pub fn stats(&self) -> CacheStats {
        self.lock().stats()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, PlanCache<Arc<PreparedPlans>>> {
        self.inner.lock().expect("plan cache lock poisoned")
    }
}

/// Internal: which answer a prepared physical plan produces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AnswerRole {
    Plain,
    Certain,
    Possible,
}

/// Internal: the cached product of one `prepare` call — every physical plan
/// the chosen [`Certainty`] needs, fully planned **and compiled** into the
/// engine's native operator runtime (schemas inferred, column names
/// resolved, conditions compiled to positional predicates).
#[derive(Debug)]
struct PreparedPlans {
    parts: Vec<(AnswerRole, CompiledPlan)>,
}

/// A query prepared by [`Session::prepare`]: translation, rewrite-pass
/// pipeline, physical planning and operator compilation already done.
/// Executing it ([`Session::execute_prepared`]) performs zero planning *and
/// zero compilation* work — the engine runs the stored compiled operator
/// trees directly, with no schema inference, no column-name resolution and
/// no logical-expression reconstruction per execution. Cloning is cheap (the
/// plans are shared), and a prepared query outlives cache eviction.
#[derive(Debug, Clone)]
pub struct PreparedQuery {
    certainty: Certainty,
    epoch: u64,
    plans: Arc<PreparedPlans>,
}

impl PreparedQuery {
    /// The certainty variant this query was prepared for.
    pub fn certainty(&self) -> Certainty {
        self.certainty
    }

    /// The schema epoch the plans were built against. Executing against a
    /// database at a different epoch fails with [`CertusError::StalePlan`].
    pub fn schema_epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of physical plans behind this query (1, or 3 for
    /// [`Certainty::Both`]).
    pub fn plan_count(&self) -> usize {
        self.plans.parts.len()
    }
}

/// The answers produced by executing a query under a [`Certainty`]. Only the
/// relations the certainty asked for are present; [`AnswerSet::relation`]
/// returns the primary one.
#[derive(Debug, Clone)]
pub struct AnswerSet {
    /// The certainty the query ran under.
    pub certainty: Certainty,
    /// The plain SQL answer ([`Certainty::Plain`] / [`Certainty::Both`]).
    pub plain: Option<Relation>,
    /// The certain answers from `Q⁺` ([`Certainty::CertainPlus`] /
    /// [`Certainty::Both`]).
    pub certain: Option<Relation>,
    /// The possible answers from `Q★` ([`Certainty::PossibleStar`] /
    /// [`Certainty::Both`]).
    pub possible: Option<Relation>,
    /// For [`Certainty::Both`]: the SQL answer broken down into certain
    /// answers and false positives (tuples that are merely possible).
    pub breakdown: Option<AnswerBreakdown>,
}

impl AnswerSet {
    /// The primary relation of this answer set: the plain answer for
    /// [`Certainty::Plain`], the certain answers for
    /// [`Certainty::CertainPlus`] and [`Certainty::Both`], the possible
    /// answers for [`Certainty::PossibleStar`].
    pub fn relation(&self) -> &Relation {
        let primary = match self.certainty {
            Certainty::Plain => self.plain.as_ref(),
            Certainty::CertainPlus | Certainty::Both => self.certain.as_ref(),
            Certainty::PossibleStar => self.possible.as_ref(),
        };
        primary.expect("answer set always carries its primary relation")
    }

    /// Number of tuples in the primary relation.
    pub fn len(&self) -> usize {
        self.relation().len()
    }

    /// Whether the primary relation is empty.
    pub fn is_empty(&self) -> bool {
        self.relation().is_empty()
    }
}

/// A session over an incomplete database: owns the [`Database`], the null
/// semantics, the engine configuration, the planner choice, a lazily
/// computed statistics catalog and an LRU plan cache.
///
/// ```
/// use certus::{Certainty, RaExpr, Session};
/// use certus::algebra::builder::eq;
/// use certus::data::{builder::rel, Database, Value};
/// use certus::data::null::NullId;
///
/// let mut db = Database::new();
/// db.insert_relation("r", rel(&["a"], vec![vec![Value::Int(1)]]));
/// db.insert_relation("s", rel(&["b"], vec![vec![Value::Null(NullId(1))]]));
/// let q = RaExpr::relation("r").anti_join(RaExpr::relation("s"), eq("a", "b"));
///
/// let session = Session::new(db);
/// // Plain SQL evaluation returns the false positive {1}…
/// assert_eq!(session.execute(&q, Certainty::Plain).unwrap().len(), 1);
/// // …the certainty-preserving rewriting returns only correct answers, and
/// // the prepared query re-executes without any planning work.
/// let prepared = session.prepare(&q, Certainty::CertainPlus).unwrap();
/// assert!(session.execute_prepared(&prepared).unwrap().is_empty());
/// ```
#[derive(Debug)]
pub struct Session {
    db: Arc<Database>,
    semantics: NullSemantics,
    config: EngineConfig,
    planner: PlannerKind,
    rewriter: CertainRewriter,
    cache: SharedPlanCache,
    stats: Mutex<Option<(u64, Arc<StatisticsCatalog>)>>,
    pool: Option<Arc<certus_exec::Pool>>,
    cancel: Option<certus_exec::CancelToken>,
}

impl Session {
    /// A session with the default configuration: SQL semantics, the
    /// environment-driven engine configuration ([`EngineConfig::from_env`]),
    /// the heuristic planner, and a plan cache of
    /// [`PlanCache::<()>::DEFAULT_CAPACITY`] entries.
    pub fn new(db: Database) -> Self {
        Session::builder(db).build()
    }

    /// Start building a session over an owned database.
    pub fn builder(db: Database) -> SessionBuilder {
        Session::builder_over(Arc::new(db))
    }

    /// Start building a session over a *shared* database handle — typically
    /// a pinned snapshot from
    /// [`certus::data::snapshot::SnapshotStore`](certus_data::snapshot::SnapshotStore).
    /// The session holds the `Arc` without copying any data; as long as it
    /// never calls [`Session::database_mut`], it shares every relation with
    /// the other holders.
    pub fn builder_over(db: Arc<Database>) -> SessionBuilder {
        SessionBuilder {
            db,
            semantics: NullSemantics::Sql,
            config: EngineConfig::from_env(),
            planner: PlannerKind::default(),
            cache_capacity: PlanCache::<()>::DEFAULT_CAPACITY,
            cache: None,
            pool: None,
            cancel: None,
        }
    }

    /// The session's database.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Mutable access to the database. Any mutation done through this bumps
    /// the database's schema epoch, invalidating cached plans, statistics,
    /// and outstanding [`PreparedQuery`]s. If the database handle is shared
    /// (built via [`Session::builder_over`]), this copies it first
    /// (copy-on-write), so the other holders never observe the mutation.
    pub fn database_mut(&mut self) -> &mut Database {
        Arc::make_mut(&mut self.db)
    }

    /// Consume the session, returning the database (copied only if the
    /// handle is still shared with another holder).
    pub fn into_database(self) -> Database {
        Arc::try_unwrap(self.db).unwrap_or_else(|shared| (*shared).clone())
    }

    /// The null semantics conditions are evaluated under.
    pub fn semantics(&self) -> NullSemantics {
        self.semantics
    }

    /// The engine configuration executions run with.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The database's current schema epoch.
    pub fn schema_epoch(&self) -> u64 {
        self.db.schema_epoch()
    }

    /// Snapshot of the plan cache's counters (hits, misses, evictions,
    /// epoch invalidations, current entries).
    ///
    /// The same counters are mirrored process-wide into the
    /// [`certus::obs`](certus_obs) metrics registry under the
    /// `plan_cache.*` names, so they also appear in
    /// [`registry().snapshot()`](certus_obs::metrics::registry) next to the
    /// engine and interner metrics:
    ///
    /// ```
    /// # use certus::{Certainty, RaExpr, Session};
    /// # use certus::data::{builder::rel, Database, Value};
    /// # let mut db = Database::new();
    /// # db.insert_relation("r", rel(&["a"], vec![vec![Value::Int(1)]]));
    /// # let session = Session::new(db);
    /// let before = certus::obs::registry().snapshot();
    /// session.prepare(&RaExpr::relation("r"), Certainty::Plain).unwrap();
    /// let stats = session.cache_stats();
    /// assert_eq!(stats.misses, 1);
    /// let delta = certus::obs::registry().snapshot().delta_since(&before);
    /// assert_eq!(delta.counter(certus::obs::names::PLAN_CACHE_MISSES), 1);
    /// ```
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// The statistics catalog for the database's current state, computed on
    /// first use and recomputed when the schema epoch moves.
    pub fn statistics(&self) -> Arc<StatisticsCatalog> {
        let epoch = self.db.schema_epoch();
        let mut guard = self.stats.lock().expect("statistics lock poisoned");
        match guard.as_ref() {
            Some((cached_epoch, stats)) if *cached_epoch == epoch => stats.clone(),
            _ => {
                let stats = Arc::new(StatisticsCatalog::analyze(&self.db));
                *guard = Some((epoch, stats.clone()));
                stats
            }
        }
    }

    /// Prepare a query: run the translation selected by `certainty`, the
    /// rewrite-pass pipeline, and physical planning — once. The result is
    /// cached (keyed on the expression, the certainty, the schema epoch and
    /// the thread count), so preparing the same query again is a cache hit
    /// that does no planning work at all.
    pub fn prepare(&self, query: &RaExpr, certainty: Certainty) -> Result<PreparedQuery> {
        let epoch = self.db.schema_epoch();
        let key =
            PlanKey::new(query.clone(), self.key_variant(certainty), epoch, self.config.threads);
        {
            let mut cache = self.cache.lock();
            cache.retain_epoch(epoch);
            if let Some(plans) = cache.get(&key) {
                return Ok(PreparedQuery { certainty, epoch, plans });
            }
        }
        // Plan outside the lock: concurrent sessions-sharers keep preparing
        // other queries in parallel, and a panicking pass cannot poison the
        // cache. Two threads racing on the same key plan twice and the later
        // insert wins — wasted work, never a wrong plan.
        let plans = Arc::new(self.build_plans(query, certainty)?);
        self.cache.lock().insert(key, plans.clone());
        Ok(PreparedQuery { certainty, epoch, plans })
    }

    /// The plan-cache variant tag for this session's configuration: the
    /// certainty in the low two bits, the null semantics in bit 2 and the
    /// planner kind in bit 3 — so sessions with different semantics or
    /// planners sharing one [`SharedPlanCache`] never exchange plans.
    fn key_variant(&self, certainty: Certainty) -> u8 {
        let semantics = match self.semantics {
            NullSemantics::Sql => 0u8,
            NullSemantics::Naive => 1u8,
        };
        let planner = match self.planner {
            PlannerKind::Heuristic => 0u8,
            PlannerKind::CostBased => 1u8,
        };
        certainty.variant() | (semantics << 2) | (planner << 3)
    }

    /// Execute a prepared query. Performs **zero** rewrite or planning work:
    /// the engine runs the stored physical plans directly. Fails with
    /// [`CertusError::StalePlan`] if the database's schema epoch moved since
    /// the query was prepared.
    ///
    /// Every execution bumps the `session.executions` counter and records
    /// its wall time into the `session.execute_ns` histogram of the
    /// process-wide [`certus::obs`](certus_obs) metrics registry.
    pub fn execute_prepared(&self, prepared: &PreparedQuery) -> Result<AnswerSet> {
        Ok(self.run_prepared(prepared, false)?.0)
    }

    /// [`Session::execute_prepared`] with instrumentation: returns the
    /// answers together with one [`QueryProfile`] per physical plan, in the
    /// same order as the plans ran (plain, then certain, then possible —
    /// only the roles the prepared [`Certainty`] asked for). Use
    /// [`Session::explain_analyze`] instead when the estimate-vs-actual
    /// annotated plan tree is wanted rather than the raw profiles.
    pub fn execute_prepared_profiled(
        &self,
        prepared: &PreparedQuery,
    ) -> Result<(AnswerSet, Vec<QueryProfile>)> {
        self.run_prepared(prepared, true)
    }

    /// Shared body of the prepared-execution paths. When `profiled`, every
    /// part runs through the engine's instrumented walk and its
    /// [`QueryProfile`] is collected; otherwise the profile vector comes
    /// back empty and execution pays no instrumentation cost.
    fn run_prepared(
        &self,
        prepared: &PreparedQuery,
        profiled: bool,
    ) -> Result<(AnswerSet, Vec<QueryProfile>)> {
        static EXECUTIONS: OnceLock<Arc<Counter>> = OnceLock::new();
        static EXECUTE_NS: OnceLock<Arc<Histogram>> = OnceLock::new();
        let current = self.db.schema_epoch();
        if prepared.epoch != current {
            return Err(CertusError::StalePlan {
                prepared_epoch: prepared.epoch,
                current_epoch: current,
            });
        }
        let timer = Timer::start();
        let engine = self.engine();
        let (mut plain, mut certain, mut possible) = (None, None, None);
        let mut profiles = Vec::new();
        for (role, plan) in &prepared.plans.parts {
            let rel = if profiled {
                let (rel, profile) = engine.execute_compiled_profiled(plan)?;
                profiles.push(profile);
                rel
            } else {
                engine.execute_compiled(plan)?
            };
            match role {
                AnswerRole::Plain => plain = Some(rel),
                AnswerRole::Certain => certain = Some(rel),
                AnswerRole::Possible => possible = Some(rel),
            }
        }
        let breakdown = match (&plain, &certain) {
            (Some(p), Some(c)) => Some(AnswerBreakdown::new(p, c)),
            _ => None,
        };
        EXECUTIONS.get_or_init(|| registry().counter(names::SESSION_EXECUTIONS)).incr();
        EXECUTE_NS
            .get_or_init(|| registry().histogram(names::SESSION_EXECUTE_NS))
            .record(timer.elapsed_ns());
        let answers =
            AnswerSet { certainty: prepared.certainty, plain, certain, possible, breakdown };
        Ok((answers, profiles))
    }

    /// An engine over the session's database, configuration, and (when one
    /// was injected via [`SessionBuilder::worker_pool`]) private worker pool.
    fn engine(&self) -> Engine<'_> {
        let mut engine = Engine::configured(&self.db, self.semantics, self.config.clone());
        if let Some(pool) = &self.pool {
            engine = engine.with_worker_pool(pool.clone());
        }
        if let Some(token) = &self.cancel {
            engine = engine.with_cancel_token(token.clone());
        }
        engine
    }

    /// Prepare (or fetch from the cache) and execute in one call.
    pub fn execute(&self, query: &RaExpr, certainty: Certainty) -> Result<AnswerSet> {
        let prepared = self.prepare(query, certainty)?;
        self.execute_prepared(&prepared)
    }

    /// The statistics-backed `EXPLAIN` tree for the translation `certainty`
    /// selects, with per-node row/cost estimates (the session's statistics
    /// catalog is computed on first use, which scans every table once). The
    /// tree always comes from the cost-based planner: for
    /// [`PlannerKind::CostBased`] sessions it is exactly the plan
    /// [`Session::execute`] runs, while [`PlannerKind::Heuristic`] sessions
    /// execute the statistics-free heuristic plan, whose algorithm choices
    /// can differ where statistics disagree with the heuristics. For
    /// [`Certainty::Both`] this explains the certain-answer plan `Q⁺` — the
    /// arm the breakdown is about.
    pub fn explain(&self, query: &RaExpr, certainty: Certainty) -> Result<ExplainPlan> {
        let expr = match certainty {
            Certainty::Plain => query.clone(),
            Certainty::CertainPlus | Certainty::Both => {
                self.rewriter.rewrite_plus(query, &*self.db)?
            }
            Certainty::PossibleStar => self.rewriter.rewrite_star(query, &*self.db)?,
        };
        let stats = self.statistics();
        let planner =
            PhysicalPlanner::with_parallelism(&*self.db, &stats, self.config.parallelism());
        Ok(planner.explain(&expr)?)
    }

    /// `EXPLAIN ANALYZE`: plan the translation `certainty` selects, execute
    /// it instrumented, and return the plan tree with the planner's
    /// *estimates* and the execution's *actuals* side by side — per-operator
    /// output rows, wall time, and `vec` / `row-fallback` path tags. Like
    /// [`Session::explain`] this always analyzes the cost-based plan (so the
    /// estimates and actuals describe the same tree), executed with the
    /// session's semantics and engine configuration. The result renders as
    /// text via `Display` and as JSON via [`AnalyzedPlan::to_json`]; nodes
    /// whose actual cardinality strays far from the estimate are flagged
    /// ([`AnalyzedPlan::diverged`]).
    ///
    /// ```
    /// use certus::{Certainty, RaExpr, Session};
    /// use certus::algebra::builder::eq;
    /// use certus::data::{builder::rel, Database, Value};
    /// use certus::data::null::NullId;
    ///
    /// let mut db = Database::new();
    /// db.insert_relation("r", rel(&["a"], vec![vec![Value::Int(1)]]));
    /// db.insert_relation("s", rel(&["b"], vec![vec![Value::Null(NullId(1))]]));
    /// let q = RaExpr::relation("r").anti_join(RaExpr::relation("s"), eq("a", "b"));
    ///
    /// let session = Session::new(db);
    /// let analyzed = session.explain_analyze(&q, Certainty::CertainPlus).unwrap();
    /// assert_eq!(analyzed.rows_act, 0); // no answer is certain with ⊥ in s
    /// assert!(analyzed.to_string().contains("act=")); // estimates + actuals
    /// ```
    pub fn explain_analyze(&self, query: &RaExpr, certainty: Certainty) -> Result<AnalyzedPlan> {
        let expr = match certainty {
            Certainty::Plain => query.clone(),
            Certainty::CertainPlus | Certainty::Both => {
                self.rewriter.rewrite_plus(query, &*self.db)?
            }
            Certainty::PossibleStar => self.rewriter.rewrite_star(query, &*self.db)?,
        };
        let stats = self.statistics();
        let planner =
            PhysicalPlanner::with_parallelism(&*self.db, &stats, self.config.parallelism());
        let (phys, explain) = planner.plan_explained(&expr)?;
        let compiled = CompiledPlan::compile(&phys, &self.db)?;
        let engine = self.engine();
        let (_, profile) = engine.execute_compiled_profiled(&compiled)?;
        Ok(certus_engine::annotate(&phys, &explain, &profile))
    }

    /// Translate (as required by `certainty`), physically plan and compile
    /// every part of a prepared query.
    fn build_plans(&self, query: &RaExpr, certainty: Certainty) -> Result<PreparedPlans> {
        let mut parts = Vec::new();
        if certainty.wants_plain() {
            parts.push((AnswerRole::Plain, self.compile_physical(query)?));
        }
        if certainty.wants_certain() {
            let plus = self.rewriter.rewrite_plus(query, &*self.db)?;
            parts.push((AnswerRole::Certain, self.compile_physical(&plus)?));
        }
        if certainty.wants_possible() {
            let star = self.rewriter.rewrite_star(query, &*self.db)?;
            parts.push((AnswerRole::Possible, self.compile_physical(&star)?));
        }
        Ok(PreparedPlans { parts })
    }

    /// Plan and compile one (already translated) expression: physical
    /// planning picks the algorithms, compilation resolves every schema and
    /// column name once so executions do neither.
    fn compile_physical(&self, expr: &RaExpr) -> Result<CompiledPlan> {
        let plan = self.plan_physical(expr)?;
        Ok(CompiledPlan::compile(&plan, &self.db)?)
    }

    /// Physically plan one (already translated) expression with the
    /// session's planner choice.
    fn plan_physical(&self, expr: &RaExpr) -> Result<PhysicalExpr> {
        match self.planner {
            PlannerKind::Heuristic => {
                Ok(heuristic_plan_with(expr, &*self.db, &self.config.parallelism())?)
            }
            PlannerKind::CostBased => {
                let stats = self.statistics();
                let planner =
                    PhysicalPlanner::with_parallelism(&*self.db, &stats, self.config.parallelism());
                Ok(planner.plan(expr)?)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use certus_algebra::builder::eq;
    use certus_data::builder::rel;
    use certus_data::null::NullId;
    use certus_data::Value;

    fn db() -> Database {
        let mut db = Database::new();
        db.insert_relation(
            "r",
            rel(&["a"], vec![vec![Value::Int(1)], vec![Value::Int(2)], vec![Value::Int(3)]]),
        );
        db.insert_relation(
            "s",
            rel(&["b"], vec![vec![Value::Int(2)], vec![Value::Null(NullId(1))]]),
        );
        db
    }

    fn query() -> RaExpr {
        RaExpr::relation("r").anti_join(RaExpr::relation("s"), eq("a", "b"))
    }

    #[test]
    fn plain_and_certain_answers_differ_as_in_the_paper() {
        let session = Session::new(db());
        let plain = session.execute(&query(), Certainty::Plain).unwrap();
        assert_eq!(plain.len(), 2, "SQL returns the two false positives");
        let certain = session.execute(&query(), Certainty::CertainPlus).unwrap();
        assert!(certain.is_empty(), "no answer is certain with ⊥ in s");
    }

    #[test]
    fn both_reports_the_breakdown() {
        let session = Session::new(db());
        let both = session.execute(&query(), Certainty::Both).unwrap();
        let breakdown = both.breakdown.expect("Both carries a breakdown");
        assert_eq!(breakdown.total, 2);
        assert_eq!(breakdown.certain, 0);
        assert_eq!(breakdown.false_positives, 2);
        assert!(both.plain.is_some() && both.certain.is_some() && both.possible.is_some());
        // The possible answers cover everything SQL returned.
        let possible = both.possible.as_ref().unwrap();
        for t in both.plain.as_ref().unwrap().iter() {
            assert!(possible.contains(t), "SQL answer {t} must be possible");
        }
    }

    #[test]
    fn prepared_queries_hit_the_cache() {
        let session = Session::new(db());
        let first = session.prepare(&query(), Certainty::CertainPlus).unwrap();
        let second = session.prepare(&query(), Certainty::CertainPlus).unwrap();
        assert_eq!(first.plan_count(), 1);
        assert_eq!(second.plan_count(), 1);
        let stats = session.cache_stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        // A different certainty is a different key.
        session.prepare(&query(), Certainty::Both).unwrap();
        assert_eq!(session.cache_stats().misses, 2);
    }

    #[test]
    fn builder_settings_are_exposed() {
        let session = Session::builder(db())
            .semantics(NullSemantics::Naive)
            .threads(3)
            .planner(PlannerKind::CostBased)
            .cache_capacity(2)
            .build();
        assert_eq!(session.semantics(), NullSemantics::Naive);
        assert_eq!(session.config().threads, 3);
        assert_eq!(session.cache_stats().capacity, 2);
        assert_eq!(session.schema_epoch(), session.database().schema_epoch());
        let out = session.execute(&query(), Certainty::Plain).unwrap();
        // Under naive semantics ⊥ matches nothing but itself: 1 and 3 survive
        // the anti-join, and 2 is matched outright.
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn explain_produces_a_tree() {
        let session = Session::new(db());
        let plan = session.explain(&query(), Certainty::CertainPlus).unwrap();
        assert!(plan.size() >= 1);
        assert!(!plan.to_string().is_empty());
    }

    #[test]
    fn explain_analyze_mirrors_explain_and_carries_actuals() {
        let session = Session::new(db());
        let analyzed = session.explain_analyze(&query(), Certainty::CertainPlus).unwrap();
        let explain = session.explain(&query(), Certainty::CertainPlus).unwrap();
        assert_eq!(analyzed.node_count(), explain.size(), "one annotated node per explain node");
        let expected = session.execute(&query(), Certainty::CertainPlus).unwrap().len() as u64;
        assert_eq!(analyzed.rows_act, expected);
        assert!(analyzed.to_string().contains("act="));
        assert!(analyzed.to_json().contains("\"rows_act\""));
        // Plain evaluation returns the two false positives; the actuals see
        // them too.
        let plain = session.explain_analyze(&query(), Certainty::Plain).unwrap();
        assert_eq!(plain.rows_act, 2);
    }

    #[test]
    fn profiled_prepared_execution_returns_one_profile_per_plan() {
        let session = Session::new(db());
        let prepared = session.prepare(&query(), Certainty::Both).unwrap();
        let (answers, profiles) = session.execute_prepared_profiled(&prepared).unwrap();
        assert_eq!(profiles.len(), prepared.plan_count());
        // Profiles come back in plan order: plain, certain, possible.
        let expected = [
            answers.plain.as_ref().unwrap().len(),
            answers.certain.as_ref().unwrap().len(),
            answers.possible.as_ref().unwrap().len(),
        ];
        for (profile, rows) in profiles.iter().zip(expected) {
            assert_eq!(profile.rows_out, rows as u64);
            assert!(profile.node_count() >= 1);
        }
        // The unprofiled path agrees.
        let plain = session.execute_prepared(&prepared).unwrap();
        assert_eq!(plain.len(), answers.len());
    }

    #[test]
    fn shared_cache_compiles_once_across_sessions() {
        let shared = SharedPlanCache::new(16);
        let db = Arc::new(db());
        let a = Session::builder_over(db.clone()).plan_cache(shared.clone()).build();
        let b = Session::builder_over(db).plan_cache(shared.clone()).build();
        a.prepare(&query(), Certainty::CertainPlus).unwrap();
        let prepared = b.prepare(&query(), Certainty::CertainPlus).unwrap();
        let stats = shared.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1), "second session reuses the plan");
        assert!(b.execute_prepared(&prepared).unwrap().is_empty());
    }

    #[test]
    fn shared_cache_isolates_semantics_and_planner() {
        let shared = SharedPlanCache::new(16);
        let db = Arc::new(db());
        let sql = Session::builder_over(db.clone()).plan_cache(shared.clone()).build();
        let naive = Session::builder_over(db.clone())
            .semantics(NullSemantics::Naive)
            .plan_cache(shared.clone())
            .build();
        let costed = Session::builder_over(db)
            .planner(PlannerKind::CostBased)
            .plan_cache(shared.clone())
            .build();
        sql.prepare(&query(), Certainty::Plain).unwrap();
        naive.prepare(&query(), Certainty::Plain).unwrap();
        costed.prepare(&query(), Certainty::Plain).unwrap();
        assert_eq!(shared.stats().misses, 3, "every configuration plans separately");
        // Semantics must not leak through the shared cache: naive ⊥-matching
        // differs from SQL three-valued logic on the anti-join.
        assert_eq!(sql.execute(&query(), Certainty::Plain).unwrap().len(), 2);
        assert_eq!(naive.execute(&query(), Certainty::Plain).unwrap().len(), 2);
    }

    #[test]
    fn sessions_over_one_snapshot_share_relations() {
        let db = Arc::new(db());
        let mut a = Session::builder_over(db.clone()).build();
        let b = Session::builder_over(db.clone()).build();
        // Mutating one session copies the database for it (copy-on-write)…
        a.database_mut().relation_mut("r").unwrap().insert_values(vec![Value::Int(9)]).unwrap();
        assert_eq!(a.database().relation("r").unwrap().len(), 4);
        // …while the other session and the original handle are untouched.
        assert_eq!(b.database().relation("r").unwrap().len(), 3);
        assert_eq!(db.relation("r").unwrap().len(), 3);
    }

    #[test]
    fn executions_land_in_the_metrics_registry() {
        use certus_obs::metrics::registry;
        let before = registry().snapshot();
        let session = Session::new(db());
        session.execute(&query(), Certainty::CertainPlus).unwrap();
        session.execute(&query(), Certainty::CertainPlus).unwrap();
        let delta = registry().snapshot().delta_since(&before);
        // ≥, not ==: the registry is process-wide and other tests run
        // concurrently in this process.
        assert!(delta.counter(names::SESSION_EXECUTIONS) >= 2);
        let hist = delta.histogram(names::SESSION_EXECUTE_NS);
        assert!(hist.is_some_and(|h| h.count >= 2));
    }
}
