//! # certus
//!
//! Certain-answer SQL evaluation on incomplete databases — a Rust
//! reproduction of Guagliardo & Libkin, *Making SQL Queries Correct on
//! Incomplete Databases: A Feasibility Study* (PODS 2016).
//!
//! This facade crate re-exports the workspace:
//!
//! * [`data`] — values, nulls, 3VL, tuples, relations, incomplete databases;
//! * [`algebra`] — the relational-algebra IR and reference evaluator;
//! * [`core`] — the certain-answer translations `Q⁺`/`Q★`, the Figure 2
//!   baseline, the exact oracle and metrics;
//! * [`plan`] — the planning subsystem: the rewrite-pass pipeline (including
//!   the paper's Section 7 optimizations), statistics catalog, cost model and
//!   cost-based physical planner;
//! * [`engine`] — hash-join based physical execution of the planner's plans;
//! * [`obs`] — observability: the process-wide metrics registry,
//!   per-execution [`QueryProfile`]s and the `EXPLAIN ANALYZE`
//!   ([`Session::explain_analyze`]) estimate-vs-actual trees;
//! * [`tpch`] — the TPC-H substrate, the paper's queries Q1–Q4 and the
//!   false-positive detectors.
//!
//! The recommended entry point is the [`Session`] facade: it owns the
//! database, wires translation → rewrite-pass pipeline → physical planning →
//! execution behind one object, caches prepared plans, and returns one error
//! type ([`CertusError`]) for all layers:
//!
//! ```
//! use certus::{Certainty, RaExpr, Session};
//! use certus::algebra::builder::eq;
//! use certus::data::{builder::rel, Database, Value};
//! use certus::data::null::NullId;
//!
//! let mut db = Database::new();
//! db.insert_relation("r", rel(&["a"], vec![vec![Value::Int(1)]]));
//! db.insert_relation("s", rel(&["b"], vec![vec![Value::Null(NullId(1))]]));
//! let q = RaExpr::relation("r").anti_join(RaExpr::relation("s"), eq("a", "b"));
//!
//! let session = Session::new(db);
//! // Plain SQL evaluation returns the false positive {1}…
//! assert_eq!(session.execute(&q, Certainty::Plain).unwrap().len(), 1);
//! // …while the certainty-preserving rewriting returns only correct
//! // answers. `prepare` plans once; re-execution does no planning work.
//! let prepared = session.prepare(&q, Certainty::CertainPlus).unwrap();
//! assert!(session.execute_prepared(&prepared).unwrap().is_empty());
//! assert_eq!(session.cache_stats().misses, 2); // one per certainty
//! ```
//!
//! The lower-level pieces (`CertainRewriter`, `PassManager`,
//! `PhysicalPlanner`, `Engine`) remain available for ablation experiments
//! and fine-grained control.

pub mod error;
pub mod session;

pub use certus_algebra as algebra;
pub use certus_core as core;
pub use certus_data as data;
pub use certus_engine as engine;
pub use certus_exec as exec;
pub use certus_obs as obs;
pub use certus_plan as plan;
pub use certus_tpch as tpch;

pub use certus_algebra::{Condition, NullSemantics, RaExpr};
pub use certus_core::{CertainOracle, CertainRewriter, ConditionDialect};
pub use certus_data::{Database, Relation, Tuple, Value};
pub use certus_engine::{Engine, EngineConfig};
pub use certus_obs::{AnalyzedPlan, MetricsSnapshot, QueryProfile};
pub use certus_plan::{Parallelism, PassManager, PhysicalPlanner, Planner, StatisticsCatalog};
pub use error::{CertusError, Result};
pub use session::{
    AnswerSet, Certainty, PlannerKind, PreparedQuery, Session, SessionBuilder, SharedPlanCache,
};

/// The semantic version of the certus workspace.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

#[cfg(test)]
mod tests {
    #[test]
    fn version_is_exposed() {
        assert!(!super::VERSION.is_empty());
    }
}
