//! The unified error type of the facade.
//!
//! Every layer of the workspace has its own error enum — [`DataError`],
//! [`AlgebraError`] (which is also what the engine's execution paths
//! return), [`CoreError`], [`PlanError`] — and they already lower into each
//! other in ad-hoc ways. [`CertusError`] is the single type the
//! [`Session`](crate::Session) facade surfaces: every layer error converts
//! into it with `?`, so application code matches on one enum (or just
//! prints it) instead of knowing which crate a failure came from.

use certus_algebra::AlgebraError;
use certus_core::CoreError;
use certus_data::DataError;
use certus_plan::PlanError;
use std::fmt;

/// Any error the certus facade can produce.
#[derive(Debug, Clone, PartialEq)]
pub enum CertusError {
    /// An error from the data layer (schemas, tuples, relations).
    Data(DataError),
    /// An error from the algebra layer — schema inference, the reference
    /// evaluator, and the engine's execution paths all report this type.
    Algebra(AlgebraError),
    /// An error from the translation layer (certain-answer rewritings,
    /// oracle).
    Core(CoreError),
    /// An error from the planning layer (rewrite passes, physical planning).
    Plan(PlanError),
    /// A [`PreparedQuery`](crate::PreparedQuery) was executed against a
    /// database whose schema epoch moved past the one it was planned at;
    /// re-prepare the query to get a fresh plan.
    StalePlan {
        /// The schema epoch the query was prepared at.
        prepared_epoch: u64,
        /// The database's current schema epoch.
        current_epoch: u64,
    },
}

impl CertusError {
    /// Whether this error is a cooperative cancellation (deadline expiry or
    /// an explicit cancel), as opposed to a genuine failure. The server maps
    /// these to its `DeadlineExceeded` wire code.
    pub fn is_cancelled(&self) -> bool {
        matches!(self, CertusError::Algebra(AlgebraError::Cancelled))
    }
}

impl fmt::Display for CertusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CertusError::Data(e) => write!(f, "{e}"),
            CertusError::Algebra(e) => write!(f, "{e}"),
            CertusError::Core(e) => write!(f, "{e}"),
            CertusError::Plan(e) => write!(f, "{e}"),
            CertusError::StalePlan { prepared_epoch, current_epoch } => write!(
                f,
                "prepared query is stale: planned at schema epoch {prepared_epoch}, \
                 database is now at {current_epoch} (re-prepare it)"
            ),
        }
    }
}

impl std::error::Error for CertusError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CertusError::Data(e) => Some(e),
            CertusError::Algebra(e) => Some(e),
            CertusError::Core(e) => Some(e),
            CertusError::Plan(e) => Some(e),
            CertusError::StalePlan { .. } => None,
        }
    }
}

impl From<DataError> for CertusError {
    fn from(e: DataError) -> Self {
        CertusError::Data(e)
    }
}

impl From<AlgebraError> for CertusError {
    fn from(e: AlgebraError) -> Self {
        CertusError::Algebra(e)
    }
}

impl From<CoreError> for CertusError {
    fn from(e: CoreError) -> Self {
        CertusError::Core(e)
    }
}

impl From<PlanError> for CertusError {
    fn from(e: PlanError) -> Self {
        CertusError::Plan(e)
    }
}

/// Result alias every [`Session`](crate::Session) method returns.
pub type Result<T> = std::result::Result<T, CertusError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_layer_error_converts() {
        let e: CertusError = DataError::UnknownTable("t".into()).into();
        assert!(e.to_string().contains("unknown table"));
        let e: CertusError = AlgebraError::Malformed("x".into()).into();
        assert!(e.to_string().contains("malformed"));
        let e: CertusError = CoreError::OutsideFragment("agg".into()).into();
        assert!(e.to_string().contains("fragment"));
        let e: CertusError = PlanError::Invalid("p".into()).into();
        assert!(e.to_string().contains("invalid plan"));
    }

    #[test]
    fn stale_plan_reports_both_epochs() {
        let e = CertusError::StalePlan { prepared_epoch: 3, current_epoch: 5 };
        let msg = e.to_string();
        assert!(msg.contains('3') && msg.contains('5'), "{msg}");
        assert!(std::error::Error::source(&e).is_none());
    }

    #[test]
    fn wrapped_errors_expose_sources() {
        let e: CertusError = DataError::UnknownTable("t".into()).into();
        assert!(std::error::Error::source(&e).is_some());
    }
}
