//! Post-translation rewrite optimizations (Section 7 of the paper).
//!
//! The translations of [`crate::translate`] are correct but can defeat a
//! query optimizer: conditions of the form `A = B OR B IS NULL` inside
//! `NOT EXISTS` subqueries prevent hash joins and lead to "astronomical"
//! plan costs. The paper fixes this with purely syntactic manipulations,
//! reproduced here:
//!
//! * [`prune_null_checks`] — drop `IS NULL` disjuncts (and `IS NOT NULL`
//!   conjuncts) on columns that are declared non-nullable. Sanctioned by
//!   Corollary 1 (it strengthens `θ*` and weakens nothing in `θ**` that could
//!   ever be true).
//! * [`split_or_antijoin`] — the OR-splitting of Section 7: a `NOT EXISTS`
//!   whose condition is a disjunction `∨ᵢ φᵢ` becomes a chain of `NOT EXISTS`
//!   blocks, one per disjunct, each of which is again hash-joinable.
//! * [`simplify_key_antijoin`] — the key-based simplification
//!   `R ⋉̸⇑ S → R − S` when `S ⊆ R` and `R` has a primary key.

use crate::Result;
use certus_algebra::condition::Condition;
use certus_algebra::expr::RaExpr;
use certus_algebra::schema_infer::{output_schema, Catalog};
use certus_data::Schema;

/// Options controlling which optimizations [`optimize`] applies.
#[derive(Debug, Clone, Copy)]
pub struct OptimizeOptions {
    /// Apply [`prune_null_checks`].
    pub prune_nonnullable: bool,
    /// Apply [`split_or_antijoin`].
    pub split_or: bool,
    /// Apply [`split_or_join`] (the "view"/union form of OR-splitting for the
    /// joins *inside* rewritten `NOT EXISTS` subqueries, as used by the
    /// paper's Q⁺4).
    pub split_or_joins: bool,
    /// Apply [`simplify_key_antijoin`].
    pub key_simplify: bool,
    /// Maximum number of disjuncts an anti-join condition may have for
    /// OR-splitting to kick in (prevents exponential blow-up).
    pub max_split: usize,
}

impl Default for OptimizeOptions {
    fn default() -> Self {
        OptimizeOptions {
            prune_nonnullable: true,
            split_or: true,
            split_or_joins: true,
            key_simplify: true,
            max_split: 16,
        }
    }
}

/// Apply all enabled optimizations in the order the paper applies them.
pub fn optimize(expr: &RaExpr, catalog: &dyn Catalog, opts: &OptimizeOptions) -> Result<RaExpr> {
    let mut out = expr.clone();
    if opts.prune_nonnullable {
        out = prune_null_checks(&out, catalog)?;
    }
    if opts.key_simplify {
        out = simplify_key_antijoin(&out, catalog);
    }
    if opts.split_or {
        out = split_or_antijoin(&out, opts.max_split);
    }
    if opts.split_or_joins {
        out = split_or_join(&out, opts.max_split);
    }
    Ok(out)
}

/// OR-splitting for theta-joins: `l ⋈_{φ1 ∨ … ∨ φk} r` is rewritten into the
/// union `(l ⋈_{φ1} r) ∪ … ∪ (l ⋈_{φk} r)`, which is equivalent under set
/// semantics. After the certain-answer translation, join conditions inside
/// `NOT EXISTS` subqueries look like `(A = B OR A IS NULL) ∧ …`; splitting
/// them gives each branch a plain equality the engine can hash on — this is
/// the union/view form the paper uses for Q⁺4 (its `part_view` / `supp_view`
/// are exactly such unions).
pub fn split_or_join(expr: &RaExpr, max_split: usize) -> RaExpr {
    match expr {
        RaExpr::Join { left, right, condition } => {
            let left = split_or_join(left, max_split);
            let right = split_or_join(right, max_split);
            let disjuncts = condition.to_dnf();
            if disjuncts.len() > 1 && disjuncts.len() <= max_split {
                let mut iter = disjuncts.into_iter();
                let first = left.clone().join(right.clone(), iter.next().expect("non-empty"));
                iter.fold(first, |acc, d| acc.union(left.clone().join(right.clone(), d)))
            } else {
                left.join(right, condition.clone())
            }
        }
        other => map_children(other, &mut |c| {
            Ok::<RaExpr, crate::CoreError>(split_or_join(c, max_split))
        })
        .expect("infallible"),
    }
}

/// Simplify `IS NULL` / `IS NOT NULL` atoms over columns that can never be
/// null according to the schema: `col IS NULL → FALSE`, `col IS NOT NULL →
/// TRUE`, followed by Boolean simplification.
pub fn prune_null_checks(expr: &RaExpr, catalog: &dyn Catalog) -> Result<RaExpr> {
    Ok(match expr {
        RaExpr::Select { input, condition } => {
            let new_input = prune_null_checks(input, catalog)?;
            let schema = output_schema(&new_input, catalog).map_err(crate::CoreError::Algebra)?;
            let condition = simplify_nullability(condition, &schema);
            new_input.select(condition)
        }
        RaExpr::Join { left, right, condition } => {
            let l = prune_null_checks(left, catalog)?;
            let r = prune_null_checks(right, catalog)?;
            let schema = output_schema(&l, catalog)
                .map_err(crate::CoreError::Algebra)?
                .concat(&output_schema(&r, catalog).map_err(crate::CoreError::Algebra)?);
            let condition = simplify_nullability(condition, &schema);
            l.join(r, condition)
        }
        RaExpr::SemiJoin { left, right, condition } => {
            let l = prune_null_checks(left, catalog)?;
            let r = prune_null_checks(right, catalog)?;
            let schema = output_schema(&l, catalog)
                .map_err(crate::CoreError::Algebra)?
                .concat(&output_schema(&r, catalog).map_err(crate::CoreError::Algebra)?);
            let condition = simplify_nullability(condition, &schema);
            l.semi_join(r, condition)
        }
        RaExpr::AntiJoin { left, right, condition } => {
            let l = prune_null_checks(left, catalog)?;
            let r = prune_null_checks(right, catalog)?;
            let schema = output_schema(&l, catalog)
                .map_err(crate::CoreError::Algebra)?
                .concat(&output_schema(&r, catalog).map_err(crate::CoreError::Algebra)?);
            let condition = simplify_nullability(condition, &schema);
            l.anti_join(r, condition)
        }
        other => map_children(other, &mut |c| prune_null_checks(c, catalog))?,
    })
}

/// Rebuild a condition replacing null-checks on non-nullable columns with
/// Boolean constants and re-simplifying connectives.
fn simplify_nullability(condition: &Condition, schema: &Schema) -> Condition {
    match condition {
        Condition::IsNull(op) => {
            if let Some(col) = op.as_col() {
                if let Ok(pos) = schema.position_of(col) {
                    if !schema.attr(pos).nullable {
                        return Condition::False;
                    }
                }
            }
            condition.clone()
        }
        Condition::IsNotNull(op) => {
            if let Some(col) = op.as_col() {
                if let Ok(pos) = schema.position_of(col) {
                    if !schema.attr(pos).nullable {
                        return Condition::True;
                    }
                }
            }
            condition.clone()
        }
        Condition::And(a, b) => {
            simplify_nullability(a, schema).and(simplify_nullability(b, schema))
        }
        Condition::Or(a, b) => {
            simplify_nullability(a, schema).or(simplify_nullability(b, schema))
        }
        Condition::Not(inner) => simplify_nullability(inner, schema).not(),
        other => other.clone(),
    }
}

/// OR-splitting of anti-joins: `l ▷_{φ1 ∨ … ∨ φk} r` is rewritten into
/// `(((l ▷_{φ1} r) ▷_{φ2} r) … ) ▷_{φk} r`, which is equivalent (a tuple
/// survives iff it has no match under any disjunct) and lets the physical
/// planner use a hash anti-join for every disjunct that is a conjunction of
/// equalities plus residual predicates.
pub fn split_or_antijoin(expr: &RaExpr, max_split: usize) -> RaExpr {
    match expr {
        RaExpr::AntiJoin { left, right, condition } => {
            let left = split_or_antijoin(left, max_split);
            let right = split_or_antijoin(right, max_split);
            let disjuncts = condition.to_dnf();
            if disjuncts.len() > 1 && disjuncts.len() <= max_split {
                let mut out = left;
                for d in disjuncts {
                    out = out.anti_join(right.clone(), d);
                }
                out
            } else {
                left.anti_join(right, condition.clone())
            }
        }
        other => map_children(other, &mut |c| {
            Ok::<RaExpr, crate::CoreError>(split_or_antijoin(c, max_split))
        })
        .expect("infallible"),
    }
}

/// The key-based simplification of Section 7: `R ⋉̸⇑ S → R − S` whenever `R`
/// is a base relation with a declared primary key and `S` is (structurally
/// guaranteed to be) a subset of `R`.
pub fn simplify_key_antijoin(expr: &RaExpr, catalog: &dyn Catalog) -> RaExpr {
    match expr {
        RaExpr::UnifyAntiSemiJoin { left, right } => {
            let left = simplify_key_antijoin(left, catalog);
            let right = simplify_key_antijoin(right, catalog);
            let has_key = match &left {
                RaExpr::Relation { name, .. } => !catalog.table_key(name).is_empty(),
                _ => false,
            };
            if has_key && contained_in(&right, &left) {
                left.difference(right)
            } else {
                left.unify_anti_join(right)
            }
        }
        other => map_children(other, &mut |c| {
            Ok::<RaExpr, crate::CoreError>(simplify_key_antijoin(c, catalog))
        })
        .expect("infallible"),
    }
}

/// Conservative structural containment check: `sub ⊆ sup` holds when `sub` is
/// built from `sup` by operations that only remove tuples (selections,
/// semijoins, anti-joins, intersections, differences, distinct).
pub fn contained_in(sub: &RaExpr, sup: &RaExpr) -> bool {
    if sub == sup {
        return true;
    }
    match sub {
        RaExpr::Select { input, .. } | RaExpr::Distinct { input } => contained_in(input, sup),
        RaExpr::SemiJoin { left, .. }
        | RaExpr::AntiJoin { left, .. }
        | RaExpr::UnifySemiJoin { left, .. }
        | RaExpr::UnifyAntiSemiJoin { left, .. }
        | RaExpr::Difference { left, .. } => contained_in(left, sup),
        RaExpr::Intersect { left, right } => contained_in(left, sup) || contained_in(right, sup),
        _ => false,
    }
}

/// Apply a fallible transformation to every child of a node, rebuilding it.
fn map_children<E>(
    expr: &RaExpr,
    f: &mut impl FnMut(&RaExpr) -> std::result::Result<RaExpr, E>,
) -> std::result::Result<RaExpr, E> {
    Ok(match expr {
        RaExpr::Relation { .. } | RaExpr::Values { .. } => expr.clone(),
        RaExpr::Select { input, condition } => f(input)?.select(condition.clone()),
        RaExpr::Project { input, columns } => f(input)?.project_cols(columns.clone()),
        RaExpr::Product { left, right } => f(left)?.product(f(right)?),
        RaExpr::Join { left, right, condition } => f(left)?.join(f(right)?, condition.clone()),
        RaExpr::Union { left, right } => f(left)?.union(f(right)?),
        RaExpr::Intersect { left, right } => f(left)?.intersect(f(right)?),
        RaExpr::Difference { left, right } => f(left)?.difference(f(right)?),
        RaExpr::SemiJoin { left, right, condition } => {
            f(left)?.semi_join(f(right)?, condition.clone())
        }
        RaExpr::AntiJoin { left, right, condition } => {
            f(left)?.anti_join(f(right)?, condition.clone())
        }
        RaExpr::UnifySemiJoin { left, right } => f(left)?.unify_semi_join(f(right)?),
        RaExpr::UnifyAntiSemiJoin { left, right } => f(left)?.unify_anti_join(f(right)?),
        RaExpr::Division { left, right } => f(left)?.divide(f(right)?),
        RaExpr::Rename { input, columns } => {
            RaExpr::Rename { input: Box::new(f(input)?), columns: columns.clone() }
        }
        RaExpr::Distinct { input } => f(input)?.distinct(),
        RaExpr::Aggregate { input, group_by, aggregates } => RaExpr::Aggregate {
            input: Box::new(f(input)?),
            group_by: group_by.clone(),
            aggregates: aggregates.clone(),
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dialect::ConditionDialect;
    use crate::translate::translate_plus;
    use certus_algebra::builder::{eq, is_null, neq};
    use certus_algebra::eval::eval;
    use certus_algebra::NullSemantics;
    use certus_data::builder::rel;
    use certus_data::null::NullId;
    use certus_data::{Attribute, Database, Relation, Schema, TableDef, Value, ValueType};

    fn keyed_db() -> Database {
        let mut db = Database::new();
        let orders = Schema::new(vec![
            Attribute::not_null("o_orderkey", ValueType::Int),
            Attribute::new("o_custkey", ValueType::Int),
        ]);
        db.create_table(TableDef::new("orders", orders).with_key(&["o_orderkey"])).unwrap();
        let lineitem = Schema::new(vec![
            Attribute::not_null("l_orderkey", ValueType::Int),
            Attribute::new("l_suppkey", ValueType::Int),
        ]);
        db.create_table(TableDef::new("lineitem", lineitem).with_key(&["l_orderkey"])).unwrap();
        for (ok, ck) in [(1, 10), (2, 20), (3, 30)] {
            db.relation_mut("orders")
                .unwrap()
                .insert_values(vec![Value::Int(ok), Value::Int(ck)])
                .unwrap();
        }
        db.relation_mut("lineitem")
            .unwrap()
            .insert_values(vec![Value::Int(1), Value::Null(NullId(1))])
            .unwrap();
        db.relation_mut("lineitem")
            .unwrap()
            .insert_values(vec![Value::Int(2), Value::Int(7)])
            .unwrap();
        db
    }

    #[test]
    fn prune_removes_is_null_on_key_columns() {
        let db = keyed_db();
        let q = RaExpr::relation("orders").anti_join(
            RaExpr::relation("lineitem"),
            eq("l_orderkey", "o_orderkey").and(neq("l_suppkey", "o_custkey")),
        );
        let plus = translate_plus(&q, ConditionDialect::Sql).unwrap();
        let pruned = prune_null_checks(&plus, &db).unwrap();
        match &pruned {
            RaExpr::AntiJoin { condition, .. } => {
                let s = condition.to_string();
                assert!(!s.contains("o_orderkey IS NULL"), "{s}");
                assert!(!s.contains("l_orderkey IS NULL"), "{s}");
                assert!(s.contains("l_suppkey IS NULL"), "{s}");
                assert!(s.contains("o_custkey IS NULL"), "{s}");
            }
            other => panic!("unexpected shape {other}"),
        }
        // Pruning must not change results.
        let a = eval(&plus, &db, NullSemantics::Sql).unwrap().sorted();
        let b = eval(&pruned, &db, NullSemantics::Sql).unwrap().sorted();
        assert_eq!(a.tuples(), b.tuples());
    }

    #[test]
    fn or_split_preserves_semantics() {
        let db = keyed_db();
        let cond = eq("l_orderkey", "o_orderkey")
            .and(neq("l_suppkey", "o_custkey").or(is_null("l_suppkey")));
        let q = RaExpr::relation("orders").anti_join(RaExpr::relation("lineitem"), cond);
        let split = split_or_antijoin(&q, 16);
        // The split produced a chain of two anti-joins.
        let mut count = 0;
        let mut cur = &split;
        while let RaExpr::AntiJoin { left, .. } = cur {
            count += 1;
            cur = left;
        }
        assert_eq!(count, 2);
        let a = eval(&q, &db, NullSemantics::Sql).unwrap().sorted();
        let b = eval(&split, &db, NullSemantics::Sql).unwrap().sorted();
        assert_eq!(a.tuples(), b.tuples());
    }

    #[test]
    fn or_split_respects_max_split() {
        let cond = is_null("l_suppkey")
            .or(is_null("l_orderkey"))
            .or(neq("l_suppkey", "o_custkey"));
        let q = RaExpr::relation("orders").anti_join(RaExpr::relation("lineitem"), cond.clone());
        let kept = split_or_antijoin(&q, 2);
        assert!(matches!(kept, RaExpr::AntiJoin { ref condition, .. } if *condition == cond));
    }

    #[test]
    fn key_simplification_replaces_unify_antijoin_with_difference() {
        let db = keyed_db();
        let sub = RaExpr::relation("orders").select(eq("o_orderkey", "o_custkey"));
        let q = RaExpr::relation("orders").unify_anti_join(sub.clone());
        let simplified = simplify_key_antijoin(&q, &db);
        assert!(matches!(simplified, RaExpr::Difference { .. }));
        // Without a key (or without containment) nothing happens.
        let other = RaExpr::relation("orders").unify_anti_join(RaExpr::relation("lineitem"));
        assert!(matches!(
            simplify_key_antijoin(&other, &db),
            RaExpr::UnifyAntiSemiJoin { .. }
        ));
    }

    #[test]
    fn containment_check() {
        let orders = RaExpr::relation("orders");
        let filtered = orders.clone().select(eq("o_orderkey", "o_custkey")).distinct();
        assert!(contained_in(&filtered, &orders));
        assert!(!contained_in(&RaExpr::relation("lineitem"), &orders));
        let semi = orders
            .clone()
            .semi_join(RaExpr::relation("lineitem"), eq("o_orderkey", "l_orderkey"));
        assert!(contained_in(&semi, &orders));
    }

    #[test]
    fn optimize_pipeline_preserves_certainty_and_results() {
        let db = keyed_db();
        let q = RaExpr::relation("orders").anti_join(
            RaExpr::relation("lineitem"),
            eq("l_orderkey", "o_orderkey").and(neq("l_suppkey", "o_custkey")),
        );
        let plus = translate_plus(&q, ConditionDialect::Sql).unwrap();
        let optimized = optimize(&plus, &db, &OptimizeOptions::default()).unwrap();
        let a = eval(&plus, &db, NullSemantics::Sql).unwrap().sorted();
        let b = eval(&optimized, &db, NullSemantics::Sql).unwrap().sorted();
        assert_eq!(a.tuples(), b.tuples());
    }

    #[test]
    fn empty_relation_builder_smoke() {
        // regression guard: rel builder with zero rows used by other tests
        let r: Relation = rel(&["x"], vec![]);
        assert!(r.is_empty());
    }
}
