//! Post-translation rewrite optimizations (Section 7 of the paper) —
//! compatibility facade.
//!
//! The rewrites themselves now live in the `certus-plan` crate as individual
//! passes behind a [`certus_plan::PassManager`] pipeline; this
//! module keeps the historical `certus-core` entry points
//! ([`optimize`], [`prune_null_checks`], [`split_or_antijoin`],
//! [`split_or_join`], [`simplify_key_antijoin`], [`contained_in`]) and routes
//! them through that pipeline. See `certus_plan::passes` for the pass
//! implementations and their unit tests.

use crate::Result;
use certus_algebra::expr::RaExpr;
use certus_algebra::schema_infer::Catalog;
use certus_plan::{PassManager, PlanOptions};

/// Options controlling which optimizations [`optimize`] applies. This is the
/// planner's [`PlanOptions`] — the historical field names
/// (`prune_nonnullable`, `split_or`, `split_or_joins`, `key_simplify`,
/// `max_split`) are unchanged; the planner adds `fold`, `pushdown`,
/// `collapse` and `max_rounds`.
pub type OptimizeOptions = PlanOptions;

/// Apply all enabled optimizations by running the planner's pass pipeline to
/// a fixpoint.
pub fn optimize(expr: &RaExpr, catalog: &dyn Catalog, opts: &OptimizeOptions) -> Result<RaExpr> {
    PassManager::with_options(*opts).run(expr, catalog).map_err(crate::CoreError::from)
}

/// Nullability-aware pruning of `IS [NOT] NULL` checks (Corollary 1); see
/// [`certus_plan::passes::null_prune`].
pub fn prune_null_checks(expr: &RaExpr, catalog: &dyn Catalog) -> Result<RaExpr> {
    certus_plan::passes::null_prune::prune_null_checks(expr, catalog)
        .map_err(crate::CoreError::from)
}

/// OR-splitting of anti-join conditions (Section 7); see
/// [`certus_plan::passes::or_split`].
pub fn split_or_antijoin(expr: &RaExpr, max_split: usize) -> RaExpr {
    certus_plan::passes::or_split::split_or_antijoin(expr, max_split)
}

/// OR-splitting of theta-join conditions into unions (the paper's Q⁺4 "view"
/// form); see [`certus_plan::passes::or_split`].
pub fn split_or_join(expr: &RaExpr, max_split: usize) -> RaExpr {
    certus_plan::passes::or_split::split_or_join(expr, max_split)
}

/// The key-based simplification `R ⋉̸⇑ S → R − S` (Section 7); see
/// [`certus_plan::passes::key_antijoin`].
pub fn simplify_key_antijoin(expr: &RaExpr, catalog: &dyn Catalog) -> RaExpr {
    certus_plan::passes::key_antijoin::simplify_key_antijoin(expr, catalog)
}

/// Conservative structural containment check `sub ⊆ sup`; see
/// [`certus_plan::passes::key_antijoin`].
pub fn contained_in(sub: &RaExpr, sup: &RaExpr) -> bool {
    certus_plan::passes::key_antijoin::contained_in(sub, sup)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dialect::ConditionDialect;
    use crate::translate::translate_plus;
    use certus_algebra::builder::{eq, is_null, neq};
    use certus_algebra::eval::eval;
    use certus_algebra::NullSemantics;
    use certus_data::builder::rel;
    use certus_data::null::NullId;
    use certus_data::{Attribute, Database, Relation, Schema, TableDef, Value, ValueType};

    fn keyed_db() -> Database {
        let mut db = Database::new();
        let orders = Schema::new(vec![
            Attribute::not_null("o_orderkey", ValueType::Int),
            Attribute::new("o_custkey", ValueType::Int),
        ]);
        db.create_table(TableDef::new("orders", orders).with_key(&["o_orderkey"])).unwrap();
        let lineitem = Schema::new(vec![
            Attribute::not_null("l_orderkey", ValueType::Int),
            Attribute::new("l_suppkey", ValueType::Int),
        ]);
        db.create_table(TableDef::new("lineitem", lineitem).with_key(&["l_orderkey"])).unwrap();
        for (ok, ck) in [(1, 10), (2, 20), (3, 30)] {
            db.relation_mut("orders")
                .unwrap()
                .insert_values(vec![Value::Int(ok), Value::Int(ck)])
                .unwrap();
        }
        db.relation_mut("lineitem")
            .unwrap()
            .insert_values(vec![Value::Int(1), Value::Null(NullId(1))])
            .unwrap();
        db.relation_mut("lineitem")
            .unwrap()
            .insert_values(vec![Value::Int(2), Value::Int(7)])
            .unwrap();
        db
    }

    #[test]
    fn prune_removes_is_null_on_key_columns() {
        let db = keyed_db();
        let q = RaExpr::relation("orders").anti_join(
            RaExpr::relation("lineitem"),
            eq("l_orderkey", "o_orderkey").and(neq("l_suppkey", "o_custkey")),
        );
        let plus = translate_plus(&q, ConditionDialect::Sql).unwrap();
        let pruned = prune_null_checks(&plus, &db).unwrap();
        match &pruned {
            RaExpr::AntiJoin { condition, .. } => {
                let s = condition.to_string();
                assert!(!s.contains("o_orderkey IS NULL"), "{s}");
                assert!(!s.contains("l_orderkey IS NULL"), "{s}");
                assert!(s.contains("l_suppkey IS NULL"), "{s}");
                assert!(s.contains("o_custkey IS NULL"), "{s}");
            }
            other => panic!("unexpected shape {other}"),
        }
        // Pruning must not change results.
        let a = eval(&plus, &db, NullSemantics::Sql).unwrap().sorted();
        let b = eval(&pruned, &db, NullSemantics::Sql).unwrap().sorted();
        assert_eq!(a.tuples(), b.tuples());
    }

    #[test]
    fn or_split_preserves_semantics() {
        let db = keyed_db();
        let cond = eq("l_orderkey", "o_orderkey")
            .and(neq("l_suppkey", "o_custkey").or(is_null("l_suppkey")));
        let q = RaExpr::relation("orders").anti_join(RaExpr::relation("lineitem"), cond);
        let split = split_or_antijoin(&q, 16);
        // The split produced a chain of two anti-joins.
        let mut count = 0;
        let mut cur = &split;
        while let RaExpr::AntiJoin { left, .. } = cur {
            count += 1;
            cur = left;
        }
        assert_eq!(count, 2);
        let a = eval(&q, &db, NullSemantics::Sql).unwrap().sorted();
        let b = eval(&split, &db, NullSemantics::Sql).unwrap().sorted();
        assert_eq!(a.tuples(), b.tuples());
    }

    #[test]
    fn or_split_respects_max_split() {
        let cond = is_null("l_suppkey").or(is_null("l_orderkey")).or(neq("l_suppkey", "o_custkey"));
        let q = RaExpr::relation("orders").anti_join(RaExpr::relation("lineitem"), cond.clone());
        let kept = split_or_antijoin(&q, 2);
        assert!(matches!(kept, RaExpr::AntiJoin { ref condition, .. } if *condition == cond));
    }

    #[test]
    fn key_simplification_replaces_unify_antijoin_with_difference() {
        let db = keyed_db();
        let sub = RaExpr::relation("orders").select(eq("o_orderkey", "o_custkey"));
        let q = RaExpr::relation("orders").unify_anti_join(sub.clone());
        let simplified = simplify_key_antijoin(&q, &db);
        assert!(matches!(simplified, RaExpr::Difference { .. }));
        // Without a key (or without containment) nothing happens.
        let other = RaExpr::relation("orders").unify_anti_join(RaExpr::relation("lineitem"));
        assert!(matches!(simplify_key_antijoin(&other, &db), RaExpr::UnifyAntiSemiJoin { .. }));
    }

    #[test]
    fn containment_check() {
        let orders = RaExpr::relation("orders");
        let filtered = orders.clone().select(eq("o_orderkey", "o_custkey")).distinct();
        assert!(contained_in(&filtered, &orders));
        assert!(!contained_in(&RaExpr::relation("lineitem"), &orders));
        let semi =
            orders.clone().semi_join(RaExpr::relation("lineitem"), eq("o_orderkey", "l_orderkey"));
        assert!(contained_in(&semi, &orders));
    }

    #[test]
    fn optimize_pipeline_preserves_certainty_and_results() {
        let db = keyed_db();
        let q = RaExpr::relation("orders").anti_join(
            RaExpr::relation("lineitem"),
            eq("l_orderkey", "o_orderkey").and(neq("l_suppkey", "o_custkey")),
        );
        let plus = translate_plus(&q, ConditionDialect::Sql).unwrap();
        let optimized = optimize(&plus, &db, &OptimizeOptions::default()).unwrap();
        let a = eval(&plus, &db, NullSemantics::Sql).unwrap().sorted();
        let b = eval(&optimized, &db, NullSemantics::Sql).unwrap().sorted();
        assert_eq!(a.tuples(), b.tuples());
    }

    #[test]
    fn optimize_respects_disabled_passes() {
        let db = keyed_db();
        let cond = eq("l_orderkey", "o_orderkey").or(is_null("l_suppkey"));
        let q = RaExpr::relation("orders").anti_join(RaExpr::relation("lineitem"), cond.clone());
        let off = OptimizeOptions {
            split_or: false,
            split_or_joins: false,
            prune_nonnullable: false,
            key_simplify: false,
            fold: false,
            pushdown: false,
            collapse: false,
            ..OptimizeOptions::default()
        };
        assert_eq!(optimize(&q, &db, &off).unwrap(), q);
        let on = OptimizeOptions::default();
        assert!(
            !matches!(optimize(&q, &db, &on).unwrap(), RaExpr::AntiJoin { ref condition, .. } if *condition == cond)
        );
    }

    #[test]
    fn empty_relation_builder_smoke() {
        // regression guard: rel builder with zero rows used by other tests
        let r: Relation = rel(&["x"], vec![]);
        assert!(r.is_empty());
    }
}
