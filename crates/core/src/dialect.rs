//! Condition-translation dialects.

use certus_algebra::NullSemantics;

/// Which variant of the condition translations `θ*` / `θ**` to produce.
///
/// The paper first defines the translations for the abstract model with
/// marked nulls, where the rewritten query is evaluated *naively* (nulls
/// behave as values). When the rewritten query is instead executed by a real
/// SQL engine — whose three-valued logic makes every comparison with a null
/// `unknown`, and which cannot see that a null equals itself — Section 7
/// adjusts the translations: `(A = B)*` also requires `const(A) ∧ const(B)`,
/// and `(A ≠ B)**` also allows `null(A) ∨ null(B)`.
///
/// Each dialect is paired with the evaluation semantics under which the
/// produced `Q⁺` has correctness guarantees:
///
/// | dialect | evaluate `Q⁺` under |
/// |---|---|
/// | [`ConditionDialect::Theoretical`] | naive evaluation ([`NullSemantics::Naive`]) |
/// | [`ConditionDialect::Sql`] | SQL 3VL ([`NullSemantics::Sql`]) |
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ConditionDialect {
    /// The translations of Sections 5–6, for evaluation with marked nulls
    /// under naive semantics.
    Theoretical,
    /// The SQL-adjusted translations of Section 7, for evaluation by a
    /// standard SQL engine under three-valued logic. This is the default and
    /// is what the paper's experiments (and ours) run.
    #[default]
    Sql,
}

impl ConditionDialect {
    /// The evaluation semantics under which `Q⁺` produced with this dialect
    /// has correctness guarantees.
    pub fn evaluation_semantics(self) -> NullSemantics {
        match self {
            ConditionDialect::Theoretical => NullSemantics::Naive,
            ConditionDialect::Sql => NullSemantics::Sql,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_sql() {
        assert_eq!(ConditionDialect::default(), ConditionDialect::Sql);
    }

    #[test]
    fn pairing_with_semantics() {
        assert_eq!(ConditionDialect::Sql.evaluation_semantics(), NullSemantics::Sql);
        assert_eq!(ConditionDialect::Theoretical.evaluation_semantics(), NullSemantics::Naive);
    }
}
