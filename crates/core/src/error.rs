//! Error type for the core (translation) crate.

use certus_algebra::AlgebraError;
use certus_data::DataError;
use std::fmt;

/// Errors produced by the certain-answer translations and oracle.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// An error from the algebra layer (schema inference, evaluation).
    Algebra(AlgebraError),
    /// An error from the data layer.
    Data(DataError),
    /// The query uses an operator outside the supported fragment for the
    /// requested translation (e.g. aggregates in the main operator tree, or
    /// explicit unification semijoins in a source query).
    OutsideFragment(String),
    /// The certain-answer oracle would need to enumerate more valuations than
    /// the configured limit.
    TooManyValuations {
        /// Number of valuations that would be needed.
        needed: u128,
        /// The configured limit.
        limit: u128,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Algebra(e) => write!(f, "{e}"),
            CoreError::Data(e) => write!(f, "{e}"),
            CoreError::OutsideFragment(m) => write!(f, "query outside supported fragment: {m}"),
            CoreError::TooManyValuations { needed, limit } => {
                write!(f, "certain-answer oracle would need {needed} valuations (limit {limit})")
            }
        }
    }
}

impl std::error::Error for CoreError {}

impl From<AlgebraError> for CoreError {
    fn from(e: AlgebraError) -> Self {
        CoreError::Algebra(e)
    }
}

impl From<DataError> for CoreError {
    fn from(e: DataError) -> Self {
        CoreError::Data(e)
    }
}

impl From<certus_plan::PlanError> for CoreError {
    fn from(e: certus_plan::PlanError) -> Self {
        CoreError::Algebra(e.into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_wrap_sources() {
        let e: CoreError = DataError::UnknownTable("t".into()).into();
        assert!(e.to_string().contains("unknown table"));
        let e = CoreError::TooManyValuations { needed: 1000, limit: 10 };
        assert!(e.to_string().contains("1000"));
    }
}
