//! Exact (and sampled) certain-answer oracle.
//!
//! `cert(Q, D)` — certain answers with nulls — is the set of tuples `ā` over
//! `adom(D)` such that `v(ā) ∈ Q(v(D))` for **every** valuation `v` of the
//! nulls of `D`. Computing it is coNP-hard for first-order queries, so the
//! oracle enumerates valuations explicitly and is only meant for ground truth
//! on small instances (the same role the specialised detectors of Section 4
//! play in the paper). A sampled variant refutes certainty probabilistically
//! on larger instances.
//!
//! Valuations range over `Const(D)`, the constants mentioned in the query,
//! plus one fresh constant per null (a standard reduction: if some valuation
//! refutes membership, then one over this restricted domain does for the
//! equality-based fragment we consider).

use crate::error::CoreError;
use crate::Result;
use certus_algebra::condition::{Condition, Operand};
use certus_algebra::eval::eval;
use certus_algebra::expr::RaExpr;
use certus_algebra::NullSemantics;
use certus_data::valuation::enumerate_valuations;
use certus_data::{Database, Relation, Tuple, Valuation, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

/// Configuration for the certain-answer oracle.
#[derive(Debug, Clone)]
pub struct CertainOracle {
    /// Hard limit on the number of valuations the exhaustive oracle may
    /// enumerate; exceeding it is an error rather than a silent slowdown.
    pub max_valuations: u128,
    /// Semantics used to evaluate the query on each completed database
    /// (always SQL 3VL in the paper; completed databases have no nulls, so
    /// the choice only matters if evaluation introduces none — it does not).
    pub semantics: NullSemantics,
}

impl Default for CertainOracle {
    fn default() -> Self {
        CertainOracle { max_valuations: 2_000_000, semantics: NullSemantics::Sql }
    }
}

impl CertainOracle {
    /// Create an oracle with a custom valuation budget.
    pub fn with_limit(max_valuations: u128) -> Self {
        CertainOracle { max_valuations, ..Default::default() }
    }

    /// The valuation domain: constants of the database, constants of the
    /// query, and one fresh constant per null.
    pub fn valuation_domain(&self, expr: &RaExpr, db: &Database) -> Vec<Value> {
        let adom = db.active_domain();
        let mut domain: BTreeSet<Value> = adom.constants.iter().cloned().collect();
        collect_query_constants(expr, &mut domain);
        let fresh_base = 1_000_000_007i64;
        for (i, _) in adom.nulls.iter().enumerate() {
            domain.insert(Value::Int(fresh_base + i as i64));
        }
        domain.into_iter().collect()
    }

    /// Is `tuple` a certain answer (with nulls) to `expr` on `db`?
    ///
    /// Checks `v(tuple) ∈ Q(v(D))` for every valuation `v` over the reduced
    /// domain. Errors if the number of valuations exceeds the budget.
    pub fn is_certain(&self, expr: &RaExpr, db: &Database, tuple: &Tuple) -> Result<bool> {
        let nulls = db.active_domain().nulls;
        let domain = self.valuation_domain(expr, db);
        let needed = (domain.len() as u128).checked_pow(nulls.len() as u32).unwrap_or(u128::MAX);
        if needed > self.max_valuations {
            return Err(CoreError::TooManyValuations { needed, limit: self.max_valuations });
        }
        for v in enumerate_valuations(&nulls, &domain) {
            if !self.holds_under(expr, db, tuple, &v)? {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Attempt to refute certainty of `tuple` with `samples` random
    /// valuations. Returns `true` if a refuting valuation was found (so the
    /// tuple is definitely *not* certain); `false` means "no counterexample
    /// found", not a proof of certainty.
    pub fn refute_sampled(
        &self,
        expr: &RaExpr,
        db: &Database,
        tuple: &Tuple,
        samples: usize,
        seed: u64,
    ) -> Result<bool> {
        let nulls = db.active_domain().nulls;
        if nulls.is_empty() {
            return Ok(false);
        }
        let domain = self.valuation_domain(expr, db);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..samples {
            let mut v = Valuation::new();
            for &id in &nulls {
                v.set(id, domain[rng.gen_range(0..domain.len())].clone());
            }
            if !self.holds_under(expr, db, tuple, &v)? {
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// The subset of `candidates` that are certain answers.
    pub fn certain_among(
        &self,
        expr: &RaExpr,
        db: &Database,
        candidates: &Relation,
    ) -> Result<Relation> {
        let mut out = Relation::empty(candidates.schema().clone());
        for t in candidates.iter() {
            if self.is_certain(expr, db, t)? {
                out.insert(t.clone()).map_err(CoreError::Data)?;
            }
        }
        Ok(out)
    }

    fn holds_under(
        &self,
        expr: &RaExpr,
        db: &Database,
        tuple: &Tuple,
        v: &Valuation,
    ) -> Result<bool> {
        let ground_db = db.apply(v);
        let ground_tuple = tuple.apply(v);
        let answers = eval(expr, &ground_db, self.semantics).map_err(CoreError::Algebra)?;
        Ok(answers.contains(&ground_tuple))
    }
}

/// Convenience: is `tuple` a certain answer to `expr` on `db` (default oracle)?
pub fn is_certain_answer(expr: &RaExpr, db: &Database, tuple: &Tuple) -> Result<bool> {
    CertainOracle::default().is_certain(expr, db, tuple)
}

/// Convenience: the certain answers among `candidates` (default oracle).
pub fn certain_answers_among(
    expr: &RaExpr,
    db: &Database,
    candidates: &Relation,
) -> Result<Relation> {
    CertainOracle::default().certain_among(expr, db, candidates)
}

fn collect_query_constants(expr: &RaExpr, out: &mut BTreeSet<Value>) {
    match expr {
        RaExpr::Select { input, condition } => {
            collect_condition_constants(condition, out);
            collect_query_constants(input, out);
        }
        RaExpr::Join { left, right, condition }
        | RaExpr::SemiJoin { left, right, condition }
        | RaExpr::AntiJoin { left, right, condition } => {
            collect_condition_constants(condition, out);
            collect_query_constants(left, out);
            collect_query_constants(right, out);
        }
        RaExpr::Values { rows, .. } => {
            for r in rows {
                for v in r.values() {
                    if v.is_const() {
                        out.insert(v.clone());
                    }
                }
            }
        }
        other => {
            for c in other.children() {
                collect_query_constants(c, out);
            }
        }
    }
}

fn collect_condition_constants(condition: &Condition, out: &mut BTreeSet<Value>) {
    match condition {
        Condition::Cmp { left, right, .. } => {
            for op in [left, right] {
                if let Operand::Const(v) = op {
                    out.insert(v.clone());
                }
            }
        }
        Condition::InList { list, .. } => out.extend(list.iter().cloned()),
        Condition::And(a, b) | Condition::Or(a, b) => {
            collect_condition_constants(a, out);
            collect_condition_constants(b, out);
        }
        Condition::Not(inner) => collect_condition_constants(inner, out),
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dialect::ConditionDialect;
    use crate::translate::translate_plus;
    use certus_algebra::builder::eq;
    use certus_data::builder::rel;
    use certus_data::null::NullId;

    fn null(i: u64) -> Value {
        Value::Null(NullId(i))
    }

    #[test]
    fn intro_example_tuple_is_not_certain() {
        let mut db = Database::new();
        db.insert_relation("r", rel(&["a"], vec![vec![Value::Int(1)]]));
        db.insert_relation("s", rel(&["b"], vec![vec![null(1)]]));
        let q = RaExpr::relation("r").anti_join(RaExpr::relation("s"), eq("a", "b"));
        let t = Tuple::new(vec![Value::Int(1)]);
        assert!(!is_certain_answer(&q, &db, &t).unwrap());
    }

    #[test]
    fn certain_tuple_is_recognised() {
        let mut db = Database::new();
        db.insert_relation("r", rel(&["a"], vec![vec![Value::Int(1)], vec![Value::Int(2)]]));
        db.insert_relation("s", rel(&["b"], vec![vec![Value::Int(2)], vec![null(1)]]));
        // 1 is in r and s contains ⊥ which may equal 1 ⇒ not certain for r − s.
        // But for the plain query r, every tuple of r is certain.
        let q = RaExpr::relation("r");
        assert!(is_certain_answer(&q, &db, &Tuple::new(vec![Value::Int(1)])).unwrap());
    }

    #[test]
    fn certain_answers_with_nulls_includes_null_tuples() {
        // R = {(1,⊥), (2,3)}; Q = R. Certain answers *with nulls* contain both
        // tuples (Section 2 of the paper).
        let mut db = Database::new();
        db.insert_relation(
            "r",
            rel(
                &["a", "b"],
                vec![vec![Value::Int(1), null(1)], vec![Value::Int(2), Value::Int(3)]],
            ),
        );
        let q = RaExpr::relation("r");
        let candidates = db.relation("r").unwrap().clone();
        let certain = certain_answers_among(&q, &db, &candidates).unwrap();
        assert_eq!(certain.len(), 2);
    }

    #[test]
    fn q_plus_outputs_are_always_certain() {
        // Correctness guarantee checked against the exhaustive oracle on a
        // small instance with several nulls.
        let mut db = Database::new();
        db.insert_relation(
            "r",
            rel(&["a"], vec![vec![Value::Int(1)], vec![Value::Int(2)], vec![Value::Int(3)]]),
        );
        db.insert_relation("s", rel(&["b"], vec![vec![Value::Int(2)], vec![null(1)]]));
        let q = RaExpr::relation("r").anti_join(RaExpr::relation("s"), eq("a", "b"));
        let plus = translate_plus(&q, ConditionDialect::Sql).unwrap();
        let answers = eval(&plus, &db, NullSemantics::Sql).unwrap();
        for t in answers.iter() {
            assert!(is_certain_answer(&q, &db, t).unwrap(), "false positive from Q+: {t}");
        }
        // And SQL evaluation of the original query does produce a non-certain tuple.
        let sql = eval(&q, &db, NullSemantics::Sql).unwrap();
        let not_certain: Vec<_> =
            sql.iter().filter(|t| !is_certain_answer(&q, &db, t).unwrap()).collect();
        assert!(!not_certain.is_empty());
    }

    #[test]
    fn sampled_refutation_finds_counterexamples() {
        let mut db = Database::new();
        db.insert_relation("r", rel(&["a"], vec![vec![Value::Int(1)]]));
        db.insert_relation("s", rel(&["b"], vec![vec![null(1)]]));
        let q = RaExpr::relation("r").anti_join(RaExpr::relation("s"), eq("a", "b"));
        let oracle = CertainOracle::default();
        let refuted =
            oracle.refute_sampled(&q, &db, &Tuple::new(vec![Value::Int(1)]), 64, 7).unwrap();
        assert!(refuted);
    }

    #[test]
    fn budget_is_enforced() {
        let mut db = Database::new();
        let rows: Vec<Vec<Value>> =
            (0..12).map(|i| vec![Value::Int(i), null(i as u64 + 1)]).collect();
        db.insert_relation("r", rel(&["a", "b"], rows));
        let oracle = CertainOracle::with_limit(1000);
        let q = RaExpr::relation("r");
        let err = oracle.is_certain(&q, &db, &Tuple::new(vec![Value::Int(0), null(1)]));
        assert!(matches!(err, Err(CoreError::TooManyValuations { .. })));
    }

    #[test]
    fn query_constants_enter_the_domain() {
        let mut db = Database::new();
        db.insert_relation("r", rel(&["a"], vec![vec![null(1)]]));
        let q = RaExpr::relation("r").select(certus_algebra::builder::eq_const("a", 99i64));
        let oracle = CertainOracle::default();
        let domain = oracle.valuation_domain(&q, &db);
        assert!(domain.contains(&Value::Int(99)));
    }
}
