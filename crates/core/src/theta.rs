//! The condition translations `θ*` and `θ**`.
//!
//! `θ*` *strengthens* a condition so that whenever a tuple satisfies `θ*`, all
//! valuations of its nulls satisfy `θ` (certainly true). `θ**` *weakens* a
//! condition so that whenever some valuation satisfies `θ`, the tuple
//! satisfies `θ**` (possibly true). By Corollary 1 of the paper any
//! strengthening of `θ*` and weakening of `θ**` preserves the correctness
//! guarantees, which is what licenses the per-dialect adjustments below and
//! the nullability-aware pruning in [`crate::optimize`].
//!
//! The atoms of the paper are (dis)equalities between attributes and
//! constants. Our condition language additionally has order comparisons,
//! `LIKE`, `IN`-lists and comparisons against black-box scalar subqueries;
//! "there is nothing special about (dis)equality. The same translations can
//! be applied to other comparisons" (Section 7), and that is what we do.

use crate::dialect::ConditionDialect;
use certus_algebra::condition::{Condition, Operand};
use certus_data::compare::CmpOp;

/// Add `operand IS NOT NULL` conjuncts for every column operand in `ops`.
fn require_const(base: Condition, ops: &[&Operand]) -> Condition {
    let mut out = base;
    for op in ops {
        if op.is_col() {
            out = out.and(Condition::IsNotNull((*op).clone()));
        }
    }
    out
}

/// Add `operand IS NULL` disjuncts for every column operand in `ops`.
fn allow_null(base: Condition, ops: &[&Operand]) -> Condition {
    let mut out = base;
    for op in ops {
        if op.is_col() {
            out = Condition::Or(Box::new(out), Box::new(Condition::IsNull((*op).clone())));
        }
    }
    out
}

/// The translation `θ ↦ θ*` (certainly-true approximation).
///
/// The condition is first put in negation normal form, then translated atom
/// by atom:
///
/// * **Theoretical dialect** (naive evaluation): equalities are unchanged;
///   disequalities and order comparisons additionally require both column
///   operands to be non-null (`const(·)`), as do negated `LIKE` / `IN`.
/// * **SQL dialect** (three-valued evaluation): atoms are unchanged — under
///   3VL a comparison involving a null already evaluates to `unknown` and is
///   filtered out, so the extra `const(·)` conjuncts of the paper's
///   SQL-adjusted `θ*` are semantically redundant; omitting them produces
///   exactly the rewritten queries shown in the paper's appendix.
pub fn theta_star(condition: &Condition, dialect: ConditionDialect) -> Condition {
    star_rec(&condition.to_nnf(), dialect)
}

fn star_rec(c: &Condition, dialect: ConditionDialect) -> Condition {
    match c {
        Condition::True | Condition::False => c.clone(),
        Condition::Cmp { left, op, right } => {
            let base = c.clone();
            match dialect {
                ConditionDialect::Sql => base,
                ConditionDialect::Theoretical => match op {
                    CmpOp::Eq => base,
                    _ => require_const(base, &[left, right]),
                },
            }
        }
        Condition::IsNull(_) | Condition::IsNotNull(_) => c.clone(),
        Condition::Like { expr, negated, .. } => {
            let base = c.clone();
            match dialect {
                ConditionDialect::Sql => base,
                ConditionDialect::Theoretical => {
                    if *negated {
                        require_const(base, &[expr])
                    } else {
                        base
                    }
                }
            }
        }
        Condition::InList { expr, negated, .. } => {
            let base = c.clone();
            match dialect {
                ConditionDialect::Sql => base,
                ConditionDialect::Theoretical => {
                    if *negated {
                        require_const(base, &[expr])
                    } else {
                        base
                    }
                }
            }
        }
        Condition::And(a, b) => star_rec(a, dialect).and(star_rec(b, dialect)),
        Condition::Or(a, b) => {
            Condition::Or(Box::new(star_rec(a, dialect)), Box::new(star_rec(b, dialect)))
        }
        // to_nnf leaves no Not nodes, but be conservative if one sneaks in.
        Condition::Not(_) => star_rec(&c.to_nnf(), dialect),
    }
}

/// The translation `θ ↦ θ**` (possibly-true approximation), defined as
/// `¬(¬θ)*` in the paper and implemented directly:
///
/// * **Theoretical dialect**: equalities and order comparisons gain
///   `∨ null(·)` disjuncts for their column operands (a null could be mapped
///   to a value making the comparison true); disequalities are unchanged
///   (naive evaluation already overapproximates them). Same for `LIKE`/`IN`.
/// * **SQL dialect**: *every* comparison gains the `∨ · IS NULL` disjuncts —
///   under 3VL a comparison with a null is `unknown` and would be filtered,
///   so the disjuncts are required to keep `θ**` an overapproximation. This
///   is the paper's Section 7 adjustment and the source of the
///   `A = B OR B IS NULL` conditions in the rewritten queries.
pub fn theta_star_star(condition: &Condition, dialect: ConditionDialect) -> Condition {
    star_star_rec(&condition.to_nnf(), dialect)
}

fn star_star_rec(c: &Condition, dialect: ConditionDialect) -> Condition {
    match c {
        Condition::True | Condition::False => c.clone(),
        Condition::Cmp { left, op, right } => {
            let base = c.clone();
            match dialect {
                ConditionDialect::Sql => allow_null(base, &[left, right]),
                ConditionDialect::Theoretical => match op {
                    CmpOp::Neq => base,
                    _ => allow_null(base, &[left, right]),
                },
            }
        }
        Condition::IsNull(_) | Condition::IsNotNull(_) => c.clone(),
        Condition::Like { expr, negated, .. } => {
            let base = c.clone();
            match dialect {
                ConditionDialect::Sql => allow_null(base, &[expr]),
                ConditionDialect::Theoretical => {
                    if *negated {
                        base
                    } else {
                        allow_null(base, &[expr])
                    }
                }
            }
        }
        Condition::InList { expr, negated, .. } => {
            let base = c.clone();
            match dialect {
                ConditionDialect::Sql => allow_null(base, &[expr]),
                ConditionDialect::Theoretical => {
                    if *negated {
                        base
                    } else {
                        allow_null(base, &[expr])
                    }
                }
            }
        }
        Condition::And(a, b) => star_star_rec(a, dialect).and(star_star_rec(b, dialect)),
        Condition::Or(a, b) => {
            Condition::Or(Box::new(star_star_rec(a, dialect)), Box::new(star_star_rec(b, dialect)))
        }
        Condition::Not(_) => star_star_rec(&c.to_nnf(), dialect),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use certus_algebra::builder::{col, eq, eq_const, like, neq};
    use certus_algebra::{Evaluator, NullSemantics};
    use certus_data::null::NullId;
    use certus_data::{Database, Schema, Truth, Tuple, Value};

    #[test]
    fn sql_dialect_star_keeps_atoms() {
        let c = eq("a", "b").and(neq("a", "c"));
        assert_eq!(theta_star(&c, ConditionDialect::Sql), c);
    }

    #[test]
    fn theoretical_star_guards_disequalities() {
        let c = neq("a", "b");
        let t = theta_star(&c, ConditionDialect::Theoretical);
        let s = t.to_string();
        assert!(s.contains("a IS NOT NULL"));
        assert!(s.contains("b IS NOT NULL"));
        // Equalities stay untouched.
        assert_eq!(theta_star(&eq("a", "b"), ConditionDialect::Theoretical), eq("a", "b"));
    }

    #[test]
    fn sql_star_star_adds_is_null_to_every_comparison() {
        let c = eq("a", "b");
        let t = theta_star_star(&c, ConditionDialect::Sql);
        assert_eq!(t.to_string(), "((a = b OR a IS NULL) OR b IS NULL)");
        let d = neq("a", "b");
        let t = theta_star_star(&d, ConditionDialect::Sql);
        assert!(t.to_string().contains("IS NULL"));
    }

    #[test]
    fn theoretical_star_star_spares_disequalities() {
        let d = neq("a", "b");
        assert_eq!(theta_star_star(&d, ConditionDialect::Theoretical), d);
        let e = eq("a", "b");
        assert!(theta_star_star(&e, ConditionDialect::Theoretical).to_string().contains("IS NULL"));
    }

    #[test]
    fn constants_do_not_get_null_guards() {
        let c = eq_const("a", 5i64);
        let t = theta_star_star(&c, ConditionDialect::Sql);
        // only the column side gains a guard
        assert_eq!(t.to_string(), "(a = 5 OR a IS NULL)");
    }

    #[test]
    fn negation_is_pushed_before_translation() {
        // ¬(a = b) must be treated as a disequality.
        let c = eq("a", "b").not();
        let t = theta_star(&c, ConditionDialect::Theoretical);
        assert!(t.to_string().contains("<>"));
        assert!(t.to_string().contains("IS NOT NULL"));
    }

    #[test]
    fn like_translations() {
        let c = like("p_name", "%red%");
        let t = theta_star_star(&c, ConditionDialect::Sql);
        assert_eq!(t.to_string(), "(p_name LIKE '%red%' OR p_name IS NULL)");
        assert_eq!(theta_star(&c, ConditionDialect::Sql), c);
    }

    /// Semantic check of the key property on a concrete tuple space:
    /// θ* true ⇒ θ true under every valuation; θ true under some valuation ⇒ θ** true.
    #[test]
    fn star_and_star_star_bracket_the_condition() {
        let schema = Schema::of_names(&["a", "b"]);
        let db = Database::new();
        let cond = eq("a", "b");
        let domain = [Value::Int(1), Value::Int(2)];
        // Tuples mixing constants and a null.
        let tuples = vec![
            Tuple::new(vec![Value::Int(1), Value::Int(1)]),
            Tuple::new(vec![Value::Int(1), Value::Int(2)]),
            Tuple::new(vec![Value::Int(1), Value::Null(NullId(1))]),
        ];
        for dialect in [ConditionDialect::Sql, ConditionDialect::Theoretical] {
            let sem = dialect.evaluation_semantics();
            let ev = Evaluator::new(&db, sem);
            let star = theta_star(&cond, dialect);
            let star_star = theta_star_star(&cond, dialect);
            for t in &tuples {
                let star_holds = ev.eval_condition(&star, &schema, t).unwrap() == Truth::True;
                let ss_holds = ev.eval_condition(&star_star, &schema, t).unwrap() == Truth::True;
                // Ground-truth: evaluate the original condition under every valuation.
                let nulls = t.null_ids();
                let mut all = true;
                let mut some = false;
                for v in certus_data::valuation::enumerate_valuations(&nulls, &domain) {
                    let ground = t.apply(&v);
                    let sql_ev = Evaluator::new(&db, NullSemantics::Sql);
                    let holds =
                        sql_ev.eval_condition(&cond, &schema, &ground).unwrap() == Truth::True;
                    all &= holds;
                    some |= holds;
                }
                if star_holds {
                    assert!(all, "θ* held but θ not certain for {t} ({dialect:?})");
                }
                if some {
                    assert!(ss_holds, "θ possibly true but θ** failed for {t} ({dialect:?})");
                }
            }
        }
    }

    #[test]
    fn scalar_operands_are_left_alone() {
        // Comparisons against scalar subqueries only guard the column side.
        let agg = certus_algebra::RaExpr::relation("r");
        let c = Condition::Cmp {
            left: col("c_acctbal"),
            op: CmpOp::Gt,
            right: Operand::Scalar(Box::new(agg)),
        };
        let t = theta_star_star(&c, ConditionDialect::Sql);
        assert!(t.to_string().contains("c_acctbal IS NULL"));
    }
}
