//! # certus-core
//!
//! The primary contribution of the reproduced paper (Paolo Guagliardo and
//! Leonid Libkin, *Making SQL Queries Correct on Incomplete Databases: A
//! Feasibility Study*, Proceedings of the 35th ACM SIGMOD-SIGACT-SIGAI
//! Symposium on Principles of Database Systems — PODS 2016, pp. 211–223):
//! query translations that make SQL evaluation return **only certain
//! answers** on databases with nulls.
//!
//! * [`theta::theta_star`] / [`theta::theta_star_star`] — the condition
//!   translations `θ*` and `θ**` of Sections 5–6, in both the *theoretical*
//!   dialect (paired with naive evaluation) and the *SQL-adjusted* dialect of
//!   Section 7 (paired with SQL's three-valued evaluation).
//! * [`translate::translate_plus`] / [`translate::translate_star`] — the
//!   improved, implementation-friendly translation `Q ↦ (Q⁺, Q★)` of Figure 3,
//!   extended to the derived operators (joins, semijoins, anti-joins) in the
//!   way sanctioned by Corollary 1.
//! * [`naive_translation::translate_t`] / [`naive_translation::translate_f`] —
//!   the original translation `Q ↦ (Qᵗ, Qᶠ)` of \[22\] (Figure 2), kept as the
//!   baseline whose impracticality Section 5 demonstrates.
//! * [`optimize`] — compatibility facade for the syntactic manipulations of
//!   Section 7 (OR-splitting of `NOT EXISTS` conditions, nullability-aware
//!   pruning of `IS NULL` checks, the key-based simplification
//!   `R ⋉̸⇑ S → R − S`), which now live as passes in the `certus-plan`
//!   rewrite pipeline.
//! * [`certain`] — an exact (exponential) certain-answer oracle used as ground
//!   truth, plus a sampled refuter.
//! * [`rewriter::CertainRewriter`] — the high-level API tying it together.
//! * [`metrics`] — precision / recall / false-positive accounting used by the
//!   experiments.

pub mod certain;
pub mod dialect;
pub mod error;
pub mod metrics;
pub mod naive_translation;
pub mod optimize;
pub mod rewriter;
pub mod theta;
pub mod translate;

pub use certain::{certain_answers_among, is_certain_answer, CertainOracle};
pub use dialect::ConditionDialect;
pub use error::CoreError;
pub use metrics::{AnswerBreakdown, PrecisionRecall};
pub use rewriter::CertainRewriter;
pub use theta::{theta_star, theta_star_star};
pub use translate::{translate_plus, translate_star};

/// Result alias for the core crate.
pub type Result<T> = std::result::Result<T, CoreError>;
