//! The original translation `Q ↦ (Qᵗ, Qᶠ)` of \[22\] (Figure 2 of the paper).
//!
//! `Qᵗ` underapproximates certain answers and `Qᶠ` underapproximates certain
//! answers to the complement of `Q`. The translation is theoretically elegant
//! (AC⁰ data complexity) but practically infeasible: the `Qᶠ` rules require
//! the *active domain* `adom(D)` and Cartesian powers `adomᵏ` of it, which
//! blow up even on tiny instances — Section 5 of the paper reports running
//! out of memory below 10³ tuples. We implement it faithfully so that the
//! infeasibility experiment (`certus-bench`, `sec5_naive_translation`) can be
//! reproduced; the improved Figure 3 translation in [`crate::translate`] is
//! what should actually be used.
//!
//! The translation is defined on the *core* operators only; use
//! [`certus_algebra::normalize::desugar_core`] first.

use crate::dialect::ConditionDialect;
use crate::error::CoreError;
use crate::theta::theta_star;
use crate::Result;
use certus_algebra::expr::{ProjCol, RaExpr};
use certus_algebra::schema_infer::{output_schema, Catalog};

/// Build the query computing the one-column active domain: the union of the
/// projections of every column of every relation in the catalog, with the
/// output column named `__adom`.
pub fn adom_query(catalog: &dyn Catalog) -> Result<RaExpr> {
    let mut parts: Vec<RaExpr> = Vec::new();
    for table in catalog.tables() {
        let schema = catalog.table_schema(&table)?;
        for attr in schema.attrs() {
            let q = RaExpr::relation(table.clone())
                .project_cols(vec![ProjCol::aliased(attr.name.clone(), "__adom")]);
            parts.push(q);
        }
    }
    let mut iter = parts.into_iter();
    let first = iter
        .next()
        .ok_or_else(|| CoreError::OutsideFragment("active domain of an empty catalog".into()))?;
    Ok(iter.fold(first, |acc, q| acc.union(q)))
}

/// Build `adomᵏ` renamed to the given column names (so conditions over the
/// original query's attributes still resolve).
pub fn adom_power(catalog: &dyn Catalog, names: &[String]) -> Result<RaExpr> {
    let adom = adom_query(catalog)?;
    let mut expr = adom.clone();
    for _ in 1..names.len() {
        expr = expr.product(adom.clone());
    }
    Ok(RaExpr::Rename { input: Box::new(expr), columns: names.to_vec() })
}

fn column_names(expr: &RaExpr, catalog: &dyn Catalog) -> Result<Vec<String>> {
    Ok(output_schema(expr, catalog)
        .map_err(CoreError::Algebra)?
        .names()
        .into_iter()
        .map(String::from)
        .collect())
}

/// The `Qᵗ` translation of Figure 2 (left column).
pub fn translate_t(
    expr: &RaExpr,
    catalog: &dyn Catalog,
    dialect: ConditionDialect,
) -> Result<RaExpr> {
    match expr {
        RaExpr::Relation { .. } | RaExpr::Values { .. } => Ok(expr.clone()),
        RaExpr::Union { left, right } => {
            Ok(translate_t(left, catalog, dialect)?.union(translate_t(right, catalog, dialect)?))
        }
        RaExpr::Intersect { left, right } => Ok(
            translate_t(left, catalog, dialect)?.intersect(translate_t(right, catalog, dialect)?)
        ),
        // (Q1 − Q2)ᵗ = Q1ᵗ ∩ Q2ᶠ
        RaExpr::Difference { left, right } => Ok(
            translate_t(left, catalog, dialect)?.intersect(translate_f(right, catalog, dialect)?)
        ),
        RaExpr::Select { input, condition } => {
            Ok(translate_t(input, catalog, dialect)?.select(theta_star(condition, dialect)))
        }
        RaExpr::Product { left, right } => {
            Ok(translate_t(left, catalog, dialect)?.product(translate_t(right, catalog, dialect)?))
        }
        RaExpr::Project { input, columns } => {
            Ok(translate_t(input, catalog, dialect)?.project_cols(columns.clone()))
        }
        RaExpr::Rename { input, columns } => Ok(RaExpr::Rename {
            input: Box::new(translate_t(input, catalog, dialect)?),
            columns: columns.clone(),
        }),
        other => Err(CoreError::OutsideFragment(format!(
            "the Figure 2 translation is defined on core relational algebra only; desugar first (got {other})"
        ))),
    }
}

/// The `Qᶠ` translation of Figure 2 (right column).
pub fn translate_f(
    expr: &RaExpr,
    catalog: &dyn Catalog,
    dialect: ConditionDialect,
) -> Result<RaExpr> {
    match expr {
        // Rᶠ = adom^ar(R) ⋉̸⇑ R
        RaExpr::Relation { .. } | RaExpr::Values { .. } => {
            let names = column_names(expr, catalog)?;
            Ok(adom_power(catalog, &names)?.unify_anti_join(expr.clone()))
        }
        // (Q1 ∪ Q2)ᶠ = Q1ᶠ ∩ Q2ᶠ
        RaExpr::Union { left, right } => Ok(
            translate_f(left, catalog, dialect)?.intersect(translate_f(right, catalog, dialect)?)
        ),
        // (Q1 ∩ Q2)ᶠ = Q1ᶠ ∪ Q2ᶠ
        RaExpr::Intersect { left, right } => {
            Ok(translate_f(left, catalog, dialect)?.union(translate_f(right, catalog, dialect)?))
        }
        // (Q1 − Q2)ᶠ = Q1ᶠ ∪ Q2ᵗ
        RaExpr::Difference { left, right } => {
            Ok(translate_f(left, catalog, dialect)?.union(translate_t(right, catalog, dialect)?))
        }
        // (σ_θ Q)ᶠ = Qᶠ ∪ σ_(¬θ)*(adom^ar(Q))
        RaExpr::Select { input, condition } => {
            let names = column_names(input, catalog)?;
            let negated = theta_star(&condition.clone().not(), dialect);
            Ok(translate_f(input, catalog, dialect)?
                .union(adom_power(catalog, &names)?.select(negated)))
        }
        // (Q1 × Q2)ᶠ = Q1ᶠ × adom^ar(Q2) ∪ adom^ar(Q1) × Q2ᶠ
        RaExpr::Product { left, right } => {
            let l_names = column_names(left, catalog)?;
            let r_names = column_names(right, catalog)?;
            let a = translate_f(left, catalog, dialect)?.product(adom_power(catalog, &r_names)?);
            let b = adom_power(catalog, &l_names)?.product(translate_f(right, catalog, dialect)?);
            Ok(a.union(b))
        }
        // (π_α Q)ᶠ = π_α(Qᶠ) − π_α(adom^ar(Q) − Qᶠ)
        RaExpr::Project { input, columns } => {
            let names = column_names(input, catalog)?;
            let qf = translate_f(input, catalog, dialect)?;
            let left = qf.clone().project_cols(columns.clone());
            let right = adom_power(catalog, &names)?
                .difference(qf)
                .project_cols(columns.clone());
            Ok(left.difference(right))
        }
        RaExpr::Rename { input, columns } => Ok(RaExpr::Rename {
            input: Box::new(translate_f(input, catalog, dialect)?),
            columns: columns.clone(),
        }),
        other => Err(CoreError::OutsideFragment(format!(
            "the Figure 2 translation is defined on core relational algebra only; desugar first (got {other})"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use certus_algebra::builder::eq;
    use certus_algebra::eval::eval;
    use certus_algebra::NullSemantics;
    use certus_data::builder::rel;
    use certus_data::null::NullId;
    use certus_data::{Database, Value};

    fn null(i: u64) -> Value {
        Value::Null(NullId(i))
    }

    fn tiny_db() -> Database {
        let mut db = Database::new();
        db.insert_relation("r", rel(&["a"], vec![vec![Value::Int(1)], vec![Value::Int(2)]]));
        db.insert_relation("s", rel(&["a"], vec![vec![null(1)]]));
        db
    }

    #[test]
    fn adom_query_collects_all_values() {
        let db = tiny_db();
        let adom = adom_query(&db).unwrap();
        let out = eval(&adom, &db, NullSemantics::Sql).unwrap();
        // adom = {1, 2, ⊥1}
        assert_eq!(out.len(), 3);
        assert_eq!(out.schema().names(), vec!["__adom"]);
    }

    #[test]
    fn qt_of_difference_returns_no_false_positives() {
        // Introduction example: R − S with S = {⊥}: Qᵗ must be empty.
        let db = tiny_db();
        let q = RaExpr::relation("r").difference(RaExpr::relation("s"));
        let qt = translate_t(&q, &db, ConditionDialect::Sql).unwrap();
        let out = eval(&qt, &db, NullSemantics::Sql).unwrap();
        assert!(out.is_empty());
        // SQL evaluation of the original keeps both tuples of r.
        assert_eq!(eval(&q, &db, NullSemantics::Sql).unwrap().len(), 2);
    }

    #[test]
    fn qf_of_base_relation_is_adom_minus_unifiable() {
        let db = tiny_db();
        let qf = translate_f(&RaExpr::relation("r"), &db, ConditionDialect::Sql).unwrap();
        let out = eval(&qf, &db, NullSemantics::Sql).unwrap();
        // adom = {1, 2, ⊥1}; tuples not unifying with {1, 2} — only none, since
        // ⊥1 unifies with both and 1, 2 are in r. So Rᶠ = ∅.
        assert!(out.is_empty());
        // For s = {⊥1}: every adom element unifies with ⊥1 ⇒ Sᶠ = ∅ as well.
        let qf_s = translate_f(&RaExpr::relation("s"), &db, ConditionDialect::Sql).unwrap();
        assert!(eval(&qf_s, &db, NullSemantics::Sql).unwrap().is_empty());
    }

    #[test]
    fn qf_of_selection_adds_negated_condition_over_adom() {
        let mut db = Database::new();
        db.insert_relation(
            "r",
            rel(
                &["a", "b"],
                vec![vec![Value::Int(1), Value::Int(2)], vec![Value::Int(3), Value::Int(3)]],
            ),
        );
        let q = RaExpr::relation("r").select(eq("a", "b"));
        let qf = translate_f(&q, &db, ConditionDialect::Sql).unwrap();
        let out = eval(&qf, &db, NullSemantics::Sql).unwrap();
        // (3,3) satisfies the selection and is in r, so it is not certainly false…
        assert!(!out.contains(&certus_data::Tuple::new(vec![Value::Int(3), Value::Int(3)])));
        // …while (1,2) (fails the condition) and (2,3) (not even in r) are.
        assert!(out.contains(&certus_data::Tuple::new(vec![Value::Int(1), Value::Int(2)])));
        assert!(out.contains(&certus_data::Tuple::new(vec![Value::Int(2), Value::Int(3)])));
    }

    #[test]
    fn figure2_blowup_is_visible_even_on_tiny_instances() {
        // The size of the Qᶠ expression (and its intermediate adomᵏ results)
        // grows much faster than Q⁺'s. This is the structural seed of the
        // Section 5 infeasibility result.
        let db = tiny_db();
        let q = RaExpr::relation("r").difference(RaExpr::relation("s"));
        let qt = translate_t(&q, &db, ConditionDialect::Sql).unwrap();
        let qplus = crate::translate::translate_plus(&q, ConditionDialect::Sql).unwrap();
        assert!(qt.size() > qplus.size());
    }

    #[test]
    fn non_core_operators_are_rejected() {
        let db = tiny_db();
        let q = RaExpr::relation("r").anti_join(RaExpr::relation("s"), eq("a", "a"));
        assert!(translate_t(&q, &db, ConditionDialect::Sql).is_err());
        assert!(translate_f(&q, &db, ConditionDialect::Sql).is_err());
    }
}
