//! High-level API: rewrite a query for correctness and evaluate it.

use crate::certain::CertainOracle;
use crate::dialect::ConditionDialect;
use crate::metrics::AnswerBreakdown;
use crate::optimize::{optimize, OptimizeOptions};
use crate::translate::{translate_plus, translate_star};
use crate::Result;
use certus_algebra::eval::eval;
use certus_algebra::expr::RaExpr;
use certus_algebra::schema_infer::Catalog;
use certus_data::{Database, Relation};

/// The front door of `certus-core`: turns a query `Q` into its
/// correctness-guaranteed variant `Q⁺` (optionally optimized for execution)
/// and evaluates it.
///
/// ```
/// use certus_core::CertainRewriter;
/// use certus_algebra::{builder::eq, RaExpr};
/// use certus_data::{builder::rel, Database, Value};
/// use certus_data::null::NullId;
///
/// let mut db = Database::new();
/// db.insert_relation("r", rel(&["a"], vec![vec![Value::Int(1)]]));
/// db.insert_relation("s", rel(&["b"], vec![vec![Value::Null(NullId(1))]]));
/// // R − S phrased as NOT EXISTS: SQL would wrongly return {1}.
/// let q = RaExpr::relation("r").anti_join(RaExpr::relation("s"), eq("a", "b"));
/// let rewriter = CertainRewriter::new();
/// let certain = rewriter.evaluate_certain(&q, &db).unwrap();
/// assert!(certain.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct CertainRewriter {
    /// Condition-translation dialect (SQL-adjusted by default).
    pub dialect: ConditionDialect,
    /// Post-translation optimizations.
    pub optimize: OptimizeOptions,
    /// Whether to apply the optimizations at all (the ablation experiments
    /// turn this off to reproduce the "confused optimizer" behaviour).
    pub apply_optimizations: bool,
}

impl Default for CertainRewriter {
    fn default() -> Self {
        CertainRewriter {
            dialect: ConditionDialect::Sql,
            optimize: OptimizeOptions::default(),
            apply_optimizations: true,
        }
    }
}

impl CertainRewriter {
    /// A rewriter with the default (paper) configuration: SQL dialect,
    /// all optimizations on.
    pub fn new() -> Self {
        Self::default()
    }

    /// A rewriter that produces the raw translation with no optimizations.
    pub fn unoptimized() -> Self {
        CertainRewriter { apply_optimizations: false, ..Self::default() }
    }

    /// Use the theoretical dialect (pair with naive evaluation).
    pub fn theoretical() -> Self {
        CertainRewriter { dialect: ConditionDialect::Theoretical, ..Self::default() }
    }

    /// Produce `Q⁺`, optionally optimized against the catalog's schema and
    /// key information.
    pub fn rewrite_plus(&self, expr: &RaExpr, catalog: &dyn Catalog) -> Result<RaExpr> {
        let plus = translate_plus(expr, self.dialect)?;
        if self.apply_optimizations {
            optimize(&plus, catalog, &self.optimize)
        } else {
            Ok(plus)
        }
    }

    /// Produce `Q★` (the potential-answer query).
    pub fn rewrite_star(&self, expr: &RaExpr, catalog: &dyn Catalog) -> Result<RaExpr> {
        let star = translate_star(expr, self.dialect)?;
        if self.apply_optimizations {
            optimize(&star, catalog, &self.optimize)
        } else {
            Ok(star)
        }
    }

    /// Rewrite and evaluate: returns a subset of the certain answers of
    /// `expr` on `db` (Theorem 1 of the paper).
    pub fn evaluate_certain(&self, expr: &RaExpr, db: &Database) -> Result<Relation> {
        let plus = self.rewrite_plus(expr, db)?;
        eval(&plus, db, self.dialect.evaluation_semantics()).map_err(crate::CoreError::Algebra)
    }

    /// Evaluate the original query with plain SQL semantics (`EvalSQL`).
    pub fn evaluate_sql(&self, expr: &RaExpr, db: &Database) -> Result<Relation> {
        eval(expr, db, certus_algebra::NullSemantics::Sql).map_err(crate::CoreError::Algebra)
    }

    /// Evaluate both the original query and its rewriting and break the SQL
    /// answer down into certain answers and false positives, using the exact
    /// oracle. Only suitable for small instances.
    pub fn audit(&self, expr: &RaExpr, db: &Database, oracle: &CertainOracle) -> Result<Audit> {
        let sql_answers = self.evaluate_sql(expr, db)?;
        let certain_answers = self.evaluate_certain(expr, db)?;
        let mut certainty = Vec::with_capacity(sql_answers.len());
        for t in sql_answers.iter() {
            certainty.push(oracle.is_certain(expr, db, t)?);
        }
        let mut idx = 0;
        let breakdown = AnswerBreakdown::from_predicate(&sql_answers, |_| {
            let c = certainty[idx];
            idx += 1;
            c
        });
        Ok(Audit { sql_answers, certain_answers, breakdown })
    }
}

/// The result of [`CertainRewriter::audit`].
#[derive(Debug, Clone)]
pub struct Audit {
    /// What plain SQL evaluation returns.
    pub sql_answers: Relation,
    /// What the correctness-guaranteed rewriting returns.
    pub certain_answers: Relation,
    /// Breakdown of the SQL answer against the exact oracle.
    pub breakdown: AnswerBreakdown,
}

#[cfg(test)]
mod tests {
    use super::*;
    use certus_algebra::builder::eq;
    use certus_data::builder::rel;
    use certus_data::null::NullId;
    use certus_data::Value;

    fn null(i: u64) -> Value {
        Value::Null(NullId(i))
    }

    fn db() -> Database {
        let mut db = Database::new();
        db.insert_relation(
            "r",
            rel(&["a"], vec![vec![Value::Int(1)], vec![Value::Int(2)], vec![Value::Int(3)]]),
        );
        db.insert_relation("s", rel(&["b"], vec![vec![Value::Int(2)], vec![null(1)]]));
        db
    }

    #[test]
    fn certain_evaluation_has_no_false_positives() {
        let db = db();
        let q = RaExpr::relation("r").anti_join(RaExpr::relation("s"), eq("a", "b"));
        let rewriter = CertainRewriter::new();
        let certain = rewriter.evaluate_certain(&q, &db).unwrap();
        // With ⊥ in s, no r tuple is certainly absent from s except... none:
        // ⊥ may equal 1 or 3, and 2 is matched outright.
        assert!(certain.is_empty());
        let sql = rewriter.evaluate_sql(&q, &db).unwrap();
        assert_eq!(sql.len(), 2, "SQL returns the two false positives");
    }

    #[test]
    fn audit_reports_false_positive_rate() {
        let db = db();
        let q = RaExpr::relation("r").anti_join(RaExpr::relation("s"), eq("a", "b"));
        let rewriter = CertainRewriter::new();
        let audit = rewriter.audit(&q, &db, &CertainOracle::default()).unwrap();
        assert_eq!(audit.breakdown.total, 2);
        assert_eq!(audit.breakdown.false_positives, 2);
        assert_eq!(audit.breakdown.certain, 0);
        assert!(audit.certain_answers.is_empty());
        assert!((audit.breakdown.false_positive_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn unoptimized_and_optimized_rewritings_agree_semantically() {
        let db = db();
        let q = RaExpr::relation("r").anti_join(RaExpr::relation("s"), eq("a", "b"));
        let opt = CertainRewriter::new().evaluate_certain(&q, &db).unwrap().sorted();
        let raw = CertainRewriter::unoptimized().evaluate_certain(&q, &db).unwrap().sorted();
        assert_eq!(opt.tuples(), raw.tuples());
    }

    #[test]
    fn theoretical_rewriter_uses_naive_evaluation() {
        let rewriter = CertainRewriter::theoretical();
        assert_eq!(rewriter.dialect.evaluation_semantics(), certus_algebra::NullSemantics::Naive);
    }

    #[test]
    fn doc_example_compiles_and_runs() {
        let mut db = Database::new();
        db.insert_relation("r", rel(&["a"], vec![vec![Value::Int(1)]]));
        db.insert_relation("s", rel(&["b"], vec![vec![null(1)]]));
        let q = RaExpr::relation("r").anti_join(RaExpr::relation("s"), eq("a", "b"));
        let certain = CertainRewriter::new().evaluate_certain(&q, &db).unwrap();
        assert!(certain.is_empty());
    }
}
