//! Precision / recall / false-positive accounting for the experiments.
//!
//! The paper evaluates its translations with three measures (Sections 4 and
//! 7): the fraction of *false positives* among SQL answers, the *precision*
//! of an evaluation procedure (fraction of returned answers that are
//! certain), and its *recall* relative to the certain answers SQL returns.

use certus_data::{Relation, Tuple};
use std::collections::HashSet;

/// Breakdown of a query answer into certain answers and false positives.
#[derive(Debug, Clone, PartialEq)]
pub struct AnswerBreakdown {
    /// Total number of returned tuples.
    pub total: usize,
    /// Returned tuples that are certain answers.
    pub certain: usize,
    /// Returned tuples that are not certain answers (false positives).
    pub false_positives: usize,
}

impl AnswerBreakdown {
    /// Build a breakdown from the answer relation and the subset of it known
    /// to be certain.
    pub fn new(answers: &Relation, certain: &Relation) -> Self {
        let certain_set: HashSet<&Tuple> = certain.iter().collect();
        let certain_count = answers.iter().filter(|t| certain_set.contains(t)).count();
        AnswerBreakdown {
            total: answers.len(),
            certain: certain_count,
            false_positives: answers.len() - certain_count,
        }
    }

    /// Build a breakdown from a per-tuple certainty predicate.
    pub fn from_predicate(answers: &Relation, mut is_certain: impl FnMut(&Tuple) -> bool) -> Self {
        let certain = answers.iter().filter(|t| is_certain(t)).count();
        AnswerBreakdown { total: answers.len(), certain, false_positives: answers.len() - certain }
    }

    /// Percentage of false positives among all returned answers (0 when the
    /// answer is empty — an empty answer contains no wrong tuples).
    pub fn false_positive_rate(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.false_positives as f64 / self.total as f64
        }
    }

    /// Precision: fraction of returned answers that are certain (1.0 on an
    /// empty answer, matching the convention that returning nothing is
    /// trivially precise).
    pub fn precision(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            self.certain as f64 / self.total as f64
        }
    }
}

/// Precision and recall of one evaluation procedure against a reference set
/// of relevant (certain) answers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrecisionRecall {
    /// Fraction of returned tuples that are relevant.
    pub precision: f64,
    /// Fraction of relevant tuples that are returned.
    pub recall: f64,
    /// Number of returned tuples.
    pub returned: usize,
    /// Number of relevant tuples.
    pub relevant: usize,
}

impl PrecisionRecall {
    /// Compute precision and recall of `returned` against `relevant`.
    pub fn compute(returned: &Relation, relevant: &Relation) -> Self {
        let relevant_set: HashSet<&Tuple> = relevant.iter().collect();
        let returned_set: HashSet<&Tuple> = returned.iter().collect();
        let hits = returned_set.iter().filter(|t| relevant_set.contains(*t)).count();
        let precision =
            if returned_set.is_empty() { 1.0 } else { hits as f64 / returned_set.len() as f64 };
        let recall =
            if relevant_set.is_empty() { 1.0 } else { hits as f64 / relevant_set.len() as f64 };
        PrecisionRecall {
            precision,
            recall,
            returned: returned_set.len(),
            relevant: relevant_set.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use certus_data::builder::rel;
    use certus_data::Value;

    fn r(vals: &[i64]) -> Relation {
        rel(&["a"], vals.iter().map(|&v| vec![Value::Int(v)]).collect())
    }

    #[test]
    fn breakdown_counts() {
        let answers = r(&[1, 2, 3, 4]);
        let certain = r(&[2, 4]);
        let b = AnswerBreakdown::new(&answers, &certain);
        assert_eq!(b.total, 4);
        assert_eq!(b.certain, 2);
        assert_eq!(b.false_positives, 2);
        assert!((b.false_positive_rate() - 0.5).abs() < 1e-12);
        assert!((b.precision() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_answer_has_perfect_precision() {
        let answers = r(&[]);
        let b = AnswerBreakdown::new(&answers, &r(&[]));
        assert_eq!(b.false_positive_rate(), 0.0);
        assert_eq!(b.precision(), 1.0);
    }

    #[test]
    fn predicate_breakdown() {
        let answers = r(&[1, 2, 3]);
        let b = AnswerBreakdown::from_predicate(&answers, |t| t[0] != Value::Int(2));
        assert_eq!(b.false_positives, 1);
    }

    #[test]
    fn precision_recall_computation() {
        let returned = r(&[1, 2, 3]);
        let relevant = r(&[2, 3, 4]);
        let pr = PrecisionRecall::compute(&returned, &relevant);
        assert!((pr.precision - 2.0 / 3.0).abs() < 1e-12);
        assert!((pr.recall - 2.0 / 3.0).abs() < 1e-12);
        // Perfect recall when everything relevant is returned.
        let pr2 = PrecisionRecall::compute(&r(&[2, 3, 4, 9]), &relevant);
        assert_eq!(pr2.recall, 1.0);
        // Empty reference set: recall is 1 by convention.
        let pr3 = PrecisionRecall::compute(&r(&[1]), &r(&[]));
        assert_eq!(pr3.recall, 1.0);
    }
}
