//! The improved, implementation-friendly translation `Q ↦ (Q⁺, Q★)` of
//! Figure 3 of the paper.
//!
//! `Q⁺` has *correctness guarantees* for `Q` (it returns only certain answers
//! with nulls, Theorem 1), and `Q★` *represents potential answers* to `Q`
//! (Definition 3). The two translations are mutually recursive: the rule for
//! difference uses the other translation of the subtracted query.
//!
//! Beyond the core operators of Figure 3, the derived operators produced by
//! the SQL front-end are translated directly — this is sanctioned by
//! Corollary 1, because each direct rule is equivalent to (or stronger than,
//! on the `Q⁺` side / weaker than, on the `Q★` side) the rule obtained by
//! desugaring and applying the literal Figure 3 rules:
//!
//! * `Join(l, r, θ)⁺ = Join(l⁺, r⁺, θ*)` — a theta-join is `σ_θ(l × r)`.
//! * `SemiJoin(l, r, θ)⁺ = SemiJoin(l⁺, r⁺, θ*)` — a semijoin is
//!   `π_l(σ_θ(l × r))`, and all three rules commute with the translation.
//! * `AntiJoin(l, r, θ)⁺ = AntiJoin(l⁺, r★, θ**)` — this is the workhorse
//!   rule behind the paper's rewritten `NOT EXISTS` subqueries. It follows
//!   from `(l − X)⁺ = l⁺ ⋉̸⇑ X★` with `X = SemiJoin(l, r, θ)`: a tuple of
//!   `l⁺` survives iff no potential match exists in `r★` under the weakened
//!   condition `θ**`, which is exactly what `AntiJoin(l⁺, r★, θ**)` computes
//!   without ever materialising `X★`. (The unification check against the
//!   preserved side is subsumed because the preserved tuple *is* the tuple
//!   being tested.)
//! * `AntiJoin(l, r, θ)★ = Difference(l★, SemiJoin(l⁺, r⁺, θ*))` — rule (4.4)
//!   with `(l ⋉_θ r)⁺` as the subtracted query.

use crate::dialect::ConditionDialect;
use crate::error::CoreError;
use crate::theta::{theta_star, theta_star_star};
use crate::Result;
use certus_algebra::expr::RaExpr;

/// Translate `Q` into `Q⁺`, the query with correctness guarantees
/// (Figure 3, rules (3.1)–(3.7) plus derived-operator rules).
pub fn translate_plus(expr: &RaExpr, dialect: ConditionDialect) -> Result<RaExpr> {
    match expr {
        // (3.1) R⁺ = R  — and literal relations translate to themselves.
        RaExpr::Relation { .. } | RaExpr::Values { .. } => Ok(expr.clone()),
        // (3.2) (Q1 ∪ Q2)⁺ = Q1⁺ ∪ Q2⁺
        RaExpr::Union { left, right } => {
            Ok(translate_plus(left, dialect)?.union(translate_plus(right, dialect)?))
        }
        // (3.3) (Q1 ∩ Q2)⁺ = Q1⁺ ∩ Q2⁺
        RaExpr::Intersect { left, right } => {
            Ok(translate_plus(left, dialect)?.intersect(translate_plus(right, dialect)?))
        }
        // (3.4) (Q1 − Q2)⁺ = Q1⁺ ⋉̸⇑ Q2★
        RaExpr::Difference { left, right } => {
            Ok(translate_plus(left, dialect)?.unify_anti_join(translate_star(right, dialect)?))
        }
        // (3.5) (σ_θ Q)⁺ = σ_θ*(Q⁺)
        RaExpr::Select { input, condition } => {
            Ok(translate_plus(input, dialect)?.select(theta_star(condition, dialect)))
        }
        // (3.6) (Q1 × Q2)⁺ = Q1⁺ × Q2⁺
        RaExpr::Product { left, right } => {
            Ok(translate_plus(left, dialect)?.product(translate_plus(right, dialect)?))
        }
        // (3.7) (π_α Q)⁺ = π_α(Q⁺)
        RaExpr::Project { input, columns } => {
            Ok(translate_plus(input, dialect)?.project_cols(columns.clone()))
        }
        // Derived operators (Corollary 1).
        RaExpr::Join { left, right, condition } => Ok(translate_plus(left, dialect)?
            .join(translate_plus(right, dialect)?, theta_star(condition, dialect))),
        RaExpr::SemiJoin { left, right, condition } => Ok(translate_plus(left, dialect)?
            .semi_join(translate_plus(right, dialect)?, theta_star(condition, dialect))),
        RaExpr::AntiJoin { left, right, condition } => Ok(translate_plus(left, dialect)?
            .anti_join(translate_star(right, dialect)?, theta_star_star(condition, dialect))),
        RaExpr::Rename { input, columns } => Ok(RaExpr::Rename {
            input: Box::new(translate_plus(input, dialect)?),
            columns: columns.clone(),
        }),
        RaExpr::Distinct { input } => Ok(translate_plus(input, dialect)?.distinct()),
        // Division with a base-relation divisor is positive (Fact 1 covers it);
        // a computed divisor is outside the supported fragment.
        RaExpr::Division { left, right } => match right.as_ref() {
            RaExpr::Relation { .. } | RaExpr::Values { .. } => {
                Ok(translate_plus(left, dialect)?.divide((**right).clone()))
            }
            _ => Err(CoreError::OutsideFragment(
                "division whose divisor is not a database relation".into(),
            )),
        },
        RaExpr::UnifySemiJoin { .. } | RaExpr::UnifyAntiSemiJoin { .. } => {
            Err(CoreError::OutsideFragment(
                "unification semijoins may not appear in source queries".into(),
            ))
        }
        // Aggregates are treated as black boxes *inside conditions* (scalar
        // subqueries); an aggregate in the main operator tree has no certain-
        // answer semantics yet (paper, Section 8).
        RaExpr::Aggregate { .. } => Err(CoreError::OutsideFragment(
            "aggregate operators are only supported as scalar subqueries inside conditions".into(),
        )),
    }
}

/// Translate `Q` into `Q★`, a query representing potential answers
/// (Figure 3, rules (4.1)–(4.7) plus derived-operator rules).
pub fn translate_star(expr: &RaExpr, dialect: ConditionDialect) -> Result<RaExpr> {
    match expr {
        // (4.1) R★ = R
        RaExpr::Relation { .. } | RaExpr::Values { .. } => Ok(expr.clone()),
        // (4.2) (Q1 ∪ Q2)★ = Q1★ ∪ Q2★
        RaExpr::Union { left, right } => {
            Ok(translate_star(left, dialect)?.union(translate_star(right, dialect)?))
        }
        // (4.3) (Q1 ∩ Q2)★ = Q1★ ⋉⇑ Q2★
        RaExpr::Intersect { left, right } => {
            Ok(translate_star(left, dialect)?.unify_semi_join(translate_star(right, dialect)?))
        }
        // (4.4) (Q1 − Q2)★ = Q1★ − Q2⁺
        RaExpr::Difference { left, right } => {
            Ok(translate_star(left, dialect)?.difference(translate_plus(right, dialect)?))
        }
        // (4.5) (σ_θ Q)★ = σ_θ**(Q★)
        RaExpr::Select { input, condition } => {
            Ok(translate_star(input, dialect)?.select(theta_star_star(condition, dialect)))
        }
        // (4.6) (Q1 × Q2)★ = Q1★ × Q2★
        RaExpr::Product { left, right } => {
            Ok(translate_star(left, dialect)?.product(translate_star(right, dialect)?))
        }
        // (4.7) (π_α Q)★ = π_α(Q★)
        RaExpr::Project { input, columns } => {
            Ok(translate_star(input, dialect)?.project_cols(columns.clone()))
        }
        // Derived operators.
        RaExpr::Join { left, right, condition } => Ok(translate_star(left, dialect)?
            .join(translate_star(right, dialect)?, theta_star_star(condition, dialect))),
        RaExpr::SemiJoin { left, right, condition } => Ok(translate_star(left, dialect)?
            .semi_join(translate_star(right, dialect)?, theta_star_star(condition, dialect))),
        RaExpr::AntiJoin { left, right, condition } => {
            // (l ▷_θ r)★ = l★ − (l ⋉_θ r)⁺
            let minus = translate_plus(left, dialect)?
                .semi_join(translate_plus(right, dialect)?, theta_star(condition, dialect));
            Ok(translate_star(left, dialect)?.difference(minus))
        }
        RaExpr::Rename { input, columns } => Ok(RaExpr::Rename {
            input: Box::new(translate_star(input, dialect)?),
            columns: columns.clone(),
        }),
        RaExpr::Distinct { input } => Ok(translate_star(input, dialect)?.distinct()),
        RaExpr::Division { left, right } => match right.as_ref() {
            RaExpr::Relation { .. } | RaExpr::Values { .. } => {
                Ok(translate_star(left, dialect)?.divide((**right).clone()))
            }
            _ => Err(CoreError::OutsideFragment(
                "division whose divisor is not a database relation".into(),
            )),
        },
        RaExpr::UnifySemiJoin { .. } | RaExpr::UnifyAntiSemiJoin { .. } => {
            Err(CoreError::OutsideFragment(
                "unification semijoins may not appear in source queries".into(),
            ))
        }
        RaExpr::Aggregate { .. } => Err(CoreError::OutsideFragment(
            "aggregate operators are only supported as scalar subqueries inside conditions".into(),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use certus_algebra::builder::{eq, neq_const};
    use certus_algebra::eval::eval;
    use certus_algebra::NullSemantics;
    use certus_data::builder::rel;
    use certus_data::null::NullId;
    use certus_data::{Database, Value};

    fn null(i: u64) -> Value {
        Value::Null(NullId(i))
    }

    /// The introduction's example: R = {1}, S = {NULL}. SQL returns {1} for
    /// R − S (a false positive); Q⁺ must return the empty set.
    #[test]
    fn intro_example_difference() {
        let mut db = Database::new();
        db.insert_relation("r", rel(&["a"], vec![vec![Value::Int(1)]]));
        db.insert_relation("s", rel(&["a"], vec![vec![null(1)]]));
        let q = RaExpr::relation("r").difference(RaExpr::relation("s"));
        let plus = translate_plus(&q, ConditionDialect::Sql).unwrap();
        let out = eval(&plus, &db, NullSemantics::Sql).unwrap();
        assert!(out.is_empty(), "Q+ returned a false positive: {out}");
        // Whereas plain SQL evaluation of the difference keeps the tuple.
        let sql = eval(&q, &db, NullSemantics::Sql).unwrap();
        assert_eq!(sql.len(), 1);
    }

    /// Same example phrased with NOT EXISTS (anti-join), as in the paper's SQL.
    #[test]
    fn intro_example_antijoin() {
        let mut db = Database::new();
        db.insert_relation("r", rel(&["a"], vec![vec![Value::Int(1)]]));
        db.insert_relation("s", rel(&["b"], vec![vec![null(1)]]));
        let q = RaExpr::relation("r").anti_join(RaExpr::relation("s"), eq("a", "b"));
        let plus = translate_plus(&q, ConditionDialect::Sql).unwrap();
        assert!(eval(&plus, &db, NullSemantics::Sql).unwrap().is_empty());
        assert_eq!(eval(&q, &db, NullSemantics::Sql).unwrap().len(), 1);
    }

    /// On complete databases Q and Q⁺ coincide (third bullet of the paper's
    /// summary of \[22\], preserved by the improved translation).
    #[test]
    fn complete_database_unchanged_semantics() {
        let mut db = Database::new();
        db.insert_relation(
            "r",
            rel(
                &["a", "b"],
                vec![vec![Value::Int(1), Value::Int(1)], vec![Value::Int(2), Value::Int(3)]],
            ),
        );
        db.insert_relation("s", rel(&["c"], vec![vec![Value::Int(2)]]));
        let q = RaExpr::relation("r")
            .select(neq_const("b", 1i64))
            .anti_join(RaExpr::relation("s"), eq("a", "c"))
            .project(&["a"]);
        let plus = translate_plus(&q, ConditionDialect::Sql).unwrap();
        let a = eval(&q, &db, NullSemantics::Sql).unwrap().sorted();
        let b = eval(&plus, &db, NullSemantics::Sql).unwrap().sorted();
        assert_eq!(a.tuples(), b.tuples());
    }

    /// The paper's Section 6 example of incomparability: D1 with
    /// R = {(1,2),(2,⊥)}, S = {(1,2),(⊥,2)}, T = {(1,2)} and
    /// Q1 = R − (S ∩ T): the tuple (2,⊥) is in EvalSQL and is certain, but
    /// Q1⁺ returns the empty set.
    #[test]
    fn incomparability_example_d1() {
        let mut db = Database::new();
        db.insert_relation(
            "r",
            rel(
                &["a", "b"],
                vec![vec![Value::Int(1), Value::Int(2)], vec![Value::Int(2), null(1)]],
            ),
        );
        db.insert_relation(
            "s",
            rel(
                &["a", "b"],
                vec![vec![Value::Int(1), Value::Int(2)], vec![null(2), Value::Int(2)]],
            ),
        );
        db.insert_relation("t", rel(&["a", "b"], vec![vec![Value::Int(1), Value::Int(2)]]));
        let q = RaExpr::relation("r")
            .difference(RaExpr::relation("s").intersect(RaExpr::relation("t")));
        let plus = translate_plus(&q, ConditionDialect::Sql).unwrap();
        let out = eval(&plus, &db, NullSemantics::Sql).unwrap();
        assert!(out.is_empty(), "Q+ is allowed to miss the certain answer here");
        // SQL evaluation keeps (2,⊥) — which happens to be certain.
        let sql = eval(&q, &db, NullSemantics::Sql).unwrap();
        assert_eq!(sql.len(), 1);
    }

    /// The other direction of incomparability (D2): Q2 = σ_{A=B}(R) over
    /// R = {(⊥,⊥)} with the *same* marked null: Q2⁺ under the theoretical
    /// dialect + naive evaluation returns (⊥,⊥), while SQL evaluation of Q2
    /// returns nothing.
    #[test]
    fn incomparability_example_d2() {
        let mut db = Database::new();
        db.insert_relation("r", rel(&["a", "b"], vec![vec![null(7), null(7)]]));
        let q = RaExpr::relation("r").select(eq("a", "b"));
        let plus = translate_plus(&q, ConditionDialect::Theoretical).unwrap();
        let out = eval(&plus, &db, NullSemantics::Naive).unwrap();
        assert_eq!(out.len(), 1);
        let sql = eval(&q, &db, NullSemantics::Sql).unwrap();
        assert!(sql.is_empty());
    }

    #[test]
    fn antijoin_condition_is_weakened() {
        let q = RaExpr::relation("orders").anti_join(
            RaExpr::relation("lineitem"),
            eq("l_orderkey", "o_orderkey").and(neq_const("l_suppkey", 7i64)),
        );
        let plus = translate_plus(&q, ConditionDialect::Sql).unwrap();
        match plus {
            RaExpr::AntiJoin { condition, .. } => {
                let s = condition.to_string();
                assert!(s.contains("l_suppkey IS NULL"), "weakened condition: {s}");
                assert!(s.contains("l_orderkey IS NULL"), "weakened condition: {s}");
            }
            other => panic!("expected anti-join, got {other}"),
        }
    }

    #[test]
    fn semijoin_condition_is_strengthened_not_weakened() {
        let q = RaExpr::relation("orders")
            .semi_join(RaExpr::relation("lineitem"), eq("l_orderkey", "o_orderkey"));
        let plus = translate_plus(&q, ConditionDialect::Sql).unwrap();
        match plus {
            RaExpr::SemiJoin { condition, .. } => {
                assert!(!condition.to_string().contains("IS NULL"));
            }
            other => panic!("expected semi-join, got {other}"),
        }
    }

    #[test]
    fn unsupported_fragments_are_rejected() {
        let agg =
            RaExpr::relation("r").aggregate(&[], vec![certus_algebra::AggExpr::count_star("n")]);
        assert!(matches!(
            translate_plus(&agg, ConditionDialect::Sql),
            Err(CoreError::OutsideFragment(_))
        ));
        let usj = RaExpr::relation("r").unify_semi_join(RaExpr::relation("s"));
        assert!(translate_star(&usj, ConditionDialect::Sql).is_err());
    }

    /// Positive queries translate to themselves under the SQL dialect
    /// ("for positive queries and on databases without nulls, it coincides
    /// with the usual SQL evaluation").
    #[test]
    fn positive_queries_are_fixed_points_under_sql_dialect() {
        let q = RaExpr::relation("r")
            .join(RaExpr::relation("s"), eq("a", "c"))
            .select(eq("a", "b"))
            .project(&["a"]);
        let plus = translate_plus(&q, ConditionDialect::Sql).unwrap();
        assert_eq!(plus, q);
    }
}
