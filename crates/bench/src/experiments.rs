//! The experiment implementations. Each function returns structured rows (so
//! integration tests can assert on shapes) and has a matching `print_*`
//! helper used by the `experiments` binary.

use crate::timing::{fmt_ratio, time_mean, time_min};
use certus_algebra::builder::eq_const;
use certus_algebra::expr::RaExpr;
use certus_core::{translate_plus, CertainRewriter, ConditionDialect};
use certus_data::builder::rel;
use certus_data::{Database, Value};
use certus_engine::{estimate, Engine, EngineConfig};
use certus_plan::Planner;
use certus_tpch::fp_detect::count_false_positives;
use certus_tpch::{query_by_number, Workload};

/// One row of the Figure 1 experiment: average false-positive percentage per
/// query at a given null rate.
#[derive(Debug, Clone)]
pub struct Fig1Row {
    /// Null rate (fraction).
    pub null_rate: f64,
    /// Average FP percentage (0–100) for Q1–Q4.
    pub fp_pct: [f64; 4],
}

/// The null-rate sweep of the paper: 0.5%–6% in steps of 0.5 and 6%–10% in
/// steps of 1.
pub fn paper_null_rates() -> Vec<f64> {
    let mut rates: Vec<f64> = (1..=12).map(|i| i as f64 * 0.005).collect();
    rates.extend((7..=10).map(|i| i as f64 * 0.01));
    rates
}

/// Figure 1: lower bound on the percentage of false positives produced by
/// queries Q1–Q4 as the null rate grows (Section 4).
pub fn figure1(
    scale_factor: f64,
    instances_per_rate: u64,
    runs_per_instance: u64,
    null_rates: &[f64],
) -> Vec<Fig1Row> {
    let mut rows = Vec::new();
    for &rate in null_rates {
        let mut sums = [0.0f64; 4];
        let mut counts = [0usize; 4];
        for inst in 0..instances_per_rate {
            let w = Workload::new(scale_factor, rate, 100 + inst);
            let db = w.incomplete_instance();
            let engine = Engine::with_config(&db, EngineConfig::serial());
            for run in 0..runs_per_instance {
                let params = w.params(&db, run);
                for q in 1..=4usize {
                    let expr = query_by_number(q, &params).expect("query exists");
                    let answers = engine.execute(&expr).expect("query runs");
                    if answers.is_empty() {
                        continue;
                    }
                    let fp = count_false_positives(q, &db, &params, &answers);
                    sums[q - 1] += 100.0 * fp as f64 / answers.len() as f64;
                    counts[q - 1] += 1;
                }
            }
        }
        let fp_pct =
            [0, 1, 2, 3].map(|i| if counts[i] == 0 { 0.0 } else { sums[i] / counts[i] as f64 });
        rows.push(Fig1Row { null_rate: rate, fp_pct });
    }
    rows
}

/// Print Figure 1 rows as the table behind the paper's plot.
pub fn print_figure1(rows: &[Fig1Row]) {
    println!("== Figure 1: average % of false positives per query ==");
    println!("{:>9} {:>8} {:>8} {:>8} {:>8}", "null rate", "Q1", "Q2", "Q3", "Q4");
    for r in rows {
        println!(
            "{:>8.1}% {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}%",
            r.null_rate * 100.0,
            r.fp_pct[0],
            r.fp_pct[1],
            r.fp_pct[2],
            r.fp_pct[3]
        );
    }
}

/// One row of the Figure 4 / Table 1 experiments: relative running time
/// `t(Q⁺)/t(Q)` per query.
#[derive(Debug, Clone)]
pub struct RelPerfRow {
    /// Null rate (fraction).
    pub null_rate: f64,
    /// Scale factor of the instance.
    pub scale_factor: f64,
    /// Mean ratio `t(Q⁺)/t(Q)` for Q1–Q4.
    pub ratio: [f64; 4],
}

/// Measure the relative performance of the translated queries (Figure 4).
pub fn figure4(
    scale_factor: f64,
    null_rates: &[f64],
    instances: u64,
    reps: usize,
) -> Vec<RelPerfRow> {
    let rewriter = CertainRewriter::new();
    let mut rows = Vec::new();
    for &rate in null_rates {
        let mut sums = [0.0f64; 4];
        let mut counts = [0usize; 4];
        for inst in 0..instances {
            let w = Workload::new(scale_factor, rate, 500 + inst);
            let db = w.incomplete_instance();
            let engine = Engine::with_config(&db, EngineConfig::serial());
            let params = w.params(&db, inst);
            for q in 1..=4usize {
                let expr = query_by_number(q, &params).expect("query exists");
                let plus = rewriter.rewrite_plus(&expr, &db).expect("translates");
                let t_orig = time_mean(reps, || engine.execute(&expr).expect("runs"));
                let t_plus = time_mean(reps, || engine.execute(&plus).expect("runs"));
                if t_orig > 0.0 {
                    sums[q - 1] += t_plus / t_orig;
                    counts[q - 1] += 1;
                }
            }
        }
        let ratio =
            [0, 1, 2, 3].map(|i| if counts[i] == 0 { 1.0 } else { sums[i] / counts[i] as f64 });
        rows.push(RelPerfRow { null_rate: rate, scale_factor, ratio });
    }
    rows
}

/// Print Figure 4 rows.
pub fn print_figure4(rows: &[RelPerfRow]) {
    println!("== Figure 4: average relative performance t(Q+)/t(Q) ==");
    println!("{:>9} {:>10} {:>10} {:>10} {:>10}", "null rate", "Q1+", "Q2+", "Q3+", "Q4+");
    for r in rows {
        println!(
            "{:>8.0}% {:>10} {:>10} {:>10} {:>10}",
            r.null_rate * 100.0,
            fmt_ratio(r.ratio[0]),
            fmt_ratio(r.ratio[1]),
            fmt_ratio(r.ratio[2]),
            fmt_ratio(r.ratio[3])
        );
    }
}

/// One row of Table 1: the range (min–max over null rates) of the relative
/// performance at a given scale factor.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Scale factor of the instance (multiples of the base scale).
    pub scale_factor: f64,
    /// `(min, max)` of the relative performance for Q1–Q4.
    pub ranges: [(f64, f64); 4],
}

/// Table 1: ranges of relative performance as the instance grows.
pub fn table1(scale_factors: &[f64], null_rates: &[f64], reps: usize) -> Vec<Table1Row> {
    let mut out = Vec::new();
    for &sf in scale_factors {
        let rows = figure4(sf, null_rates, 1, reps);
        let mut ranges = [(f64::INFINITY, f64::NEG_INFINITY); 4];
        for r in &rows {
            for (range, ratio) in ranges.iter_mut().zip(&r.ratio) {
                range.0 = range.0.min(*ratio);
                range.1 = range.1.max(*ratio);
            }
        }
        out.push(Table1Row { scale_factor: sf, ranges });
    }
    out
}

/// Print Table 1 rows.
pub fn print_table1(rows: &[Table1Row]) {
    println!("== Table 1: ranges of relative performance (Q+ vs Q) across instance sizes ==");
    println!("{:>8} {:>19} {:>19} {:>19} {:>19}", "scale", "Q1", "Q2", "Q3", "Q4");
    for r in rows {
        let cell =
            |i: usize| format!("{} – {}", fmt_ratio(r.ranges[i].0), fmt_ratio(r.ranges[i].1));
        println!(
            "{:>8} {:>19} {:>19} {:>19} {:>19}",
            format!("{}x", r.scale_factor / rows[0].scale_factor),
            cell(0),
            cell(1),
            cell(2),
            cell(3)
        );
    }
}

/// One row of the Section 5 experiment: evaluation time of the Figure 2
/// translation `Qᵗ` versus the improved `Q⁺` on small instances.
#[derive(Debug, Clone)]
pub struct Sec5Row {
    /// Number of tuples per base relation.
    pub tuples_per_relation: usize,
    /// Evaluation time of the improved translation `Q⁺` (seconds).
    pub t_plus: f64,
    /// Evaluation time of the Figure 2 translation `Qᵗ` (seconds).
    pub t_fig2: f64,
}

fn sec5_database(n: usize) -> Database {
    let mut db = Database::new();
    let mk = |offset: i64| {
        (0..n)
            .map(|i| {
                let base = offset + i as i64;
                if i % 17 == 0 {
                    vec![Value::Int(base), Value::fresh_null()]
                } else {
                    vec![Value::Int(base), Value::Int(base * 3 % 50)]
                }
            })
            .collect::<Vec<_>>()
    };
    db.insert_relation("r", rel(&["a", "b"], mk(0)));
    db.insert_relation("s", rel(&["a", "b"], mk(7)));
    db.insert_relation("t", rel(&["a", "b"], mk(13)));
    db
}

/// Section 5: the original translation of \[22\] is infeasible even on tiny
/// instances, while `Q⁺` scales. The test query is the paper's Section 6
/// example `Q = R − (π_α(T) − σ_θ(S))`.
pub fn section5(sizes: &[usize]) -> Vec<Sec5Row> {
    let mut out = Vec::new();
    for &n in sizes {
        let db = sec5_database(n);
        let q = RaExpr::relation("r").difference(
            RaExpr::relation("t")
                .project(&["a", "b"])
                .difference(RaExpr::relation("s").select(eq_const("b", 3i64))),
        );
        let plus = translate_plus(&q, ConditionDialect::Sql).expect("translates");
        let fig2 = certus_core::naive_translation::translate_t(&q, &db, ConditionDialect::Sql)
            .expect("translates");
        let engine = Engine::with_config(&db, EngineConfig::serial());
        let t_plus = time_mean(1, || engine.execute(&plus).expect("runs"));
        let t_fig2 = time_mean(1, || engine.execute(&fig2).expect("runs"));
        out.push(Sec5Row { tuples_per_relation: n, t_plus, t_fig2 });
    }
    out
}

/// Print Section 5 rows.
pub fn print_section5(rows: &[Sec5Row]) {
    println!("== Section 5: Figure-2 translation (Qt) vs improved translation (Q+) ==");
    println!("{:>10} {:>12} {:>12} {:>10}", "tuples/rel", "t(Q+) s", "t(Qt) s", "Qt / Q+");
    for r in rows {
        println!(
            "{:>10} {:>12.5} {:>12.5} {:>10.1}",
            r.tuples_per_relation,
            r.t_plus,
            r.t_fig2,
            r.t_fig2 / r.t_plus.max(1e-9)
        );
    }
}

/// One row of the precision/recall experiment.
#[derive(Debug, Clone)]
pub struct PrecisionRecallRow {
    /// Query number (1–4).
    pub query: usize,
    /// Number of answers returned by plain SQL evaluation.
    pub sql_answers: usize,
    /// SQL answers flagged as false positives by the detectors of Section 4.
    pub sql_false_positives: usize,
    /// Number of answers returned by `Q⁺`.
    pub qplus_answers: usize,
    /// `Q⁺` answers flagged as false positives (must be 0 — precision 100%).
    pub qplus_false_positives: usize,
    /// Fraction of the non-flagged SQL answers also returned by `Q⁺`
    /// (the recall measure of Section 7; 1.0 in all paper experiments).
    pub recall_vs_sql: f64,
}

/// The precision/recall experiment of Section 7 on DataFiller-scale instances.
pub fn precision_recall(scale_factor: f64, null_rate: f64, seed: u64) -> Vec<PrecisionRecallRow> {
    let w = Workload::new(scale_factor, null_rate, seed);
    let db = w.incomplete_instance();
    let engine = Engine::with_config(&db, EngineConfig::serial());
    let rewriter = CertainRewriter::new();
    let params = w.params(&db, 0);
    let mut out = Vec::new();
    for q in 1..=4usize {
        let expr = query_by_number(q, &params).expect("query exists");
        let sql = engine.execute(&expr).expect("runs");
        let plus = rewriter.rewrite_plus(&expr, &db).expect("translates");
        let qplus = engine.execute(&plus).expect("runs");
        let sql_fp = count_false_positives(q, &db, &params, &sql);
        let qplus_fp = count_false_positives(q, &db, &params, &qplus);
        // Recall: of the SQL answers not flagged as false positives, how many
        // does Q+ also return?
        let flagged: Vec<bool> = sql
            .iter()
            .map(|t| match q {
                1 => certus_tpch::fp_detect::detect_q1(&db, t),
                2 => certus_tpch::fp_detect::detect_q2(&db),
                3 => certus_tpch::fp_detect::detect_q3(&db, t),
                _ => certus_tpch::fp_detect::detect_q4(&db, &params, t),
            })
            .collect();
        let mut kept = 0usize;
        let mut recovered = 0usize;
        for (t, f) in sql.iter().zip(&flagged) {
            if !f {
                kept += 1;
                if qplus.contains(t) {
                    recovered += 1;
                }
            }
        }
        let recall = if kept == 0 { 1.0 } else { recovered as f64 / kept as f64 };
        out.push(PrecisionRecallRow {
            query: q,
            sql_answers: sql.len(),
            sql_false_positives: sql_fp,
            qplus_answers: qplus.len(),
            qplus_false_positives: qplus_fp,
            recall_vs_sql: recall,
        });
    }
    out
}

/// Print precision/recall rows.
pub fn print_precision_recall(rows: &[PrecisionRecallRow]) {
    println!("== Precision / recall of Q+ vs SQL evaluation ==");
    println!(
        "{:>5} {:>12} {:>10} {:>12} {:>10} {:>8}",
        "query", "SQL answers", "SQL FPs", "Q+ answers", "Q+ FPs", "recall"
    );
    for r in rows {
        println!(
            "{:>5} {:>12} {:>10} {:>12} {:>10} {:>7.0}%",
            format!("Q{}", r.query),
            r.sql_answers,
            r.sql_false_positives,
            r.qplus_answers,
            r.qplus_false_positives,
            r.recall_vs_sql * 100.0
        );
    }
}

/// Result of the OR-splitting ablation on translated Q4.
#[derive(Debug, Clone)]
pub struct AblationResult {
    /// Estimated plan cost of the original query at the benchmark scale.
    pub original_estimated_cost: f64,
    /// Estimated plan cost of the unsplit translation at the benchmark scale.
    pub unsplit_estimated_cost: f64,
    /// Estimated plan cost of the split translation at the benchmark scale.
    pub split_estimated_cost: f64,
    /// Measured time of the unsplit translation on a tiny instance (seconds).
    pub unsplit_time_tiny: f64,
    /// Measured time of the split translation on the same tiny instance.
    pub split_time_tiny: f64,
    /// Measured time of the original Q4 on the same tiny instance.
    pub original_time_tiny: f64,
}

/// The Section 7 "discussion" ablation: the direct translation of Q4 confuses
/// the planner (nested loops, astronomical estimated cost); the OR-splitting
/// and view-style union rewrites restore hash joins.
pub fn or_split_ablation(bench_scale: f64, tiny_scale: f64, null_rate: f64) -> AblationResult {
    // Estimated costs at benchmark scale.
    let w = Workload::new(bench_scale, null_rate, 901);
    let db = w.incomplete_instance();
    let params = w.params(&db, 0);
    let q4 = certus_tpch::q4(&params);
    let unsplit = CertainRewriter::unoptimized().rewrite_plus(&q4, &db).expect("translates");
    let split = CertainRewriter::new().rewrite_plus(&q4, &db).expect("translates");
    let original_cost = estimate(&q4, &db).expect("estimates").cost;
    let unsplit_cost = estimate(&unsplit, &db).expect("estimates").cost;
    let split_cost = estimate(&split, &db).expect("estimates").cost;

    // Measured times on a tiny instance (the unsplit plan is quadratic).
    let wt = Workload::new(tiny_scale, null_rate, 902);
    let tiny = wt.incomplete_instance();
    let tiny_params = wt.params(&tiny, 0);
    let q4_tiny = certus_tpch::q4(&tiny_params);
    let unsplit_tiny =
        CertainRewriter::unoptimized().rewrite_plus(&q4_tiny, &tiny).expect("translates");
    let split_tiny = CertainRewriter::new().rewrite_plus(&q4_tiny, &tiny).expect("translates");
    let engine = Engine::with_config(&tiny, EngineConfig::serial());
    let original_time = time_mean(1, || engine.execute(&q4_tiny).expect("runs"));
    let unsplit_time = time_mean(1, || engine.execute(&unsplit_tiny).expect("runs"));
    let split_time = time_mean(1, || engine.execute(&split_tiny).expect("runs"));
    AblationResult {
        original_estimated_cost: original_cost,
        unsplit_estimated_cost: unsplit_cost,
        split_estimated_cost: split_cost,
        unsplit_time_tiny: unsplit_time,
        split_time_tiny: split_time,
        original_time_tiny: original_time,
    }
}

/// Print the ablation result.
pub fn print_ablation(r: &AblationResult) {
    println!("== OR-splitting ablation on translated Q4 ==");
    println!(
        "estimated plan cost (benchmark scale): original {:>12.0}   unsplit Q4+ {:>14.0} ({:.0}x)   split Q4+ {:>14.0}",
        r.original_estimated_cost,
        r.unsplit_estimated_cost,
        r.unsplit_estimated_cost / r.original_estimated_cost.max(1.0),
        r.split_estimated_cost,
    );
    println!(
        "measured time on tiny instance: original {:.4}s   unsplit Q4+ {:.4}s   split Q4+ {:.4}s",
        r.original_time_tiny, r.unsplit_time_tiny, r.split_time_tiny
    );
}

/// One row of the planner-on/off experiment: translated-query latency with
/// the rewrite-pass pipeline disabled vs. enabled.
#[derive(Debug, Clone)]
pub struct PlannerOnOffRow {
    /// Query number (1–4).
    pub query: usize,
    /// Mean latency of the raw translation `Q⁺` (pipeline off), seconds.
    pub t_off: f64,
    /// Mean latency of the pipeline-rewritten `Q⁺` (pipeline on), seconds.
    pub t_on: f64,
    /// Number of answers (identical in both arms, asserted).
    pub answers: usize,
}

/// The planner ablation: translate each query without the Section 7
/// optimizations, then run the raw translation vs. the pass-pipeline output
/// through the engine. Reproduces the Section 7 rescue: the OR'd `NOT
/// EXISTS` conditions of the raw Q⁺4 force nested loops, which the pipeline's
/// OR-splitting turns back into hash anti-joins.
pub fn planner_on_off(
    scale_factor: f64,
    null_rate: f64,
    seed: u64,
    reps: usize,
) -> Vec<PlannerOnOffRow> {
    let w = Workload::new(scale_factor, null_rate, seed);
    let db = w.incomplete_instance();
    let params = w.params(&db, 0);
    let engine = Engine::with_config(&db, EngineConfig::serial());
    let raw_rewriter = CertainRewriter::unoptimized();
    let planner = Planner::new();
    let mut out = Vec::new();
    for q in 1..=4usize {
        let expr = query_by_number(q, &params).expect("query exists");
        let raw = raw_rewriter.rewrite_plus(&expr, &db).expect("translates");
        let planned = planner.optimize(&raw, &db).expect("pipeline runs");
        let off = engine.execute(&raw).expect("runs").sorted().distinct();
        let on = engine.execute(&planned).expect("runs").sorted().distinct();
        assert_eq!(off.tuples(), on.tuples(), "planner changed Q{q}+ results");
        let t_off = time_mean(reps, || engine.execute(&raw).expect("runs"));
        let t_on = time_mean(reps, || engine.execute(&planned).expect("runs"));
        out.push(PlannerOnOffRow { query: q, t_off, t_on, answers: on.len() });
    }
    out
}

/// Print planner-on/off rows.
pub fn print_planner_on_off(rows: &[PlannerOnOffRow]) {
    println!("== Planner on/off: latency of translated queries (raw Q+ vs pass pipeline) ==");
    println!(
        "{:>5} {:>14} {:>14} {:>10} {:>8}",
        "query", "t(off) s", "t(on) s", "speedup", "answers"
    );
    for r in rows {
        println!(
            "{:>5} {:>14.5} {:>14.5} {:>9}x {:>8}",
            format!("Q{}+", r.query),
            r.t_off,
            r.t_on,
            fmt_ratio(r.t_off / r.t_on.max(1e-9)),
            r.answers
        );
    }
}

/// One row of the parallel-scaling experiment: wall-clock latency of the
/// translated queries at a given worker-thread count.
#[derive(Debug, Clone)]
pub struct ParallelScalingRow {
    /// Worker threads the engine was configured with.
    pub threads: usize,
    /// Mean latency of the optimized Q3+ (seconds).
    pub t_q3: f64,
    /// Mean latency of the optimized Q4+ (seconds).
    pub t_q4: f64,
    /// Answer counts (identical at every thread count, asserted).
    pub answers: [usize; 2],
}

/// The parallel-scaling experiment: run the pipeline-optimized translations
/// Q3+ and Q4+ (the hash-anti-join- and split-union-heavy workload) through
/// engines configured with each of the given thread counts, asserting that
/// every configuration returns the serial result before timing it. The first
/// entry of `thread_counts` is the baseline of the printed speedups.
pub fn parallel_scaling(
    scale_factor: f64,
    null_rate: f64,
    seed: u64,
    reps: usize,
    thread_counts: &[usize],
) -> Vec<ParallelScalingRow> {
    let w = Workload::new(scale_factor, null_rate, seed);
    let db = w.incomplete_instance();
    let params = w.params(&db, 0);
    let rewriter = CertainRewriter::new();
    let planner = Planner::new();
    // The fully pipeline-optimized translations: the pass pipeline turns the
    // OR'd conditions back into hashable equi-joins, which is exactly the
    // shape the exchange operators then parallelise.
    let optimized = |q: usize| {
        let plus = rewriter
            .rewrite_plus(&query_by_number(q, &params).expect("query exists"), &db)
            .expect("translates");
        planner.optimize(&plus, &db).expect("pipeline runs")
    };
    let q3p = optimized(3);
    let q4p = optimized(4);
    let serial = Engine::with_config(&db, EngineConfig::serial());
    let expected3 = serial.execute(&q3p).expect("runs").sorted().distinct();
    let expected4 = serial.execute(&q4p).expect("runs").sorted().distinct();
    let mut out = Vec::new();
    for &threads in thread_counts {
        let engine = Engine::with_config(&db, EngineConfig::with_threads(threads));
        let got3 = engine.execute(&q3p).expect("runs").sorted().distinct();
        let got4 = engine.execute(&q4p).expect("runs").sorted().distinct();
        assert_eq!(got3.tuples(), expected3.tuples(), "Q3+ differs at {threads} threads");
        assert_eq!(got4.tuples(), expected4.tuples(), "Q4+ differs at {threads} threads");
        let t_q3 = time_mean(reps, || engine.execute(&q3p).expect("runs"));
        let t_q4 = time_mean(reps, || engine.execute(&q4p).expect("runs"));
        out.push(ParallelScalingRow { threads, t_q3, t_q4, answers: [got3.len(), got4.len()] });
    }
    out
}

/// Print parallel-scaling rows with speedups relative to the first row.
pub fn print_parallel_scaling(rows: &[ParallelScalingRow]) {
    println!("== Parallel scaling: optimized Q3+/Q4+ latency vs worker threads ==");
    println!(
        "{:>8} {:>12} {:>9} {:>12} {:>9}",
        "threads", "t(Q3+) s", "speedup", "t(Q4+) s", "speedup"
    );
    let Some(base) = rows.first() else { return };
    for r in rows {
        println!(
            "{:>8} {:>12.5} {:>8}x {:>12.5} {:>8}x",
            r.threads,
            r.t_q3,
            fmt_ratio(base.t_q3 / r.t_q3.max(1e-9)),
            r.t_q4,
            fmt_ratio(base.t_q4 / r.t_q4.max(1e-9))
        );
    }
    println!("(results identical at every thread count, asserted before timing)");
}

/// One row of the concurrency-scaling experiment: `clients` sessions
/// executing the prepared Q3+ concurrently on one shared worker pool.
#[derive(Debug, Clone)]
pub struct ConcurrencyScalingRow {
    /// Worker threads each session's engine was configured with (also the
    /// shared pool's width for this row).
    pub threads: usize,
    /// Concurrent client sessions sharing the pool.
    pub clients: usize,
    /// Wall-clock seconds for all clients to finish `reps` executions each.
    pub wall_s: f64,
    /// Aggregate throughput: total executions / wall seconds.
    pub queries_per_sec: f64,
    /// Answer count (identical for every client and configuration, asserted).
    pub answers: usize,
}

/// The concurrency-scaling experiment: sweep worker threads × concurrent
/// client sessions, all sessions of a row sharing one worker pool of width
/// `threads`. Every client asserts the serial answers before the timed
/// rounds, so the sweep doubles as a stress test of multi-query submission
/// to the shared deque.
pub fn concurrency_scaling(
    scale_factor: f64,
    null_rate: f64,
    seed: u64,
    reps: usize,
    thread_counts: &[usize],
    client_counts: &[usize],
) -> Vec<ConcurrencyScalingRow> {
    use certus::exec::Pool;
    use certus::{Certainty, Session};
    use std::sync::Arc;

    let w = Workload::new(scale_factor, null_rate, seed);
    let db = w.incomplete_instance();
    let params = w.params(&db, 0);
    let q3 = query_by_number(3, &params).expect("query exists");
    let serial = Session::builder(db.clone()).config(EngineConfig::serial()).build();
    let expected = serial
        .execute(&q3, Certainty::CertainPlus)
        .expect("serial runs")
        .relation()
        .sorted()
        .distinct();
    let mut out = Vec::new();
    for &threads in thread_counts {
        let pool = Arc::new(Pool::new(threads));
        for &clients in client_counts {
            let sessions: Vec<Session> = (0..clients)
                .map(|_| {
                    Session::builder(db.clone())
                        .config(EngineConfig::with_threads(threads))
                        .worker_pool(pool.clone())
                        .build()
                })
                .collect();
            let prepared: Vec<_> = sessions
                .iter()
                .map(|s| s.prepare(&q3, Certainty::CertainPlus).expect("prepares"))
                .collect();
            // Correctness gate before timing: every client sees the serial
            // answers through the shared pool.
            for (s, p) in sessions.iter().zip(&prepared) {
                let got = s.execute_prepared(p).expect("runs").relation().sorted().distinct();
                assert_eq!(
                    got.tuples(),
                    expected.tuples(),
                    "Q3+ differs at {threads} threads × {clients} clients"
                );
            }
            let start = std::time::Instant::now();
            std::thread::scope(|scope| {
                for (s, p) in sessions.iter().zip(&prepared) {
                    scope.spawn(move || {
                        for _ in 0..reps {
                            s.execute_prepared(p).expect("runs");
                        }
                    });
                }
            });
            let wall_s = start.elapsed().as_secs_f64();
            out.push(ConcurrencyScalingRow {
                threads,
                clients,
                wall_s,
                queries_per_sec: (clients * reps) as f64 / wall_s.max(1e-9),
                answers: expected.len(),
            });
            assert!(
                pool.peak_busy_workers() <= pool.width(),
                "pool exceeded its width at {threads} threads × {clients} clients"
            );
        }
    }
    out
}

/// Print concurrency-scaling rows with throughput relative to the
/// single-client row of the same thread count.
pub fn print_concurrency_scaling(rows: &[ConcurrencyScalingRow]) {
    println!("== Concurrency scaling: prepared Q3+ throughput, shared worker pool ==");
    println!(
        "{:>8} {:>8} {:>10} {:>12} {:>9}",
        "threads", "clients", "wall s", "queries/s", "vs 1cli"
    );
    for r in rows {
        let base = rows
            .iter()
            .find(|b| b.threads == r.threads && b.clients == 1)
            .map(|b| b.queries_per_sec)
            .unwrap_or(r.queries_per_sec);
        println!(
            "{:>8} {:>8} {:>10.4} {:>12.1} {:>8}x",
            r.threads,
            r.clients,
            r.wall_s,
            r.queries_per_sec,
            fmt_ratio(r.queries_per_sec / base.max(1e-9))
        );
    }
    println!("(every client asserted against the serial answers before timing)");
}

/// Write the parallel- and concurrency-scaling rows as machine-readable
/// JSON (`BENCH_parallel.json`, alongside the `BENCH_engine.json` pipeline
/// baseline). Plain `format!`-built JSON — the workspace is offline, no
/// serde.
pub fn write_parallel_bench_json(
    path: &std::path::Path,
    scaling: &[ParallelScalingRow],
    concurrency: &[ConcurrencyScalingRow],
) -> std::io::Result<()> {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"experiment\": \"parallel_scaling\",\n");
    s.push_str(
        "  \"units\": {\"wall\": \"seconds (mean over reps)\", \"throughput\": \"queries/sec\"},\n",
    );
    s.push_str("  \"threads\": [\n");
    for (i, r) in scaling.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"threads\": {}, \"q3_wall_s\": {:.6}, \"q4_wall_s\": {:.6}, \
             \"answers\": [{}, {}]}}{}\n",
            r.threads,
            r.t_q3,
            r.t_q4,
            r.answers[0],
            r.answers[1],
            if i + 1 < scaling.len() { "," } else { "" },
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"concurrency\": [\n");
    for (i, r) in concurrency.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"threads\": {}, \"clients\": {}, \"wall_s\": {:.6}, \
             \"queries_per_sec\": {:.1}, \"answers\": {}}}{}\n",
            r.threads,
            r.clients,
            r.wall_s,
            r.queries_per_sec,
            r.answers,
            if i + 1 < concurrency.len() { "," } else { "" },
        ));
    }
    s.push_str("  ]\n}\n");
    std::fs::write(path, s)
}

/// One row of the prepared-execution experiment: per-call planning vs.
/// re-executing a [`certus::PreparedQuery`].
#[derive(Debug, Clone)]
pub struct PreparedRow {
    /// Query number (translated, so `Q⁺3` / `Q⁺4`).
    pub query: usize,
    /// Mean latency when every call re-runs translation + rewrite passes +
    /// physical planning (the pre-`Session` workflow), seconds.
    pub t_per_call: f64,
    /// Mean latency of `Session::execute_prepared` on a prepared query
    /// (zero planning work per call), seconds.
    pub t_prepared: f64,
    /// Number of answers (identical in both arms, asserted).
    pub answers: usize,
}

/// The prepared-execution experiment: how much of a repeated workload query's
/// latency is planning? The per-call arm rewrites and plans `Q⁺` on every
/// execution (exactly what four disconnected entry points forced callers
/// into); the prepared arm plans once through [`certus::Session::prepare`]
/// and then only executes. Also returns the session's plan-cache counters:
/// the repeated `Session::execute` calls of the warm-up loop hit the cache,
/// so the printed hit rate shows the cache working.
pub fn prepared_execution(
    scale_factor: f64,
    null_rate: f64,
    seed: u64,
    reps: usize,
) -> (Vec<PreparedRow>, certus::plan::CacheStats) {
    use certus::{Certainty, Session};
    let w = Workload::new(scale_factor, null_rate, seed);
    let db = w.incomplete_instance();
    let params = w.params(&db, 0);
    let session = Session::builder(db).config(EngineConfig::serial()).build();
    let rewriter = CertainRewriter::new();
    let mut rows = Vec::new();
    for q in [3usize, 4] {
        let expr = query_by_number(q, &params).expect("query exists");
        // Per-call arm: rewrite + plan + execute, every time.
        let t_per_call = time_mean(reps, || {
            let plus = rewriter.rewrite_plus(&expr, session.database()).expect("translates");
            Engine::with_config(session.database(), EngineConfig::serial())
                .execute(&plus)
                .expect("runs")
        });
        // Prepared arm: plan once, execute many times.
        let prepared = session.prepare(&expr, Certainty::CertainPlus).expect("prepares");
        let t_prepared = time_mean(reps, || session.execute_prepared(&prepared).expect("runs"));
        // Both arms must agree before their timings mean anything.
        let direct = {
            let plus = rewriter.rewrite_plus(&expr, session.database()).expect("translates");
            Engine::with_config(session.database(), EngineConfig::serial())
                .execute(&plus)
                .expect("runs")
        };
        let via_session = session.execute_prepared(&prepared).expect("runs");
        assert_eq!(
            via_session.relation().sorted().tuples(),
            direct.sorted().tuples(),
            "prepared Q{q}+ differs from per-call Q{q}+"
        );
        // Warm-path calls that go through the cache (each is a hit now).
        for _ in 0..reps {
            session.execute(&expr, Certainty::CertainPlus).expect("runs");
        }
        rows.push(PreparedRow { query: q, t_per_call, t_prepared, answers: via_session.len() });
    }
    (rows, session.cache_stats())
}

/// Print prepared-execution rows and the session's cache counters.
pub fn print_prepared(rows: &[PreparedRow], cache: &certus::plan::CacheStats) {
    println!("== Prepared re-execution vs per-call planning (Q3+/Q4+) ==");
    println!(
        "{:>5} {:>15} {:>14} {:>14} {:>8}",
        "query", "t(per-call) s", "t(prepared) s", "plan overhead", "answers"
    );
    for r in rows {
        println!(
            "{:>5} {:>15.5} {:>14.5} {:>13}% {:>8}",
            format!("Q{}+", r.query),
            r.t_per_call,
            r.t_prepared,
            format!("{:.0}", 100.0 * (r.t_per_call - r.t_prepared) / r.t_per_call.max(1e-9)),
            r.answers
        );
    }
    println!(
        "plan cache: {} hits / {} misses (hit rate {:.0}%), {} entries",
        cache.hits,
        cache.misses,
        100.0 * cache.hit_rate(),
        cache.entries
    );
}

/// One row of the engine-pipeline experiment: end-to-end latency of the
/// vectorized operator runtime vs. the row-at-a-time compiled runtime vs.
/// the pre-compilation delegating path (which wrapped every materialised
/// child back into a logical `Values` expression and resolved column names
/// per row) on the pipeline-optimized translations Q3+/Q4+.
#[derive(Debug, Clone)]
pub struct EnginePipelineRow {
    /// Query number (translated, so `Q⁺3` / `Q⁺4`).
    pub query: usize,
    /// Physical plan size (operator count).
    pub plan_ops: usize,
    /// Number of answer rows (identical in all arms, asserted).
    pub rows: usize,
    /// Minimum latency of the delegating path over the sampled reps
    /// (seconds; minima, not means — see `engine_pipeline`).
    pub t_delegating: f64,
    /// Minimum latency of compile + row-at-a-time native execution per
    /// call (the PR-4 runtime, seconds).
    pub t_compiled: f64,
    /// Minimum latency of compile + vectorized execution per call
    /// (seconds).
    pub t_vectorized: f64,
    /// Minimum latency of vectorized execution of a pre-compiled plan —
    /// the prepared-query hot path (seconds).
    pub t_prepared: f64,
}

impl EnginePipelineRow {
    /// Speedup of per-call row-path compiled execution over delegating.
    pub fn speedup(&self) -> f64 {
        self.t_delegating / self.t_compiled.max(1e-12)
    }

    /// Speedup of vectorized execution over the row-path compiled runtime.
    pub fn vec_speedup(&self) -> f64 {
        self.t_compiled / self.t_vectorized.max(1e-12)
    }

    /// Answer rows per second for a given wall time.
    pub fn rows_per_sec(&self, wall: f64) -> f64 {
        self.rows as f64 / wall.max(1e-12)
    }
}

/// The engine-pipeline experiment: run the pipeline-optimized certain-answer
/// translations Q3+ and Q4+ end-to-end through (a) the pre-compilation
/// delegating execution path, (b) compile + row-at-a-time native execution
/// per call, (c) compile + vectorized execution per call, and (d) vectorized
/// execution of a pre-compiled plan. All arms are asserted result-identical
/// before timing.
pub fn engine_pipeline(
    scale_factor: f64,
    null_rate: f64,
    seed: u64,
    reps: usize,
) -> Vec<EnginePipelineRow> {
    let w = Workload::new(scale_factor, null_rate, seed);
    let db = w.incomplete_instance();
    let params = w.params(&db, 0);
    let rewriter = CertainRewriter::new();
    let planner = Planner::new();
    // Same compiled plans, two execution configurations.
    let row_engine = Engine::with_config(&db, EngineConfig::serial().with_vectorized(false));
    let vec_engine = Engine::with_config(&db, EngineConfig::serial());
    let mut out = Vec::new();
    for q in [3usize, 4] {
        let expr = query_by_number(q, &params).expect("query exists");
        let plus = rewriter.rewrite_plus(&expr, &db).expect("translates");
        let optimized = planner.optimize(&plus, &db).expect("pipeline runs");
        let plan = vec_engine.plan(&optimized).expect("plans");
        let compiled = vec_engine.compile(&plan).expect("compiles");
        // All arms must agree before their timings mean anything.
        let vectorized = vec_engine.execute_physical(&plan).expect("runs").sorted().distinct();
        let row = row_engine.execute_physical(&plan).expect("runs").sorted().distinct();
        let delegating =
            row_engine.execute_physical_delegating(&plan).expect("runs").sorted().distinct();
        let prepared = vec_engine.execute_compiled(&compiled).expect("runs").sorted().distinct();
        assert_eq!(vectorized.tuples(), row.tuples(), "vectorization changed Q{q}+ results");
        assert_eq!(vectorized.tuples(), delegating.tuples(), "runtime changed Q{q}+ results");
        assert_eq!(vectorized.tuples(), prepared.tuples(), "compiled cache changed Q{q}+ results");
        // Minimum over reps, not mean: the fast arms finish in single-digit
        // milliseconds, where a mean mostly measures scheduler noise. The
        // delegating arm is orders of magnitude slower and correspondingly
        // stable — a couple of samples suffice there.
        let t_delegating =
            time_min(reps.min(2), || row_engine.execute_physical_delegating(&plan).expect("runs"));
        let t_compiled = time_min(reps, || row_engine.execute_physical(&plan).expect("runs"));
        let t_vectorized = time_min(reps, || vec_engine.execute_physical(&plan).expect("runs"));
        let t_prepared = time_min(reps, || vec_engine.execute_compiled(&compiled).expect("runs"));
        out.push(EnginePipelineRow {
            query: q,
            plan_ops: plan.size(),
            rows: vectorized.len(),
            t_delegating,
            t_compiled,
            t_vectorized,
            t_prepared,
        });
    }
    out
}

/// Print engine-pipeline rows.
pub fn print_engine_pipeline(rows: &[EnginePipelineRow]) {
    println!("== Vectorized vs row-at-a-time vs delegating execution (Q3+/Q4+) ==");
    println!(
        "{:>5} {:>5} {:>14} {:>13} {:>13} {:>13} {:>9} {:>8}",
        "query",
        "ops",
        "t(delegate) s",
        "t(rows) s",
        "t(vector) s",
        "t(prepared) s",
        "vec gain",
        "answers"
    );
    for r in rows {
        println!(
            "{:>5} {:>5} {:>14.5} {:>13.5} {:>13.5} {:>13.5} {:>8}x {:>8}",
            format!("Q{}+", r.query),
            r.plan_ops,
            r.t_delegating,
            r.t_compiled,
            r.t_vectorized,
            r.t_prepared,
            fmt_ratio(r.vec_speedup()),
            r.rows
        );
    }
    println!("(results identical across all four arms, asserted before timing)");
}

/// Write the engine-pipeline rows as machine-readable JSON (the perf
/// baseline future changes are compared against). Plain `format!`-built
/// JSON — the workspace is offline, no serde.
pub fn write_engine_bench_json(
    path: &std::path::Path,
    rows: &[EnginePipelineRow],
) -> std::io::Result<()> {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"experiment\": \"engine_pipeline\",\n");
    s.push_str(
        "  \"units\": {\"wall\": \"seconds (min over reps)\", \"throughput\": \"answer rows/sec\"},\n",
    );
    s.push_str("  \"queries\": [\n");
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            concat!(
                "    {{\"query\": \"Q{}+\", \"plan_ops\": {}, \"rows\": {},\n",
                "     \"delegating\": {{\"wall_s\": {:.6}, \"rows_per_sec\": {:.1}}},\n",
                "     \"compiled\": {{\"wall_s\": {:.6}, \"rows_per_sec\": {:.1}}},\n",
                "     \"vectorized\": {{\"wall_s\": {:.6}, \"rows_per_sec\": {:.1}}},\n",
                "     \"prepared\": {{\"wall_s\": {:.6}, \"rows_per_sec\": {:.1}}},\n",
                "     \"speedup_compiled_vs_delegating\": {:.3},\n",
                "     \"speedup_vectorized_vs_compiled\": {:.3}}}{}\n"
            ),
            r.query,
            r.plan_ops,
            r.rows,
            r.t_delegating,
            r.rows_per_sec(r.t_delegating),
            r.t_compiled,
            r.rows_per_sec(r.t_compiled),
            r.t_vectorized,
            r.rows_per_sec(r.t_vectorized),
            r.t_prepared,
            r.rows_per_sec(r.t_prepared),
            r.speedup(),
            r.vec_speedup(),
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    s.push_str("  ]\n}\n");
    std::fs::write(path, s)
}

/// One query's verdict from [`bench_check`].
#[derive(Debug, Clone)]
pub struct BenchCheckRow {
    /// Query label as recorded in the JSON (e.g. `"Q3+"`).
    pub query: String,
    /// Recorded wall time of the row-at-a-time compiled arm (seconds).
    pub compiled_wall: f64,
    /// Recorded wall time of the vectorized arm (seconds).
    pub vectorized_wall: f64,
    /// Whether the vectorized arm is within tolerance of the compiled arm.
    pub ok: bool,
}

/// Parse a `BENCH_engine.json` and check that the vectorized wall time has
/// not regressed past the compiled (row-path) arm beyond `tolerance`
/// (`vectorized ≤ compiled × tolerance`). The workspace is offline (no
/// serde), so this is a purpose-built scrape of the emitter's fixed layout.
pub fn bench_check(path: &std::path::Path, tolerance: f64) -> std::io::Result<Vec<BenchCheckRow>> {
    let text = std::fs::read_to_string(path)?;
    let wall_in = |object: &str, section: &str| -> Option<f64> {
        let s = object.find(&format!("\"{section}\""))?;
        let w = object[s..].find("\"wall_s\":").map(|i| s + i + "\"wall_s\":".len())?;
        let rest = &object[w..];
        let end = rest.find(['}', ','])?;
        rest[..end].trim().parse::<f64>().ok()
    };
    let mut out = Vec::new();
    let mut from = 0usize;
    while let Some(q) = text[from..].find("\"query\":") {
        let qstart = from + q + "\"query\":".len();
        // One object runs up to the next "query" key (or the end of file).
        let qend = text[qstart..].find("\"query\":").map(|i| qstart + i).unwrap_or(text.len());
        let object = &text[qstart..qend];
        let label = object.split('"').nth(1).map(str::to_string).unwrap_or_else(|| "?".to_string());
        if let (Some(c), Some(v)) = (wall_in(object, "compiled"), wall_in(object, "vectorized")) {
            out.push(BenchCheckRow {
                query: label,
                compiled_wall: c,
                vectorized_wall: v,
                ok: v <= c * tolerance,
            });
        }
        from = qstart;
    }
    Ok(out)
}

/// One row of the `profile` experiment: instrumented execution of a prepared
/// translated query, with its operator profile, the estimate-vs-actual
/// annotated plan, and the instrumentation overhead on the prepared hot path.
#[derive(Debug, Clone)]
pub struct ProfileRow {
    /// Query number (translated, so `Q⁺3` / `Q⁺4`).
    pub query: usize,
    /// Number of answer rows.
    pub rows: usize,
    /// Minimum latency of the uninstrumented prepared execution (seconds).
    pub t_prepared: f64,
    /// Minimum latency of the instrumented prepared execution (seconds).
    pub t_profiled: f64,
    /// Per-operator actuals from one instrumented run.
    pub profile: certus::QueryProfile,
    /// The `EXPLAIN ANALYZE` tree: cost-model estimates and measured
    /// actuals side by side.
    pub analyzed: certus::AnalyzedPlan,
}

impl ProfileRow {
    /// Instrumentation overhead of the profiled run relative to the plain
    /// prepared run (`0.05` = 5% slower).
    pub fn overhead(&self) -> f64 {
        self.t_profiled / self.t_prepared.max(1e-12) - 1.0
    }

    /// The `n` operators with the largest self time (wall time minus
    /// children), hottest first.
    pub fn top_operators(&self, n: usize) -> Vec<&certus::QueryProfile> {
        let mut ops = self.profile.flatten();
        ops.sort_by_key(|p| std::cmp::Reverse(p.self_wall_ns()));
        ops.truncate(n);
        ops
    }
}

/// The `profile` experiment: prepare the certain-answer translations Q3+ and
/// Q4+ through a [`certus::Session`], execute them instrumented
/// ([`certus::Session::execute_prepared_profiled`]), and time the
/// instrumented path against the plain prepared path — the per-operator
/// atomics and timers are supposed to cost well under 5% on the vectorized
/// hot path. The estimate-vs-actual tree comes from
/// [`certus::Session::explain_analyze`] on the same query.
pub fn profile_queries(
    scale_factor: f64,
    null_rate: f64,
    seed: u64,
    reps: usize,
) -> Vec<ProfileRow> {
    use certus::{Certainty, Session};
    let w = Workload::new(scale_factor, null_rate, seed);
    let db = w.incomplete_instance();
    let params = w.params(&db, 0);
    let session = Session::builder(db).config(EngineConfig::serial()).build();
    let mut out = Vec::new();
    for q in [3usize, 4] {
        let expr = query_by_number(q, &params).expect("query exists");
        let prepared = session.prepare(&expr, Certainty::CertainPlus).expect("prepares");
        // Instrumentation must not change answers.
        let plain = session.execute_prepared(&prepared).expect("runs");
        let (profiled, profiles) = session.execute_prepared_profiled(&prepared).expect("runs");
        assert_eq!(
            plain.relation().sorted().tuples(),
            profiled.relation().sorted().tuples(),
            "instrumentation changed Q{q}+ results"
        );
        let profile = profiles.into_iter().next().expect("one plan, one profile");
        let t_prepared = time_min(reps, || session.execute_prepared(&prepared).expect("runs"));
        let t_profiled =
            time_min(reps, || session.execute_prepared_profiled(&prepared).expect("runs"));
        let analyzed = session.explain_analyze(&expr, Certainty::CertainPlus).expect("analyzes");
        out.push(ProfileRow {
            query: q,
            rows: plain.len(),
            t_prepared,
            t_profiled,
            profile,
            analyzed,
        });
    }
    out
}

/// Print profile rows: overhead, the top-5 operators by self time, and the
/// estimate-vs-actual annotated plan.
pub fn print_profile(rows: &[ProfileRow]) {
    use certus::obs::time::fmt_ns;
    println!("== Query profiles: instrumented prepared execution (Q3+/Q4+) ==");
    for r in rows {
        println!(
            "-- Q{}+: {} answers, prepared {:.5}s, instrumented {:.5}s (overhead {:+.1}%)",
            r.query,
            r.rows,
            r.t_prepared,
            r.t_profiled,
            r.overhead() * 100.0
        );
        println!(
            "{:>24} {:>10} {:>10} {:>12} {:>12}",
            "operator", "rows in", "rows out", "self time", "path"
        );
        for p in r.top_operators(5) {
            let path = if p.vec_runs > 0 {
                "vec"
            } else if p.row_fallbacks > 0 {
                "row-fallback"
            } else {
                "row"
            };
            println!(
                "{:>24} {:>10} {:>10} {:>12} {:>12}",
                p.op,
                p.rows_in,
                p.rows_out,
                fmt_ns(p.self_wall_ns()),
                path
            );
        }
        println!("estimate vs actual:");
        println!("{}", r.analyzed);
    }
}

/// Amend `BENCH_engine.json` with per-operator breakdowns from the `profile`
/// experiment. The pipeline's query sections (and the `bench_check` scrape
/// of them) are left untouched: the operators section is appended before the
/// closing brace, replacing any operators section from an earlier run, and
/// deliberately avoids the `"query":` / `"wall_s":` markers the scraper
/// keys on. If the file does not exist yet (a standalone `profile` run), a
/// minimal document is created.
pub fn append_profile_json(path: &std::path::Path, rows: &[ProfileRow]) -> std::io::Result<()> {
    let base = std::fs::read_to_string(path).unwrap_or_else(|_| "{\n}\n".to_string());
    // Cut a previous operators section, or just the closing brace.
    let cut = base.find(",\n  \"operators\":").or_else(|| base.rfind('}')).unwrap_or(base.len());
    let mut s = base[..cut].trim_end().to_string();
    if s.ends_with('}') {
        s.pop();
        s.truncate(s.trim_end().len());
    }
    if !s.ends_with('{') {
        s.push(',');
    }
    s.push_str("\n  \"operators\": [\n");
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"q\": \"Q{}+\", \"rows\": {}, \"prepared_ns\": {}, \"instrumented_ns\": {}, \
             \"overhead_pct\": {:.2}, \"diverged\": {}, \"ops\": [\n",
            r.query,
            r.rows,
            (r.t_prepared * 1e9) as u64,
            (r.t_profiled * 1e9) as u64,
            r.overhead() * 100.0,
            r.analyzed.any_divergence()
        ));
        let flat = r.profile.flatten();
        for (j, p) in flat.iter().enumerate() {
            s.push_str(&format!(
                "      {{\"op\": \"{}\", \"rows_in\": {}, \"rows_out\": {}, \"self_ns\": {}, \
                 \"vec_runs\": {}, \"row_fallbacks\": {}}}{}\n",
                certus::obs::json::escape(&p.op),
                p.rows_in,
                p.rows_out,
                p.self_wall_ns(),
                p.vec_runs,
                p.row_fallbacks,
                if j + 1 < flat.len() { "," } else { "" },
            ));
        }
        s.push_str(&format!("    ]}}{}\n", if i + 1 < rows.len() { "," } else { "" }));
    }
    s.push_str("  ]\n}\n");
    std::fs::write(path, s)
}

/// The report of the `experiments serve` benchmark: a fleet of TCP clients
/// hammering an in-process [`certus_server::Server`] while a writer bumps
/// the schema epoch, with every served answer checked byte-for-byte against
/// single-session execution.
#[derive(Debug, Clone)]
pub struct ServeBenchReport {
    /// Concurrent client connections in each phase.
    pub clients: usize,
    /// Closed-loop requests per client.
    pub reps_per_client: usize,
    /// Total closed-loop requests answered (all byte-verified).
    pub closed_loop_requests: u64,
    /// Wall seconds of the closed-loop phase.
    pub closed_wall_s: f64,
    /// Closed-loop throughput (requests / wall).
    pub closed_qps: f64,
    /// Median closed-loop request latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile closed-loop request latency, milliseconds.
    pub p99_ms: f64,
    /// Pipelined requests sent in the open-loop burst phase.
    pub open_loop_sent: u64,
    /// Open-loop responses received (must equal sent: zero dropped).
    pub open_loop_answered: u64,
    /// Wall seconds of the open-loop phase.
    pub open_wall_s: f64,
    /// Open-loop throughput (requests / wall).
    pub open_qps: f64,
    /// Rows the concurrent writer inserted while the closed loop ran.
    pub writer_ops: u64,
    /// Schema epochs advanced during the run (one per write).
    pub epoch_advance: u64,
    /// Server-side transparent re-preparations of stale plans.
    pub stale_replans: u64,
    /// Shared plan-cache hits / misses over the whole run.
    pub cache_hits: u64,
    /// Shared plan-cache misses.
    pub cache_misses: u64,
    /// Requests shed by admission control (should be 0 at this load).
    pub rejected: u64,
}

fn percentile_ns(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// The server benchmark: start an in-process server over a TPC-H instance,
/// run `clients` closed-loop clients (alternating Q3 certain-plus / both)
/// with a concurrent writer appending to a side table the queries never
/// read, then an open-loop pipelined burst. Every answer is compared
/// byte-for-byte against local [`certus::Session`] execution, so the
/// differential check runs under live epoch churn.
pub fn serve_benchmark(
    scale_factor: f64,
    null_rate: f64,
    seed: u64,
    clients: usize,
    reps: usize,
    burst: usize,
) -> ServeBenchReport {
    use certus::{Certainty, Session};
    use certus_server::client::Client;
    use certus_server::protocol::WireCertainty;
    use certus_server::{answer_body, Server, ServerConfig};
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::Arc;

    let w = Workload::new(scale_factor, null_rate, seed);
    let mut db = w.incomplete_instance();
    let params = w.params(&db, 0);
    let q3 = query_by_number(3, &params).expect("query exists");
    // The write target: a side table no benchmark query reads, so inserts
    // bump the schema epoch without changing any expected answer.
    db.insert_relation("bench_audit", rel(&["op"], Vec::new()));

    let local = Session::builder(db.clone()).build();
    let expected_plus =
        answer_body(&local.execute(&q3, Certainty::CertainPlus).expect("local Q3+")).encode();
    let expected_both =
        answer_body(&local.execute(&q3, Certainty::Both).expect("local Q3 both")).encode();
    let expected = |i: usize| -> (&[u8], WireCertainty) {
        if i.is_multiple_of(2) {
            (&expected_plus, WireCertainty::CertainPlus)
        } else {
            (&expected_both, WireCertainty::Both)
        }
    };

    let config = ServerConfig {
        max_connections: clients + 8,
        executors: 8,
        engine_threads: 2,
        ..ServerConfig::default()
    };
    let server = Server::start(db, config).expect("server binds");
    let addr = server.local_addr();
    let epoch_start = server.epoch();

    // Writer: appends one row at a time for as long as the closed loop runs.
    // Readers execute against pinned snapshots, so writer progress while
    // readers sustain load is exactly the never-blocked guarantee.
    let stop_writer = Arc::new(AtomicBool::new(false));
    let writer_ops = Arc::new(AtomicU64::new(0));
    let writer = {
        let stop = Arc::clone(&stop_writer);
        let ops = Arc::clone(&writer_ops);
        std::thread::spawn(move || {
            let mut client = Client::connect(addr).expect("writer connects");
            let mut i = 0i64;
            while !stop.load(Ordering::Relaxed) {
                client
                    .insert("bench_audit", vec![certus_data::Tuple::new(vec![Value::Int(i)])])
                    .expect("insert applies");
                ops.fetch_add(1, Ordering::Relaxed);
                i += 1;
            }
            client.close().expect("writer closes");
        })
    };

    // Closed loop: every client runs `reps` one-shot queries, each verified
    // byte-for-byte, with per-request latency recorded.
    let closed_start = std::time::Instant::now();
    let latencies: Vec<u64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let expected = &expected;
                let q3 = &q3;
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("client connects");
                    let mut lat = Vec::with_capacity(reps);
                    let (want, certainty) = expected(c);
                    for _ in 0..reps {
                        let t = std::time::Instant::now();
                        let got = client.query(certainty, q3).expect("query runs");
                        lat.push(t.elapsed().as_nanos() as u64);
                        assert_eq!(
                            got.canonical_bytes(),
                            want,
                            "served answer differs from local execution (client {c})"
                        );
                    }
                    client.close().expect("client closes");
                    lat
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("client thread")).collect()
    });
    let closed_wall_s = closed_start.elapsed().as_secs_f64();
    stop_writer.store(true, Ordering::Relaxed);
    writer.join().expect("writer thread");
    let writer_ops = writer_ops.load(Ordering::Relaxed);
    assert!(writer_ops > 0, "writer made progress while {clients} readers sustained load");

    // Open loop: each client pipelines `burst` queries before reading any
    // response, then drains. Every request must be answered (zero dropped).
    let open_start = std::time::Instant::now();
    let answered: u64 = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let expected = &expected;
                let q3 = &q3;
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("client connects");
                    let (want, certainty) = expected(c);
                    let mut ids = Vec::with_capacity(burst);
                    for _ in 0..burst {
                        ids.push(client.send_query(certainty, q3).expect("pipelined send"));
                    }
                    let mut got = 0u64;
                    for _ in 0..burst {
                        let (id, answers) = client.recv_answers().expect("pipelined recv");
                        assert!(ids.contains(&id), "response matches a sent request");
                        assert_eq!(answers.canonical_bytes(), want, "pipelined answer differs");
                        got += 1;
                    }
                    client.close().expect("client closes");
                    got
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).sum()
    });
    let open_wall_s = open_start.elapsed().as_secs_f64();
    let open_sent = (clients * burst) as u64;
    assert_eq!(answered, open_sent, "every pipelined request got a response");

    let mut stats_client = Client::connect(addr).expect("stats client connects");
    let stats = stats_client.stats().expect("stats");
    let epoch_end = server.epoch();
    stats_client.close().expect("stats client closes");
    server.shutdown();

    let mut sorted = latencies;
    sorted.sort_unstable();
    let closed_total = (clients * reps) as u64;
    ServeBenchReport {
        clients,
        reps_per_client: reps,
        closed_loop_requests: closed_total,
        closed_wall_s,
        closed_qps: closed_total as f64 / closed_wall_s.max(1e-9),
        p50_ms: percentile_ns(&sorted, 0.50) as f64 / 1e6,
        p99_ms: percentile_ns(&sorted, 0.99) as f64 / 1e6,
        open_loop_sent: open_sent,
        open_loop_answered: answered,
        open_wall_s,
        open_qps: open_sent as f64 / open_wall_s.max(1e-9),
        writer_ops,
        epoch_advance: epoch_end - epoch_start,
        stale_replans: stats.stale_replans,
        cache_hits: stats.cache_hits,
        cache_misses: stats.cache_misses,
        rejected: stats.rejected,
    }
}

/// Print the serve-benchmark report.
pub fn print_serve(r: &ServeBenchReport) {
    println!("== Server benchmark: {} clients over TCP, live epoch churn ==", r.clients);
    println!(
        "closed loop : {} requests in {:.3}s — {:.1} q/s, p50 {:.2}ms, p99 {:.2}ms",
        r.closed_loop_requests, r.closed_wall_s, r.closed_qps, r.p50_ms, r.p99_ms
    );
    println!(
        "open loop   : {}/{} pipelined answered in {:.3}s — {:.1} q/s (zero dropped)",
        r.open_loop_answered, r.open_loop_sent, r.open_wall_s, r.open_qps
    );
    println!(
        "writer      : {} inserts concurrent with the closed loop ({} epochs advanced)",
        r.writer_ops, r.epoch_advance
    );
    println!(
        "server      : {} stale replans, cache {}h/{}m, {} rejected",
        r.stale_replans, r.cache_hits, r.cache_misses, r.rejected
    );
    println!("(every response byte-identical to single-session execution, asserted)");
}

/// Write the serve-benchmark report as machine-readable JSON
/// (`BENCH_server.json`). Plain `format!`-built JSON — no serde.
pub fn write_server_bench_json(
    path: &std::path::Path,
    r: &ServeBenchReport,
) -> std::io::Result<()> {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"experiment\": \"server_throughput\",\n");
    s.push_str(
        "  \"units\": {\"wall\": \"seconds\", \"latency\": \"milliseconds\", \
         \"throughput\": \"queries/sec\"},\n",
    );
    s.push_str(&format!(
        "  \"closed_loop\": {{\"clients\": {}, \"reps_per_client\": {}, \"requests\": {}, \
         \"wall_s\": {:.6}, \"qps\": {:.1}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}}},\n",
        r.clients,
        r.reps_per_client,
        r.closed_loop_requests,
        r.closed_wall_s,
        r.closed_qps,
        r.p50_ms,
        r.p99_ms,
    ));
    s.push_str(&format!(
        "  \"open_loop\": {{\"sent\": {}, \"answered\": {}, \"wall_s\": {:.6}, \
         \"qps\": {:.1}}},\n",
        r.open_loop_sent, r.open_loop_answered, r.open_wall_s, r.open_qps,
    ));
    s.push_str(&format!(
        "  \"writer\": {{\"ops\": {}, \"epoch_advance\": {}}},\n",
        r.writer_ops, r.epoch_advance,
    ));
    s.push_str(&format!(
        "  \"server\": {{\"stale_replans\": {}, \"cache_hits\": {}, \"cache_misses\": {}, \
         \"rejected\": {}}},\n",
        r.stale_replans, r.cache_hits, r.cache_misses, r.rejected,
    ));
    s.push_str("  \"differential\": \"all responses byte-identical to local Session\"\n");
    s.push_str("}\n");
    std::fs::write(path, s)
}

/// The report of the `experiments chaos` run: a crash/recover loop over a
/// durable server under deterministic fault injection, with every served
/// answer byte-checked against local execution and every acknowledged write
/// asserted to survive recovery.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// Server generations started (each one recovers the previous state).
    pub rounds: usize,
    /// Inserts acknowledged by the server; all must survive every recovery.
    pub writes_acked: u64,
    /// Inserts refused by injected WAL faults; none may ever resurface.
    pub writes_rejected: u64,
    /// Torn-append crashes injected (partial record left on disk).
    pub torn_injected: u64,
    /// Mean recovery time (checkpoint + WAL replay inside `Server::start`).
    pub recovery_ms_mean: f64,
    /// Worst recovery time across all rounds.
    pub recovery_ms_max: f64,
    /// Acknowledged durable writes per wall second (each one fsync'd).
    pub durable_write_qps: f64,
    /// Served answers compared byte-for-byte against local execution.
    pub verified_answers: u64,
}

/// Crash/recover loop over a durable [`certus_server::Server`]: each round
/// starts a server over whatever the previous generation left on disk,
/// byte-checks the recovered audit table (all certainty modes) and a real
/// TPC-H query against a local mirror that replays only the *acknowledged*
/// writes, then issues a batch of inserts with deterministic WAL faults
/// injected (fsync failures mid-batch, a torn append at crash time) before
/// tearing the server down. The invariant under test is the durability
/// contract: an acked write is never lost, a failed one never resurfaces.
pub fn chaos_experiment(
    scale_factor: f64,
    null_rate: f64,
    seed: u64,
    rounds: usize,
    writes_per_round: usize,
) -> ChaosReport {
    use certus::obs::{failpoints, FailAction};
    use certus::{Certainty, Session};
    use certus_data::wal::{FP_APPEND, FP_FSYNC};
    use certus_data::Tuple;
    use certus_server::client::{Client, RetryPolicy};
    use certus_server::protocol::WireCertainty;
    use certus_server::{answer_body, Server, ServerConfig};

    let w = Workload::new(scale_factor, null_rate, seed);
    let mut db = w.incomplete_instance();
    let params = w.params(&db, 0);
    let q3 = query_by_number(3, &params).expect("query exists");
    // The write target: a side table the TPC-H queries never read, so the
    // audit rows are byte-checked directly and Q3 stays byte-stable.
    db.insert_relation("chaos_audit", rel(&["op"], Vec::new()));

    let dir = std::env::temp_dir().join(format!("certus-chaos-{}-{seed}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let modes = [
        (WireCertainty::Plain, Certainty::Plain),
        (WireCertainty::CertainPlus, Certainty::CertainPlus),
        (WireCertainty::PossibleStar, Certainty::PossibleStar),
        (WireCertainty::Both, Certainty::Both),
    ];
    let audit_query = RaExpr::relation("chaos_audit");
    let fp = failpoints();
    fp.disarm_all();

    let mut acked: Vec<i64> = Vec::new();
    let mut next_op = 0i64;
    let mut writes_rejected = 0u64;
    let mut torn_injected = 0u64;
    let mut verified_answers = 0u64;
    let mut recovery_ms: Vec<f64> = Vec::new();
    let mut insert_wall_s = 0.0f64;

    // One extra generation at the end verifies the final crash's state.
    for round in 0..=rounds {
        let config = ServerConfig {
            executors: 2,
            engine_threads: 1,
            data_dir: Some(dir.clone()),
            // Small enough that the loop crosses checkpoint folds, so
            // recovery exercises checkpoint + WAL-suffix replay.
            checkpoint_every: (writes_per_round as u64 / 2).max(4),
            ..ServerConfig::default()
        };
        let t = std::time::Instant::now();
        let server = Server::start(db.clone(), config).expect("server starts");
        recovery_ms.push(t.elapsed().as_secs_f64() * 1e3);
        let addr = server.local_addr();

        // Local mirror: the seed instance plus exactly the acked writes.
        let mut mirror = db.clone();
        mirror.insert_relation(
            "chaos_audit",
            rel(&["op"], acked.iter().map(|&v| vec![Value::Int(v)]).collect()),
        );
        let local = Session::builder(mirror).build();

        let mut client = Client::connect(addr)
            .expect("client connects")
            .with_retry(RetryPolicy { seed: seed + round as u64, ..RetryPolicy::default() });

        // Recovered state must match the mirror byte-for-byte in every
        // certainty mode — acked writes present, rejected ones absent.
        for (wire, cert) in modes {
            let want = answer_body(&local.execute(&audit_query, cert).expect("local audit"));
            let got = client.query(wire, &audit_query).expect("served audit");
            assert_eq!(
                got.canonical_bytes(),
                want.encode(),
                "recovered audit table diverges from acked writes (round {round}, {wire:?})"
            );
            verified_answers += 1;
        }
        let want_q3 =
            answer_body(&local.execute(&q3, Certainty::CertainPlus).expect("local Q3+")).encode();
        let got_q3 = client.query(WireCertainty::CertainPlus, &q3).expect("served Q3+");
        assert_eq!(got_q3.canonical_bytes(), want_q3, "Q3+ diverges after recovery");
        verified_answers += 1;

        if round == rounds {
            // Final generation is verification-only.
            client.close().expect("client closes");
            server.shutdown();
            break;
        }

        // Write batch with deterministic faults: odd rounds lose an fsync
        // mid-batch (the write must be refused and rolled back).
        for i in 0..writes_per_round {
            if round % 2 == 1 && i == writes_per_round / 2 {
                fp.arm(FP_FSYNC, FailAction::Error, 0, 1);
            }
            let t = std::time::Instant::now();
            let outcome = client.insert("chaos_audit", vec![Tuple::new(vec![Value::Int(next_op)])]);
            insert_wall_s += t.elapsed().as_secs_f64();
            match outcome {
                Ok(_) => acked.push(next_op),
                Err(_) => writes_rejected += 1,
            }
            next_op += 1;
        }

        // Every third round crashes mid-append: a torn record reaches disk
        // but is never acked, and recovery must truncate it.
        if round % 3 == 2 {
            fp.arm(FP_APPEND, FailAction::Torn(6), 0, 1);
            let outcome = client.insert("chaos_audit", vec![Tuple::new(vec![Value::Int(next_op)])]);
            assert!(outcome.is_err(), "a torn append must never be acknowledged");
            torn_injected += 1;
            writes_rejected += 1;
            next_op += 1;
        }
        fp.disarm_all();

        // Abrupt teardown: no clean close from the client, no checkpoint
        // request — the next generation gets exactly what the WAL holds.
        drop(client);
        server.shutdown();
    }
    fp.disarm_all();
    let _ = std::fs::remove_dir_all(&dir);

    let mean = recovery_ms.iter().sum::<f64>() / recovery_ms.len().max(1) as f64;
    let max = recovery_ms.iter().fold(0.0f64, |a, &b| a.max(b));
    ChaosReport {
        rounds,
        writes_acked: acked.len() as u64,
        writes_rejected,
        torn_injected,
        recovery_ms_mean: mean,
        recovery_ms_max: max,
        durable_write_qps: acked.len() as f64 / insert_wall_s.max(1e-9),
        verified_answers,
    }
}

/// Print the chaos-run report.
pub fn print_chaos(r: &ChaosReport) {
    println!("== Chaos: {} crash/recover rounds under fault injection ==", r.rounds);
    println!(
        "writes      : {} acked (all survived recovery), {} refused by injected faults \
         ({} torn appends truncated)",
        r.writes_acked, r.writes_rejected, r.torn_injected
    );
    println!(
        "recovery    : {:.2}ms mean, {:.2}ms max (checkpoint + WAL replay)",
        r.recovery_ms_mean, r.recovery_ms_max
    );
    println!("durable qps : {:.1} fsync'd writes/s", r.durable_write_qps);
    println!(
        "verified    : {} served answers byte-identical to local execution",
        r.verified_answers
    );
}

/// Splice `section` (a flat JSON object rendered as `{...}`) into the
/// document at `path` under `key`, replacing any previous copy of that key
/// and leaving every other section untouched. Creates a minimal document
/// when the serve benchmark has not run yet.
fn amend_json_section(path: &std::path::Path, key: &str, section: &str) -> std::io::Result<()> {
    let mut s = std::fs::read_to_string(path)
        .unwrap_or_else(|_| "{\n  \"experiment\": \"server_throughput\"\n}\n".to_string());
    let marker = format!(",\n  \"{key}\":");
    if let Some(start) = s.find(&marker) {
        // Amended sections are rendered flat, so the first '}' after the
        // marker closes the object.
        if let Some(close) = s[start..].find('}') {
            s.replace_range(start..start + close + 1, "");
        }
    }
    let cut = s.rfind('}').unwrap_or(s.len());
    let mut out = s[..cut].trim_end().to_string();
    if !out.ends_with('{') {
        out.push(',');
    }
    out.push_str(&format!("\n  \"{key}\": {section}\n}}\n"));
    std::fs::write(path, out)
}

/// Amend `BENCH_server.json` with the chaos section (recovery time and
/// durable write throughput), replacing any previous chaos section. Creates
/// a minimal document when the serve benchmark has not run yet.
pub fn append_chaos_json(path: &std::path::Path, r: &ChaosReport) -> std::io::Result<()> {
    let section = format!(
        "{{\"rounds\": {}, \"writes_acked\": {}, \"writes_rejected\": {}, \
         \"torn_injected\": {}, \"recovery_ms_mean\": {:.3}, \"recovery_ms_max\": {:.3}, \
         \"durable_write_qps\": {:.1}, \"verified_answers\": {}}}",
        r.rounds,
        r.writes_acked,
        r.writes_rejected,
        r.torn_injected,
        r.recovery_ms_mean,
        r.recovery_ms_max,
        r.durable_write_qps,
        r.verified_answers,
    );
    amend_json_section(path, "chaos", &section)
}

/// The report of the `experiments chaos --replicated` run: a kill/promote
/// loop over a sync-replicated primary/replica pair under stream fault
/// injection, with every quorum-acked write asserted present on the
/// promoted node and every served answer byte-checked against a local
/// mirror.
#[derive(Debug, Clone)]
pub struct ReplChaosReport {
    /// Kill/promote rounds (each one fails over to the replica).
    pub rounds: usize,
    /// Quorum-acked inserts; every one must survive every failover.
    pub writes_acked: u64,
    /// Inserts that errored with replication state unknown (quorum
    /// timeouts, injected publish faults); resolved after each promote.
    pub writes_indeterminate: u64,
    /// Indeterminate writes the promoted node turned out to hold.
    pub indeterminate_present: u64,
    /// Injected `repl.send` stream severs.
    pub send_faults: u64,
    /// Injected torn `WalSegment` frames (partial frame on the wire).
    pub torn_segments: u64,
    /// Injected `repl.apply` refusals on the replica.
    pub apply_faults: u64,
    /// Injected `server.publish` faults (durable but unacknowledged).
    pub publish_faults: u64,
    /// Promotions performed (one per round).
    pub promotions: u64,
    /// Mean time from killing the primary to the promoted node
    /// acknowledging its first write.
    pub failover_ms_mean: f64,
    /// Worst failover across all rounds.
    pub failover_ms_max: f64,
    /// Mean replication lag: the sync-quorum wait from locally-durable to
    /// replica-acked, including fault-triggered re-subscribes.
    pub repl_lag_ms_mean: f64,
    /// p99 replication lag (bucketed histogram resolution).
    pub repl_lag_ms_p99: f64,
    /// Served answers compared byte-for-byte against local execution.
    pub verified_answers: u64,
}

/// Kill/promote loop over a replicated pair: each round starts a sync-mode
/// primary (quorum 1) over the previous round's promoted state and a fresh
/// replica that bootstraps over the wire, byte-checks the recovered audit
/// table and a real TPC-H query against a local mirror of the acknowledged
/// writes, then issues a write batch with deterministic stream faults
/// (severed sends, torn segments, apply refusals, withheld acks) before
/// killing the primary and promoting the replica. Invariants under test:
/// every quorum-acked write is on the promoted node, a write that was
/// never durable anywhere never resurfaces, and errored writes are honest
/// indeterminates that resolve to exactly present-or-absent after failover.
pub fn replicated_chaos_experiment(
    scale_factor: f64,
    null_rate: f64,
    seed: u64,
    rounds: usize,
    writes_per_round: usize,
) -> ReplChaosReport {
    use certus::obs::{failpoints, names, registry, FailAction};
    use certus::{Certainty, Session};
    use certus_data::Tuple;
    use certus_server::client::Client;
    use certus_server::protocol::WireCertainty;
    use certus_server::replication::{FP_REPL_APPLY, FP_REPL_SEND};
    use certus_server::server::FP_PUBLISH;
    use certus_server::{answer_body, ReplMode, ReplicationConfig, Server, ServerConfig};

    let w = Workload::new(scale_factor, null_rate, seed);
    let mut db = w.incomplete_instance();
    let params = w.params(&db, 0);
    let q3 = query_by_number(3, &params).expect("query exists");
    db.insert_relation("chaos_audit", rel(&["op"], Vec::new()));

    let pid = std::process::id();
    let dirs = [
        std::env::temp_dir().join(format!("certus-replchaos-a-{pid}-{seed}")),
        std::env::temp_dir().join(format!("certus-replchaos-b-{pid}-{seed}")),
    ];
    for d in &dirs {
        let _ = std::fs::remove_dir_all(d);
    }

    let modes = [
        (WireCertainty::Plain, Certainty::Plain),
        (WireCertainty::CertainPlus, Certainty::CertainPlus),
        (WireCertainty::PossibleStar, Certainty::PossibleStar),
        (WireCertainty::Both, Certainty::Both),
    ];
    let audit_query = RaExpr::relation("chaos_audit");
    let fp = failpoints();
    fp.disarm_all();
    let lag_before = registry().histogram(names::REPL_QUORUM_WAIT_NS).snapshot();

    let node_config = |dir: &std::path::Path, repl: ReplicationConfig| ServerConfig {
        executors: 2,
        engine_threads: 1,
        poll_interval_ms: 5,
        data_dir: Some(dir.to_path_buf()),
        // Small enough that batches cross folds, so the stream exercises
        // mid-load re-bootstraps and quiescent rotations too.
        checkpoint_every: (writes_per_round as u64 / 2).max(4),
        replication: Some(repl),
        ..ServerConfig::default()
    };
    // Generous ack budget: injected stream faults force a re-subscribe
    // (reconnect + re-ship) inside the quorum wait of a single insert.
    let primary_repl = || ReplicationConfig {
        ack_timeout_ms: 5_000,
        ..ReplicationConfig::primary(ReplMode::Sync { quorum: 1 })
    };
    let replica_repl = |addr: &str| ReplicationConfig {
        reconnect_ms: 5,
        ..ReplicationConfig::replica(addr, ReplMode::Async)
    };

    let mut acked: Vec<i64> = Vec::new();
    let mut next_op = 0i64;
    let mut writes_indeterminate = 0u64;
    let mut indeterminate_present = 0u64;
    let mut send_faults = 0u64;
    let mut torn_segments = 0u64;
    let mut apply_faults = 0u64;
    let mut publish_faults = 0u64;
    let mut promotions = 0u64;
    let mut verified_answers = 0u64;
    let mut failover_ms: Vec<f64> = Vec::new();

    let verify = |client: &mut Client, local: &Session, round: usize, tag: &str| -> u64 {
        let mut n = 0u64;
        for (wire, cert) in modes {
            let want = answer_body(&local.execute(&audit_query, cert).expect("local audit"));
            let got = client.query(wire, &audit_query).expect("served audit");
            assert_eq!(
                got.canonical_bytes(),
                want.encode(),
                "audit table diverges from acked writes ({tag}, round {round}, {wire:?})"
            );
            n += 1;
        }
        let want_q3 =
            answer_body(&local.execute(&q3, Certainty::CertainPlus).expect("local Q3+")).encode();
        let got_q3 = client.query(WireCertainty::CertainPlus, &q3).expect("served Q3+");
        assert_eq!(got_q3.canonical_bytes(), want_q3, "Q3+ diverges ({tag}, round {round})");
        n + 1
    };
    let mirror_session = |db: &certus_data::Database, acked: &[i64]| {
        let mut mirror = db.clone();
        mirror.insert_relation(
            "chaos_audit",
            rel(&["op"], acked.iter().map(|&v| vec![Value::Int(v)]).collect()),
        );
        Session::builder(mirror).build()
    };

    for round in 0..rounds {
        // Ping-pong the roles: this round's primary recovers the state the
        // previous round's promotion left behind; the replica dir is stale
        // by two rounds and is overwritten by its wire bootstrap.
        let primary_dir = &dirs[round % 2];
        let replica_dir = &dirs[(round + 1) % 2];
        let primary =
            Server::start(db.clone(), node_config(primary_dir, primary_repl())).expect("primary");
        let paddr = primary.local_addr().to_string();
        let replica = Server::start(db.clone(), node_config(replica_dir, replica_repl(&paddr)))
            .expect("replica");

        let mut client = Client::connect(&paddr).expect("client connects");
        // The recovered chain: everything acked in previous rounds survived
        // the promotion(s) and restart(s), byte-for-byte in every mode.
        let local = mirror_session(&db, &acked);
        verified_answers += verify(&mut client, &local, round, "recovered primary");

        // Write batch under deterministic stream faults. Sync quorum 1:
        // an Ok here means the record is applied and fsync'd on the replica.
        let mut pending: Vec<(i64, bool)> = Vec::new(); // (op, publish fault armed)
        for i in 0..writes_per_round {
            let mut published_fault = false;
            if i == writes_per_round / 4 {
                fp.arm(FP_REPL_SEND, FailAction::Error, 0, 1);
                send_faults += 1;
            } else if i == writes_per_round / 2 {
                fp.arm(FP_REPL_SEND, FailAction::Torn(10), 0, 1);
                torn_segments += 1;
            } else if i == (writes_per_round * 3) / 4 {
                fp.arm(FP_REPL_APPLY, FailAction::Error, 0, 1);
                apply_faults += 1;
            } else if round % 2 == 1 && i == writes_per_round / 3 {
                fp.arm(FP_PUBLISH, FailAction::Error, 0, 1);
                publish_faults += 1;
                published_fault = true;
            }
            let outcome = client.insert("chaos_audit", vec![Tuple::new(vec![Value::Int(next_op)])]);
            match outcome {
                Ok(_) => acked.push(next_op),
                Err(_) => {
                    // Replication state unknown: durable locally (publish
                    // fault) or possibly shipped (quorum timeout). Resolved
                    // against the promoted node below.
                    writes_indeterminate += 1;
                    pending.push((next_op, published_fault));
                }
            }
            next_op += 1;
        }
        fp.disarm_all();

        // Kill the primary: no clean client close, then promote the replica
        // and require it to take a write. The failover clock runs from the
        // kill to that first post-promotion ack.
        drop(client);
        let t = std::time::Instant::now();
        primary.shutdown();
        let mut rc = Client::connect(replica.local_addr()).expect("replica client");
        rc.promote().expect("promote");
        promotions += 1;
        let first = next_op;
        rc.insert("chaos_audit", vec![Tuple::new(vec![Value::Int(first)])])
            .expect("promoted node takes writes");
        failover_ms.push(t.elapsed().as_secs_f64() * 1e3);
        acked.push(first);
        next_op += 1;

        // Resolve this round's indeterminates against the promoted node:
        // present ones join the mirror, absent ones are gone for good (the
        // apply loop is sealed — nothing can land later).
        if !pending.is_empty() {
            let have = rc.query(WireCertainty::Plain, &audit_query).expect("audit");
            let present: std::collections::HashSet<i64> = have
                .body
                .plain
                .as_ref()
                .expect("plain answers")
                .iter()
                .map(|t| match t.values()[0] {
                    Value::Int(v) => v,
                    ref other => panic!("unexpected audit value {other:?}"),
                })
                .collect();
            for (op, published) in pending {
                if present.contains(&op) {
                    acked.push(op);
                    indeterminate_present += 1;
                } else {
                    // A write the primary published (it was durable there)
                    // ships with the stream; it must not vanish.
                    assert!(!published, "a published write disappeared on failover (op {op})");
                }
            }
            acked.sort_unstable();
        }

        // The promoted node serves the merged history, byte-for-byte.
        let local = mirror_session(&db, &acked);
        verified_answers += verify(&mut rc, &local, round, "promoted replica");
        drop(rc);
        replica.shutdown();
    }

    // Final generation: recover the last promoted state standalone and
    // verify it one more time without any replication in play.
    let last = Server::start(
        db.clone(),
        ServerConfig {
            executors: 2,
            engine_threads: 1,
            data_dir: Some(dirs[rounds % 2].clone()),
            ..ServerConfig::default()
        },
    )
    .expect("final recovery");
    let mut client = Client::connect(last.local_addr()).expect("final client");
    let local = mirror_session(&db, &acked);
    verified_answers += verify(&mut client, &local, rounds, "final standalone");
    client.close().expect("client closes");
    last.shutdown();
    fp.disarm_all();
    for d in &dirs {
        let _ = std::fs::remove_dir_all(d);
    }

    let lag_after = registry().histogram(names::REPL_QUORUM_WAIT_NS).snapshot();
    let lag_count = lag_after.count.saturating_sub(lag_before.count).max(1);
    let lag_sum = lag_after.sum.saturating_sub(lag_before.sum);
    let mean = failover_ms.iter().sum::<f64>() / failover_ms.len().max(1) as f64;
    let max = failover_ms.iter().fold(0.0f64, |a, &b| a.max(b));
    ReplChaosReport {
        rounds,
        writes_acked: acked.len() as u64,
        writes_indeterminate,
        indeterminate_present,
        send_faults,
        torn_segments,
        apply_faults,
        publish_faults,
        promotions,
        failover_ms_mean: mean,
        failover_ms_max: max,
        repl_lag_ms_mean: lag_sum as f64 / lag_count as f64 / 1e6,
        repl_lag_ms_p99: lag_after.quantile(0.99) as f64 / 1e6,
        verified_answers,
    }
}

/// Print the replicated-chaos report.
pub fn print_repl_chaos(r: &ReplChaosReport) {
    println!("== Replicated chaos: {} kill/promote rounds under stream faults ==", r.rounds);
    println!(
        "writes      : {} acked (all survived failover), {} indeterminate \
         ({} resolved present on the promoted node)",
        r.writes_acked, r.writes_indeterminate, r.indeterminate_present
    );
    println!(
        "faults      : {} severed sends, {} torn segments, {} apply refusals, \
         {} withheld acks",
        r.send_faults, r.torn_segments, r.apply_faults, r.publish_faults
    );
    println!(
        "failover    : {:.2}ms mean, {:.2}ms max (kill -> promoted node acks a write; \
         {} promotions)",
        r.failover_ms_mean, r.failover_ms_max, r.promotions
    );
    println!(
        "repl lag    : {:.3}ms mean, {:.3}ms p99 (locally-durable -> replica-acked)",
        r.repl_lag_ms_mean, r.repl_lag_ms_p99
    );
    println!(
        "verified    : {} served answers byte-identical to local execution",
        r.verified_answers
    );
}

/// Amend `BENCH_server.json` with the replication section (failover time
/// and replication lag), replacing any previous replication section and
/// preserving the serve/chaos sections.
pub fn append_repl_chaos_json(path: &std::path::Path, r: &ReplChaosReport) -> std::io::Result<()> {
    let section = format!(
        "{{\"rounds\": {}, \"writes_acked\": {}, \"writes_indeterminate\": {}, \
         \"indeterminate_present\": {}, \"send_faults\": {}, \"torn_segments\": {}, \
         \"apply_faults\": {}, \"publish_faults\": {}, \"promotions\": {}, \
         \"failover_ms_mean\": {:.3}, \"failover_ms_max\": {:.3}, \
         \"repl_lag_ms_mean\": {:.3}, \"repl_lag_ms_p99\": {:.3}, \"verified_answers\": {}}}",
        r.rounds,
        r.writes_acked,
        r.writes_indeterminate,
        r.indeterminate_present,
        r.send_faults,
        r.torn_segments,
        r.apply_faults,
        r.publish_faults,
        r.promotions,
        r.failover_ms_mean,
        r.failover_ms_max,
        r.repl_lag_ms_mean,
        r.repl_lag_ms_p99,
        r.verified_answers,
    );
    amend_json_section(path, "replication", &section)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replicated_chaos_smoke_survives_one_failover() {
        let r = replicated_chaos_experiment(0.0003, 0.02, 911, 1, 8);
        assert_eq!(r.rounds, 1);
        assert_eq!(r.promotions, 1);
        // Stream faults were injected and every ack still held: the
        // byte-checks inside the experiment are the real assertions.
        assert_eq!(r.send_faults, 1);
        assert_eq!(r.torn_segments, 1);
        assert_eq!(r.apply_faults, 1);
        assert!(r.writes_acked >= 5, "{r:?}");
        assert!(r.failover_ms_max > 0.0);
        assert_eq!(r.verified_answers, 15, "3 verification points x 5 checks");
        print_repl_chaos(&r);
    }

    #[test]
    fn chaos_json_sections_amend_without_clobbering_each_other() {
        let path = std::env::temp_dir().join("BENCH_server_amend_test.json");
        let _ = std::fs::remove_file(&path);
        let chaos = ChaosReport {
            rounds: 3,
            writes_acked: 40,
            writes_rejected: 2,
            torn_injected: 1,
            recovery_ms_mean: 1.5,
            recovery_ms_max: 2.5,
            durable_write_qps: 100.0,
            verified_answers: 20,
        };
        let repl = ReplChaosReport {
            rounds: 5,
            writes_acked: 80,
            writes_indeterminate: 3,
            indeterminate_present: 2,
            send_faults: 5,
            torn_segments: 5,
            apply_faults: 5,
            publish_faults: 2,
            promotions: 5,
            failover_ms_mean: 4.0,
            failover_ms_max: 9.0,
            repl_lag_ms_mean: 0.8,
            repl_lag_ms_p99: 2.0,
            verified_answers: 55,
        };
        // Create from nothing, then amend in both orders, twice each: every
        // pass must keep the document balanced and keep both sections.
        append_chaos_json(&path, &chaos).expect("creates");
        append_repl_chaos_json(&path, &repl).expect("amends");
        append_chaos_json(&path, &chaos).expect("replaces chaos");
        append_repl_chaos_json(&path, &repl).expect("replaces replication");
        let text = std::fs::read_to_string(&path).expect("reads back");
        std::fs::remove_file(&path).ok();
        assert_eq!(text.matches('{').count(), text.matches('}').count(), "{text}");
        assert_eq!(text.matches("\"chaos\":").count(), 1, "{text}");
        assert_eq!(text.matches("\"replication\":").count(), 1, "{text}");
        assert!(text.contains("\"failover_ms_mean\": 4.000"), "{text}");
        assert!(text.contains("\"durable_write_qps\": 100.0"), "{text}");
    }

    #[test]
    fn paper_null_rates_match_the_sweep() {
        let rates = paper_null_rates();
        assert_eq!(rates.len(), 16);
        assert!((rates[0] - 0.005).abs() < 1e-9);
        assert!((rates[15] - 0.10).abs() < 1e-9);
    }

    #[test]
    fn figure1_smoke_shows_false_positives() {
        let rows = figure1(0.0003, 1, 1, &[0.05]);
        assert_eq!(rows.len(), 1);
        // At a 5% null rate at least one query must show false positives.
        assert!(rows[0].fp_pct.iter().any(|&p| p > 0.0), "{rows:?}");
        print_figure1(&rows);
    }

    #[test]
    fn figure4_smoke_produces_ratios() {
        let rows = figure4(0.0004, &[0.02], 1, 1);
        assert_eq!(rows.len(), 1);
        for q in 0..4 {
            assert!(rows[0].ratio[q] > 0.0);
        }
        // The decorrelated null-check makes Q2+ no slower than ~Q2.
        assert!(rows[0].ratio[1] < 1.5, "Q2+ ratio {}", rows[0].ratio[1]);
        print_figure4(&rows);
    }

    #[test]
    fn section5_shows_fig2_blowup() {
        let rows = section5(&[8, 24]);
        assert_eq!(rows.len(), 2);
        // The Figure 2 translation is slower than Q+ already at these sizes,
        // and its disadvantage grows with the instance.
        assert!(rows[1].t_fig2 > rows[1].t_plus);
        print_section5(&rows);
    }

    #[test]
    fn precision_is_perfect_on_a_small_instance() {
        let rows = precision_recall(0.0003, 0.05, 5);
        for r in &rows {
            assert_eq!(
                r.qplus_false_positives, 0,
                "Q{} returned a detected false positive",
                r.query
            );
        }
        print_precision_recall(&rows);
    }

    #[test]
    fn planner_rescues_the_not_exists_translation() {
        // The Section 7 rescue on Q3+ — its NOT EXISTS anti-join carries the
        // translation's `… OR IS NULL` disjuncts; with the pipeline off the
        // engine runs it as a nested loop, with the pipeline on the
        // nullability pruning and guarded OR-split restore hash anti-joins.
        // Results are asserted identical inside the experiment; here we check
        // the measurable speedup. The scale is kept small because the "off"
        // arm is intentionally quadratic and this test also runs in debug
        // builds.
        let rows = planner_on_off(0.0006, 0.02, 904, 1);
        assert_eq!(rows.len(), 4);
        let q3 = &rows[2];
        assert!(
            q3.t_off > 2.0 * q3.t_on,
            "pipeline should rescue Q3+: off {} vs on {}",
            q3.t_off,
            q3.t_on
        );
        // The guarded OR-split must not pessimize Q4+ the way unconditional
        // union-splitting does (generous factor: both arms are fast and
        // timing-noisy at this scale).
        let q4 = &rows[3];
        assert!(
            q4.t_on < q4.t_off * 2.0 + 0.05,
            "pipeline must not pessimize Q4+: off {} vs on {}",
            q4.t_off,
            q4.t_on
        );
        print_planner_on_off(&rows);
    }

    #[test]
    fn parallel_scaling_agrees_across_thread_counts() {
        // Correctness smoke: tiny instance, every thread count returns the
        // serial result (asserted inside the experiment). No wall-clock
        // assertions here — speedups depend on the host's core count.
        let rows = parallel_scaling(0.0004, 0.02, 33, 1, &[1, 2, 4]);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].threads, 1);
        for r in &rows {
            assert!(r.t_q3 > 0.0 && r.t_q4 > 0.0);
            assert_eq!(r.answers, rows[0].answers);
        }
        print_parallel_scaling(&rows);
    }

    #[test]
    fn concurrency_scaling_agrees_and_records_curves() {
        // Correctness smoke: two clients on a shared two-wide pool still
        // return the serial answers (asserted inside the experiment), and
        // the JSON emitter round-trips the sweep's shape.
        let rows = concurrency_scaling(0.0004, 0.02, 33, 2, &[1, 2], &[1, 2]);
        assert_eq!(rows.len(), 4);
        for r in &rows {
            assert!(r.wall_s > 0.0 && r.queries_per_sec > 0.0);
            assert_eq!(r.answers, rows[0].answers);
        }
        print_concurrency_scaling(&rows);
        let scaling = parallel_scaling(0.0004, 0.02, 33, 1, &[1, 2]);
        let path = std::env::temp_dir().join("BENCH_parallel_test.json");
        write_parallel_bench_json(&path, &scaling, &rows).expect("writes");
        let text = std::fs::read_to_string(&path).expect("reads back");
        std::fs::remove_file(&path).ok();
        assert_eq!(text.matches('{').count(), text.matches('}').count());
        assert_eq!(text.matches("\"clients\"").count(), rows.len());
        assert_eq!(text.matches("\"q3_wall_s\"").count(), scaling.len());
    }

    #[test]
    fn prepared_execution_agrees_and_hits_the_cache() {
        let (rows, cache) = prepared_execution(0.0005, 0.02, 906, 2);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.t_per_call > 0.0 && r.t_prepared > 0.0);
        }
        // The warm `Session::execute` calls must have been served from the
        // plan cache: one miss per query, everything else hits.
        assert_eq!(cache.misses, 2);
        assert!(cache.hits >= 2, "{cache:?}");
        assert!(cache.hit_rate() > 0.0);
        print_prepared(&rows, &cache);
    }

    #[test]
    fn engine_pipeline_compiled_runtime_beats_delegating() {
        let rows = engine_pipeline(0.0008, 0.03, 907, 2);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.t_delegating > 0.0 && r.t_compiled > 0.0 && r.t_prepared > 0.0);
            assert!(r.t_vectorized > 0.0);
            assert!(r.plan_ops > 1);
        }
        // The compiled runtime must beat the delegating round-trip on at
        // least one of Q3+/Q4+. The Q4+ gap is algorithmic (per-row name
        // resolution + per-operator materialisation vs none; >20x in
        // practice even in debug builds), so a bound barely above 1x only
        // fails on a real regression, not on scheduler noise. The release
        // `experiments pipeline` run records the real ≥2x-and-beyond gap.
        let best = rows.iter().map(EnginePipelineRow::speedup).fold(0.0, f64::max);
        assert!(best > 1.05, "expected a compiled-runtime speedup, got {rows:?}");
        // Likewise, the vectorized runtime must beat the row path on at
        // least one query even in debug builds (the Q4+ gap is algorithmic:
        // hoisted loop-invariant predicates + typed loops vs per-pair
        // dispatch).
        let best_vec = rows.iter().map(EnginePipelineRow::vec_speedup).fold(0.0, f64::max);
        assert!(best_vec > 1.05, "expected a vectorization speedup, got {rows:?}");
        print_engine_pipeline(&rows);
        // The JSON emitter must produce well-formed output that bench_check
        // can read back and judge.
        let path = std::env::temp_dir().join("BENCH_engine_test.json");
        write_engine_bench_json(&path, &rows).expect("writes");
        let text = std::fs::read_to_string(&path).expect("reads back");
        assert!(text.contains("\"experiment\": \"engine_pipeline\""));
        assert!(text.contains("\"speedup_compiled_vs_delegating\""));
        assert!(text.contains("\"speedup_vectorized_vs_compiled\""));
        let checks = bench_check(&path, 1.10).expect("parses");
        assert_eq!(checks.len(), 2);
        for (c, r) in checks.iter().zip(&rows) {
            assert_eq!(c.query, format!("Q{}+", r.query));
            assert!((c.compiled_wall - r.t_compiled).abs() < 1e-5);
            assert!((c.vectorized_wall - r.t_vectorized).abs() < 1e-5);
            assert_eq!(c.ok, c.vectorized_wall <= c.compiled_wall * 1.10);
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn profile_reports_operators_and_keeps_bench_check_readable() {
        let rows = profile_queries(0.0005, 0.03, 907, 1);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert_eq!(r.profile.rows_out as usize, r.rows, "profile root mismatches answers");
            assert!(r.profile.node_count() > 1);
            assert!(!r.top_operators(5).is_empty());
            assert_eq!(r.analyzed.rows_act as usize, r.rows);
            assert!(r.t_prepared > 0.0 && r.t_profiled > 0.0);
        }
        print_profile(&rows);
        // Amending BENCH_engine.json must not confuse the bench-check scrape.
        let path = std::env::temp_dir().join("BENCH_engine_profile_test.json");
        let pipeline_rows = vec![EnginePipelineRow {
            query: 3,
            plan_ops: 5,
            rows: 10,
            t_delegating: 0.4,
            t_compiled: 0.02,
            t_vectorized: 0.01,
            t_prepared: 0.008,
        }];
        write_engine_bench_json(&path, &pipeline_rows).expect("writes");
        append_profile_json(&path, &rows).expect("amends");
        // Amending twice replaces the operators section instead of stacking.
        append_profile_json(&path, &rows).expect("amends again");
        let text = std::fs::read_to_string(&path).expect("reads back");
        assert_eq!(text.matches("\"operators\":").count(), 1);
        assert!(text.contains("\"self_ns\":"));
        let checks = bench_check(&path, 1.10).expect("parses");
        assert_eq!(checks.len(), 1, "operators section leaked into bench-check: {checks:?}");
        assert!((checks[0].compiled_wall - 0.02).abs() < 1e-9);
        // A standalone profile run (no pipeline file) creates a valid doc.
        let _ = std::fs::remove_file(&path);
        append_profile_json(&path, &rows).expect("creates");
        let text = std::fs::read_to_string(&path).expect("reads back");
        assert!(text.starts_with('{') && text.trim_end().ends_with('}'));
        assert_eq!(bench_check(&path, 1.10).expect("parses").len(), 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn ablation_shows_cost_gap() {
        let r = or_split_ablation(0.001, 0.0001, 0.02);
        // The direct translation's OR .. IS NULL conditions defeat hash joins,
        // inflating the estimated plan cost far beyond the original query's
        // (the paper reports "thousands of times higher"; the exact factor
        // depends on the cost model).
        assert!(
            r.unsplit_estimated_cost > 10.0 * r.original_estimated_cost,
            "unsplit {} vs original {}",
            r.unsplit_estimated_cost,
            r.original_estimated_cost
        );
        assert!(r.split_time_tiny > 0.0 && r.unsplit_time_tiny > 0.0);
        print_ablation(&r);
    }
}
