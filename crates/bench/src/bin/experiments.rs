//! Experiment runner: regenerates every table and figure of the paper.
//!
//! ```text
//! experiments [fig1|fig4|table1|sec5|precision|ablation|planner|parallel|prepared|pipeline|profile|serve|chaos|bench-check|all] [--quick|--smoke] [--strict] [--replicated]
//! ```
//!
//! `--quick` (alias `--smoke`) shrinks instance counts and scale factors so
//! the full suite runs in well under a minute (used by CI and `cargo bench`
//! smoke runs). `pipeline` compares the vectorized operator runtime against
//! the row-at-a-time compiled runtime and the pre-compilation delegating
//! path, and writes the machine-readable perf baseline `BENCH_engine.json`.
//! `bench-check` re-reads that file and flags a vectorized-vs-compiled
//! regression beyond the noise tolerance — warn-only by default (CI runs on
//! a one-core container whose absolute numbers are unstable), a hard failure
//! with `--strict` (the mode for local release runs). `profile` executes the
//! prepared Q3+/Q4+ instrumented, prints the top-5 operators by self time
//! and the `EXPLAIN ANALYZE` tree, amends `BENCH_engine.json` with the
//! per-operator breakdowns, and guards the instrumentation overhead on the
//! prepared hot path (< 5%; warn-only without `--strict`).

use certus_bench::experiments::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let what = args.first().map(String::as_str).unwrap_or("all");
    let quick = args.iter().any(|a| a == "--quick" || a == "--smoke");
    let strict = args.iter().any(|a| a == "--strict");

    if what == "bench-check" {
        let path = std::path::Path::new("BENCH_engine.json");
        let tolerance = 1.10;
        let rows = match bench_check(path, tolerance) {
            Ok(rows) if !rows.is_empty() => rows,
            Ok(_) => {
                eprintln!("bench-check: no query entries in {}", path.display());
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("bench-check: cannot read {}: {e}", path.display());
                std::process::exit(1);
            }
        };
        let mut regressed = false;
        for r in &rows {
            let verdict = if r.ok { "ok" } else { "REGRESSED" };
            println!(
                "bench-check {:>4}: vectorized {:.6}s vs compiled {:.6}s ({:.0}% tolerance) — {verdict}",
                r.query,
                r.vectorized_wall,
                r.compiled_wall,
                (tolerance - 1.0) * 100.0,
            );
            regressed |= !r.ok;
        }
        if regressed {
            if strict {
                eprintln!("bench-check: vectorized path regressed vs the compiled baseline");
                std::process::exit(1);
            }
            println!("bench-check: regression detected (warn-only without --strict)");
        }
        return;
    }

    let (fig1_scale, fig1_instances, fig1_runs) =
        if quick { (0.0003, 1, 1) } else { (0.0006, 3, 3) };
    let fig1_rates = if quick { vec![0.01, 0.05, 0.10] } else { paper_null_rates() };
    let (fig4_scale, fig4_instances, fig4_reps) =
        if quick { (0.0005, 1, 1) } else { (0.002, 2, 3) };
    let fig4_rates: Vec<f64> = (1..=5).map(|i| i as f64 / 100.0).collect();
    let table1_scales: Vec<f64> =
        if quick { vec![0.0005, 0.001] } else { vec![0.001, 0.003, 0.006, 0.01] };
    let sec5_sizes: Vec<usize> = if quick { vec![8, 16, 32] } else { vec![8, 16, 32, 64, 96] };

    if what == "fig1" || what == "all" {
        print_figure1(&figure1(fig1_scale, fig1_instances, fig1_runs, &fig1_rates));
        println!();
    }
    if what == "fig4" || what == "all" {
        print_figure4(&figure4(fig4_scale, &fig4_rates, fig4_instances, fig4_reps));
        println!();
    }
    if what == "table1" || what == "all" {
        print_table1(&table1(&table1_scales, &[0.01, 0.03, 0.05], if quick { 1 } else { 2 }));
        println!();
    }
    if what == "sec5" || what == "all" {
        print_section5(&section5(&sec5_sizes));
        println!();
    }
    if what == "precision" || what == "all" {
        print_precision_recall(&precision_recall(if quick { 0.0003 } else { 0.0008 }, 0.05, 17));
        println!();
    }
    if what == "ablation" || what == "all" {
        print_ablation(&or_split_ablation(0.001, if quick { 0.00008 } else { 0.0002 }, 0.02));
        println!();
    }
    if what == "planner" || what == "all" {
        let (scale, reps) = if quick { (0.001, 1) } else { (0.004, 3) };
        print_planner_on_off(&planner_on_off(scale, 0.02, 904, reps));
        println!();
    }
    if what == "parallel" || what == "all" {
        // The optimized Q4+ keeps quadratic nested-loop joins (the OR-split
        // is cost-guarded), so the scale is kept moderate.
        let (scale, reps) = if quick { (0.001, 1) } else { (0.002, 2) };
        let scaling = parallel_scaling(scale, 0.02, 905, reps, &[1, 2, 4, 8]);
        print_parallel_scaling(&scaling);
        println!();
        // Threads × concurrent clients on one shared pool: the multi-query
        // half of the scheduler story, recorded next to the per-query curve.
        let (cscale, creps) = if quick { (0.001, 2) } else { (0.002, 4) };
        let clients: &[usize] = if quick { &[1, 2] } else { &[1, 2, 4] };
        let concurrency = concurrency_scaling(cscale, 0.02, 905, creps, &[1, 2, 4], clients);
        print_concurrency_scaling(&concurrency);
        let path = std::path::Path::new("BENCH_parallel.json");
        write_parallel_bench_json(path, &scaling, &concurrency).expect("write BENCH_parallel.json");
        println!("wrote {}", path.display());
        println!();
    }
    if what == "prepared" || what == "all" {
        let (scale, reps) = if quick { (0.001, 2) } else { (0.002, 5) };
        let (rows, cache) = prepared_execution(scale, 0.02, 906, reps);
        print_prepared(&rows, &cache);
        println!();
    }
    if what == "pipeline" || what == "all" {
        // Q3+ runs in single-digit milliseconds, so the mean needs a real
        // sample count to be stable against scheduler noise.
        let (scale, reps) = if quick { (0.001, 2) } else { (0.003, 25) };
        let rows = engine_pipeline(scale, 0.03, 907, reps);
        print_engine_pipeline(&rows);
        let path = std::path::Path::new("BENCH_engine.json");
        write_engine_bench_json(path, &rows).expect("write BENCH_engine.json");
        println!("wrote {}", path.display());
        println!();
    }
    if what == "serve" {
        // Not part of `all`: the 64-client TCP fleet is its own workload.
        // `--smoke` shrinks it to 8 clients for CI; every served answer is
        // byte-checked against local execution either way.
        let (scale, clients, reps, burst) =
            if quick { (0.001, 8, 2, 4) } else { (0.002, 64, 5, 8) };
        let report = serve_benchmark(scale, 0.02, 908, clients, reps, burst);
        print_serve(&report);
        let path = std::path::Path::new("BENCH_server.json");
        write_server_bench_json(path, &report).expect("write BENCH_server.json");
        println!("wrote {}", path.display());
        println!();
    }
    if what == "chaos" {
        // Not part of `all`: the crash/recover loop is its own workload.
        // Each round recovers the previous generation's on-disk state,
        // byte-checks it against a local mirror of the acknowledged writes,
        // then injects WAL faults (failed fsyncs, torn appends) before the
        // next crash. Amends BENCH_server.json with recovery-time and
        // durable-write-throughput figures. `--replicated` runs the
        // kill/promote loop over a sync primary/replica pair instead:
        // stream faults (severed sends, torn segments, apply refusals,
        // withheld acks), one promotion per round, every quorum-acked
        // write asserted present on the promoted node, and failover-time
        // plus replication-lag figures amended alongside.
        let replicated = args.iter().any(|a| a == "--replicated");
        let path = std::path::Path::new("BENCH_server.json");
        if replicated {
            let (rounds, writes) = if quick { (1, 16) } else { (7, 48) };
            let report = replicated_chaos_experiment(0.001, 0.02, 910, rounds, writes);
            print_repl_chaos(&report);
            append_repl_chaos_json(path, &report).expect("amend BENCH_server.json");
            println!("amended {} with replication figures", path.display());
        } else {
            let (rounds, writes) = if quick { (3, 16) } else { (9, 64) };
            let report = chaos_experiment(0.001, 0.02, 909, rounds, writes);
            print_chaos(&report);
            append_chaos_json(path, &report).expect("amend BENCH_server.json");
            println!("amended {} with chaos figures", path.display());
        }
        println!();
    }
    if what == "profile" || what == "all" {
        // Enough reps for a stable minimum: the overhead guard compares
        // millisecond-scale minima, where a single sample is all noise.
        let (scale, reps) = if quick { (0.001, 3) } else { (0.003, 15) };
        let rows = profile_queries(scale, 0.03, 907, reps);
        print_profile(&rows);
        let path = std::path::Path::new("BENCH_engine.json");
        append_profile_json(path, &rows).expect("amend BENCH_engine.json");
        println!("amended {} with per-operator profiles", path.display());
        let worst = rows.iter().map(ProfileRow::overhead).fold(f64::NEG_INFINITY, f64::max);
        if worst > 0.05 {
            if strict {
                eprintln!(
                    "profile: instrumentation overhead {:.1}% exceeds the 5% budget",
                    worst * 100.0
                );
                std::process::exit(1);
            }
            println!(
                "profile: instrumentation overhead {:.1}% exceeds the 5% budget \
                 (warn-only without --strict)",
                worst * 100.0
            );
        }
        println!();
    }
}
