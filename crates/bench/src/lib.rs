//! # certus-bench
//!
//! The experiment harness that regenerates every table and figure of the
//! paper's evaluation:
//!
//! | paper artefact | function | binary |
//! |---|---|---|
//! | Figure 1 (false-positive rates) | [`experiments::figure1`] | `experiments fig1` |
//! | Figure 4 (price of correctness) | [`experiments::figure4`] | `experiments fig4` |
//! | Table 1 (scaling) | [`experiments::table1`] | `experiments table1` |
//! | Section 5 (Fig. 2 translation infeasible) | [`experiments::section5`] | `experiments sec5` |
//! | Precision / recall claims (§7) | [`experiments::precision_recall`] | `experiments precision` |
//! | §7 discussion (optimizer confusion ablation) | [`experiments::or_split_ablation`] | `experiments ablation` |
//!
//! Absolute numbers differ from the paper (our substrate is an in-memory Rust
//! engine at milli-scale, not PostgreSQL on 1–10 GB instances); the *shape* —
//! who wins, by roughly what factor, and the trends across null rates and
//! scale — is what the harness reproduces. See `EXPERIMENTS.md` at the
//! repository root for the paper-vs-measured record.

pub mod experiments;
pub mod timing;
