//! Small timing utilities shared by the experiment binaries.

use std::time::Instant;

/// Time a closure, returning its result and the elapsed seconds.
pub fn time<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// Run a closure `reps` times and return the mean elapsed seconds of the runs.
pub fn time_mean<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    assert!(reps > 0);
    let mut total = 0.0;
    for _ in 0..reps {
        let (_, t) = time(&mut f);
        total += t;
    }
    total / reps as f64
}

/// Run a closure `reps` times and return the *minimum* elapsed seconds —
/// the robust estimator for millisecond-scale arms on shared machines,
/// where the mean absorbs scheduler spikes that have nothing to do with
/// the code under test.
pub fn time_min<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    assert!(reps > 0);
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let (_, t) = time(&mut f);
        best = best.min(t);
    }
    best
}

/// Format a ratio compactly (scientific notation below 0.01).
pub fn fmt_ratio(r: f64) -> String {
    if r < 0.01 {
        format!("{r:.1e}")
    } else {
        format!("{r:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_returns_result_and_duration() {
        let (v, t) = time(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(t >= 0.0);
    }

    #[test]
    fn time_mean_averages() {
        let t = time_mean(3, || std::hint::black_box(1 + 1));
        assert!(t >= 0.0);
    }

    #[test]
    fn time_min_returns_the_fastest_sample() {
        // Two slow samples and one no-op: the minimum must undercut the
        // sleeps by a wide margin (bounds generous enough for a loaded CI
        // box — the no-op sample would need a >20 ms stall to fail).
        let mut calls = 0u32;
        let t = time_min(3, || {
            calls += 1;
            if calls < 3 {
                std::thread::sleep(std::time::Duration::from_millis(40));
            }
        });
        assert!(t.is_finite() && t >= 0.0);
        assert!(t < 0.02, "min {t}s should reflect the no-sleep sample, not the 40 ms ones");
    }

    #[test]
    fn ratio_formatting() {
        assert_eq!(fmt_ratio(0.5), "0.500");
        assert!(fmt_ratio(0.0004).contains('e'));
    }
}
