//! Small timing utilities shared by the experiment binaries.

use std::time::Instant;

/// Time a closure, returning its result and the elapsed seconds.
pub fn time<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// Run a closure `reps` times and return the mean elapsed seconds of the runs.
pub fn time_mean<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    assert!(reps > 0);
    let mut total = 0.0;
    for _ in 0..reps {
        let (_, t) = time(&mut f);
        total += t;
    }
    total / reps as f64
}

/// Format a ratio compactly (scientific notation below 0.01).
pub fn fmt_ratio(r: f64) -> String {
    if r < 0.01 {
        format!("{r:.1e}")
    } else {
        format!("{r:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_returns_result_and_duration() {
        let (v, t) = time(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(t >= 0.0);
    }

    #[test]
    fn time_mean_averages() {
        let t = time_mean(3, || std::hint::black_box(1 + 1));
        assert!(t >= 0.0);
    }

    #[test]
    fn ratio_formatting() {
        assert_eq!(fmt_ratio(0.5), "0.500");
        assert!(fmt_ratio(0.0004).contains('e'));
    }
}
