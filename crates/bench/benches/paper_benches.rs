//! Paper benchmarks, one group per paper artefact, plus the planner
//! ablation. Runs under `cargo bench` with `harness = false` — the container
//! has no crates.io access, so instead of criterion this uses the workspace's
//! own timing utilities and prints a compact mean/min report per case.
//!
//! * `fig1_false_positive_detection` — the Section 4 pipeline (run a query,
//!   detect false positives) at a fixed null rate.
//! * `fig4_price_of_correctness` — original vs translated queries (Figure 4).
//! * `table1_scaling` — translated Q3 at growing scale factors (Table 1's
//!   stability claim).
//! * `sec5_fig2_translation` — the Figure 2 translation vs Q⁺ (Section 5).
//! * `ablation_or_split` — unsplit vs split translated Q4 (Section 7
//!   discussion).
//! * `planner_on_off` — raw translations vs the full rewrite-pass pipeline.

use certus_bench::timing::time_mean;
use certus_core::{translate_plus, CertainRewriter, ConditionDialect};
use certus_engine::{Engine, EngineConfig};
use certus_plan::Planner;
use certus_tpch::fp_detect::count_false_positives;
use certus_tpch::{query_by_number, Workload};
use std::time::Instant;

const REPS: usize = 5;

struct Reporter {
    group: &'static str,
}

impl Reporter {
    fn group(name: &'static str) -> Reporter {
        println!("\n== bench group: {name} ==");
        Reporter { group: name }
    }

    fn bench<T>(&self, case: &str, mut f: impl FnMut() -> T) {
        // One warm-up, then REPS measured runs; report mean and min.
        f();
        let mut times = Vec::with_capacity(REPS);
        for _ in 0..REPS {
            let start = Instant::now();
            std::hint::black_box(f());
            times.push(start.elapsed().as_secs_f64());
        }
        let mean = times.iter().sum::<f64>() / times.len() as f64;
        let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
        println!("{:<28} {:>30}  mean {:>12.6}s  min {:>12.6}s", self.group, case, mean, min);
    }
}

fn prepared(
    scale: f64,
    null_rate: f64,
    seed: u64,
) -> (certus_data::Database, certus_tpch::QueryParams) {
    let w = Workload::new(scale, null_rate, seed);
    let db = w.incomplete_instance();
    let params = w.params(&db, 0);
    (db, params)
}

fn fig1_false_positive_detection() {
    let (db, params) = prepared(0.0004, 0.05, 1);
    let engine = Engine::with_config(&db, EngineConfig::serial());
    let r = Reporter::group("fig1_false_positive_detection");
    for q in 1..=4usize {
        let expr = query_by_number(q, &params).unwrap();
        r.bench(&format!("Q{q}"), || {
            let answers = engine.execute(&expr).unwrap();
            count_false_positives(q, &db, &params, &answers)
        });
    }
}

fn fig4_price_of_correctness() {
    let (db, params) = prepared(0.0008, 0.02, 2);
    let engine = Engine::with_config(&db, EngineConfig::serial());
    let rewriter = CertainRewriter::new();
    let r = Reporter::group("fig4_price_of_correctness");
    for q in 1..=4usize {
        let expr = query_by_number(q, &params).unwrap();
        let plus = rewriter.rewrite_plus(&expr, &db).unwrap();
        r.bench(&format!("Q{q}_original"), || engine.execute(&expr).unwrap());
        r.bench(&format!("Q{q}_certain"), || engine.execute(&plus).unwrap());
    }
}

fn table1_scaling() {
    let r = Reporter::group("table1_scaling");
    for scale in [0.0005, 0.001, 0.002] {
        let (db, params) = prepared(scale, 0.02, 3);
        let engine = Engine::with_config(&db, EngineConfig::serial());
        let rewriter = CertainRewriter::new();
        let q3 = certus_tpch::q3(&params);
        let plus = rewriter.rewrite_plus(&q3, &db).unwrap();
        r.bench(&format!("Q3_original/{scale}"), || engine.execute(&q3).unwrap());
        r.bench(&format!("Q3_certain/{scale}"), || engine.execute(&plus).unwrap());
    }
}

fn sec5_fig2_translation() {
    use certus_algebra::builder::eq_const;
    use certus_algebra::RaExpr;
    use certus_data::builder::rel;
    use certus_data::{Database, Value};
    let mut db = Database::new();
    let rows =
        |o: i64| (0..32).map(|i| vec![Value::Int(o + i), Value::Int(i % 9)]).collect::<Vec<_>>();
    db.insert_relation("r", rel(&["a", "b"], rows(0)));
    db.insert_relation("s", rel(&["a", "b"], rows(5)));
    db.insert_relation("t", rel(&["a", "b"], rows(11)));
    let q = RaExpr::relation("r").difference(
        RaExpr::relation("t")
            .project(&["a", "b"])
            .difference(RaExpr::relation("s").select(eq_const("b", 3i64))),
    );
    let plus = translate_plus(&q, ConditionDialect::Sql).unwrap();
    let fig2 = certus_core::naive_translation::translate_t(&q, &db, ConditionDialect::Sql).unwrap();
    let engine = Engine::with_config(&db, EngineConfig::serial());
    let r = Reporter::group("sec5_fig2_translation");
    r.bench("improved_Q_plus", || engine.execute(&plus).unwrap());
    r.bench("figure2_Qt", || engine.execute(&fig2).unwrap());
}

fn ablation_or_split() {
    let (db, params) = prepared(0.0002, 0.02, 4);
    let engine = Engine::with_config(&db, EngineConfig::serial());
    let q4 = certus_tpch::q4(&params);
    let unsplit = CertainRewriter::unoptimized().rewrite_plus(&q4, &db).unwrap();
    let split = CertainRewriter::new().rewrite_plus(&q4, &db).unwrap();
    let r = Reporter::group("ablation_or_split");
    r.bench("Q4_original", || engine.execute(&q4).unwrap());
    r.bench("Q4_plus_unsplit", || engine.execute(&unsplit).unwrap());
    r.bench("Q4_plus_split", || engine.execute(&split).unwrap());
}

fn planner_on_off() {
    let (db, params) = prepared(0.002, 0.02, 5);
    let engine = Engine::with_config(&db, EngineConfig::serial());
    let raw_rewriter = CertainRewriter::unoptimized();
    let planner = Planner::new();
    let r = Reporter::group("planner_on_off");
    for q in 1..=4usize {
        let expr = query_by_number(q, &params).unwrap();
        let raw = raw_rewriter.rewrite_plus(&expr, &db).unwrap();
        let planned = planner.optimize(&raw, &db).unwrap();
        r.bench(&format!("Q{q}_plus_pipeline_off"), || engine.execute(&raw).unwrap());
        r.bench(&format!("Q{q}_plus_pipeline_on"), || engine.execute(&planned).unwrap());
    }
}

fn main() {
    // `cargo bench` passes flags like --bench; a `--quick` anywhere trims reps
    // implicitly by running the cheap groups only.
    let quick = std::env::args().any(|a| a == "--quick");
    let t = time_mean(1, || {
        fig1_false_positive_detection();
        fig4_price_of_correctness();
        if !quick {
            table1_scaling();
            sec5_fig2_translation();
            ablation_or_split();
            planner_on_off();
        }
    });
    println!("\ntotal bench wall time: {t:.2}s");
}
