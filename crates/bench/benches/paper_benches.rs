//! Criterion benchmarks, one group per paper artefact.
//!
//! * `fig1_false_positive_detection` — the Section 4 pipeline (run a query,
//!   detect false positives) at a fixed null rate.
//! * `fig4_price_of_correctness` — original vs translated queries (Figure 4).
//! * `table1_scaling` — translated Q3 at growing scale factors (Table 1's
//!   stability claim).
//! * `sec5_fig2_translation` — the Figure 2 translation vs Q⁺ (Section 5).
//! * `ablation_or_split` — unsplit vs split translated Q4 (Section 7
//!   discussion).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use certus_core::{translate_plus, CertainRewriter, ConditionDialect};
use certus_engine::Engine;
use certus_tpch::fp_detect::count_false_positives;
use certus_tpch::{query_by_number, Workload};

fn prepared(scale: f64, null_rate: f64, seed: u64) -> (certus_data::Database, certus_tpch::QueryParams) {
    let w = Workload::new(scale, null_rate, seed);
    let db = w.incomplete_instance();
    let params = w.params(&db, 0);
    (db, params)
}

fn fig1_false_positive_detection(c: &mut Criterion) {
    let (db, params) = prepared(0.0004, 0.05, 1);
    let engine = Engine::new(&db);
    let mut group = c.benchmark_group("fig1_false_positive_detection");
    group.sample_size(10);
    for q in 1..=4usize {
        let expr = query_by_number(q, &params).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(format!("Q{q}")), &expr, |b, expr| {
            b.iter(|| {
                let answers = engine.execute(expr).unwrap();
                count_false_positives(q, &db, &params, &answers)
            })
        });
    }
    group.finish();
}

fn fig4_price_of_correctness(c: &mut Criterion) {
    let (db, params) = prepared(0.0008, 0.02, 2);
    let engine = Engine::new(&db);
    let rewriter = CertainRewriter::new();
    let mut group = c.benchmark_group("fig4_price_of_correctness");
    group.sample_size(10);
    for q in 1..=4usize {
        let expr = query_by_number(q, &params).unwrap();
        let plus = rewriter.rewrite_plus(&expr, &db).unwrap();
        group.bench_function(BenchmarkId::from_parameter(format!("Q{q}_original")), |b| {
            b.iter(|| engine.execute(&expr).unwrap())
        });
        group.bench_function(BenchmarkId::from_parameter(format!("Q{q}_certain")), |b| {
            b.iter(|| engine.execute(&plus).unwrap())
        });
    }
    group.finish();
}

fn table1_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_scaling");
    group.sample_size(10);
    for scale in [0.0005, 0.001, 0.002] {
        let (db, params) = prepared(scale, 0.02, 3);
        let engine = Engine::new(&db);
        let rewriter = CertainRewriter::new();
        let q3 = certus_tpch::q3(&params);
        let plus = rewriter.rewrite_plus(&q3, &db).unwrap();
        group.bench_with_input(BenchmarkId::new("Q3_original", scale), &scale, |b, _| {
            b.iter(|| engine.execute(&q3).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("Q3_certain", scale), &scale, |b, _| {
            b.iter(|| engine.execute(&plus).unwrap())
        });
    }
    group.finish();
}

fn sec5_fig2_translation(c: &mut Criterion) {
    use certus_algebra::builder::eq_const;
    use certus_algebra::RaExpr;
    use certus_data::builder::rel;
    use certus_data::{Database, Value};
    let mut db = Database::new();
    let rows = |o: i64| (0..32).map(|i| vec![Value::Int(o + i), Value::Int(i % 9)]).collect::<Vec<_>>();
    db.insert_relation("r", rel(&["a", "b"], rows(0)));
    db.insert_relation("s", rel(&["a", "b"], rows(5)));
    db.insert_relation("t", rel(&["a", "b"], rows(11)));
    let q = RaExpr::relation("r").difference(
        RaExpr::relation("t").project(&["a", "b"]).difference(RaExpr::relation("s").select(eq_const("b", 3i64))),
    );
    let plus = translate_plus(&q, ConditionDialect::Sql).unwrap();
    let fig2 = certus_core::naive_translation::translate_t(&q, &db, ConditionDialect::Sql).unwrap();
    let engine = Engine::new(&db);
    let mut group = c.benchmark_group("sec5_fig2_translation");
    group.sample_size(10);
    group.bench_function("improved_Q_plus", |b| b.iter(|| engine.execute(&plus).unwrap()));
    group.bench_function("figure2_Qt", |b| b.iter(|| engine.execute(&fig2).unwrap()));
    group.finish();
}

fn ablation_or_split(c: &mut Criterion) {
    let (db, params) = prepared(0.0002, 0.02, 4);
    let engine = Engine::new(&db);
    let q4 = certus_tpch::q4(&params);
    let unsplit = CertainRewriter::unoptimized().rewrite_plus(&q4, &db).unwrap();
    let split = CertainRewriter::new().rewrite_plus(&q4, &db).unwrap();
    let mut group = c.benchmark_group("ablation_or_split");
    group.sample_size(10);
    group.bench_function("Q4_original", |b| b.iter(|| engine.execute(&q4).unwrap()));
    group.bench_function("Q4_plus_unsplit", |b| b.iter(|| engine.execute(&unsplit).unwrap()));
    group.bench_function("Q4_plus_split", |b| b.iter(|| engine.execute(&split).unwrap()));
    group.finish();
}

criterion_group!(
    benches,
    fig1_false_positive_detection,
    fig4_price_of_correctness,
    table1_scaling,
    sec5_fig2_translation,
    ablation_or_split
);
criterion_main!(benches);
