//! `certus-client`: a blocking TCP client for the certus query server.
//!
//! Two usage styles:
//!
//! * **Closed loop** — the convenience methods ([`Client::query`],
//!   [`Client::execute`], …) send one request and block for its response.
//! * **Open loop / pipelined** — [`Client::send_query`] (and friends) write
//!   a request and return its id immediately; [`Client::recv`] pulls the
//!   next response off the wire. The server may answer out of order, so
//!   match responses to requests by id.
//!
//! Closed-loop calls can retry transparently under a [`RetryPolicy`]:
//! `Overloaded` responses (shed before execution, so always safe to resend)
//! and read timeouts on idempotent requests are retried with exponential
//! backoff, seeded jitter, and the server's retry-after hint honored as a
//! floor. Inserts are **never** retried on a timeout — the server may have
//! durably applied the write even though the ack was lost.
//!
//! ```no_run
//! use certus_server::client::Client;
//! use certus_server::protocol::WireCertainty;
//! use certus_server::RaExpr;
//!
//! let mut client = Client::connect("127.0.0.1:7878").unwrap();
//! let answers = client
//!     .query(WireCertainty::CertainPlus, &RaExpr::relation("orders"))
//!     .unwrap();
//! println!("{} certain answers", answers.body.certain.as_ref().unwrap().len());
//! client.close().unwrap();
//! ```

use crate::protocol::{
    decode_response, encode_request, read_frame, write_frame, AnswerBody, ErrorCode, ReplRole,
    ReplStatusBody, Request, Response, ServerStats, WireCertainty, WireError, WireResult,
};
use certus_algebra::RaExpr;
use certus_data::Tuple;
use certus_obs::metrics::registry;
use certus_obs::names;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::io::ErrorKind;
use std::net::{TcpStream, ToSocketAddrs};
use std::thread;
use std::time::Duration;

/// An error surfaced by the client: either a transport/encoding failure or
/// an error response from the server.
#[derive(Debug)]
pub enum ClientError {
    /// The wire layer failed (I/O or malformed frame).
    Wire(WireError),
    /// The server answered with an error response.
    Server {
        /// Machine-readable failure class.
        code: ErrorCode,
        /// Human-readable detail from the server.
        message: String,
    },
    /// The server answered with a response type the call did not expect.
    Unexpected(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Wire(e) => write!(f, "{e}"),
            ClientError::Server { code, message } => write!(f, "server error {code:?}: {message}"),
            ClientError::Unexpected(m) => write!(f, "unexpected response: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

/// Result alias for client calls.
pub type ClientResult<T> = Result<T, ClientError>;

/// Retry behavior for closed-loop calls.
///
/// Retries apply to `Overloaded` responses for every request type (the
/// server sheds those before touching any state) and to read timeouts for
/// idempotent requests only. Every resend uses a fresh request id.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Retries after the initial attempt; `0` disables retrying.
    pub max_retries: u32,
    /// First backoff step; doubles each attempt.
    pub base_backoff_ms: u64,
    /// Backoff ceiling (the server's retry-after hint is also clamped here).
    pub max_backoff_ms: u64,
    /// Seed for the jitter RNG, so harness runs are reproducible.
    pub seed: u64,
}

impl RetryPolicy {
    /// No retrying at all: every failure surfaces immediately.
    pub fn none() -> RetryPolicy {
        RetryPolicy { max_retries: 0, base_backoff_ms: 0, max_backoff_ms: 0, seed: 0 }
    }
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy { max_retries: 4, base_backoff_ms: 10, max_backoff_ms: 500, seed: 0x5eed }
    }
}

/// Answers as received off the wire, plus the canonical body bytes for
/// differential comparison against local execution.
#[derive(Debug, Clone)]
pub struct WireAnswers {
    /// The decoded answer payload.
    pub body: AnswerBody,
    /// Whether the server transparently re-prepared a stale plan to produce
    /// this answer.
    pub reprepared: bool,
}

impl WireAnswers {
    /// The canonical bytes of the answer body (excludes the replan flag), as
    /// compared in differential tests.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        self.body.encode()
    }
}

/// A blocking connection to a certus server.
pub struct Client {
    stream: TcpStream,
    next_id: u64,
    retry: RetryPolicy,
    rng: StdRng,
    retries: u64,
}

/// Whether a lost response for this request is safe to resend: reads, plan
/// management and replication introspection are; `Promote` is idempotent by
/// design (promoting a primary just acks); `Insert` is not (the write may
/// have been durably applied even though its ack never arrived), and
/// `Close`/`Shutdown` change connection state.
fn idempotent(req: &Request) -> bool {
    matches!(
        req,
        Request::Ping
            | Request::Stats
            | Request::Prepare { .. }
            | Request::Execute { .. }
            | Request::Query { .. }
            | Request::ReplStatus
            | Request::Promote
    )
}

fn is_timeout(e: &WireError) -> bool {
    matches!(e, WireError::Io(io)
        if io.kind() == ErrorKind::WouldBlock || io.kind() == ErrorKind::TimedOut)
}

impl Client {
    /// Connect and verify liveness with a ping handshake. Retrying is off;
    /// opt in with [`Client::with_retry`].
    pub fn connect(addr: impl ToSocketAddrs) -> ClientResult<Client> {
        let stream = TcpStream::connect(addr).map_err(WireError::Io)?;
        let _ = stream.set_nodelay(true);
        let mut client = Client {
            stream,
            next_id: 1,
            retry: RetryPolicy::none(),
            rng: StdRng::seed_from_u64(0),
            retries: 0,
        };
        client.ping()?;
        Ok(client)
    }

    /// Enable retrying for closed-loop calls under `policy`.
    pub fn with_retry(mut self, policy: RetryPolicy) -> Client {
        self.rng = StdRng::seed_from_u64(policy.seed);
        self.retry = policy;
        self
    }

    /// Bound how long closed-loop calls wait for any single response frame.
    /// A `None` waits forever (the default). With a retry policy attached,
    /// timed-out idempotent requests are resent instead of surfacing.
    pub fn set_op_timeout(&mut self, timeout: Option<Duration>) -> ClientResult<()> {
        self.stream.set_read_timeout(timeout).map_err(WireError::Io)?;
        Ok(())
    }

    /// Retries performed by this client so far (for harness assertions).
    pub fn retries(&self) -> u64 {
        self.retries
    }

    fn send(&mut self, req: &Request) -> ClientResult<u64> {
        let id = self.next_id;
        self.next_id += 1;
        write_frame(&mut self.stream, &encode_request(id, req))?;
        Ok(id)
    }

    /// Receive the next response frame, whatever request it answers.
    pub fn recv(&mut self) -> ClientResult<(u64, Response)> {
        let payload = read_frame(&mut self.stream)?;
        Ok(decode_response(&payload)?)
    }

    /// Block until the response for `id` arrives. Responses are ordered per
    /// request only, so interleavings from pipelined requests are skipped —
    /// callers mixing the closed-loop helpers with manual pipelining should
    /// drain pipelined responses first.
    fn wait_for(&mut self, id: u64) -> ClientResult<Response> {
        loop {
            let (got, resp) = self.recv()?;
            if got == id {
                return Ok(resp);
            }
            // Request id 0 is the server's channel for connection-scoped
            // refusals (connection cap, broken framing) — surface those
            // instead of waiting for a response that will never come.
            if got == 0 {
                if let Response::Error { code, message, .. } = resp {
                    return Err(ClientError::Server { code, message });
                }
            }
        }
    }

    /// Sleep before a retry: exponential in the attempt number, floored by
    /// the server's retry-after hint, capped by the policy ceiling, with
    /// seeded jitter in `[target/2, target]` so synchronized clients do not
    /// retry in lockstep.
    fn backoff(&mut self, attempt: u32, server_hint_ms: u64) {
        self.retries += 1;
        registry().counter(names::CLIENT_RETRIES).incr();
        let exp = self.retry.base_backoff_ms.saturating_mul(1u64 << attempt.min(16));
        let target = exp.max(server_hint_ms).min(self.retry.max_backoff_ms).max(1);
        let span = target - target / 2;
        let jittered = target / 2 + self.rng.next_u64() % (span + 1);
        thread::sleep(Duration::from_millis(jittered));
    }

    /// One request/response exchange, retrying per the policy: `Overloaded`
    /// for any request type, read timeouts for idempotent ones. Each resend
    /// is a brand-new request with a fresh id.
    fn rpc(&mut self, req: &Request) -> ClientResult<Response> {
        let mut attempt: u32 = 0;
        loop {
            let outcome = self.send(req).and_then(|id| self.wait_for(id));
            match outcome {
                Ok(Response::Error { code: ErrorCode::Overloaded, message, retry_after_ms }) => {
                    if attempt < self.retry.max_retries {
                        self.backoff(attempt, retry_after_ms);
                        attempt += 1;
                        continue;
                    }
                    return Err(ClientError::Server { code: ErrorCode::Overloaded, message });
                }
                Ok(Response::Error { code, message, .. }) => {
                    return Err(ClientError::Server { code, message });
                }
                Ok(resp) => return Ok(resp),
                Err(ClientError::Wire(e))
                    if is_timeout(&e) && idempotent(req) && attempt < self.retry.max_retries =>
                {
                    self.backoff(attempt, 0);
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Ping; returns the server's current schema epoch.
    pub fn ping(&mut self) -> ClientResult<u64> {
        match self.rpc(&Request::Ping)? {
            Response::Pong { epoch } => Ok(epoch),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Prepare a query server-side; returns the statement id and the epoch
    /// it was planned at.
    pub fn prepare(
        &mut self,
        certainty: WireCertainty,
        query: &RaExpr,
    ) -> ClientResult<(u64, u64)> {
        let req = Request::Prepare { certainty, query: query.clone() };
        match self.rpc(&req)? {
            Response::Prepared { prepared, epoch } => Ok((prepared, epoch)),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Execute a prepared statement.
    pub fn execute(&mut self, prepared: u64) -> ClientResult<WireAnswers> {
        self.execute_with_deadline(prepared, 0)
    }

    /// Execute a prepared statement under a deadline (milliseconds from the
    /// server reading the request; `0` means none). Past it the server
    /// answers `DeadlineExceeded` instead of results.
    pub fn execute_with_deadline(
        &mut self,
        prepared: u64,
        deadline_ms: u64,
    ) -> ClientResult<WireAnswers> {
        match self.rpc(&Request::Execute { prepared, deadline_ms })? {
            Response::Answers { body, reprepared } => Ok(WireAnswers { body, reprepared }),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// One-shot prepare + execute.
    pub fn query(&mut self, certainty: WireCertainty, query: &RaExpr) -> ClientResult<WireAnswers> {
        self.query_with_deadline(certainty, query, 0)
    }

    /// One-shot query under a deadline (milliseconds from the server reading
    /// the request; `0` means none).
    pub fn query_with_deadline(
        &mut self,
        certainty: WireCertainty,
        query: &RaExpr,
        deadline_ms: u64,
    ) -> ClientResult<WireAnswers> {
        let req = Request::Query { certainty, query: query.clone(), deadline_ms };
        match self.rpc(&req)? {
            Response::Answers { body, reprepared } => Ok(WireAnswers { body, reprepared }),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Append rows to a table; returns the schema epoch after the write. On
    /// a durable server the returned epoch means the rows are fsync'd to the
    /// WAL and will survive a crash.
    pub fn insert(&mut self, table: &str, rows: Vec<Tuple>) -> ClientResult<u64> {
        let req = Request::Insert { table: table.to_string(), rows };
        match self.rpc(&req)? {
            Response::Ack { epoch } => Ok(epoch),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Fetch the node's replication status: role, term, durable WAL
    /// position, mode, and per-replica lag (on primaries).
    pub fn repl_status(&mut self) -> ClientResult<ReplStatusBody> {
        match self.rpc(&Request::ReplStatus)? {
            Response::ReplStatus(body) => Ok(body),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Promote the connected node: seal its apply stream, make it writable,
    /// and bump the replication term. Operator-initiated failover — no
    /// consensus; the caller is responsible for stopping the old primary.
    /// Promoting a node that is already a primary is a no-op ack.
    pub fn promote(&mut self) -> ClientResult<u64> {
        match self.rpc(&Request::Promote)? {
            Response::Ack { epoch } => Ok(epoch),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Fetch server counters.
    pub fn stats(&mut self) -> ClientResult<ServerStats> {
        match self.rpc(&Request::Stats)? {
            Response::Stats(stats) => Ok(stats),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Ask the server to shut down gracefully.
    pub fn shutdown_server(&mut self) -> ClientResult<()> {
        match self.rpc(&Request::Shutdown)? {
            Response::Ack { .. } => Ok(()),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Drain this connection server-side (all in-flight responses flush
    /// first) and close it.
    pub fn close(mut self) -> ClientResult<()> {
        match self.rpc(&Request::Close)? {
            Response::Ack { .. } => Ok(()),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    // ---- pipelined (open-loop) API ----------------------------------------

    /// Send a one-shot query without waiting; returns its request id.
    pub fn send_query(&mut self, certainty: WireCertainty, query: &RaExpr) -> ClientResult<u64> {
        self.send(&Request::Query { certainty, query: query.clone(), deadline_ms: 0 })
    }

    /// Send an execute without waiting; returns its request id.
    pub fn send_execute(&mut self, prepared: u64) -> ClientResult<u64> {
        self.send(&Request::Execute { prepared, deadline_ms: 0 })
    }

    /// Send an insert without waiting; returns its request id.
    pub fn send_insert(&mut self, table: &str, rows: Vec<Tuple>) -> ClientResult<u64> {
        self.send(&Request::Insert { table: table.to_string(), rows })
    }

    /// Receive a response and require it to be answers (any request id).
    pub fn recv_answers(&mut self) -> ClientResult<(u64, WireAnswers)> {
        match self.recv()? {
            (id, Response::Answers { body, reprepared }) => {
                Ok((id, WireAnswers { body, reprepared }))
            }
            (_, Response::Error { code, message, .. }) => {
                Err(ClientError::Server { code, message })
            }
            (_, other) => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }
}

/// A convenience: try to connect, returning the wire result directly (used
/// by harnesses probing whether a server is up).
pub fn try_connect(addr: impl ToSocketAddrs) -> WireResult<TcpStream> {
    TcpStream::connect(addr).map_err(WireError::Io)
}

/// A replica-aware client over a set of node addresses.
///
/// * **Reads** (`query`) round-robin across every reachable node — replicas
///   serve reads from their own pinned snapshots — and fail over to the next
///   node when one is down or shutting down.
/// * **Writes** (`insert`) go to the believed primary and follow `NotPrimary`
///   redirects (the error message carries the primary's address verbatim);
///   a node that cannot even be *connected* is skipped, but a connection
///   that dies mid-write surfaces the error — the write is indeterminate
///   and must never be blindly resent.
/// * [`ClusterClient::probe_primary`] asks every reachable node for its
///   replication status and believes the highest-term node reporting
///   [`ReplRole::Primary`] — how a harness re-finds the cluster head after
///   a failover.
///
/// Connections are opened lazily and dropped on any wire error, so a killed
/// node is retried with a fresh socket next time around.
pub struct ClusterClient {
    endpoints: Vec<String>,
    conns: Vec<Option<Client>>,
    retry: RetryPolicy,
    op_timeout: Option<Duration>,
    /// Index reads start from next (round-robin cursor).
    next_read: usize,
    /// Index writes are sent to until a redirect says otherwise.
    primary: usize,
    redirects: u64,
    read_failovers: u64,
}

impl ClusterClient {
    /// A cluster client over `endpoints` (no connections are opened yet).
    /// The first endpoint is presumed primary until a redirect or a probe
    /// says otherwise.
    pub fn new(endpoints: Vec<String>) -> ClusterClient {
        let n = endpoints.len();
        ClusterClient {
            endpoints,
            conns: (0..n).map(|_| None).collect(),
            retry: RetryPolicy::none(),
            op_timeout: None,
            next_read: 0,
            primary: 0,
            redirects: 0,
            read_failovers: 0,
        }
    }

    /// Apply `policy` to every per-node connection.
    pub fn with_retry(mut self, policy: RetryPolicy) -> ClusterClient {
        self.retry = policy;
        self
    }

    /// Bound how long any single response is waited for, on every node.
    pub fn set_op_timeout(&mut self, timeout: Option<Duration>) {
        self.op_timeout = timeout;
        for conn in self.conns.iter_mut().flatten() {
            let _ = conn.set_op_timeout(timeout);
        }
    }

    /// `NotPrimary` redirects followed so far (for harness assertions).
    pub fn redirects(&self) -> u64 {
        self.redirects
    }

    /// Reads that failed over to another node so far.
    pub fn read_failovers(&self) -> u64 {
        self.read_failovers
    }

    /// The endpoint currently believed to be the primary.
    pub fn primary_endpoint(&self) -> &str {
        &self.endpoints[self.primary]
    }

    fn conn(&mut self, idx: usize) -> ClientResult<&mut Client> {
        if self.conns[idx].is_none() {
            let mut client = Client::connect(&self.endpoints[idx])?.with_retry(self.retry.clone());
            client.set_op_timeout(self.op_timeout)?;
            self.conns[idx] = Some(client);
        }
        Ok(self.conns[idx].as_mut().expect("connection just opened"))
    }

    /// Whether a per-node failure should move a *read* to the next node.
    fn read_should_failover(e: &ClientError) -> bool {
        matches!(e, ClientError::Wire(_))
            || matches!(e, ClientError::Server { code: ErrorCode::ShuttingDown, .. })
    }

    /// Run a one-shot query, round-robining across nodes and failing over
    /// past dead or draining ones. Errors only when every node failed.
    pub fn query(&mut self, certainty: WireCertainty, query: &RaExpr) -> ClientResult<WireAnswers> {
        let n = self.endpoints.len().max(1);
        let mut last_err: Option<ClientError> = None;
        for attempt in 0..n {
            let idx = (self.next_read + attempt) % n;
            let outcome = self.conn(idx).and_then(|c| c.query(certainty, query));
            match outcome {
                Ok(answers) => {
                    self.next_read = (idx + 1) % n;
                    if attempt > 0 {
                        self.read_failovers += 1;
                    }
                    return Ok(answers);
                }
                Err(e) if Self::read_should_failover(&e) => {
                    self.conns[idx] = None;
                    last_err = Some(e);
                }
                Err(e) => return Err(e),
            }
        }
        Err(last_err.unwrap_or(ClientError::Unexpected("no endpoints configured".into())))
    }

    /// Resolve a redirect target to an endpoint index, learning brand-new
    /// addresses (a promoted node we were not configured with).
    fn endpoint_index(&mut self, addr: &str) -> usize {
        if let Some(idx) = self.endpoints.iter().position(|e| e == addr) {
            return idx;
        }
        self.endpoints.push(addr.to_string());
        self.conns.push(None);
        self.endpoints.len() - 1
    }

    /// Insert rows, following `NotPrimary` redirects to wherever the
    /// primary actually is. Nodes that cannot be connected at all are
    /// skipped (no request was ever sent), but a write that *was* sent and
    /// then failed surfaces its error — it is indeterminate and following
    /// the write-safety rules must not be blindly resent.
    pub fn insert(&mut self, table: &str, rows: Vec<Tuple>) -> ClientResult<u64> {
        let mut tried = 0usize;
        let mut hops = 0usize;
        let mut last_err: Option<ClientError> = None;
        let mut idx = self.primary;
        // Bounded by: one hop per configured endpoint (connect failures
        // rotate through them) plus a couple of genuine redirects.
        while tried < self.endpoints.len() && hops < self.endpoints.len() + 2 {
            hops += 1;
            match self.conn(idx) {
                Err(e) => {
                    // Never connected: nothing was sent, safe to try the
                    // next node as a primary candidate.
                    self.conns[idx] = None;
                    last_err = Some(e);
                    tried += 1;
                    idx = (idx + 1) % self.endpoints.len();
                    continue;
                }
                Ok(conn) => match conn.insert(table, rows.clone()) {
                    Ok(epoch) => {
                        self.primary = idx;
                        return Ok(epoch);
                    }
                    Err(ClientError::Server { code: ErrorCode::NotPrimary, message }) => {
                        // The message is the primary's address verbatim.
                        self.redirects += 1;
                        idx = self.endpoint_index(&message);
                        self.primary = idx;
                    }
                    Err(e) => return Err(e),
                },
            }
        }
        Err(last_err.unwrap_or(ClientError::Unexpected("no primary reachable".into())))
    }

    /// Ask every reachable node for its replication status and believe the
    /// highest-term one reporting [`ReplRole::Primary`]. Returns its
    /// endpoint, also adopting it as the write target.
    pub fn probe_primary(&mut self) -> ClientResult<String> {
        let mut best: Option<(u64, usize)> = None;
        for idx in 0..self.endpoints.len() {
            let status = match self.conn(idx).and_then(|c| c.repl_status()) {
                Ok(status) => status,
                Err(_) => {
                    self.conns[idx] = None;
                    continue;
                }
            };
            if status.role == ReplRole::Primary && best.is_none_or(|(term, _)| status.term > term) {
                best = Some((status.term, idx));
            }
        }
        match best {
            Some((_, idx)) => {
                self.primary = idx;
                Ok(self.endpoints[idx].clone())
            }
            None => Err(ClientError::Unexpected("no reachable primary".into())),
        }
    }
}
