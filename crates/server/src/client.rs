//! `certus-client`: a blocking TCP client for the certus query server.
//!
//! Two usage styles:
//!
//! * **Closed loop** — the convenience methods ([`Client::query`],
//!   [`Client::execute`], …) send one request and block for its response.
//! * **Open loop / pipelined** — [`Client::send_query`] (and friends) write
//!   a request and return its id immediately; [`Client::recv`] pulls the
//!   next response off the wire. The server may answer out of order, so
//!   match responses to requests by id.
//!
//! ```no_run
//! use certus_server::client::Client;
//! use certus_server::protocol::WireCertainty;
//! use certus_server::RaExpr;
//!
//! let mut client = Client::connect("127.0.0.1:7878").unwrap();
//! let answers = client
//!     .query(WireCertainty::CertainPlus, &RaExpr::relation("orders"))
//!     .unwrap();
//! println!("{} certain answers", answers.body.certain.as_ref().unwrap().len());
//! client.close().unwrap();
//! ```

use crate::protocol::{
    decode_response, encode_request, read_frame, write_frame, AnswerBody, ErrorCode, Request,
    Response, ServerStats, WireCertainty, WireError, WireResult,
};
use certus_algebra::RaExpr;
use certus_data::Tuple;
use std::net::{TcpStream, ToSocketAddrs};

/// An error surfaced by the client: either a transport/encoding failure or
/// an error response from the server.
#[derive(Debug)]
pub enum ClientError {
    /// The wire layer failed (I/O or malformed frame).
    Wire(WireError),
    /// The server answered with an error response.
    Server {
        /// Machine-readable failure class.
        code: ErrorCode,
        /// Human-readable detail from the server.
        message: String,
    },
    /// The server answered with a response type the call did not expect.
    Unexpected(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Wire(e) => write!(f, "{e}"),
            ClientError::Server { code, message } => write!(f, "server error {code:?}: {message}"),
            ClientError::Unexpected(m) => write!(f, "unexpected response: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

/// Result alias for client calls.
pub type ClientResult<T> = Result<T, ClientError>;

/// Answers as received off the wire, plus the canonical body bytes for
/// differential comparison against local execution.
#[derive(Debug, Clone)]
pub struct WireAnswers {
    /// The decoded answer payload.
    pub body: AnswerBody,
    /// Whether the server transparently re-prepared a stale plan to produce
    /// this answer.
    pub reprepared: bool,
}

impl WireAnswers {
    /// The canonical bytes of the answer body (excludes the replan flag), as
    /// compared in differential tests.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        self.body.encode()
    }
}

/// A blocking connection to a certus server.
pub struct Client {
    stream: TcpStream,
    next_id: u64,
}

impl Client {
    /// Connect and verify liveness with a ping handshake.
    pub fn connect(addr: impl ToSocketAddrs) -> ClientResult<Client> {
        let stream = TcpStream::connect(addr).map_err(WireError::Io)?;
        let _ = stream.set_nodelay(true);
        let mut client = Client { stream, next_id: 1 };
        client.ping()?;
        Ok(client)
    }

    fn send(&mut self, req: &Request) -> ClientResult<u64> {
        let id = self.next_id;
        self.next_id += 1;
        write_frame(&mut self.stream, &encode_request(id, req))?;
        Ok(id)
    }

    /// Receive the next response frame, whatever request it answers.
    pub fn recv(&mut self) -> ClientResult<(u64, Response)> {
        let payload = read_frame(&mut self.stream)?;
        Ok(decode_response(&payload)?)
    }

    /// Block until the response for `id` arrives. Responses are ordered per
    /// request only, so interleavings from pipelined requests are skipped —
    /// callers mixing the closed-loop helpers with manual pipelining should
    /// drain pipelined responses first.
    fn wait_for(&mut self, id: u64) -> ClientResult<Response> {
        loop {
            let (got, resp) = self.recv()?;
            if got == id {
                return Ok(resp);
            }
            // Request id 0 is the server's channel for connection-scoped
            // refusals (connection cap, broken framing) — surface those
            // instead of waiting for a response that will never come.
            if got == 0 {
                if let Response::Error { code, message } = resp {
                    return Err(ClientError::Server { code, message });
                }
            }
        }
    }

    fn rpc(&mut self, req: &Request) -> ClientResult<Response> {
        let id = self.send(req)?;
        match self.wait_for(id)? {
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            resp => Ok(resp),
        }
    }

    /// Ping; returns the server's current schema epoch.
    pub fn ping(&mut self) -> ClientResult<u64> {
        match self.rpc(&Request::Ping)? {
            Response::Pong { epoch } => Ok(epoch),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Prepare a query server-side; returns the statement id and the epoch
    /// it was planned at.
    pub fn prepare(
        &mut self,
        certainty: WireCertainty,
        query: &RaExpr,
    ) -> ClientResult<(u64, u64)> {
        let req = Request::Prepare { certainty, query: query.clone() };
        match self.rpc(&req)? {
            Response::Prepared { prepared, epoch } => Ok((prepared, epoch)),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Execute a prepared statement.
    pub fn execute(&mut self, prepared: u64) -> ClientResult<WireAnswers> {
        match self.rpc(&Request::Execute { prepared })? {
            Response::Answers { body, reprepared } => Ok(WireAnswers { body, reprepared }),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// One-shot prepare + execute.
    pub fn query(&mut self, certainty: WireCertainty, query: &RaExpr) -> ClientResult<WireAnswers> {
        let req = Request::Query { certainty, query: query.clone() };
        match self.rpc(&req)? {
            Response::Answers { body, reprepared } => Ok(WireAnswers { body, reprepared }),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Append rows to a table; returns the schema epoch after the write.
    pub fn insert(&mut self, table: &str, rows: Vec<Tuple>) -> ClientResult<u64> {
        let req = Request::Insert { table: table.to_string(), rows };
        match self.rpc(&req)? {
            Response::Ack { epoch } => Ok(epoch),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Fetch server counters.
    pub fn stats(&mut self) -> ClientResult<ServerStats> {
        match self.rpc(&Request::Stats)? {
            Response::Stats(stats) => Ok(stats),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Ask the server to shut down gracefully.
    pub fn shutdown_server(&mut self) -> ClientResult<()> {
        match self.rpc(&Request::Shutdown)? {
            Response::Ack { .. } => Ok(()),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Drain this connection server-side (all in-flight responses flush
    /// first) and close it.
    pub fn close(mut self) -> ClientResult<()> {
        match self.rpc(&Request::Close)? {
            Response::Ack { .. } => Ok(()),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    // ---- pipelined (open-loop) API ----------------------------------------

    /// Send a one-shot query without waiting; returns its request id.
    pub fn send_query(&mut self, certainty: WireCertainty, query: &RaExpr) -> ClientResult<u64> {
        self.send(&Request::Query { certainty, query: query.clone() })
    }

    /// Send an execute without waiting; returns its request id.
    pub fn send_execute(&mut self, prepared: u64) -> ClientResult<u64> {
        self.send(&Request::Execute { prepared })
    }

    /// Send an insert without waiting; returns its request id.
    pub fn send_insert(&mut self, table: &str, rows: Vec<Tuple>) -> ClientResult<u64> {
        self.send(&Request::Insert { table: table.to_string(), rows })
    }

    /// Receive a response and require it to be answers (any request id).
    pub fn recv_answers(&mut self) -> ClientResult<(u64, WireAnswers)> {
        match self.recv()? {
            (id, Response::Answers { body, reprepared }) => {
                Ok((id, WireAnswers { body, reprepared }))
            }
            (_, Response::Error { code, message }) => Err(ClientError::Server { code, message }),
            (_, other) => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }
}

/// A convenience: try to connect, returning the wire result directly (used
/// by harnesses probing whether a server is up).
pub fn try_connect(addr: impl ToSocketAddrs) -> WireResult<TcpStream> {
    TcpStream::connect(addr).map_err(WireError::Io)
}
