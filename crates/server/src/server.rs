//! The server: a TCP acceptor, per-connection reader threads, and a pool of
//! executor threads draining one bounded request queue.
//!
//! Concurrency model:
//!
//! * Each accepted connection gets a **reader thread** that decodes frames
//!   and answers cheap requests (ping, stats, close, shutdown) inline.
//!   Query/prepare/execute/insert requests are enqueued for the executors so
//!   a slow query on one connection never stalls another connection's reads.
//! * **Executor threads** pop requests, pin a [`Snapshot`] of the database,
//!   build a [`Session`] over it (sharing the process-wide plan cache and
//!   the engine worker pool), execute, and write the response back through
//!   the connection's write half. Responses to one connection may therefore
//!   complete out of order; the client matches them by request id.
//! * **Writers** go through [`SnapshotStore::update`]: copy-on-write of the
//!   touched relations and an atomic publish. Readers executing against
//!   pinned snapshots are never blocked and never observe partial writes.
//!
//! Admission control is two-layered: a connection cap (refused with
//! `TooManyConnections`) and a bounded queue (refused with `Overloaded`,
//! carrying a retry-after hint derived from the current queue depth).
//!
//! Robustness additions on top of that model:
//!
//! * **Durability** — with [`ServerConfig::data_dir`] set, the server opens
//!   a [`DurableStore`]: state left by a previous process is recovered from
//!   its newest valid checkpoint plus WAL suffix, and every `Insert` is
//!   appended to the WAL and fsync'd *before* the `Ack` is written back.
//!   An acknowledged write therefore survives a crash at any instant.
//! * **Deadlines** — `Query`/`Execute` requests may carry a deadline;
//!   requests still queued past it are dropped without executing, and
//!   running requests are cancelled cooperatively at morsel boundaries.
//! * **Idle reaping / write timeouts** — connections silent past
//!   [`ServerConfig::idle_timeout_ms`] are closed with a clean `Ack` on the
//!   server channel, and sockets carry a write timeout so one stalled peer
//!   cannot wedge an executor mid-response.

use crate::config::ServerConfig;
use crate::protocol::{
    decode_request, encode_response, write_frame, AnswerBody, ErrorCode, Request, Response,
    ServerStats, WireCertainty, MAX_FRAME_LEN,
};
use crate::queue::Queue;
use certus::{Certainty, CertusError, Database, PreparedQuery, Session, SharedPlanCache};
use certus_algebra::RaExpr;
use certus_data::snapshot::{Snapshot, SnapshotStore};
use certus_data::wal::{DurableStore, WalError};
use certus_exec::CancelToken;
use certus_obs::metrics::{registry, Counter, Gauge, Histogram};
use certus_obs::{names, Timer};
use std::collections::HashMap;
use std::io::{ErrorKind, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

impl From<WireCertainty> for Certainty {
    fn from(c: WireCertainty) -> Certainty {
        match c {
            WireCertainty::Plain => Certainty::Plain,
            WireCertainty::CertainPlus => Certainty::CertainPlus,
            WireCertainty::PossibleStar => Certainty::PossibleStar,
            WireCertainty::Both => Certainty::Both,
        }
    }
}

impl From<Certainty> for WireCertainty {
    fn from(c: Certainty) -> WireCertainty {
        match c {
            Certainty::Plain => WireCertainty::Plain,
            Certainty::CertainPlus => WireCertainty::CertainPlus,
            Certainty::PossibleStar => WireCertainty::PossibleStar,
            Certainty::Both => WireCertainty::Both,
        }
    }
}

/// Build the canonical wire body from a session answer set. Used by the
/// server for responses and by differential harnesses to compute expected
/// bytes from a local [`Session`] run.
pub fn answer_body(answers: &certus::AnswerSet) -> AnswerBody {
    AnswerBody {
        certainty: answers.certainty.into(),
        plain: answers.plain.clone(),
        certain: answers.certain.clone(),
        possible: answers.possible.clone(),
        breakdown: answers
            .breakdown
            .as_ref()
            .map(|b| (b.total as u64, b.certain as u64, b.false_positives as u64)),
    }
}

/// A prepared statement held server-side for one connection: the original
/// query (for transparent re-preparation after an epoch bump) plus the
/// compiled [`PreparedQuery`].
struct PreparedEntry {
    query: RaExpr,
    certainty: Certainty,
    prepared: PreparedQuery,
}

/// Per-connection state shared between its reader thread and the executors.
struct Conn {
    /// Write half; executors and the reader both respond through it.
    writer: Mutex<TcpStream>,
    /// Requests handed to the executors and not yet responded to.
    outstanding: AtomicUsize,
    /// Prepared statements, keyed by connection-scoped id.
    prepared: Mutex<HashMap<u64, PreparedEntry>>,
    next_prepared: AtomicU64,
}

impl Conn {
    /// Serialize and send one response; errors are swallowed because a dead
    /// peer is detected (and cleaned up) by the reader thread.
    fn send(&self, request_id: u64, resp: &Response) {
        let payload = encode_response(request_id, resp);
        let mut w = self.writer.lock().expect("connection writer poisoned");
        let _ = write_frame(&mut *w, &payload);
    }
}

/// A unit of executor work: one decoded request bound to its connection.
struct Work {
    conn: Arc<Conn>,
    request_id: u64,
    request: Request,
    /// When the reader finished decoding the request; deadlines are measured
    /// from here, so time spent queued counts against them.
    arrival: Instant,
}

/// Everything the acceptor, readers and executors share.
struct State {
    config: ServerConfig,
    store: Arc<SnapshotStore>,
    /// WAL-backed durability; `None` when serving from memory only.
    durable: Option<Arc<DurableStore>>,
    cache: SharedPlanCache,
    pool: Arc<certus_exec::Pool>,
    queue: Queue<Work>,
    shutdown: AtomicBool,
    open_connections: AtomicUsize,
    readers: Mutex<Vec<JoinHandle<()>>>,
    requests: Arc<Counter>,
    rejected: Arc<Counter>,
    stale_replans: Arc<Counter>,
    deadline_exceeded: Arc<Counter>,
    idle_closed: Arc<Counter>,
    connections_gauge: Arc<Gauge>,
    request_ns: Arc<Histogram>,
}

impl State {
    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed)
    }

    /// A session over one pinned snapshot, wired to the shared plan cache,
    /// the shared engine worker pool, and (for deadline-bearing requests)
    /// a cancellation token checked at morsel boundaries.
    fn session_over(&self, snapshot: &Snapshot, cancel: Option<CancelToken>) -> Session {
        let mut builder = Session::builder_over(snapshot.database())
            .semantics(self.config.semantics)
            .threads(self.config.engine_threads)
            .plan_cache(self.cache.clone())
            .worker_pool(Arc::clone(&self.pool));
        if let Some(token) = cancel {
            builder = builder.cancel_token(token);
        }
        builder.build()
    }

    /// How long an `Overloaded` client should wait before retrying: the
    /// current backlog divided across the executors, in poll-interval
    /// granules. Deep queues push retries further out; an almost-empty
    /// queue suggests an immediate retry will succeed.
    fn retry_after_ms(&self) -> u64 {
        let depth = self.queue.depth() as u64;
        let executors = self.config.executors.max(1) as u64;
        let granule = self.config.poll_interval_ms.max(1);
        ((depth * granule) / executors).clamp(granule, 2_000)
    }

    fn stats(&self) -> ServerStats {
        let cache = self.cache.stats();
        ServerStats {
            requests: self.requests.value(),
            rejected: self.rejected.value(),
            stale_replans: self.stale_replans.value(),
            connections: self.open_connections.load(Ordering::Relaxed) as u64,
            live_pins: self.store.live_pins(),
            queue_depth: self.queue.depth() as u64,
            cache_hits: cache.hits,
            cache_misses: cache.misses,
            cache_entries: cache.entries as u64,
            epoch: self.store.epoch(),
        }
    }
}

/// A running query server. Dropping (or calling [`Server::shutdown`])
/// stops accepting, drains in-flight requests, and joins every thread.
pub struct Server {
    state: Arc<State>,
    addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    executors: Vec<JoinHandle<()>>,
}

impl Server {
    /// Bind and start serving `db` under `config`.
    ///
    /// With [`ServerConfig::data_dir`] set, any state a previous process
    /// left in that directory is recovered first and `db` is used only to
    /// seed an empty directory; without it the server serves `db` from
    /// memory.
    pub fn start(db: Database, config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;

        let (store, durable) = match &config.data_dir {
            Some(dir) => {
                let durable = DurableStore::open(dir, db, config.checkpoint_every)
                    .map_err(|e| std::io::Error::other(format!("durable store: {e}")))?;
                let durable = Arc::new(durable);
                (Arc::clone(durable.snapshots()), Some(durable))
            }
            None => (Arc::new(SnapshotStore::new(db)), None),
        };

        let reg = registry();
        let state = Arc::new(State {
            store,
            durable,
            cache: SharedPlanCache::new(config.cache_capacity),
            pool: Arc::new(certus_exec::Pool::new(config.engine_threads)),
            queue: Queue::new(config.queue_capacity, reg.gauge(names::SERVER_QUEUE_DEPTH)),
            shutdown: AtomicBool::new(false),
            open_connections: AtomicUsize::new(0),
            readers: Mutex::new(Vec::new()),
            requests: reg.counter(names::SERVER_REQUESTS),
            rejected: reg.counter(names::SERVER_REJECTED),
            stale_replans: reg.counter(names::SERVER_STALE_REPLANS),
            deadline_exceeded: reg.counter(names::SERVER_DEADLINE_EXCEEDED),
            idle_closed: reg.counter(names::SERVER_IDLE_CLOSED),
            connections_gauge: reg.gauge(names::SERVER_CONNECTIONS),
            request_ns: reg.histogram(names::SERVER_REQUEST_NS),
            config,
        });

        let executors = (0..state.config.executors.max(1))
            .map(|_| {
                let state = Arc::clone(&state);
                thread::spawn(move || executor_loop(&state))
            })
            .collect();
        let acceptor = {
            let state = Arc::clone(&state);
            thread::spawn(move || accept_loop(&listener, &state))
        };

        Ok(Server { state, addr, acceptor: Some(acceptor), executors })
    }

    /// The address the server actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Schema epoch of the current snapshot.
    pub fn epoch(&self) -> u64 {
        self.state.store.epoch()
    }

    /// The durable store backing this server, when one was configured.
    pub fn durable(&self) -> Option<&Arc<DurableStore>> {
        self.state.durable.as_ref()
    }

    /// Whether a protocol-level `Shutdown` request has been received.
    pub fn shutdown_requested(&self) -> bool {
        self.state.shutting_down()
    }

    /// Stop accepting, drain the queue, flush in-flight responses, join all
    /// threads.
    pub fn shutdown(mut self) {
        self.teardown();
    }

    fn teardown(&mut self) {
        self.state.shutdown.store(true, Ordering::Relaxed);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        // Readers exit on the shutdown flag once their in-flight work has
        // been answered; join them before closing the queue so everything
        // they enqueued is still drained by the executors.
        let readers = std::mem::take(&mut *self.state.readers.lock().unwrap());
        for r in readers {
            let _ = r.join();
        }
        self.state.queue.close();
        for e in self.executors.drain(..) {
            let _ = e.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.teardown();
    }
}

fn accept_loop(listener: &TcpListener, state: &Arc<State>) {
    let poll = Duration::from_millis(state.config.poll_interval_ms.max(1));
    loop {
        if state.shutting_down() {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let open = state.open_connections.load(Ordering::Relaxed);
                if open >= state.config.max_connections {
                    state.rejected.incr();
                    refuse(
                        stream,
                        ErrorCode::TooManyConnections,
                        "connection cap reached",
                        state.config.poll_interval_ms.max(1) * 5,
                    );
                    continue;
                }
                state.open_connections.fetch_add(1, Ordering::Relaxed);
                state.connections_gauge.set(open as u64 + 1);
                let state2 = Arc::clone(state);
                let handle = thread::spawn(move || {
                    reader_loop(stream, &state2);
                    let open = state2.open_connections.fetch_sub(1, Ordering::Relaxed) - 1;
                    state2.connections_gauge.set(open as u64);
                });
                state.readers.lock().unwrap().push(handle);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => thread::sleep(poll),
            Err(_) => thread::sleep(poll),
        }
    }
}

/// Reject a connection with a single error frame (request id 0) and close.
fn refuse(mut stream: TcpStream, code: ErrorCode, message: &str, retry_after_ms: u64) {
    let resp = Response::Error { code, message: message.to_string(), retry_after_ms };
    let _ = write_frame(&mut stream, &encode_response(0, &resp));
}

/// Incremental frame decoder tolerant of read timeouts: bytes received so
/// far are buffered, so a poll that lands mid-frame never loses data (a
/// plain `read_exact` would).
struct FrameBuffer {
    buf: Vec<u8>,
}

enum Fill {
    /// Peer closed the connection.
    Eof,
    /// The framing layer is broken beyond recovery.
    Corrupt,
}

impl FrameBuffer {
    fn new() -> Self {
        FrameBuffer { buf: Vec::new() }
    }

    /// Pop one complete frame payload out of the buffer, if present.
    fn take_frame(&mut self) -> Result<Option<Vec<u8>>, Fill> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes(self.buf[..4].try_into().unwrap());
        if len > MAX_FRAME_LEN {
            return Err(Fill::Corrupt);
        }
        let total = 4 + len as usize;
        if self.buf.len() < total {
            return Ok(None);
        }
        let payload = self.buf[4..total].to_vec();
        self.buf.drain(..total);
        Ok(Some(payload))
    }

    /// Read whatever is available (bounded by the stream's read timeout)
    /// and return the first complete frame, if any.
    fn fill(&mut self, stream: &mut TcpStream) -> Result<Option<Vec<u8>>, Fill> {
        if let Some(frame) = self.take_frame()? {
            return Ok(Some(frame));
        }
        let mut chunk = [0u8; 16 * 1024];
        match stream.read(&mut chunk) {
            Ok(0) => Err(Fill::Eof),
            Ok(n) => {
                self.buf.extend_from_slice(&chunk[..n]);
                self.take_frame()
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                Ok(None)
            }
            Err(_) => Err(Fill::Eof),
        }
    }
}

fn reader_loop(stream: TcpStream, state: &Arc<State>) {
    let poll = Duration::from_millis(state.config.poll_interval_ms.max(1));
    let _ = stream.set_read_timeout(Some(poll));
    if state.config.write_timeout_ms > 0 {
        // Applies to the shared socket, so the executors' write half is
        // covered too: a peer that stops draining cannot wedge an executor.
        let _ =
            stream.set_write_timeout(Some(Duration::from_millis(state.config.write_timeout_ms)));
    }
    let _ = stream.set_nodelay(true);
    let writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let conn = Arc::new(Conn {
        writer: Mutex::new(writer),
        outstanding: AtomicUsize::new(0),
        prepared: Mutex::new(HashMap::new()),
        next_prepared: AtomicU64::new(1),
    });
    let mut stream = stream;
    let mut frames = FrameBuffer::new();
    let idle_limit = (state.config.idle_timeout_ms > 0)
        .then(|| Duration::from_millis(state.config.idle_timeout_ms));
    let mut last_activity = Instant::now();

    loop {
        let payload = match frames.fill(&mut stream) {
            Ok(Some(payload)) => {
                last_activity = Instant::now();
                payload
            }
            Ok(None) => {
                if state.shutting_down() {
                    drain_outstanding(&conn);
                    return;
                }
                if let Some(limit) = idle_limit {
                    // Only reap truly quiet connections: nothing in flight
                    // and nothing received for the whole idle window.
                    if conn.outstanding.load(Ordering::Acquire) == 0
                        && last_activity.elapsed() >= limit
                    {
                        state.idle_closed.incr();
                        conn.send(0, &Response::Ack { epoch: state.store.epoch() });
                        return;
                    }
                }
                continue;
            }
            Err(Fill::Corrupt) => {
                conn.send(
                    0,
                    &Response::Error {
                        code: ErrorCode::Malformed,
                        message: "frame length exceeds maximum".into(),
                        retry_after_ms: 0,
                    },
                );
                drain_outstanding(&conn);
                return;
            }
            Err(Fill::Eof) => {
                drain_outstanding(&conn);
                return;
            }
        };

        let (request_id, request) = match decode_request(&payload) {
            Ok(decoded) => decoded,
            Err(e) => {
                // The id is the first 8 bytes; echo it when present so the
                // client can match the failure to its request.
                let id = payload
                    .get(..8)
                    .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
                    .unwrap_or(0);
                conn.send(
                    id,
                    &Response::Error {
                        code: ErrorCode::Malformed,
                        message: e.to_string(),
                        retry_after_ms: 0,
                    },
                );
                continue;
            }
        };

        match request {
            Request::Ping => {
                conn.send(request_id, &Response::Pong { epoch: state.store.epoch() });
            }
            Request::Stats => {
                conn.send(request_id, &Response::Stats(state.stats()));
            }
            Request::Close => {
                drain_outstanding(&conn);
                conn.send(request_id, &Response::Ack { epoch: state.store.epoch() });
                return;
            }
            Request::Shutdown => {
                state.shutdown.store(true, Ordering::Relaxed);
                drain_outstanding(&conn);
                conn.send(request_id, &Response::Ack { epoch: state.store.epoch() });
                return;
            }
            req @ (Request::Prepare { .. }
            | Request::Execute { .. }
            | Request::Query { .. }
            | Request::Insert { .. }) => {
                if state.shutting_down() {
                    conn.send(
                        request_id,
                        &Response::Error {
                            code: ErrorCode::ShuttingDown,
                            message: "server is shutting down".into(),
                            retry_after_ms: 0,
                        },
                    );
                    continue;
                }
                conn.outstanding.fetch_add(1, Ordering::AcqRel);
                let work = Work {
                    conn: Arc::clone(&conn),
                    request_id,
                    request: req,
                    arrival: Instant::now(),
                };
                if state.queue.push_try(work).is_err() {
                    conn.outstanding.fetch_sub(1, Ordering::AcqRel);
                    state.rejected.incr();
                    conn.send(
                        request_id,
                        &Response::Error {
                            code: ErrorCode::Overloaded,
                            message: "request queue is full".into(),
                            retry_after_ms: state.retry_after_ms(),
                        },
                    );
                }
            }
        }
    }
}

/// Busy-wait (politely) until every request this connection handed to the
/// executors has been answered, so close/shutdown never drop responses.
fn drain_outstanding(conn: &Conn) {
    while conn.outstanding.load(Ordering::Acquire) > 0 {
        thread::sleep(Duration::from_millis(1));
    }
}

fn executor_loop(state: &Arc<State>) {
    while let Some(work) = state.queue.pop() {
        let timer = Timer::start();
        let response = respond(state, &work);
        work.conn.send(work.request_id, &response);
        work.conn.outstanding.fetch_sub(1, Ordering::AcqRel);
        state.requests.incr();
        state.request_ns.record(timer.elapsed_ns());
    }
}

fn query_error(state: &State, e: &CertusError) -> Response {
    if e.is_cancelled() {
        return deadline_error(state);
    }
    Response::Error { code: ErrorCode::QueryError, message: e.to_string(), retry_after_ms: 0 }
}

fn deadline_error(state: &State) -> Response {
    state.deadline_exceeded.incr();
    Response::Error {
        code: ErrorCode::DeadlineExceeded,
        message: "request deadline exceeded".into(),
        retry_after_ms: 0,
    }
}

/// Resolve a request's deadline field against its arrival time. Returns
/// `Err` with the ready-made error response when the deadline has already
/// passed (the request spent too long queued), `Ok(None)` when no deadline
/// was set.
fn resolve_deadline(
    state: &State,
    work: &Work,
    deadline_ms: u64,
) -> Result<Option<CancelToken>, Box<Response>> {
    if deadline_ms == 0 {
        return Ok(None);
    }
    let deadline = work.arrival + Duration::from_millis(deadline_ms);
    if Instant::now() >= deadline {
        return Err(Box::new(deadline_error(state)));
    }
    Ok(Some(CancelToken::with_deadline(deadline)))
}

fn respond(state: &Arc<State>, work: &Work) -> Response {
    match &work.request {
        Request::Prepare { certainty, query } => {
            let snapshot = state.store.pin();
            let session = state.session_over(&snapshot, None);
            let certainty = Certainty::from(*certainty);
            match session.prepare(query, certainty) {
                Ok(prepared) => {
                    let epoch = prepared.schema_epoch();
                    let id = work.conn.next_prepared.fetch_add(1, Ordering::Relaxed);
                    work.conn
                        .prepared
                        .lock()
                        .expect("prepared map poisoned")
                        .insert(id, PreparedEntry { query: query.clone(), certainty, prepared });
                    Response::Prepared { prepared: id, epoch }
                }
                Err(e) => query_error(state, &e),
            }
        }
        Request::Execute { prepared, deadline_ms } => {
            let cancel = match resolve_deadline(state, work, *deadline_ms) {
                Ok(cancel) => cancel,
                Err(resp) => return *resp,
            };
            let snapshot = state.store.pin();
            let session = state.session_over(&snapshot, cancel);
            let mut entries = work.conn.prepared.lock().expect("prepared map poisoned");
            let Some(entry) = entries.get_mut(prepared) else {
                return Response::Error {
                    code: ErrorCode::UnknownPrepared,
                    message: format!("no prepared statement {prepared} on this connection"),
                    retry_after_ms: 0,
                };
            };
            match session.execute_prepared(&entry.prepared) {
                Ok(answers) => Response::Answers { body: answer_body(&answers), reprepared: false },
                Err(CertusError::StalePlan { .. }) => {
                    // The schema epoch moved past the plan: transparently
                    // re-prepare against the pinned snapshot and retry. The
                    // refreshed plan is stored for subsequent executes.
                    state.stale_replans.incr();
                    match session.prepare(&entry.query, entry.certainty) {
                        Ok(fresh) => {
                            entry.prepared = fresh;
                            match session.execute_prepared(&entry.prepared) {
                                Ok(answers) => Response::Answers {
                                    body: answer_body(&answers),
                                    reprepared: true,
                                },
                                Err(e) => query_error(state, &e),
                            }
                        }
                        Err(e) => query_error(state, &e),
                    }
                }
                Err(e) => query_error(state, &e),
            }
        }
        Request::Query { certainty, query, deadline_ms } => {
            let cancel = match resolve_deadline(state, work, *deadline_ms) {
                Ok(cancel) => cancel,
                Err(resp) => return *resp,
            };
            let snapshot = state.store.pin();
            let session = state.session_over(&snapshot, cancel);
            match session.execute(query, Certainty::from(*certainty)) {
                Ok(answers) => Response::Answers { body: answer_body(&answers), reprepared: false },
                Err(e) => query_error(state, &e),
            }
        }
        Request::Insert { table, rows } => match &state.durable {
            // Durable path: the row is validated against the pinned
            // snapshot, WAL-appended and fsync'd, and only then published
            // and acknowledged. The Ack *is* the durability guarantee.
            Some(durable) => match durable.insert(table, rows) {
                Ok(epoch) => Response::Ack { epoch },
                Err(WalError::Data(message)) => {
                    Response::Error { code: ErrorCode::QueryError, message, retry_after_ms: 0 }
                }
                Err(e) => Response::Error {
                    code: ErrorCode::Internal,
                    message: format!("durable write failed: {e}"),
                    retry_after_ms: 0,
                },
            },
            None => {
                let outcome = state.store.update(|db| -> Result<u64, String> {
                    // Validate against a scratch copy first so a bad row
                    // leaves the published database (and its epoch)
                    // untouched.
                    let mut scratch = db.relation(table).map_err(|e| e.to_string())?.clone();
                    for row in rows {
                        scratch.insert_values(row.values().to_vec()).map_err(|e| e.to_string())?;
                    }
                    *db.relation_mut(table).map_err(|e| e.to_string())? = scratch;
                    Ok(db.schema_epoch())
                });
                match outcome {
                    Ok(epoch) => Response::Ack { epoch },
                    Err(message) => {
                        Response::Error { code: ErrorCode::QueryError, message, retry_after_ms: 0 }
                    }
                }
            }
        },
        // Inline requests never reach the executors.
        Request::Ping | Request::Stats | Request::Close | Request::Shutdown => Response::Error {
            code: ErrorCode::Internal,
            message: "inline request routed to executor".into(),
            retry_after_ms: 0,
        },
    }
}
