//! The server: a TCP acceptor, per-connection reader threads, and a pool of
//! executor threads draining one bounded request queue.
//!
//! Concurrency model:
//!
//! * Each accepted connection gets a **reader thread** that decodes frames
//!   and answers cheap requests (ping, stats, close, shutdown) inline.
//!   Query/prepare/execute/insert requests are enqueued for the executors so
//!   a slow query on one connection never stalls another connection's reads.
//! * **Executor threads** pop requests, pin a [`Snapshot`] of the database,
//!   build a [`Session`] over it (sharing the process-wide plan cache and
//!   the engine worker pool), execute, and write the response back through
//!   the connection's write half. Responses to one connection may therefore
//!   complete out of order; the client matches them by request id.
//! * **Writers** go through [`SnapshotStore::update`]: copy-on-write of the
//!   touched relations and an atomic publish. Readers executing against
//!   pinned snapshots are never blocked and never observe partial writes.
//!
//! Admission control is two-layered: a connection cap (refused with
//! `TooManyConnections`) and a bounded queue (refused with `Overloaded`,
//! carrying a retry-after hint derived from the current queue depth).
//!
//! Robustness additions on top of that model:
//!
//! * **Durability** — with [`ServerConfig::data_dir`] set, the server opens
//!   a [`DurableStore`]: state left by a previous process is recovered from
//!   its newest valid checkpoint plus WAL suffix, and every `Insert` is
//!   appended to the WAL and fsync'd *before* the `Ack` is written back.
//!   An acknowledged write therefore survives a crash at any instant.
//! * **Deadlines** — `Query`/`Execute` requests may carry a deadline;
//!   requests still queued past it are dropped without executing, and
//!   running requests are cancelled cooperatively at morsel boundaries.
//! * **Idle reaping / write timeouts** — connections silent past
//!   [`ServerConfig::idle_timeout_ms`] are closed with a clean `Ack` on the
//!   server channel, and sockets carry a write timeout so one stalled peer
//!   cannot wedge an executor mid-response.

use crate::config::ServerConfig;
use crate::protocol::{
    decode_request, encode_response, write_frame, AnswerBody, ErrorCode, ReplStatusBody, Request,
    Response, ServerStats, WireCertainty, MAX_FRAME_LEN,
};
use crate::queue::Queue;
use crate::replication::{self, ReplState, Subscription};
use certus::{Certainty, CertusError, Database, PreparedQuery, Session, SharedPlanCache};
use certus_algebra::RaExpr;
use certus_data::snapshot::{Snapshot, SnapshotStore};
use certus_data::wal::{DurableStore, ReplPosition, WalError};
use certus_exec::CancelToken;
use certus_obs::failpoint::{apply_delay, failpoints, FailAction};
use certus_obs::metrics::{registry, Counter, Gauge, Histogram};
use certus_obs::{names, Timer};
use std::collections::HashMap;
use std::io::{ErrorKind, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Failpoint checked before handing a request to the executor queue:
/// non-`Off` sheds the request exactly as if the queue were full
/// (`Overloaded` with a retry hint), exercising admission control above
/// the storage layer.
pub const FP_ENQUEUE: &str = "server.enqueue";
/// Failpoint checked before any response frame is written: non-`Off` drops
/// the response on the floor, modeling a lost ack or a peer that died
/// mid-reply. Clients must treat the resulting timeout as indeterminate.
pub const FP_RESPOND: &str = "server.respond";
/// Failpoint checked *after* a durable insert is applied, fsync'd and
/// published but *before* its ack: the write is durable (and replicating)
/// yet the client sees an error — the canonical indeterminate write.
pub const FP_PUBLISH: &str = "server.publish";

impl From<WireCertainty> for Certainty {
    fn from(c: WireCertainty) -> Certainty {
        match c {
            WireCertainty::Plain => Certainty::Plain,
            WireCertainty::CertainPlus => Certainty::CertainPlus,
            WireCertainty::PossibleStar => Certainty::PossibleStar,
            WireCertainty::Both => Certainty::Both,
        }
    }
}

impl From<Certainty> for WireCertainty {
    fn from(c: Certainty) -> WireCertainty {
        match c {
            Certainty::Plain => WireCertainty::Plain,
            Certainty::CertainPlus => WireCertainty::CertainPlus,
            Certainty::PossibleStar => WireCertainty::PossibleStar,
            Certainty::Both => WireCertainty::Both,
        }
    }
}

/// Build the canonical wire body from a session answer set. Used by the
/// server for responses and by differential harnesses to compute expected
/// bytes from a local [`Session`] run.
pub fn answer_body(answers: &certus::AnswerSet) -> AnswerBody {
    AnswerBody {
        certainty: answers.certainty.into(),
        plain: answers.plain.clone(),
        certain: answers.certain.clone(),
        possible: answers.possible.clone(),
        breakdown: answers
            .breakdown
            .as_ref()
            .map(|b| (b.total as u64, b.certain as u64, b.false_positives as u64)),
    }
}

/// A prepared statement held server-side for one connection: the original
/// query (for transparent re-preparation after an epoch bump) plus the
/// compiled [`PreparedQuery`].
struct PreparedEntry {
    query: RaExpr,
    certainty: Certainty,
    prepared: PreparedQuery,
}

/// Per-connection state shared between its reader thread, the executors,
/// and (for subscriber connections) the replication sender thread.
pub(crate) struct Conn {
    /// Write half; executors, the reader and replication senders all
    /// respond through it.
    pub(crate) writer: Mutex<TcpStream>,
    /// Requests handed to the executors and not yet responded to.
    outstanding: AtomicUsize,
    /// Prepared statements, keyed by connection-scoped id.
    prepared: Mutex<HashMap<u64, PreparedEntry>>,
    next_prepared: AtomicU64,
}

impl Conn {
    /// Serialize and send one response, reporting whether the write
    /// succeeded. A dead peer is detected (and cleaned up) by the reader
    /// thread, so most callers ignore the result; the replication sender
    /// uses it to stop streaming into a closed socket.
    pub(crate) fn send(&self, request_id: u64, resp: &Response) -> bool {
        match apply_delay(failpoints().check(FP_RESPOND)) {
            FailAction::Off => {}
            // Injected: the response vanishes as if the socket died after
            // the request was processed.
            _ => return false,
        }
        let payload = encode_response(request_id, resp);
        let mut w = self.writer.lock().expect("connection writer poisoned");
        write_frame(&mut *w, &payload).is_ok()
    }
}

/// A unit of executor work: one decoded request bound to its connection.
struct Work {
    conn: Arc<Conn>,
    request_id: u64,
    request: Request,
    /// When the reader finished decoding the request; deadlines are measured
    /// from here, so time spent queued counts against them.
    arrival: Instant,
}

/// Everything the acceptor, readers, executors and replication threads
/// share.
pub(crate) struct State {
    pub(crate) config: ServerConfig,
    store: Arc<SnapshotStore>,
    /// WAL-backed durability; `None` when serving from memory only.
    pub(crate) durable: Option<Arc<DurableStore>>,
    /// Replication role, term and subscriber hub (present on every server;
    /// a standalone node is a primary with no subscribers).
    pub(crate) repl: ReplState,
    cache: SharedPlanCache,
    pool: Arc<certus_exec::Pool>,
    queue: Queue<Work>,
    shutdown: AtomicBool,
    open_connections: AtomicUsize,
    readers: Mutex<Vec<JoinHandle<()>>>,
    requests: Arc<Counter>,
    rejected: Arc<Counter>,
    stale_replans: Arc<Counter>,
    deadline_exceeded: Arc<Counter>,
    idle_closed: Arc<Counter>,
    connections_gauge: Arc<Gauge>,
    request_ns: Arc<Histogram>,
}

impl State {
    pub(crate) fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed)
    }

    /// The node's durable WAL position (default when serving from memory).
    fn durable_position(&self) -> ReplPosition {
        self.durable.as_ref().map(|d| d.position()).unwrap_or_default()
    }

    fn repl_status(&self) -> ReplStatusBody {
        self.repl.status(self.durable_position())
    }

    /// A session over one pinned snapshot, wired to the shared plan cache,
    /// the shared engine worker pool, and (for deadline-bearing requests)
    /// a cancellation token checked at morsel boundaries.
    fn session_over(&self, snapshot: &Snapshot, cancel: Option<CancelToken>) -> Session {
        let mut builder = Session::builder_over(snapshot.database())
            .semantics(self.config.semantics)
            .threads(self.config.engine_threads)
            .plan_cache(self.cache.clone())
            .worker_pool(Arc::clone(&self.pool));
        if let Some(token) = cancel {
            builder = builder.cancel_token(token);
        }
        builder.build()
    }

    /// How long an `Overloaded` client should wait before retrying: the
    /// current backlog divided across the executors, in poll-interval
    /// granules. Deep queues push retries further out; an almost-empty
    /// queue suggests an immediate retry will succeed.
    fn retry_after_ms(&self) -> u64 {
        let depth = self.queue.depth() as u64;
        let executors = self.config.executors.max(1) as u64;
        let granule = self.config.poll_interval_ms.max(1);
        ((depth * granule) / executors).clamp(granule, 2_000)
    }

    fn stats(&self) -> ServerStats {
        let cache = self.cache.stats();
        ServerStats {
            requests: self.requests.value(),
            rejected: self.rejected.value(),
            stale_replans: self.stale_replans.value(),
            connections: self.open_connections.load(Ordering::Relaxed) as u64,
            live_pins: self.store.live_pins(),
            queue_depth: self.queue.depth() as u64,
            cache_hits: cache.hits,
            cache_misses: cache.misses,
            cache_entries: cache.entries as u64,
            epoch: self.store.epoch(),
        }
    }
}

/// A running query server. Dropping (or calling [`Server::shutdown`])
/// stops accepting, drains in-flight requests, and joins every thread.
pub struct Server {
    state: Arc<State>,
    addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    executors: Vec<JoinHandle<()>>,
    /// The replica apply loop, when this node started as a replica.
    replica: Option<JoinHandle<()>>,
}

impl Server {
    /// Bind and start serving `db` under `config`.
    ///
    /// With [`ServerConfig::data_dir`] set, any state a previous process
    /// left in that directory is recovered first and `db` is used only to
    /// seed an empty directory; without it the server serves `db` from
    /// memory.
    pub fn start(db: Database, config: ServerConfig) -> std::io::Result<Server> {
        if config.replication.is_some() && config.data_dir.is_none() {
            return Err(std::io::Error::other(
                "replication ships the durable log: set ServerConfig::data_dir on both ends",
            ));
        }
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;

        let (store, durable) = match &config.data_dir {
            Some(dir) => {
                let durable = DurableStore::open(dir, db, config.checkpoint_every)
                    .map_err(|e| std::io::Error::other(format!("durable store: {e}")))?;
                let durable = Arc::new(durable);
                (Arc::clone(durable.snapshots()), Some(durable))
            }
            None => (Arc::new(SnapshotStore::new(db)), None),
        };

        let reg = registry();
        let repl = ReplState::new(config.replication.clone());
        if let Some(d) = &durable {
            repl.publish(d.position());
        }
        let state = Arc::new(State {
            store,
            durable,
            repl,
            cache: SharedPlanCache::new(config.cache_capacity),
            pool: Arc::new(certus_exec::Pool::new(config.engine_threads)),
            queue: Queue::new(config.queue_capacity, reg.gauge(names::SERVER_QUEUE_DEPTH)),
            shutdown: AtomicBool::new(false),
            open_connections: AtomicUsize::new(0),
            readers: Mutex::new(Vec::new()),
            requests: reg.counter(names::SERVER_REQUESTS),
            rejected: reg.counter(names::SERVER_REJECTED),
            stale_replans: reg.counter(names::SERVER_STALE_REPLANS),
            deadline_exceeded: reg.counter(names::SERVER_DEADLINE_EXCEEDED),
            idle_closed: reg.counter(names::SERVER_IDLE_CLOSED),
            connections_gauge: reg.gauge(names::SERVER_CONNECTIONS),
            request_ns: reg.histogram(names::SERVER_REQUEST_NS),
            config,
        });

        let executors = (0..state.config.executors.max(1))
            .map(|_| {
                let state = Arc::clone(&state);
                thread::spawn(move || executor_loop(&state))
            })
            .collect();
        let acceptor = {
            let state = Arc::clone(&state);
            thread::spawn(move || accept_loop(&listener, &state))
        };
        let replica = state.repl.starts_as_replica().then(|| {
            let state = Arc::clone(&state);
            thread::spawn(move || replication::replica_loop(&state))
        });

        Ok(Server { state, addr, acceptor: Some(acceptor), executors, replica })
    }

    /// The address the server actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Schema epoch of the current snapshot.
    pub fn epoch(&self) -> u64 {
        self.state.store.epoch()
    }

    /// The durable store backing this server, when one was configured.
    pub fn durable(&self) -> Option<&Arc<DurableStore>> {
        self.state.durable.as_ref()
    }

    /// Whether a protocol-level `Shutdown` request has been received.
    pub fn shutdown_requested(&self) -> bool {
        self.state.shutting_down()
    }

    /// Stop accepting, drain the queue, flush in-flight responses, join all
    /// threads.
    pub fn shutdown(mut self) {
        self.teardown();
    }

    fn teardown(&mut self) {
        self.state.shutdown.store(true, Ordering::Relaxed);
        // Wake replication senders parked on the hub so they notice the
        // flag, drain whatever is durable, and close their streams cleanly.
        self.state.repl.wake_all();
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        // Readers exit on the shutdown flag once their in-flight work has
        // been answered (subscriber readers additionally wait for their
        // sender thread to finish draining); join them before closing the
        // queue so everything they enqueued is still drained by the
        // executors.
        let readers = std::mem::take(&mut *self.state.readers.lock().unwrap());
        for r in readers {
            let _ = r.join();
        }
        self.state.queue.close();
        for e in self.executors.drain(..) {
            let _ = e.join();
        }
        if let Some(replica) = self.replica.take() {
            let _ = replica.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.teardown();
    }
}

fn accept_loop(listener: &TcpListener, state: &Arc<State>) {
    let poll = Duration::from_millis(state.config.poll_interval_ms.max(1));
    loop {
        if state.shutting_down() {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let open = state.open_connections.load(Ordering::Relaxed);
                if open >= state.config.max_connections {
                    state.rejected.incr();
                    refuse(
                        stream,
                        ErrorCode::TooManyConnections,
                        "connection cap reached",
                        state.config.poll_interval_ms.max(1) * 5,
                    );
                    continue;
                }
                state.open_connections.fetch_add(1, Ordering::Relaxed);
                state.connections_gauge.set(open as u64 + 1);
                let state2 = Arc::clone(state);
                let handle = thread::spawn(move || {
                    reader_loop(stream, &state2);
                    let open = state2.open_connections.fetch_sub(1, Ordering::Relaxed) - 1;
                    state2.connections_gauge.set(open as u64);
                });
                state.readers.lock().unwrap().push(handle);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => thread::sleep(poll),
            Err(_) => thread::sleep(poll),
        }
    }
}

/// Reject a connection with a single error frame (request id 0) and close.
fn refuse(mut stream: TcpStream, code: ErrorCode, message: &str, retry_after_ms: u64) {
    let resp = Response::Error { code, message: message.to_string(), retry_after_ms };
    let _ = write_frame(&mut stream, &encode_response(0, &resp));
}

/// Incremental frame decoder tolerant of read timeouts: bytes received so
/// far are buffered, so a poll that lands mid-frame never loses data (a
/// plain `read_exact` would).
pub(crate) struct FrameBuffer {
    buf: Vec<u8>,
}

pub(crate) enum Fill {
    /// Peer closed the connection.
    Eof,
    /// The framing layer is broken beyond recovery.
    Corrupt,
}

impl FrameBuffer {
    pub(crate) fn new() -> Self {
        FrameBuffer { buf: Vec::new() }
    }

    /// Pop one complete frame payload out of the buffer, if present.
    fn take_frame(&mut self) -> Result<Option<Vec<u8>>, Fill> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes(self.buf[..4].try_into().unwrap());
        if len > MAX_FRAME_LEN {
            return Err(Fill::Corrupt);
        }
        let total = 4 + len as usize;
        if self.buf.len() < total {
            return Ok(None);
        }
        let payload = self.buf[4..total].to_vec();
        self.buf.drain(..total);
        Ok(Some(payload))
    }

    /// Read whatever is available (bounded by the stream's read timeout)
    /// and return the first complete frame, if any.
    pub(crate) fn fill(&mut self, stream: &mut TcpStream) -> Result<Option<Vec<u8>>, Fill> {
        if let Some(frame) = self.take_frame()? {
            return Ok(Some(frame));
        }
        let mut chunk = [0u8; 16 * 1024];
        match stream.read(&mut chunk) {
            Ok(0) => Err(Fill::Eof),
            Ok(n) => {
                self.buf.extend_from_slice(&chunk[..n]);
                self.take_frame()
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                Ok(None)
            }
            Err(_) => Err(Fill::Eof),
        }
    }
}

fn reader_loop(stream: TcpStream, state: &Arc<State>) {
    let poll = Duration::from_millis(state.config.poll_interval_ms.max(1));
    let _ = stream.set_read_timeout(Some(poll));
    if state.config.write_timeout_ms > 0 {
        // Applies to the shared socket, so the executors' write half is
        // covered too: a peer that stops draining cannot wedge an executor.
        let _ =
            stream.set_write_timeout(Some(Duration::from_millis(state.config.write_timeout_ms)));
    }
    let _ = stream.set_nodelay(true);
    let writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let conn = Arc::new(Conn {
        writer: Mutex::new(writer),
        outstanding: AtomicUsize::new(0),
        prepared: Mutex::new(HashMap::new()),
        next_prepared: AtomicU64::new(1),
    });
    let peer_addr = stream.peer_addr().map(|a| a.to_string()).unwrap_or_else(|_| "unknown".into());
    let mut stream = stream;
    let mut frames = FrameBuffer::new();
    let idle_limit = (state.config.idle_timeout_ms > 0)
        .then(|| Duration::from_millis(state.config.idle_timeout_ms));
    let mut last_activity = Instant::now();
    // A replication subscription bound to this connection, when the peer
    // sent `Subscribe`. The loop breaks (instead of returning) so the
    // subscription is always finished — drained on shutdown, severed
    // otherwise.
    let mut subscription: Option<Subscription> = None;

    loop {
        let payload = match frames.fill(&mut stream) {
            Ok(Some(payload)) => {
                last_activity = Instant::now();
                payload
            }
            Ok(None) => {
                if state.shutting_down() {
                    drain_outstanding(&conn);
                    break;
                }
                if let Some(limit) = idle_limit {
                    // Only reap truly quiet connections: nothing in flight,
                    // no subscription (a caught-up subscriber is legitimately
                    // silent), and nothing received for the whole window.
                    if subscription.is_none()
                        && conn.outstanding.load(Ordering::Acquire) == 0
                        && last_activity.elapsed() >= limit
                    {
                        state.idle_closed.incr();
                        conn.send(0, &Response::Ack { epoch: state.store.epoch() });
                        return;
                    }
                }
                continue;
            }
            Err(Fill::Corrupt) => {
                conn.send(
                    0,
                    &Response::Error {
                        code: ErrorCode::Malformed,
                        message: "frame length exceeds maximum".into(),
                        retry_after_ms: 0,
                    },
                );
                drain_outstanding(&conn);
                break;
            }
            Err(Fill::Eof) => {
                drain_outstanding(&conn);
                break;
            }
        };

        let (request_id, request) = match decode_request(&payload) {
            Ok(decoded) => decoded,
            Err(e) => {
                // The id is the first 8 bytes; echo it when present so the
                // client can match the failure to its request.
                let id = payload
                    .get(..8)
                    .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
                    .unwrap_or(0);
                conn.send(
                    id,
                    &Response::Error {
                        code: ErrorCode::Malformed,
                        message: e.to_string(),
                        retry_after_ms: 0,
                    },
                );
                continue;
            }
        };

        match request {
            Request::Ping => {
                conn.send(request_id, &Response::Pong { epoch: state.store.epoch() });
            }
            Request::Stats => {
                conn.send(request_id, &Response::Stats(state.stats()));
            }
            Request::Close => {
                drain_outstanding(&conn);
                conn.send(request_id, &Response::Ack { epoch: state.store.epoch() });
                break;
            }
            Request::Shutdown => {
                state.shutdown.store(true, Ordering::Relaxed);
                state.repl.wake_all();
                drain_outstanding(&conn);
                conn.send(request_id, &Response::Ack { epoch: state.store.epoch() });
                break;
            }
            Request::ReplStatus => {
                conn.send(request_id, &Response::ReplStatus(state.repl_status()));
            }
            Request::ReplicaAck { seq, offset } => {
                // Acks ride the subscription's socket back; a stray ack on
                // an unsubscribed connection is ignored (a late frame from
                // a torn-down stream, not an error worth killing reads for).
                if let Some(sub) = &subscription {
                    state.repl.record_ack(sub.peer_id, ReplPosition { seq, offset });
                }
            }
            Request::Subscribe { seq, offset } => {
                if let Some(primary) = state.repl.write_refusal() {
                    // Replicas don't cascade; subscribers belong on the
                    // primary.
                    conn.send(request_id, &replication::not_primary(primary));
                    continue;
                }
                if state.shutting_down() {
                    conn.send(
                        request_id,
                        &Response::Error {
                            code: ErrorCode::ShuttingDown,
                            message: "server is shutting down".into(),
                            retry_after_ms: 0,
                        },
                    );
                    continue;
                }
                if state.durable.is_none() {
                    conn.send(
                        request_id,
                        &Response::Error {
                            code: ErrorCode::Internal,
                            message: "replication requires a durable server (set data_dir)".into(),
                            retry_after_ms: 0,
                        },
                    );
                    continue;
                }
                if subscription.is_some() {
                    conn.send(
                        request_id,
                        &Response::Error {
                            code: ErrorCode::Malformed,
                            message: "connection already carries a subscription".into(),
                            retry_after_ms: 0,
                        },
                    );
                    continue;
                }
                subscription = Some(replication::spawn_sender(
                    state,
                    &conn,
                    request_id,
                    ReplPosition { seq, offset },
                    peer_addr.clone(),
                ));
            }
            Request::Promote => {
                let resp = handle_promote(state);
                conn.send(request_id, &resp);
            }
            req @ (Request::Prepare { .. }
            | Request::Execute { .. }
            | Request::Query { .. }
            | Request::Insert { .. }) => {
                if state.shutting_down() {
                    conn.send(
                        request_id,
                        &Response::Error {
                            code: ErrorCode::ShuttingDown,
                            message: "server is shutting down".into(),
                            retry_after_ms: 0,
                        },
                    );
                    continue;
                }
                conn.outstanding.fetch_add(1, Ordering::AcqRel);
                let work = Work {
                    conn: Arc::clone(&conn),
                    request_id,
                    request: req,
                    arrival: Instant::now(),
                };
                let shed = !matches!(apply_delay(failpoints().check(FP_ENQUEUE)), FailAction::Off);
                if shed || state.queue.push_try(work).is_err() {
                    conn.outstanding.fetch_sub(1, Ordering::AcqRel);
                    state.rejected.incr();
                    conn.send(
                        request_id,
                        &Response::Error {
                            code: ErrorCode::Overloaded,
                            message: "request queue is full".into(),
                            retry_after_ms: state.retry_after_ms(),
                        },
                    );
                }
            }
        }
    }

    if let Some(sub) = subscription.take() {
        if state.shutting_down() {
            // Graceful drain (the satellite fix): keep consuming acks off
            // the socket until the sender has flushed everything durable
            // and sent its clean `Close` segment, so a restarted primary's
            // replicas resume incrementally instead of re-bootstrapping.
            while !sub.is_done() {
                match frames.fill(&mut stream) {
                    Ok(Some(payload)) => {
                        if let Ok((_, Request::ReplicaAck { seq, offset })) =
                            decode_request(&payload)
                        {
                            state.repl.record_ack(sub.peer_id, ReplPosition { seq, offset });
                        }
                    }
                    Ok(None) => {}
                    Err(_) => break,
                }
            }
        }
        sub.finish(state);
    }
}

/// Handle a `Promote` request inline: seal the apply loop, wait for it to
/// stop (so no shipped record lands after the ack), then turn writable and
/// bump the term. Idempotent — promoting a primary just acks.
fn handle_promote(state: &Arc<State>) -> Response {
    match state.repl.begin_promote() {
        replication::Promotion::AlreadyPrimary => Response::Ack { epoch: state.store.epoch() },
        replication::Promotion::Sealed => {
            let deadline = Instant::now() + Duration::from_secs(10);
            while !state.repl.apply_stopped() && Instant::now() < deadline {
                thread::sleep(Duration::from_millis(1));
            }
            if !state.repl.apply_stopped() {
                return Response::Error {
                    code: ErrorCode::Internal,
                    message: "replica apply loop did not stop; promotion aborted".into(),
                    retry_after_ms: 100,
                };
            }
            state.repl.complete_promote();
            Response::Ack { epoch: state.store.epoch() }
        }
    }
}

/// Busy-wait (politely) until every request this connection handed to the
/// executors has been answered, so close/shutdown never drop responses.
fn drain_outstanding(conn: &Conn) {
    while conn.outstanding.load(Ordering::Acquire) > 0 {
        thread::sleep(Duration::from_millis(1));
    }
}

fn executor_loop(state: &Arc<State>) {
    while let Some(work) = state.queue.pop() {
        let timer = Timer::start();
        let response = respond(state, &work);
        work.conn.send(work.request_id, &response);
        work.conn.outstanding.fetch_sub(1, Ordering::AcqRel);
        state.requests.incr();
        state.request_ns.record(timer.elapsed_ns());
    }
}

fn query_error(state: &State, e: &CertusError) -> Response {
    if e.is_cancelled() {
        return deadline_error(state);
    }
    Response::Error { code: ErrorCode::QueryError, message: e.to_string(), retry_after_ms: 0 }
}

fn deadline_error(state: &State) -> Response {
    state.deadline_exceeded.incr();
    Response::Error {
        code: ErrorCode::DeadlineExceeded,
        message: "request deadline exceeded".into(),
        retry_after_ms: 0,
    }
}

/// Resolve a request's deadline field against its arrival time. Returns
/// `Err` with the ready-made error response when the deadline has already
/// passed (the request spent too long queued), `Ok(None)` when no deadline
/// was set.
fn resolve_deadline(
    state: &State,
    work: &Work,
    deadline_ms: u64,
) -> Result<Option<CancelToken>, Box<Response>> {
    if deadline_ms == 0 {
        return Ok(None);
    }
    let deadline = work.arrival + Duration::from_millis(deadline_ms);
    if Instant::now() >= deadline {
        return Err(Box::new(deadline_error(state)));
    }
    Ok(Some(CancelToken::with_deadline(deadline)))
}

fn respond(state: &Arc<State>, work: &Work) -> Response {
    match &work.request {
        Request::Prepare { certainty, query } => {
            let snapshot = state.store.pin();
            let session = state.session_over(&snapshot, None);
            let certainty = Certainty::from(*certainty);
            match session.prepare(query, certainty) {
                Ok(prepared) => {
                    let epoch = prepared.schema_epoch();
                    let id = work.conn.next_prepared.fetch_add(1, Ordering::Relaxed);
                    work.conn
                        .prepared
                        .lock()
                        .expect("prepared map poisoned")
                        .insert(id, PreparedEntry { query: query.clone(), certainty, prepared });
                    Response::Prepared { prepared: id, epoch }
                }
                Err(e) => query_error(state, &e),
            }
        }
        Request::Execute { prepared, deadline_ms } => {
            let cancel = match resolve_deadline(state, work, *deadline_ms) {
                Ok(cancel) => cancel,
                Err(resp) => return *resp,
            };
            let snapshot = state.store.pin();
            let session = state.session_over(&snapshot, cancel);
            let mut entries = work.conn.prepared.lock().expect("prepared map poisoned");
            let Some(entry) = entries.get_mut(prepared) else {
                return Response::Error {
                    code: ErrorCode::UnknownPrepared,
                    message: format!("no prepared statement {prepared} on this connection"),
                    retry_after_ms: 0,
                };
            };
            match session.execute_prepared(&entry.prepared) {
                Ok(answers) => Response::Answers { body: answer_body(&answers), reprepared: false },
                Err(CertusError::StalePlan { .. }) => {
                    // The schema epoch moved past the plan: transparently
                    // re-prepare against the pinned snapshot and retry. The
                    // refreshed plan is stored for subsequent executes.
                    state.stale_replans.incr();
                    match session.prepare(&entry.query, entry.certainty) {
                        Ok(fresh) => {
                            entry.prepared = fresh;
                            match session.execute_prepared(&entry.prepared) {
                                Ok(answers) => Response::Answers {
                                    body: answer_body(&answers),
                                    reprepared: true,
                                },
                                Err(e) => query_error(state, &e),
                            }
                        }
                        Err(e) => query_error(state, &e),
                    }
                }
                Err(e) => query_error(state, &e),
            }
        }
        Request::Query { certainty, query, deadline_ms } => {
            let cancel = match resolve_deadline(state, work, *deadline_ms) {
                Ok(cancel) => cancel,
                Err(resp) => return *resp,
            };
            let snapshot = state.store.pin();
            let session = state.session_over(&snapshot, cancel);
            match session.execute(query, Certainty::from(*certainty)) {
                Ok(answers) => Response::Answers { body: answer_body(&answers), reprepared: false },
                Err(e) => query_error(state, &e),
            }
        }
        Request::Insert { table, rows } => {
            if let Some(primary) = state.repl.write_refusal() {
                // Replicas serve reads only; the message carries the
                // primary's address so clients can follow the redirect.
                return replication::not_primary(primary);
            }
            match &state.durable {
                // Durable path: the row is validated against the pinned
                // snapshot, WAL-appended and fsync'd, and only then published
                // and acknowledged. The Ack *is* the durability guarantee —
                // and under sync replication it additionally waits for the
                // configured quorum of replica acks.
                Some(durable) => match durable.insert(table, rows) {
                    Ok(epoch) => {
                        let pos = durable.position();
                        state.repl.publish(pos);
                        match apply_delay(failpoints().check(FP_PUBLISH)) {
                            FailAction::Off => {}
                            // Injected: the write is durable (and already
                            // streaming to replicas) but the ack is
                            // withheld — the canonical indeterminate write.
                            _ => {
                                return Response::Error {
                                    code: ErrorCode::Internal,
                                    message: "injected fault at server.publish: write durable \
                                              but unacknowledged"
                                        .into(),
                                    retry_after_ms: 0,
                                }
                            }
                        }
                        if let Some((quorum, timeout)) = state.repl.sync_quorum() {
                            let timer = Timer::start();
                            let reached = state.repl.wait_quorum(pos, quorum, timeout);
                            registry()
                                .histogram(names::REPL_QUORUM_WAIT_NS)
                                .record(timer.elapsed_ns());
                            if !reached {
                                registry().counter(names::REPL_QUORUM_TIMEOUTS).incr();
                                return Response::Error {
                                    code: ErrorCode::Internal,
                                    message: format!(
                                        "write is durable locally but {quorum} replica ack(s) \
                                         did not arrive within {}ms; replication state unknown",
                                        timeout.as_millis()
                                    ),
                                    retry_after_ms: 0,
                                };
                            }
                        }
                        Response::Ack { epoch }
                    }
                    Err(WalError::Data(message)) => {
                        Response::Error { code: ErrorCode::QueryError, message, retry_after_ms: 0 }
                    }
                    Err(e) => Response::Error {
                        code: ErrorCode::Internal,
                        message: format!("durable write failed: {e}"),
                        retry_after_ms: 0,
                    },
                },
                None => {
                    let outcome = state.store.update(|db| -> Result<u64, String> {
                        // Validate against a scratch copy first so a bad row
                        // leaves the published database (and its epoch)
                        // untouched.
                        let mut scratch = db.relation(table).map_err(|e| e.to_string())?.clone();
                        for row in rows {
                            scratch
                                .insert_values(row.values().to_vec())
                                .map_err(|e| e.to_string())?;
                        }
                        *db.relation_mut(table).map_err(|e| e.to_string())? = scratch;
                        Ok(db.schema_epoch())
                    });
                    match outcome {
                        Ok(epoch) => Response::Ack { epoch },
                        Err(message) => Response::Error {
                            code: ErrorCode::QueryError,
                            message,
                            retry_after_ms: 0,
                        },
                    }
                }
            }
        }
        // Inline requests never reach the executors.
        Request::Ping
        | Request::Stats
        | Request::Close
        | Request::Shutdown
        | Request::Subscribe { .. }
        | Request::ReplicaAck { .. }
        | Request::Promote
        | Request::ReplStatus => Response::Error {
            code: ErrorCode::Internal,
            message: "inline request routed to executor".into(),
            retry_after_ms: 0,
        },
    }
}
