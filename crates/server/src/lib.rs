//! # certus-server
//!
//! A long-running, std-only TCP query service over one incomplete database.
//!
//! The crate turns the per-process [`certus::Session`] facade into a
//! concurrent service:
//!
//! * [`protocol`] — the hand-rolled length-prefixed binary wire format:
//!   requests (ping / prepare / execute / query / insert / stats / close /
//!   shutdown), responses, and codecs for the full `RaExpr` algebra. The
//!   grammar is documented in `PROTOCOL.md` at the repository root.
//! * [`server`] — the service itself: an acceptor, per-connection reader
//!   threads, and executor threads draining a bounded request queue
//!   ([`queue`]). Reads execute against pinned
//!   [`SnapshotStore`](certus_data::snapshot::SnapshotStore) snapshots, so
//!   writers never block readers; plans are shared process-wide through one
//!   [`certus::SharedPlanCache`] keyed by (fingerprint, certainty/semantics/
//!   planner, schema epoch, threads).
//! * [`client`] — `certus-client`, a blocking client with closed-loop and
//!   pipelined (open-loop) request styles, used by the `experiments serve`
//!   benchmark; [`ClusterClient`] adds replica-aware read distribution,
//!   read failover and write redirect-following.
//! * [`replication`] — WAL-shipping replication: a primary streams its
//!   durable log to read replicas over `Subscribe`/`WalSegment`/`ReplicaAck`
//!   frames, with sync-quorum or async-lag modes and operator-driven
//!   `Promote` failover (log shipping, not consensus — see the module docs).
//!
//! ```no_run
//! use certus_server::{Server, ServerConfig};
//! use certus_server::client::Client;
//! use certus_server::protocol::WireCertainty;
//! use certus::{Database, RaExpr};
//!
//! let server = Server::start(Database::new(), ServerConfig::default()).unwrap();
//! let mut client = Client::connect(server.local_addr()).unwrap();
//! let epoch = client.ping().unwrap();
//! assert_eq!(epoch, server.epoch());
//! client.close().unwrap();
//! server.shutdown();
//! ```

pub mod client;
pub mod config;
pub mod protocol;
pub mod queue;
pub mod replication;
pub mod server;

pub use certus_algebra::RaExpr;
pub use client::{Client, ClientError, ClusterClient, RetryPolicy, WireAnswers};
pub use config::ServerConfig;
pub use protocol::{ErrorCode, ReplRole, Request, Response, ServerStats, WireCertainty};
pub use replication::{ReplMode, ReplicationConfig};
pub use server::{answer_body, Server};
