//! The wire protocol: length-prefixed frames carrying a hand-rolled binary
//! encoding of requests and responses (no external serialization crates).
//!
//! Every frame is `u32` little-endian payload length followed by the
//! payload; every payload starts with a `u64` request id (echoed verbatim in
//! the response) and a `u8` message tag. Integers are little-endian, floats
//! travel as normalized IEEE-754 bits, strings as `u32` length + UTF-8
//! bytes. See `PROTOCOL.md` at the repository root for the full grammar.
//!
//! The primitive and data-level encoders (values, tuples, schemas,
//! relations) live in [`certus_data::codec`] and are shared with the
//! write-ahead log ([`certus_data::wal`]) — the bytes a WAL record holds
//! for a row are exactly the bytes an `Insert` request carried. This module
//! adds the algebra-level encoders (conditions, expressions) and the
//! request/response envelopes.

use certus_algebra::{AggExpr, AggFunc, Condition, Operand, ProjCol, RaExpr};
use certus_data::codec::{
    self, get_relation, get_schema, get_tuple, get_value, put_bool, put_opt, put_relation,
    put_schema, put_str, put_tuple, put_u32, put_u64, put_u8, put_value, Reader,
};
use certus_data::compare::CmpOp;
use certus_data::{Relation, Tuple};
use std::io::{Read, Write};

/// Upper bound on a frame payload (64 MiB): malformed or hostile length
/// prefixes fail fast instead of attempting a giant allocation.
pub const MAX_FRAME_LEN: u32 = 64 * 1024 * 1024;

/// Protocol-level errors: framing violations, unknown tags, truncated or
/// trailing bytes, I/O failures.
#[derive(Debug)]
pub enum WireError {
    /// The underlying transport failed.
    Io(std::io::Error),
    /// The payload violates the encoding (bad tag, truncation, bad UTF-8…).
    Malformed(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "wire i/o: {e}"),
            WireError::Malformed(m) => write!(f, "malformed frame: {m}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

impl From<codec::CodecError> for WireError {
    fn from(e: codec::CodecError) -> Self {
        WireError::Malformed(e.0)
    }
}

/// Result alias for protocol operations.
pub type WireResult<T> = Result<T, WireError>;

fn bad(msg: impl Into<String>) -> WireError {
    WireError::Malformed(msg.into())
}

/// Error codes carried by [`Response::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request could not be decoded.
    Malformed,
    /// The bounded request queue is full; retry later.
    Overloaded,
    /// The server is at its connection cap.
    TooManyConnections,
    /// An `Execute` referenced a prepared-statement id this connection never
    /// prepared (or already closed).
    UnknownPrepared,
    /// Query planning or execution failed; the message carries the engine's
    /// error text.
    QueryError,
    /// The server is shutting down and no longer accepts work.
    ShuttingDown,
    /// An internal invariant failed server-side.
    Internal,
    /// The request's deadline expired before (or while) it executed. The
    /// work was abandoned at the next morsel boundary; no write happened.
    DeadlineExceeded,
    /// A write (or `Subscribe`) reached a replica. The message is exactly
    /// the primary's address (`host:port`) so clients can follow the
    /// redirect; empty when the replica has not learned it.
    NotPrimary,
}

impl ErrorCode {
    fn tag(self) -> u8 {
        match self {
            ErrorCode::Malformed => 0,
            ErrorCode::Overloaded => 1,
            ErrorCode::TooManyConnections => 2,
            ErrorCode::UnknownPrepared => 3,
            ErrorCode::QueryError => 4,
            ErrorCode::ShuttingDown => 5,
            ErrorCode::Internal => 6,
            ErrorCode::DeadlineExceeded => 7,
            ErrorCode::NotPrimary => 8,
        }
    }

    fn from_tag(t: u8) -> WireResult<Self> {
        Ok(match t {
            0 => ErrorCode::Malformed,
            1 => ErrorCode::Overloaded,
            2 => ErrorCode::TooManyConnections,
            3 => ErrorCode::UnknownPrepared,
            4 => ErrorCode::QueryError,
            5 => ErrorCode::ShuttingDown,
            6 => ErrorCode::Internal,
            7 => ErrorCode::DeadlineExceeded,
            8 => ErrorCode::NotPrimary,
            other => return Err(bad(format!("unknown error code {other}"))),
        })
    }
}

/// Which answers a query request asks for — the wire image of
/// [`certus::Certainty`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireCertainty {
    /// Plain SQL evaluation.
    Plain,
    /// The certain-answer rewriting `Q⁺`.
    CertainPlus,
    /// The possible-answer rewriting `Q★`.
    PossibleStar,
    /// All three plus the certain/possible breakdown.
    Both,
}

impl WireCertainty {
    fn tag(self) -> u8 {
        match self {
            WireCertainty::Plain => 0,
            WireCertainty::CertainPlus => 1,
            WireCertainty::PossibleStar => 2,
            WireCertainty::Both => 3,
        }
    }

    fn from_tag(t: u8) -> WireResult<Self> {
        Ok(match t {
            0 => WireCertainty::Plain,
            1 => WireCertainty::CertainPlus,
            2 => WireCertainty::PossibleStar,
            3 => WireCertainty::Both,
            other => return Err(bad(format!("unknown certainty {other}"))),
        })
    }
}

/// A client→server request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness check; answered inline with [`Response::Pong`].
    Ping,
    /// Plan + compile a query server-side; answered with
    /// [`Response::Prepared`] carrying a connection-scoped statement id.
    Prepare {
        /// Which answers to prepare for.
        certainty: WireCertainty,
        /// The query.
        query: RaExpr,
    },
    /// Execute a previously prepared statement.
    Execute {
        /// Statement id from [`Response::Prepared`].
        prepared: u64,
        /// Milliseconds the client is willing to wait, measured from the
        /// moment the server reads the request; `0` means no deadline. Past
        /// it the server abandons the work (queued requests are dropped,
        /// running ones cancel at the next morsel boundary) and answers
        /// [`ErrorCode::DeadlineExceeded`].
        deadline_ms: u64,
    },
    /// One-shot prepare + execute.
    Query {
        /// Which answers to produce.
        certainty: WireCertainty,
        /// The query.
        query: RaExpr,
        /// Deadline in milliseconds from arrival; `0` means none (see
        /// [`Request::Execute::deadline_ms`]).
        deadline_ms: u64,
    },
    /// Append rows to a table; bumps the schema epoch.
    Insert {
        /// Target table.
        table: String,
        /// Rows to append (each must match the table's arity).
        rows: Vec<Tuple>,
    },
    /// Drain this connection (all in-flight responses flush) and close it.
    Close,
    /// Server + cache counters; answered inline with [`Response::Stats`].
    Stats,
    /// Ask the whole server to shut down gracefully.
    Shutdown,
    /// Replication: turn this connection into a WAL subscription starting
    /// at the sender's durable position (`seq`/`offset`). A replica that
    /// has never synced sends `u64::MAX` for both to request a checkpoint
    /// bootstrap. The server pushes [`Response::WalSegment`] frames under
    /// this request's id for the life of the connection.
    Subscribe {
        /// Checkpoint generation of the subscriber's durable position.
        seq: u64,
        /// Byte offset within that generation's WAL.
        offset: u64,
    },
    /// Replication: the subscriber's new durable (fsync'd) position after
    /// applying segments. Sent on the subscription connection; never
    /// answered.
    ReplicaAck {
        /// Generation of the acknowledged position.
        seq: u64,
        /// Byte offset of the acknowledged position.
        offset: u64,
    },
    /// Operator-initiated failover: stop applying the replication stream,
    /// bump the term, and start accepting writes. Idempotent on a node
    /// that is already primary. Answered with [`Response::Ack`].
    Promote,
    /// Replication status of any node (role, term, durable position,
    /// per-replica lag); answered inline with [`Response::ReplStatus`].
    ReplStatus,
}

impl Request {
    fn tag(&self) -> u8 {
        match self {
            Request::Ping => 0,
            Request::Prepare { .. } => 1,
            Request::Execute { .. } => 2,
            Request::Query { .. } => 3,
            Request::Insert { .. } => 4,
            Request::Close => 5,
            Request::Stats => 6,
            Request::Shutdown => 7,
            Request::Subscribe { .. } => 8,
            Request::ReplicaAck { .. } => 9,
            Request::Promote => 10,
            Request::ReplStatus => 11,
        }
    }
}

/// The body of an answer response, shared by `Query` and `Execute`.
///
/// [`AnswerBody::encode`] is the *canonical* byte form: it covers exactly
/// the certainty and the answer relations/breakdown, so differential
/// harnesses can compare server answers byte-for-byte against local
/// [`certus::Session`] execution regardless of epochs or replan flags.
#[derive(Debug, Clone, PartialEq)]
pub struct AnswerBody {
    /// The certainty the query ran under.
    pub certainty: WireCertainty,
    /// Plain SQL answer, when requested.
    pub plain: Option<Relation>,
    /// Certain answers `Q⁺`, when requested.
    pub certain: Option<Relation>,
    /// Possible answers `Q★`, when requested.
    pub possible: Option<Relation>,
    /// For `Both`: (total, certain, false positives) of the SQL answer.
    pub breakdown: Option<(u64, u64, u64)>,
}

impl AnswerBody {
    /// Encode to the canonical byte form.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.push(self.certainty.tag());
        put_opt(&mut out, self.plain.as_ref(), put_relation);
        put_opt(&mut out, self.certain.as_ref(), put_relation);
        put_opt(&mut out, self.possible.as_ref(), put_relation);
        put_opt(&mut out, self.breakdown.as_ref(), |b, &(t, c, f)| {
            put_u64(b, t);
            put_u64(b, c);
            put_u64(b, f);
        });
        out
    }

    fn decode(r: &mut Reader<'_>) -> WireResult<Self> {
        Ok(AnswerBody {
            certainty: WireCertainty::from_tag(r.u8()?)?,
            plain: get_opt(r, |r| Ok(get_relation(r)?))?,
            certain: get_opt(r, |r| Ok(get_relation(r)?))?,
            possible: get_opt(r, |r| Ok(get_relation(r)?))?,
            breakdown: get_opt(r, |r| Ok((r.u64()?, r.u64()?, r.u64()?)))?,
        })
    }
}

/// What a [`Response::WalSegment`] frame carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegmentKind {
    /// Checksummed WAL record bytes of generation `seq` starting at
    /// `offset`. The replica fsyncs them locally, applies them, and acks.
    Records,
    /// A complete checkpoint file for generation `seq` (`offset` is 0). The
    /// replica installs it, replacing all local state — the bootstrap (and
    /// re-sync) path.
    Checkpoint,
    /// The primary folded its WAL into generation `seq`. A replica that has
    /// applied the previous generation in full folds its own snapshot into
    /// the same generation; no bytes travel.
    Rotate,
    /// Position report, no payload: sent once on subscribe (confirming the
    /// stream and carrying the primary's term + durable position).
    Heartbeat,
    /// Clean end of stream: the primary is shutting down and has flushed
    /// everything up to `seq`/`offset`. The replica is caught up and should
    /// reconnect later; no re-bootstrap will be needed.
    Close,
}

impl SegmentKind {
    fn tag(self) -> u8 {
        match self {
            SegmentKind::Records => 0,
            SegmentKind::Checkpoint => 1,
            SegmentKind::Rotate => 2,
            SegmentKind::Heartbeat => 3,
            SegmentKind::Close => 4,
        }
    }

    fn from_tag(t: u8) -> WireResult<Self> {
        Ok(match t {
            0 => SegmentKind::Records,
            1 => SegmentKind::Checkpoint,
            2 => SegmentKind::Rotate,
            3 => SegmentKind::Heartbeat,
            4 => SegmentKind::Close,
            other => return Err(bad(format!("unknown segment kind {other}"))),
        })
    }
}

/// A node's replication role, as reported by [`Response::ReplStatus`].
/// Standalone durable nodes report `Primary` (they accept writes and
/// subscribers); only an un-promoted replica reports `Replica`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplRole {
    /// Accepts writes and WAL subscriptions.
    Primary,
    /// Applies a primary's stream; refuses writes with
    /// [`ErrorCode::NotPrimary`].
    Replica,
}

impl ReplRole {
    fn tag(self) -> u8 {
        match self {
            ReplRole::Primary => 0,
            ReplRole::Replica => 1,
        }
    }

    fn from_tag(t: u8) -> WireResult<Self> {
        Ok(match t {
            0 => ReplRole::Primary,
            1 => ReplRole::Replica,
            other => return Err(bad(format!("unknown replication role {other}"))),
        })
    }
}

/// Per-replica progress reported by a primary in [`Response::ReplStatus`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicaLag {
    /// The subscriber's peer address.
    pub addr: String,
    /// Generation of the last position the replica acknowledged.
    pub acked_seq: u64,
    /// Offset of the last position the replica acknowledged.
    pub acked_offset: u64,
    /// Durable bytes the replica has not yet acknowledged. Within one
    /// generation this is exact; across a fold it counts the live
    /// generation's bytes (the replica also owes a rotate or re-bootstrap).
    pub lag_bytes: u64,
}

/// The body of [`Response::ReplStatus`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplStatusBody {
    /// This node's current role.
    pub role: ReplRole,
    /// The replication term: starts at the configured initial term, bumped
    /// by every `Promote`. Operator-managed — see PROTOCOL.md for the
    /// (consensus-free) failover model.
    pub term: u64,
    /// Generation of this node's durable position.
    pub seq: u64,
    /// Offset of this node's durable position.
    pub offset: u64,
    /// Replication mode: 0 = replication not configured, 1 = async,
    /// 2 = sync (see `quorum`).
    pub mode: u8,
    /// In sync mode, how many replica acks an `Insert` waits for.
    pub quorum: u32,
    /// For replicas: the primary address this node applies from.
    pub primary_addr: Option<String>,
    /// For primaries: progress of every live subscriber.
    pub replicas: Vec<ReplicaLag>,
}

/// Counters reported by [`Response::Stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServerStats {
    /// Requests completed (all types).
    pub requests: u64,
    /// Requests shed by admission control.
    pub rejected: u64,
    /// Stale prepared executions transparently re-prepared.
    pub stale_replans: u64,
    /// Currently open connections.
    pub connections: u64,
    /// Currently pinned snapshots.
    pub live_pins: u64,
    /// Current depth of the bounded request queue.
    pub queue_depth: u64,
    /// Shared plan-cache hits.
    pub cache_hits: u64,
    /// Shared plan-cache misses.
    pub cache_misses: u64,
    /// Entries currently in the shared plan cache.
    pub cache_entries: u64,
    /// Schema epoch of the current snapshot.
    pub epoch: u64,
}

/// A server→client response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Liveness answer carrying the current schema epoch.
    Pong {
        /// Schema epoch of the current snapshot.
        epoch: u64,
    },
    /// A statement was prepared under this connection-scoped id.
    Prepared {
        /// Statement id for [`Request::Execute`].
        prepared: u64,
        /// Schema epoch the statement was planned at.
        epoch: u64,
    },
    /// Answers to a `Query` or `Execute` request.
    Answers {
        /// The canonical answer payload.
        body: AnswerBody,
        /// Whether a stale prepared plan was transparently re-prepared
        /// against the current snapshot before executing. Not part of the
        /// canonical [`AnswerBody::encode`] bytes.
        reprepared: bool,
    },
    /// A write (or close/shutdown) was applied.
    Ack {
        /// Schema epoch after the operation.
        epoch: u64,
    },
    /// The request failed; the connection stays usable (except for
    /// [`ErrorCode::TooManyConnections`] / [`ErrorCode::ShuttingDown`]).
    Error {
        /// Machine-readable failure class.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
        /// For [`ErrorCode::Overloaded`]: how long (milliseconds) the
        /// server suggests waiting before a retry, derived from the current
        /// queue depth. `0` means no hint; other codes always send `0`.
        retry_after_ms: u64,
    },
    /// Server counters.
    Stats(ServerStats),
    /// One pushed replication frame on a subscription (see [`SegmentKind`]
    /// for what each kind carries). Always sent under the `Subscribe`
    /// request's id.
    WalSegment {
        /// The sender's current term (replicas adopt the maximum seen).
        term: u64,
        /// What this frame carries.
        kind: SegmentKind,
        /// Generation the frame refers to.
        seq: u64,
        /// Byte offset the frame refers to (kind-dependent; see
        /// [`SegmentKind`]).
        offset: u64,
        /// Payload bytes (records or a checkpoint file; empty otherwise).
        bytes: Vec<u8>,
    },
    /// Replication status of this node.
    ReplStatus(ReplStatusBody),
}

impl Response {
    fn tag(&self) -> u8 {
        match self {
            Response::Pong { .. } => 0,
            Response::Prepared { .. } => 1,
            Response::Answers { .. } => 2,
            Response::Ack { .. } => 3,
            Response::Error { .. } => 4,
            Response::Stats(_) => 5,
            Response::WalSegment { .. } => 6,
            Response::ReplStatus(_) => 7,
        }
    }
}

// ---------------------------------------------------------------------------
// Algebra-level encoders/decoders. Primitives and data-level forms (values,
// tuples, schemas, relations) come from `certus_data::codec`; codec errors
// convert into `WireError::Malformed` at the `?` sites below.

/// Wire-level optional: like [`codec::get_opt`] but over closures that may
/// fail with algebra-level [`WireError`]s.
fn get_opt<T>(
    r: &mut Reader<'_>,
    get: impl FnOnce(&mut Reader<'_>) -> WireResult<T>,
) -> WireResult<Option<T>> {
    match r.u8()? {
        0 => Ok(None),
        1 => Ok(Some(get(r)?)),
        other => Err(bad(format!("bad option byte {other}"))),
    }
}

fn put_cmp_op(out: &mut Vec<u8>, op: CmpOp) {
    put_u8(
        out,
        match op {
            CmpOp::Eq => 0,
            CmpOp::Neq => 1,
            CmpOp::Lt => 2,
            CmpOp::Le => 3,
            CmpOp::Gt => 4,
            CmpOp::Ge => 5,
        },
    );
}

fn get_cmp_op(r: &mut Reader<'_>) -> WireResult<CmpOp> {
    Ok(match r.u8()? {
        0 => CmpOp::Eq,
        1 => CmpOp::Neq,
        2 => CmpOp::Lt,
        3 => CmpOp::Le,
        4 => CmpOp::Gt,
        5 => CmpOp::Ge,
        other => return Err(bad(format!("unknown cmp op {other}"))),
    })
}

fn put_operand(out: &mut Vec<u8>, op: &Operand) {
    match op {
        Operand::Col(c) => {
            put_u8(out, 0);
            put_str(out, c);
        }
        Operand::Const(v) => {
            put_u8(out, 1);
            put_value(out, v);
        }
        Operand::Scalar(q) => {
            put_u8(out, 2);
            put_expr(out, q);
        }
    }
}

fn get_operand(r: &mut Reader<'_>) -> WireResult<Operand> {
    Ok(match r.u8()? {
        0 => Operand::Col(r.str()?),
        1 => Operand::Const(get_value(r)?),
        2 => Operand::Scalar(Box::new(get_expr(r)?)),
        other => return Err(bad(format!("unknown operand tag {other}"))),
    })
}

fn put_condition(out: &mut Vec<u8>, c: &Condition) {
    match c {
        Condition::True => put_u8(out, 0),
        Condition::False => put_u8(out, 1),
        Condition::Cmp { left, op, right } => {
            put_u8(out, 2);
            put_operand(out, left);
            put_cmp_op(out, *op);
            put_operand(out, right);
        }
        Condition::IsNull(op) => {
            put_u8(out, 3);
            put_operand(out, op);
        }
        Condition::IsNotNull(op) => {
            put_u8(out, 4);
            put_operand(out, op);
        }
        Condition::Like { expr, pattern, negated } => {
            put_u8(out, 5);
            put_operand(out, expr);
            put_str(out, pattern);
            put_bool(out, *negated);
        }
        Condition::InList { expr, list, negated } => {
            put_u8(out, 6);
            put_operand(out, expr);
            put_u32(out, list.len() as u32);
            for v in list {
                put_value(out, v);
            }
            put_bool(out, *negated);
        }
        Condition::And(a, b) => {
            put_u8(out, 7);
            put_condition(out, a);
            put_condition(out, b);
        }
        Condition::Or(a, b) => {
            put_u8(out, 8);
            put_condition(out, a);
            put_condition(out, b);
        }
        Condition::Not(a) => {
            put_u8(out, 9);
            put_condition(out, a);
        }
    }
}

fn get_condition(r: &mut Reader<'_>) -> WireResult<Condition> {
    Ok(match r.u8()? {
        0 => Condition::True,
        1 => Condition::False,
        2 => Condition::Cmp { left: get_operand(r)?, op: get_cmp_op(r)?, right: get_operand(r)? },
        3 => Condition::IsNull(get_operand(r)?),
        4 => Condition::IsNotNull(get_operand(r)?),
        5 => Condition::Like { expr: get_operand(r)?, pattern: r.str()?, negated: r.bool()? },
        6 => {
            let expr = get_operand(r)?;
            let n = r.len()?;
            let mut list = Vec::with_capacity(n);
            for _ in 0..n {
                list.push(get_value(r)?);
            }
            let negated = r.bool()?;
            Condition::InList { expr, list, negated }
        }
        7 => Condition::And(Box::new(get_condition(r)?), Box::new(get_condition(r)?)),
        8 => Condition::Or(Box::new(get_condition(r)?), Box::new(get_condition(r)?)),
        9 => Condition::Not(Box::new(get_condition(r)?)),
        other => return Err(bad(format!("unknown condition tag {other}"))),
    })
}

fn put_agg_func(out: &mut Vec<u8>, f: AggFunc) {
    put_u8(
        out,
        match f {
            AggFunc::CountStar => 0,
            AggFunc::Count => 1,
            AggFunc::Sum => 2,
            AggFunc::Avg => 3,
            AggFunc::Min => 4,
            AggFunc::Max => 5,
        },
    );
}

fn get_agg_func(r: &mut Reader<'_>) -> WireResult<AggFunc> {
    Ok(match r.u8()? {
        0 => AggFunc::CountStar,
        1 => AggFunc::Count,
        2 => AggFunc::Sum,
        3 => AggFunc::Avg,
        4 => AggFunc::Min,
        5 => AggFunc::Max,
        other => return Err(bad(format!("unknown aggregate function {other}"))),
    })
}

fn put_expr(out: &mut Vec<u8>, e: &RaExpr) {
    match e {
        RaExpr::Relation { name, alias } => {
            put_u8(out, 0);
            put_str(out, name);
            put_opt(out, alias.as_ref(), |b, a| put_str(b, a));
        }
        RaExpr::Values { schema, rows } => {
            put_u8(out, 1);
            put_schema(out, schema);
            put_u32(out, rows.len() as u32);
            for t in rows {
                put_tuple(out, t);
            }
        }
        RaExpr::Select { input, condition } => {
            put_u8(out, 2);
            put_expr(out, input);
            put_condition(out, condition);
        }
        RaExpr::Project { input, columns } => {
            put_u8(out, 3);
            put_expr(out, input);
            put_u32(out, columns.len() as u32);
            for c in columns {
                put_str(out, &c.column);
                put_opt(out, c.alias.as_ref(), |b, a| put_str(b, a));
            }
        }
        RaExpr::Product { left, right } => {
            put_u8(out, 4);
            put_expr(out, left);
            put_expr(out, right);
        }
        RaExpr::Join { left, right, condition } => {
            put_u8(out, 5);
            put_expr(out, left);
            put_expr(out, right);
            put_condition(out, condition);
        }
        RaExpr::Union { left, right } => {
            put_u8(out, 6);
            put_expr(out, left);
            put_expr(out, right);
        }
        RaExpr::Intersect { left, right } => {
            put_u8(out, 7);
            put_expr(out, left);
            put_expr(out, right);
        }
        RaExpr::Difference { left, right } => {
            put_u8(out, 8);
            put_expr(out, left);
            put_expr(out, right);
        }
        RaExpr::SemiJoin { left, right, condition } => {
            put_u8(out, 9);
            put_expr(out, left);
            put_expr(out, right);
            put_condition(out, condition);
        }
        RaExpr::AntiJoin { left, right, condition } => {
            put_u8(out, 10);
            put_expr(out, left);
            put_expr(out, right);
            put_condition(out, condition);
        }
        RaExpr::UnifySemiJoin { left, right } => {
            put_u8(out, 11);
            put_expr(out, left);
            put_expr(out, right);
        }
        RaExpr::UnifyAntiSemiJoin { left, right } => {
            put_u8(out, 12);
            put_expr(out, left);
            put_expr(out, right);
        }
        RaExpr::Division { left, right } => {
            put_u8(out, 13);
            put_expr(out, left);
            put_expr(out, right);
        }
        RaExpr::Rename { input, columns } => {
            put_u8(out, 14);
            put_expr(out, input);
            put_u32(out, columns.len() as u32);
            for c in columns {
                put_str(out, c);
            }
        }
        RaExpr::Distinct { input } => {
            put_u8(out, 15);
            put_expr(out, input);
        }
        RaExpr::Aggregate { input, group_by, aggregates } => {
            put_u8(out, 16);
            put_expr(out, input);
            put_u32(out, group_by.len() as u32);
            for g in group_by {
                put_str(out, g);
            }
            put_u32(out, aggregates.len() as u32);
            for a in aggregates {
                put_agg_func(out, a.func);
                put_opt(out, a.column.as_ref(), |b, c| put_str(b, c));
                put_str(out, &a.alias);
            }
        }
    }
}

fn get_expr(r: &mut Reader<'_>) -> WireResult<RaExpr> {
    Ok(match r.u8()? {
        0 => RaExpr::Relation { name: r.str()?, alias: get_opt(r, |r| Ok(r.str()?))? },
        1 => {
            let schema = get_schema(r)?;
            let n = r.len()?;
            let mut rows = Vec::with_capacity(n);
            for _ in 0..n {
                rows.push(get_tuple(r)?);
            }
            RaExpr::Values { schema, rows }
        }
        2 => RaExpr::Select { input: Box::new(get_expr(r)?), condition: get_condition(r)? },
        3 => {
            let input = Box::new(get_expr(r)?);
            let n = r.len()?;
            let mut columns = Vec::with_capacity(n);
            for _ in 0..n {
                let column = r.str()?;
                let alias = get_opt(r, |r| Ok(r.str()?))?;
                columns.push(ProjCol { column, alias });
            }
            RaExpr::Project { input, columns }
        }
        4 => RaExpr::Product { left: Box::new(get_expr(r)?), right: Box::new(get_expr(r)?) },
        5 => RaExpr::Join {
            left: Box::new(get_expr(r)?),
            right: Box::new(get_expr(r)?),
            condition: get_condition(r)?,
        },
        6 => RaExpr::Union { left: Box::new(get_expr(r)?), right: Box::new(get_expr(r)?) },
        7 => RaExpr::Intersect { left: Box::new(get_expr(r)?), right: Box::new(get_expr(r)?) },
        8 => RaExpr::Difference { left: Box::new(get_expr(r)?), right: Box::new(get_expr(r)?) },
        9 => RaExpr::SemiJoin {
            left: Box::new(get_expr(r)?),
            right: Box::new(get_expr(r)?),
            condition: get_condition(r)?,
        },
        10 => RaExpr::AntiJoin {
            left: Box::new(get_expr(r)?),
            right: Box::new(get_expr(r)?),
            condition: get_condition(r)?,
        },
        11 => RaExpr::UnifySemiJoin { left: Box::new(get_expr(r)?), right: Box::new(get_expr(r)?) },
        12 => RaExpr::UnifyAntiSemiJoin {
            left: Box::new(get_expr(r)?),
            right: Box::new(get_expr(r)?),
        },
        13 => RaExpr::Division { left: Box::new(get_expr(r)?), right: Box::new(get_expr(r)?) },
        14 => {
            let input = Box::new(get_expr(r)?);
            let n = r.len()?;
            let mut columns = Vec::with_capacity(n);
            for _ in 0..n {
                columns.push(r.str()?);
            }
            RaExpr::Rename { input, columns }
        }
        15 => RaExpr::Distinct { input: Box::new(get_expr(r)?) },
        16 => {
            let input = Box::new(get_expr(r)?);
            let n = r.len()?;
            let mut group_by = Vec::with_capacity(n);
            for _ in 0..n {
                group_by.push(r.str()?);
            }
            let n = r.len()?;
            let mut aggregates = Vec::with_capacity(n);
            for _ in 0..n {
                let func = get_agg_func(r)?;
                let column = get_opt(r, |r| Ok(r.str()?))?;
                let alias = r.str()?;
                aggregates.push(AggExpr { func, column, alias });
            }
            RaExpr::Aggregate { input, group_by, aggregates }
        }
        other => return Err(bad(format!("unknown expression tag {other}"))),
    })
}

// ---------------------------------------------------------------------------
// Message encode/decode and framing.

/// Encode a request payload (request id + tag + body), without the length
/// prefix.
pub fn encode_request(request_id: u64, req: &Request) -> Vec<u8> {
    let mut out = Vec::new();
    put_u64(&mut out, request_id);
    put_u8(&mut out, req.tag());
    match req {
        Request::Ping
        | Request::Close
        | Request::Stats
        | Request::Shutdown
        | Request::Promote
        | Request::ReplStatus => {}
        Request::Subscribe { seq, offset } | Request::ReplicaAck { seq, offset } => {
            put_u64(&mut out, *seq);
            put_u64(&mut out, *offset);
        }
        Request::Prepare { certainty, query } => {
            put_u8(&mut out, certainty.tag());
            put_expr(&mut out, query);
        }
        Request::Query { certainty, query, deadline_ms } => {
            put_u8(&mut out, certainty.tag());
            put_expr(&mut out, query);
            put_u64(&mut out, *deadline_ms);
        }
        Request::Execute { prepared, deadline_ms } => {
            put_u64(&mut out, *prepared);
            put_u64(&mut out, *deadline_ms);
        }
        Request::Insert { table, rows } => {
            put_str(&mut out, table);
            put_u32(&mut out, rows.len() as u32);
            for t in rows {
                put_tuple(&mut out, t);
            }
        }
    }
    out
}

/// Decode a request payload produced by [`encode_request`].
pub fn decode_request(payload: &[u8]) -> WireResult<(u64, Request)> {
    let mut r = Reader::new(payload);
    let id = r.u64()?;
    let tag = r.u8()?;
    let req = match tag {
        0 => Request::Ping,
        1 | 3 => {
            let certainty = WireCertainty::from_tag(r.u8()?)?;
            let query = get_expr(&mut r)?;
            if tag == 1 {
                Request::Prepare { certainty, query }
            } else {
                Request::Query { certainty, query, deadline_ms: r.u64()? }
            }
        }
        2 => Request::Execute { prepared: r.u64()?, deadline_ms: r.u64()? },
        4 => {
            let table = r.str()?;
            let n = r.len()?;
            let mut rows = Vec::with_capacity(n);
            for _ in 0..n {
                rows.push(get_tuple(&mut r)?);
            }
            Request::Insert { table, rows }
        }
        5 => Request::Close,
        6 => Request::Stats,
        7 => Request::Shutdown,
        8 => Request::Subscribe { seq: r.u64()?, offset: r.u64()? },
        9 => Request::ReplicaAck { seq: r.u64()?, offset: r.u64()? },
        10 => Request::Promote,
        11 => Request::ReplStatus,
        other => return Err(bad(format!("unknown request tag {other}"))),
    };
    r.finish()?;
    Ok((id, req))
}

/// Encode a response payload (request id + tag + body), without the length
/// prefix.
pub fn encode_response(request_id: u64, resp: &Response) -> Vec<u8> {
    let mut out = Vec::new();
    put_u64(&mut out, request_id);
    put_u8(&mut out, resp.tag());
    match resp {
        Response::Pong { epoch } | Response::Ack { epoch } => put_u64(&mut out, *epoch),
        Response::Prepared { prepared, epoch } => {
            put_u64(&mut out, *prepared);
            put_u64(&mut out, *epoch);
        }
        Response::Answers { body, reprepared } => {
            out.extend_from_slice(&body.encode());
            put_bool(&mut out, *reprepared);
        }
        Response::Error { code, message, retry_after_ms } => {
            put_u8(&mut out, code.tag());
            put_str(&mut out, message);
            put_u64(&mut out, *retry_after_ms);
        }
        Response::Stats(s) => {
            for v in [
                s.requests,
                s.rejected,
                s.stale_replans,
                s.connections,
                s.live_pins,
                s.queue_depth,
                s.cache_hits,
                s.cache_misses,
                s.cache_entries,
                s.epoch,
            ] {
                put_u64(&mut out, v);
            }
        }
        Response::WalSegment { term, kind, seq, offset, bytes } => {
            put_u64(&mut out, *term);
            put_u8(&mut out, kind.tag());
            put_u64(&mut out, *seq);
            put_u64(&mut out, *offset);
            put_u32(&mut out, bytes.len() as u32);
            out.extend_from_slice(bytes);
        }
        Response::ReplStatus(s) => {
            put_u8(&mut out, s.role.tag());
            put_u64(&mut out, s.term);
            put_u64(&mut out, s.seq);
            put_u64(&mut out, s.offset);
            put_u8(&mut out, s.mode);
            put_u32(&mut out, s.quorum);
            put_opt(&mut out, s.primary_addr.as_ref(), |b, a| put_str(b, a));
            put_u32(&mut out, s.replicas.len() as u32);
            for rep in &s.replicas {
                put_str(&mut out, &rep.addr);
                put_u64(&mut out, rep.acked_seq);
                put_u64(&mut out, rep.acked_offset);
                put_u64(&mut out, rep.lag_bytes);
            }
        }
    }
    out
}

/// Decode a response payload produced by [`encode_response`].
pub fn decode_response(payload: &[u8]) -> WireResult<(u64, Response)> {
    let mut r = Reader::new(payload);
    let id = r.u64()?;
    let resp = match r.u8()? {
        0 => Response::Pong { epoch: r.u64()? },
        1 => Response::Prepared { prepared: r.u64()?, epoch: r.u64()? },
        2 => Response::Answers { body: AnswerBody::decode(&mut r)?, reprepared: r.bool()? },
        3 => Response::Ack { epoch: r.u64()? },
        4 => Response::Error {
            code: ErrorCode::from_tag(r.u8()?)?,
            message: r.str()?,
            retry_after_ms: r.u64()?,
        },
        5 => Response::Stats(ServerStats {
            requests: r.u64()?,
            rejected: r.u64()?,
            stale_replans: r.u64()?,
            connections: r.u64()?,
            live_pins: r.u64()?,
            queue_depth: r.u64()?,
            cache_hits: r.u64()?,
            cache_misses: r.u64()?,
            cache_entries: r.u64()?,
            epoch: r.u64()?,
        }),
        6 => {
            let term = r.u64()?;
            let kind = SegmentKind::from_tag(r.u8()?)?;
            let seq = r.u64()?;
            let offset = r.u64()?;
            let n = r.len()?;
            let bytes = r.take(n)?.to_vec();
            Response::WalSegment { term, kind, seq, offset, bytes }
        }
        7 => {
            let role = ReplRole::from_tag(r.u8()?)?;
            let term = r.u64()?;
            let seq = r.u64()?;
            let offset = r.u64()?;
            let mode = r.u8()?;
            let quorum = r.u32()?;
            let primary_addr = get_opt(&mut r, |r| Ok(r.str()?))?;
            let n = r.len()?;
            let mut replicas = Vec::with_capacity(n);
            for _ in 0..n {
                replicas.push(ReplicaLag {
                    addr: r.str()?,
                    acked_seq: r.u64()?,
                    acked_offset: r.u64()?,
                    lag_bytes: r.u64()?,
                });
            }
            Response::ReplStatus(ReplStatusBody {
                role,
                term,
                seq,
                offset,
                mode,
                quorum,
                primary_addr,
                replicas,
            })
        }
        other => return Err(bad(format!("unknown response tag {other}"))),
    };
    r.finish()?;
    Ok((id, resp))
}

/// Write one frame: `u32` LE payload length, then the payload.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> WireResult<()> {
    if payload.len() as u64 > MAX_FRAME_LEN as u64 {
        return Err(bad(format!("frame of {} bytes exceeds MAX_FRAME_LEN", payload.len())));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Read one frame, returning its payload. Propagates I/O errors (including
/// timeouts) untouched so pollers can distinguish "no data yet" from EOF.
pub fn read_frame(r: &mut impl Read) -> WireResult<Vec<u8>> {
    let mut len = [0u8; 4];
    r.read_exact(&mut len)?;
    let len = u32::from_le_bytes(len);
    if len > MAX_FRAME_LEN {
        return Err(bad(format!("frame length {len} exceeds MAX_FRAME_LEN")));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use certus_algebra::builder::eq;
    use certus_data::null::NullId;
    use certus_data::{Attribute, Schema, Value, ValueType};

    fn sample_exprs() -> Vec<RaExpr> {
        let base = RaExpr::relation("r");
        let joined = RaExpr::relation_as("l", "l1").join(
            RaExpr::relation("s"),
            eq("a", "b").and(Condition::Not(Box::new(Condition::Like {
                expr: Operand::Col("c".into()),
                pattern: "%x_".into(),
                negated: false,
            }))),
        );
        let values = RaExpr::Values {
            schema: Schema::new(vec![
                Attribute::new("x", ValueType::Int),
                Attribute::not_null("y", ValueType::Str),
            ]),
            rows: vec![
                Tuple::new(vec![Value::Int(1), Value::str("a")]),
                Tuple::new(vec![Value::Null(NullId(3)), Value::str("b")]),
            ],
        };
        let agg = RaExpr::Aggregate {
            input: Box::new(base.clone()),
            group_by: vec!["a".into()],
            aggregates: vec![AggExpr::count_star("n"), AggExpr::new(AggFunc::Sum, "b", "total")],
        };
        let scalar = RaExpr::relation("t").select(Condition::Cmp {
            left: Operand::Col("v".into()),
            op: CmpOp::Ge,
            right: Operand::Scalar(Box::new(values.clone())),
        });
        let inlist = RaExpr::relation("u").select(Condition::InList {
            expr: Operand::Col("k".into()),
            list: vec![Value::Int(1), Value::Float(2.5), Value::Date(19000), Value::Bool(true)],
            negated: true,
        });
        vec![
            base.clone(),
            joined,
            values,
            agg,
            scalar,
            inlist,
            RaExpr::Division {
                left: Box::new(base.clone()),
                right: Box::new(RaExpr::relation("s")),
            },
            RaExpr::Rename { input: Box::new(base.clone()), columns: vec!["p".into()] },
            RaExpr::Distinct { input: Box::new(base.clone()) },
            RaExpr::UnifySemiJoin {
                left: Box::new(base.clone()),
                right: Box::new(RaExpr::relation("s")),
            },
            RaExpr::UnifyAntiSemiJoin {
                left: Box::new(base.clone()),
                right: Box::new(RaExpr::relation("s")),
            },
            base.clone().union(RaExpr::relation("s")),
            base.clone().intersect(RaExpr::relation("s")),
            base.clone().difference(RaExpr::relation("s")),
            base.clone().product(RaExpr::relation("s")),
            base.clone().semi_join(RaExpr::relation("s"), eq("a", "b")),
            base.anti_join(RaExpr::relation("s"), eq("a", "b")),
        ]
    }

    #[test]
    fn requests_round_trip() {
        let mut requests = vec![
            Request::Ping,
            Request::Close,
            Request::Stats,
            Request::Shutdown,
            Request::Execute { prepared: 42, deadline_ms: 0 },
            Request::Execute { prepared: 42, deadline_ms: 2_500 },
            Request::Insert {
                table: "r".into(),
                rows: vec![Tuple::new(vec![Value::Int(1), Value::Null(NullId(9))])],
            },
            Request::Subscribe { seq: 3, offset: 4096 },
            Request::Subscribe { seq: u64::MAX, offset: u64::MAX },
            Request::ReplicaAck { seq: 3, offset: 8192 },
            Request::Promote,
            Request::ReplStatus,
        ];
        for (i, q) in sample_exprs().into_iter().enumerate() {
            let certainty = match i % 4 {
                0 => WireCertainty::Plain,
                1 => WireCertainty::CertainPlus,
                2 => WireCertainty::PossibleStar,
                _ => WireCertainty::Both,
            };
            requests.push(Request::Prepare { certainty, query: q.clone() });
            requests.push(Request::Query { certainty, query: q, deadline_ms: i as u64 * 100 });
        }
        for (i, req) in requests.into_iter().enumerate() {
            let bytes = encode_request(i as u64, &req);
            let (id, back) = decode_request(&bytes).expect("request decodes");
            assert_eq!(id, i as u64);
            assert_eq!(back, req);
        }
    }

    #[test]
    fn responses_round_trip() {
        let rel = Relation::from_parts(
            Schema::new(vec![Attribute::new("a", ValueType::Int)]).shared(),
            vec![Tuple::new(vec![Value::Int(7)]), Tuple::new(vec![Value::Null(NullId(2))])],
        );
        let responses = vec![
            Response::Pong { epoch: 3 },
            Response::Prepared { prepared: 5, epoch: 3 },
            Response::Ack { epoch: 4 },
            Response::Error {
                code: ErrorCode::Overloaded,
                message: "queue full".into(),
                retry_after_ms: 40,
            },
            Response::Error {
                code: ErrorCode::DeadlineExceeded,
                message: "deadline of 10ms expired".into(),
                retry_after_ms: 0,
            },
            Response::Stats(ServerStats { requests: 10, epoch: 2, ..Default::default() }),
            Response::Error {
                code: ErrorCode::NotPrimary,
                message: "127.0.0.1:7878".into(),
                retry_after_ms: 0,
            },
            Response::WalSegment {
                term: 2,
                kind: SegmentKind::Records,
                seq: 1,
                offset: 64,
                bytes: vec![1, 2, 3, 255, 0, 7],
            },
            Response::WalSegment {
                term: 1,
                kind: SegmentKind::Heartbeat,
                seq: 0,
                offset: 0,
                bytes: Vec::new(),
            },
            Response::WalSegment {
                term: 3,
                kind: SegmentKind::Close,
                seq: 5,
                offset: 1024,
                bytes: Vec::new(),
            },
            Response::ReplStatus(ReplStatusBody {
                role: ReplRole::Primary,
                term: 4,
                seq: 2,
                offset: 512,
                mode: 2,
                quorum: 1,
                primary_addr: None,
                replicas: vec![ReplicaLag {
                    addr: "127.0.0.1:9000".into(),
                    acked_seq: 2,
                    acked_offset: 256,
                    lag_bytes: 256,
                }],
            }),
            Response::ReplStatus(ReplStatusBody {
                role: ReplRole::Replica,
                term: 1,
                seq: 0,
                offset: 0,
                mode: 1,
                quorum: 0,
                primary_addr: Some("127.0.0.1:7878".into()),
                replicas: Vec::new(),
            }),
            Response::Answers {
                body: AnswerBody {
                    certainty: WireCertainty::Both,
                    plain: Some(rel.clone()),
                    certain: Some(rel.clone()),
                    possible: Some(rel),
                    breakdown: Some((2, 1, 1)),
                },
                reprepared: true,
            },
        ];
        for (i, resp) in responses.into_iter().enumerate() {
            let bytes = encode_response(i as u64, &resp);
            let (id, back) = decode_response(&bytes).expect("response decodes");
            assert_eq!(id, i as u64);
            assert_eq!(back, resp);
        }
    }

    #[test]
    fn answer_body_bytes_exclude_the_replan_flag() {
        let body = AnswerBody {
            certainty: WireCertainty::Plain,
            plain: Some(Relation::from_parts(
                Schema::new(vec![Attribute::new("a", ValueType::Int)]).shared(),
                vec![Tuple::new(vec![Value::Int(1)])],
            )),
            certain: None,
            possible: None,
            breakdown: None,
        };
        let fresh =
            encode_response(1, &Response::Answers { body: body.clone(), reprepared: false });
        let replanned =
            encode_response(1, &Response::Answers { body: body.clone(), reprepared: true });
        assert_ne!(fresh, replanned, "the flag is on the wire…");
        let (_, a) = decode_response(&fresh).unwrap();
        let (_, b) = decode_response(&replanned).unwrap();
        match (a, b) {
            (Response::Answers { body: ba, .. }, Response::Answers { body: bb, .. }) => {
                assert_eq!(ba.encode(), bb.encode(), "…but not in the canonical body");
                assert_eq!(ba.encode(), body.encode());
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn malformed_payloads_are_rejected_not_panicked() {
        // Truncations of a valid request must all fail cleanly.
        let good = encode_request(
            7,
            &Request::Query {
                certainty: WireCertainty::Both,
                query: sample_exprs().remove(1),
                deadline_ms: 250,
            },
        );
        for cut in 0..good.len() {
            assert!(decode_request(&good[..cut]).is_err(), "truncation at {cut}");
        }
        // Trailing garbage is rejected too.
        let mut trailing = good.clone();
        trailing.push(0);
        assert!(decode_request(&trailing).is_err());
        // Unknown tags and hostile lengths.
        assert!(decode_request(&[0; 8]).is_err(), "an id alone lacks a tag");
        let mut hostile = encode_request(1, &Request::Ping);
        hostile[8] = 99;
        assert!(decode_request(&hostile).is_err());
    }

    #[test]
    fn malformed_replication_frames_are_rejected_not_panicked() {
        let seg = encode_response(
            9,
            &Response::WalSegment {
                term: 1,
                kind: SegmentKind::Records,
                seq: 0,
                offset: 16,
                bytes: vec![7; 32],
            },
        );
        for cut in 0..seg.len() {
            assert!(decode_response(&seg[..cut]).is_err(), "segment truncation at {cut}");
        }
        let status = encode_response(
            9,
            &Response::ReplStatus(ReplStatusBody {
                role: ReplRole::Primary,
                term: 1,
                seq: 0,
                offset: 0,
                mode: 2,
                quorum: 1,
                primary_addr: None,
                replicas: vec![ReplicaLag {
                    addr: "a:1".into(),
                    acked_seq: 0,
                    acked_offset: 0,
                    lag_bytes: 0,
                }],
            }),
        );
        for cut in 0..status.len() {
            assert!(decode_response(&status[..cut]).is_err(), "status truncation at {cut}");
        }
        // Unknown segment kinds and roles fail cleanly.
        let mut bad_kind = seg.clone();
        bad_kind[8 + 1 + 8] = 99; // id + tag + term, then the kind byte
        assert!(decode_response(&bad_kind).is_err());
        let mut bad_role = status.clone();
        bad_role[8 + 1] = 99; // id + tag, then the role byte
        assert!(decode_response(&bad_role).is_err());
    }

    #[test]
    fn frames_round_trip_and_cap_length() {
        let payload = encode_request(1, &Request::Ping);
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor).unwrap(), payload);
        // A hostile length prefix fails before allocating.
        let mut hostile = std::io::Cursor::new((MAX_FRAME_LEN + 1).to_le_bytes().to_vec());
        assert!(matches!(read_frame(&mut hostile), Err(WireError::Malformed(_))));
    }
}
