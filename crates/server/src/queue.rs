//! A bounded multi-producer multi-consumer work queue (std-only).
//!
//! Producers use [`Queue::push_try`], which *sheds* instead of blocking when
//! the queue is full — admission control for an overloaded server is a
//! protocol-level `Overloaded` response, never backpressure that would stall
//! a reader thread and with it every other request on that connection.
//! Consumers block in [`Queue::pop`] until work arrives or the queue is
//! closed and drained.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

use certus_obs::metrics::Gauge;

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// Bounded MPMC queue with a gauge mirroring its depth.
pub struct Queue<T> {
    inner: Mutex<Inner<T>>,
    available: Condvar,
    capacity: usize,
    depth: Arc<Gauge>,
}

impl<T> Queue<T> {
    /// Create a queue holding at most `capacity` items, mirroring its depth
    /// into `depth`.
    pub fn new(capacity: usize, depth: Arc<Gauge>) -> Self {
        Queue {
            inner: Mutex::new(Inner { items: VecDeque::new(), closed: false }),
            available: Condvar::new(),
            capacity,
            depth,
        }
    }

    /// Enqueue `item`, or give it back if the queue is full or closed.
    pub fn push_try(&self, item: T) -> Result<(), T> {
        let mut inner = self.inner.lock().unwrap();
        if inner.closed || inner.items.len() >= self.capacity {
            return Err(item);
        }
        inner.items.push_back(item);
        self.depth.set(inner.items.len() as u64);
        drop(inner);
        self.available.notify_one();
        Ok(())
    }

    /// Dequeue the oldest item, blocking while the queue is open and empty.
    /// Returns `None` once the queue is closed *and* drained, so consumers
    /// finish in-flight work before exiting.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().unwrap();
        loop {
            if let Some(item) = inner.items.pop_front() {
                self.depth.set(inner.items.len() as u64);
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.available.wait(inner).unwrap();
        }
    }

    /// Close the queue: new pushes fail, consumers drain what is left and
    /// then see `None`.
    pub fn close(&self) {
        let mut inner = self.inner.lock().unwrap();
        inner.closed = true;
        drop(inner);
        self.available.notify_all();
    }

    /// Current number of queued items.
    pub fn depth(&self) -> usize {
        self.inner.lock().unwrap().items.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use certus_obs::metrics::registry;
    use std::thread;

    fn gauge(name: &str) -> Arc<Gauge> {
        registry().gauge(name)
    }

    #[test]
    fn push_try_sheds_when_full() {
        let q = Queue::new(2, gauge("test.queue.full"));
        assert!(q.push_try(1).is_ok());
        assert!(q.push_try(2).is_ok());
        assert_eq!(q.push_try(3), Err(3));
        assert_eq!(q.depth(), 2);
        assert_eq!(q.pop(), Some(1));
        assert!(q.push_try(3).is_ok());
    }

    #[test]
    fn close_drains_then_stops_consumers() {
        let q = Arc::new(Queue::new(8, gauge("test.queue.close")));
        q.push_try(10).unwrap();
        q.push_try(11).unwrap();
        q.close();
        assert_eq!(q.push_try(12), Err(12), "closed queue rejects pushes");
        assert_eq!(q.pop(), Some(10));
        assert_eq!(q.pop(), Some(11));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn blocked_consumers_wake_on_push_and_close() {
        let q = Arc::new(Queue::new(8, gauge("test.queue.wake")));
        let mut consumers = Vec::new();
        for _ in 0..3 {
            let q = Arc::clone(&q);
            consumers.push(thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(v) = q.pop() {
                    got.push(v);
                }
                got
            }));
        }
        for v in 0..20 {
            while q.push_try(v).is_err() {
                thread::yield_now();
            }
        }
        q.close();
        let mut all: Vec<i32> = consumers.into_iter().flat_map(|c| c.join().unwrap()).collect();
        all.sort_unstable();
        assert_eq!(all, (0..20).collect::<Vec<_>>());
    }
}
